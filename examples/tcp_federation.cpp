// Federation over real TCP sockets — the paper's "two Linux machines" row
// of Table I, in one binary.
//
// Usage:
//   ./examples/tcp_federation                 # server + 8 clients in-process
//                                             # over loopback TCP
//   ./examples/tcp_federation role=server port=9123 clients=2 rounds=3
//   ./examples/tcp_federation role=client port=9123 site=site-1
//   ./examples/tcp_federation role=client port=9123 site=site-2
//
// In split mode each process is a real federation participant: the server
// process hosts provisioning-derived credentials and the ScatterAndGather
// controller; each client process connects, authenticates with its token,
// and trains its local shard. Credentials derive deterministically from the
// shared project seed, standing in for distributing startup kits.
#include <cstdio>

#include "core/config.h"
#include "core/logging.h"
#include "flare/simulator.h"
#include "flare/tcp.h"
#include "models/lstm_classifier.h"
#include "train/clinical_learner.h"
#include "train/experiment.h"
#include "train/metrics.h"

namespace {

using namespace cppflare;

constexpr const char* kProject = "tcp_federation_demo";
constexpr std::uint64_t kProjectSeed = 424242;

train::ClassificationData shared_data(std::int64_t clients) {
  train::ExperimentScale scale = train::ExperimentScale::from_env();
  scale.num_patients = 400;
  scale.num_clients = clients;
  return train::prepare_classification_data(scale);
}

std::shared_ptr<train::ClinicalLearner> make_learner(
    const train::ClassificationData& data, std::int64_t site_index,
    const std::string& site_name) {
  models::ModelConfig mconfig = models::ModelConfig::lstm(
      data.tokenizer->vocab().size(), data.tokenizer->max_seq_len());
  mconfig.hidden = 48;  // demo-sized
  core::Rng rng(kProjectSeed + 7 + site_index);
  auto model = models::make_classifier(mconfig, rng);
  train::LearnerOptions lopts;
  lopts.local_epochs = 1;
  lopts.batch_size = 16;
  lopts.lr = 1e-2;
  return std::make_shared<train::ClinicalLearner>(
      site_name, std::move(model),
      data.shards[static_cast<std::size_t>(site_index)], data.valid, lopts);
}

int run_server(std::uint16_t port, std::int64_t clients, std::int64_t rounds) {
  const auto registry = flare::Provisioner(kProject, kProjectSeed)
                            .provision_sites(clients);
  const train::ClassificationData data = shared_data(clients);

  models::ModelConfig mconfig = models::ModelConfig::lstm(
      data.tokenizer->vocab().size(), data.tokenizer->max_seq_len());
  mconfig.hidden = 48;
  core::Rng init_rng(kProjectSeed);
  auto initial = models::make_classifier(mconfig, init_rng);

  flare::ServerConfig config;
  config.job_id = kProject;
  config.num_rounds = rounds;
  config.min_clients = clients;
  config.expected_clients = clients;
  flare::FederatedServer server(config, registry, initial->state_dict(),
                                std::make_unique<flare::FedAvgAggregator>(true));
  flare::TcpServer transport(port, server.dispatcher());
  std::printf("server listening on 127.0.0.1:%u for %lld clients, %lld rounds\n",
              transport.port(), static_cast<long long>(clients),
              static_cast<long long>(rounds));
  if (!server.wait_until_finished(10 * 60 * 1000)) {
    std::fprintf(stderr, "run did not finish in time\n");
    return 1;
  }
  core::Rng eval_rng(kProjectSeed + 99);
  auto final_model = models::make_classifier(mconfig, eval_rng);
  final_model->load_state_dict(server.global_model());
  std::printf("final global accuracy: %.1f%%\n",
              100.0 * train::evaluate(*final_model, data.valid, 16).accuracy);
  transport.stop();
  return 0;
}

int run_client(std::uint16_t port, const std::string& site, std::int64_t clients) {
  const flare::Credential cred =
      flare::Provisioner(kProject, kProjectSeed).provision(site);
  const train::ClassificationData data = shared_data(clients);
  const std::int64_t index = std::stoll(site.substr(site.find('-') + 1)) - 1;

  flare::ClientConfig config;
  config.job_id = kProject;
  flare::FederatedClient client(
      config, cred, std::make_unique<flare::TcpConnection>("127.0.0.1", port),
      make_learner(data, index, site));
  client.run();
  std::printf("%s participated in %lld rounds\n", site.c_str(),
              static_cast<long long>(client.rounds_participated()));
  return 0;
}

int run_all_in_one() {
  const std::int64_t clients = 4, rounds = 3;
  const train::ClassificationData data = shared_data(clients);
  models::ModelConfig mconfig = models::ModelConfig::lstm(
      data.tokenizer->vocab().size(), data.tokenizer->max_seq_len());
  mconfig.hidden = 48;
  core::Rng init_rng(kProjectSeed);
  auto initial = models::make_classifier(mconfig, init_rng);

  flare::SimulatorConfig sim;
  sim.job_id = kProject;
  sim.num_clients = clients;
  sim.num_rounds = rounds;
  sim.use_tcp = true;  // loopback sockets, not in-proc calls
  flare::SimulatorRunner runner(
      sim, initial->state_dict(), std::make_unique<flare::FedAvgAggregator>(true),
      [&](std::int64_t i, const std::string& name) {
        return make_learner(data, i, name);
      });
  const flare::SimulationResult result = runner.run();
  core::Rng eval_rng(kProjectSeed + 99);
  auto final_model = models::make_classifier(mconfig, eval_rng);
  final_model->load_state_dict(result.final_model);
  std::printf("\nTCP federation finished in %.1f s; global accuracy %.1f%%\n",
              result.wall_seconds,
              100.0 * train::evaluate(*final_model, data.valid, 16).accuracy);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  core::Config config = core::Config::from_args(
      std::vector<std::string>(argv + 1, argv + argc));
  const std::string role = config.get("role", "all");
  const auto port = static_cast<std::uint16_t>(config.get_int("port", 9123));
  const std::int64_t clients = config.get_int("clients", 2);
  const std::int64_t rounds = config.get_int("rounds", 3);

  if (role == "server") return run_server(port, clients, rounds);
  if (role == "client") return run_client(port, config.require("site"), clients);
  return run_all_in_one();
}
