// Multi-site federated fine-tuning — the paper's headline pipeline.
//
// Eight clinics hold imbalanced, label-skewed shards of the synthetic
// clopidogrel cohort. The server provisions them, runs ScatterAndGather
// federated averaging for E rounds, and the resulting global model is
// evaluated against centralized and standalone baselines. Output mirrors
// the paper's Fig. 3 logs.
//
//   ./examples/federated_finetune [model=lstm] [rounds=4] [patients=800]
#include <cstdio>

#include "core/config.h"
#include "core/logging.h"
#include "models/lstm_classifier.h"
#include "train/cross_site.h"
#include "train/experiment.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace cppflare;

  core::Config config = core::Config::from_args(
      std::vector<std::string>(argv + 1, argv + argc));
  train::ExperimentScale scale = train::ExperimentScale::from_env();
  scale.num_patients = config.get_int("patients", 800);
  scale.fl_rounds = config.get_int("rounds", 4);
  const std::string model = config.get("model", "lstm");

  std::printf("preparing synthetic multi-site cohort (%lld patients, 8 clinics)\n",
              static_cast<long long>(scale.num_patients));
  const train::ClassificationData data = train::prepare_classification_data(scale);
  std::printf("site shards:");
  for (std::size_t i = 0; i < data.shards.size(); ++i) {
    std::printf(" site-%zu=%lld(%.0f%%+)", i + 1,
                static_cast<long long>(data.shards[i].size()),
                100.0 * data.shards[i].positive_rate());
  }
  std::printf("\n\n--- federated training (%s, %lld rounds) ---\n", model.c_str(),
              static_cast<long long>(scale.fl_rounds));

  const train::SchemeResult fl = train::run_federated(model, data, scale);
  std::printf("\n--- baselines ---\n");
  core::LogConfig::instance().set_threshold(core::LogLevel::kWarn);
  const train::SchemeResult central = train::run_centralized(model, data, scale);
  const train::SchemeResult solo = train::run_standalone(model, data, scale);
  core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);

  std::printf("\nresults (%s):\n", model.c_str());
  std::printf("  centralized : %.1f%%\n", 100.0 * central.accuracy);
  std::printf("  federated   : %.1f%%\n", 100.0 * fl.accuracy);
  std::printf("  standalone  : %.1f%% (mean over 8 sites)\n", 100.0 * solo.accuracy);
  std::printf("\nthe paper's Table III shape: FL ~= centralized >> standalone\n");

  // Cross-site evaluation (NVFlare's CrossSiteModelEval): standalone site
  // models vs each site's local data, exposing how badly single-clinic
  // models transfer.
  std::printf("\n--- cross-site evaluation (standalone site models) ---\n");
  const models::ModelConfig mconfig = models::ModelConfig::by_name(
      model, data.tokenizer->vocab().size(), data.tokenizer->max_seq_len());
  std::vector<std::pair<std::string, nn::StateDict>> candidates;
  std::vector<std::pair<std::string, data::Dataset>> site_valid;
  core::LogConfig::instance().set_threshold(core::LogLevel::kWarn);
  for (std::size_t i = 0; i < data.shards.size() && i < 4; ++i) {
    core::Rng rng(1000 + i);
    auto site_model = models::make_classifier(mconfig, rng);
    train::TrainOptions topts;
    topts.epochs = scale.epochs_standalone;
    topts.batch_size = scale.batch_size;
    topts.lr = scale.lr;
    topts.seed = 2000 + i;
    train::ClassifierTrainer trainer(site_model, topts);
    for (std::int64_t e = 0; e < topts.epochs; ++e) {
      trainer.train_epoch(data.shards[i]);
    }
    const std::string site = "site-" + std::to_string(i + 1);
    candidates.emplace_back(site, site_model->state_dict());
    // Each clinic's "local validation": a slice of the global validation
    // pool (stands in for site-held test data).
    const std::int64_t begin = static_cast<std::int64_t>(i) * data.valid.size() / 4;
    const std::int64_t end = static_cast<std::int64_t>(i + 1) * data.valid.size() / 4;
    std::vector<std::int64_t> idx;
    for (std::int64_t j = begin; j < end; ++j) idx.push_back(j);
    site_valid.emplace_back(site, data.valid.subset(idx));
  }
  core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  const train::CrossSiteResult matrix =
      train::cross_site_evaluate(mconfig, candidates, site_valid, scale.batch_size);
  std::printf("%s", matrix.to_table().c_str());
  std::printf("best transfer: %s\n",
              matrix.model_names[matrix.best_model_index()].c_str());
  return 0;
}
