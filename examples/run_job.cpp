// Config-driven federation runner — the analogue of submitting an NVFlare
// job config. Every knob of the federation is a key=value argument; no
// recompilation needed to change the model, aggregation rule, privacy
// filters, or scale.
//
//   ./examples/run_job model=lstm rounds=6 clients=8
//       aggregator=weighted dp_sigma=0 fedprox_mu=0 secure_masking=false
//       select_best=true patients=1000 use_tcp=false
//
// Prints the resolved job spec, runs the federation, and reports global
// accuracy plus clinical metrics (AUROC, sensitivity/specificity, F1).
#include <cstdio>

#include "core/config.h"
#include "core/logging.h"
#include "models/lstm_classifier.h"
#include "train/clinical_metrics.h"
#include "train/experiment.h"

int main(int argc, char** argv) {
  using namespace cppflare;

  core::Config config = core::Config::from_args(
      std::vector<std::string>(argv + 1, argv + argc));

  train::ExperimentScale scale = train::ExperimentScale::from_env();
  scale.num_patients = config.get_int("patients", scale.num_patients);
  scale.num_clients = config.get_int("clients", scale.num_clients);
  scale.fl_rounds = config.get_int("rounds", scale.fl_rounds);
  scale.local_epochs = config.get_int("local_epochs", scale.local_epochs);
  scale.lr = config.get_double("lr", scale.lr);
  scale.label_skew_alpha = config.get_double("skew_alpha", scale.label_skew_alpha);
  scale.compute_threads = config.get_int("compute_threads", scale.compute_threads);

  train::FederatedOptions options;
  options.weighted_aggregation = config.get("aggregator", "weighted") == "weighted";
  options.dp_sigma = config.get_double("dp_sigma", 0.0);
  options.fedprox_mu = config.get_double("fedprox_mu", 0.0);
  options.secure_masking = config.get_bool("secure_masking", false);
  options.select_best = config.get_bool("select_best", true);
  options.send_diff = config.get_bool("send_diff", false);
  options.use_tcp = config.get_bool("use_tcp", false);
  const std::string model = config.get("model", "lstm");

  std::printf("job spec:\n");
  std::printf("  model=%s clients=%lld rounds=%lld local_epochs=%lld lr=%g\n",
              model.c_str(), static_cast<long long>(scale.num_clients),
              static_cast<long long>(scale.fl_rounds),
              static_cast<long long>(scale.local_epochs), scale.lr);
  std::printf(
      "  aggregator=%s dp_sigma=%g fedprox_mu=%g secure_masking=%d "
      "select_best=%d send_diff=%d use_tcp=%d\n\n",
      options.weighted_aggregation ? "weighted" : "uniform", options.dp_sigma,
      options.fedprox_mu, options.secure_masking ? 1 : 0,
      options.select_best ? 1 : 0, options.send_diff ? 1 : 0,
      options.use_tcp ? 1 : 0);

  core::LogConfig::instance().set_threshold(core::LogLevel::kWarn);
  const train::ClassificationData data = train::prepare_classification_data(scale);
  const train::SchemeResult result =
      train::run_federated(model, data, scale, options);

  std::printf("federated result: accuracy=%.1f%% loss=%.3f (%.0f s)\n",
              100.0 * result.accuracy, result.loss, result.seconds);

  // Clinical metrics of the trained global model on the validation pool.
  core::Rng rng(scale.seed + 123);
  auto global = models::make_classifier(
      models::ModelConfig::by_name(model, data.tokenizer->vocab().size(),
                                   data.tokenizer->max_seq_len()),
      rng);
  global->load_state_dict(result.trained_model);
  const train::ScoredPredictions preds =
      train::score_dataset(*global, data.valid, scale.batch_size);
  const train::ConfusionMatrix cm = train::confusion_at(preds.scores, preds.labels);
  std::printf("\nglobal model, clinical metrics on validation:\n");
  std::printf("  AUROC=%.3f  sensitivity=%.3f  specificity=%.3f  F1=%.3f\n",
              train::auroc(preds.scores, preds.labels), cm.sensitivity(),
              cm.specificity(), cm.f1());
  return 0;
}
