// Quickstart: generate a synthetic clopidogrel cohort, train the paper's
// LSTM classifier centrally, and evaluate top-1 accuracy on held-out
// patients.
//
//   ./examples/quickstart [key=value ...]
//   e.g. ./examples/quickstart patients=800 epochs=3 model=bert-mini
#include <cstdio>

#include "core/config.h"
#include "data/clinical_gen.h"
#include "data/partitioner.h"
#include "models/lstm_classifier.h"
#include "train/metrics.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace cppflare;

  core::Config config = core::Config::from_args(
      std::vector<std::string>(argv + 1, argv + argc));
  const std::int64_t patients = config.get_int("patients", 1200);
  const std::int64_t epochs = config.get_int("epochs", 4);
  const std::int64_t max_seq_len = config.get_int("max_seq_len", 32);
  const std::string model_name = config.get("model", "lstm");

  // 1. Synthesize the cohort (stand-in for the paper's 8,638-patient EHR
  //    corpus; see DESIGN.md §2) and tokenize it.
  data::ClinicalGenConfig gen_config;
  gen_config.num_drugs = 120;
  gen_config.num_diagnoses = 160;
  gen_config.num_procedures = 80;
  gen_config.max_events = max_seq_len - 4;
  const data::ClinicalCohortGenerator generator(gen_config);
  const auto records = generator.generate_labeled(patients, /*seed=*/1);
  const data::ClinicalTokenizer tokenizer(generator.build_vocabulary(), max_seq_len);

  data::Dataset all(tokenizer.encode_all(records));
  core::Rng split_rng(2);
  auto [valid, train] = all.split(all.size() / 5, split_rng);
  std::printf("cohort: %lld train / %lld valid patients, %.1f%% ADR rate, vocab %lld\n",
              static_cast<long long>(train.size()),
              static_cast<long long>(valid.size()), 100.0 * all.positive_rate(),
              static_cast<long long>(tokenizer.vocab().size()));

  // 2. Build the model from Table II specs and train.
  core::Rng init_rng(3);
  auto model = models::make_classifier(
      models::ModelConfig::by_name(model_name, tokenizer.vocab().size(), max_seq_len),
      init_rng);
  std::printf("model: %s (%lld parameters)\n", model_name.c_str(),
              static_cast<long long>(model->num_parameters()));

  train::TrainOptions opts;
  opts.epochs = epochs;
  opts.batch_size = 16;
  opts.lr = 1e-2;          // Table I
  opts.weight_decay = 1e-3;  // the 440k-param LSTM overfits the small cohort
  opts.verbose = true;
  opts.log_name = "Quickstart";
  train::ClassifierTrainer trainer(model, opts);
  trainer.fit(train, valid);

  // 3. Final evaluation.
  const train::EvalResult eval = train::evaluate(*model, valid, opts.batch_size);
  std::printf("\nfinal top-1 accuracy: %.1f%% (loss %.3f) on %lld held-out patients\n",
              100.0 * eval.accuracy, eval.loss,
              static_cast<long long>(eval.count));
  return 0;
}
