// Privacy-preserving federation: NVFlare-style filters on client updates.
//
// Demonstrates the three stock filters (Gaussian DP noise, norm clipping,
// variable exclusion) and sweeps the noise scale to show the
// privacy/utility trade-off on the ADR task.
//
//   ./examples/privacy_filters [patients=500] [rounds=4]
#include <cstdio>

#include "core/config.h"
#include "core/logging.h"
#include "train/experiment.h"

int main(int argc, char** argv) {
  using namespace cppflare;

  core::Config config = core::Config::from_args(
      std::vector<std::string>(argv + 1, argv + argc));
  train::ExperimentScale scale = train::ExperimentScale::from_env();
  scale.num_patients = config.get_int("patients", 500);
  scale.fl_rounds = config.get_int("rounds", 4);

  core::LogConfig::instance().set_threshold(core::LogLevel::kWarn);
  const train::ClassificationData data = train::prepare_classification_data(scale);

  std::printf("privacy/utility sweep on the synthetic ADR cohort (lstm, %lld "
              "rounds, 8 sites):\n\n",
              static_cast<long long>(scale.fl_rounds));
  std::printf("%-22s | %s\n", "client-side filter", "global top-1 accuracy");
  std::printf("-----------------------+----------------------\n");

  {
    train::FederatedOptions clean;
    const auto r = train::run_federated("lstm", data, scale, clean);
    std::printf("%-22s | %.1f%%\n", "none", 100.0 * r.accuracy);
  }
  for (double sigma : {0.001, 0.005, 0.02, 0.1}) {
    train::FederatedOptions opts;
    opts.dp_sigma = sigma;
    const auto r = train::run_federated("lstm", data, scale, opts);
    char label[64];
    std::snprintf(label, sizeof(label), "gaussian sigma=%g", sigma);
    std::printf("%-22s | %.1f%%\n", label, 100.0 * r.accuracy);
  }

  std::printf(
      "\nlarger sigma -> stronger per-update privacy but lower utility.\n"
      "NormClipFilter and ExcludeVarsFilter compose the same way through\n"
      "FederatedClient::outbound_filters() (see flare/filters.h).\n");
  return 0;
}
