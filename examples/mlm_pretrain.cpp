// BERT masked-LM pretraining on clinical event sequences, then transplant
// of the pretrained encoder into an ADR classifier for fine-tuning — the
// paper's two-stage pipeline (Fig. 1: pretraining then fine-tuning tasks).
//
//   ./examples/mlm_pretrain [sequences=800] [mlm_epochs=3] [ft_epochs=3]
#include <cstdio>

#include "core/config.h"
#include "data/clinical_gen.h"
#include "data/mlm.h"
#include "models/bert.h"
#include "train/metrics.h"
#include "train/trainer.h"

int main(int argc, char** argv) {
  using namespace cppflare;

  core::Config config = core::Config::from_args(
      std::vector<std::string>(argv + 1, argv + argc));
  const std::int64_t sequences = config.get_int("sequences", 800);
  const std::int64_t mlm_epochs = config.get_int("mlm_epochs", 3);
  const std::int64_t ft_epochs = config.get_int("ft_epochs", 3);
  const std::int64_t max_seq_len = 32;

  data::ClinicalGenConfig gen_config;
  gen_config.num_drugs = 120;
  gen_config.num_diagnoses = 160;
  gen_config.num_procedures = 80;
  gen_config.max_events = max_seq_len - 4;
  const data::ClinicalCohortGenerator generator(gen_config);
  const data::ClinicalTokenizer tokenizer(generator.build_vocabulary(), max_seq_len);

  // ---- stage 1: masked-LM pretraining -----------------------------------
  const data::Dataset corpus(
      tokenizer.encode_all(generator.generate_unlabeled(sequences, 11)));
  const data::Dataset corpus_valid(
      tokenizer.encode_all(generator.generate_unlabeled(sequences / 8, 12)));

  // BERT-mini spec keeps the example snappy on one core; switch to
  // ModelConfig::bert for the full Table II model.
  const models::ModelConfig mconfig = models::ModelConfig::bert_mini(
      tokenizer.vocab().size(), max_seq_len);
  core::Rng init_rng(13);
  auto pretrained = std::make_shared<models::BertForPretraining>(mconfig, init_rng);

  data::MlmMasker masker(tokenizer.vocab().size());  // p = 0.15, 80/10/10
  train::TrainOptions mlm_opts;
  mlm_opts.epochs = 1;
  mlm_opts.batch_size = 16;
  mlm_opts.lr = 3e-3;
  train::MlmTrainer mlm_trainer(pretrained, masker, mlm_opts);

  std::printf("MLM pretraining on %lld sequences (vocab %lld, ln(V)=%.2f)\n",
              static_cast<long long>(corpus.size()),
              static_cast<long long>(tokenizer.vocab().size()),
              std::log(static_cast<double>(tokenizer.vocab().size())));
  std::printf("  initial valid MLM loss: %.3f\n", mlm_trainer.evaluate(corpus_valid));
  for (std::int64_t e = 0; e < mlm_epochs; ++e) {
    const double train_loss = mlm_trainer.train_epoch(corpus);
    std::printf("  epoch %lld: train=%.3f valid=%.3f\n",
                static_cast<long long>(e + 1), train_loss,
                mlm_trainer.evaluate(corpus_valid));
  }

  // ---- stage 2: fine-tune ADR classification ------------------------------
  const auto records = generator.generate_labeled(600, 14);
  data::Dataset all(tokenizer.encode_all(records));
  core::Rng split_rng(15);
  auto [valid, train_set] = all.split(all.size() / 5, split_rng);

  auto finetune = [&](bool use_pretrained) {
    core::Rng rng(16);
    auto classifier = std::make_shared<models::BertForClassification>(mconfig, rng);
    if (use_pretrained) classifier->load_encoder_from(*pretrained);
    train::TrainOptions opts;
    opts.epochs = ft_epochs;
    opts.batch_size = 16;
    opts.lr = 3e-3;
    opts.seed = 17;
    train::ClassifierTrainer trainer(classifier, opts);
    for (std::int64_t e = 0; e < ft_epochs; ++e) trainer.train_epoch(train_set);
    return train::evaluate(*classifier, valid, 16).accuracy;
  };

  std::printf("\nfine-tuning ADR classifier (%lld train / %lld valid)\n",
              static_cast<long long>(train_set.size()),
              static_cast<long long>(valid.size()));
  const double scratch = finetune(false);
  const double warm = finetune(true);
  std::printf("  from scratch        : %.1f%%\n", 100.0 * scratch);
  std::printf("  pretrained encoder  : %.1f%%\n", 100.0 * warm);
  return 0;
}
