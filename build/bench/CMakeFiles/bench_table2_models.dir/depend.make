# Empty dependencies file for bench_table2_models.
# This may be replaced when dependencies are built.
