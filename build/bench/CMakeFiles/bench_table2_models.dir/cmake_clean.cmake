file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_models.dir/bench_table2_models.cpp.o"
  "CMakeFiles/bench_table2_models.dir/bench_table2_models.cpp.o.d"
  "bench_table2_models"
  "bench_table2_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
