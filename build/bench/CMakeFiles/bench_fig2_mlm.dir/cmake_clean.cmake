file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_mlm.dir/bench_fig2_mlm.cpp.o"
  "CMakeFiles/bench_fig2_mlm.dir/bench_fig2_mlm.cpp.o.d"
  "bench_fig2_mlm"
  "bench_fig2_mlm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_mlm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
