file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_demo.dir/bench_fig3_demo.cpp.o"
  "CMakeFiles/bench_fig3_demo.dir/bench_fig3_demo.cpp.o.d"
  "bench_fig3_demo"
  "bench_fig3_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
