# Empty dependencies file for bench_ablation_fl.
# This may be replaced when dependencies are built.
