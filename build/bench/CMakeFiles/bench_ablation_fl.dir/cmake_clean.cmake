file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fl.dir/bench_ablation_fl.cpp.o"
  "CMakeFiles/bench_ablation_fl.dir/bench_ablation_fl.cpp.o.d"
  "bench_ablation_fl"
  "bench_ablation_fl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
