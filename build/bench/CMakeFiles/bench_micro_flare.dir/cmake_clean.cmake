file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_flare.dir/bench_micro_flare.cpp.o"
  "CMakeFiles/bench_micro_flare.dir/bench_micro_flare.cpp.o.d"
  "bench_micro_flare"
  "bench_micro_flare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_flare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
