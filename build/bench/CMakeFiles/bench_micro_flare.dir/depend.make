# Empty dependencies file for bench_micro_flare.
# This may be replaced when dependencies are built.
