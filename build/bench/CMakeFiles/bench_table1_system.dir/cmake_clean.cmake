file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_system.dir/bench_table1_system.cpp.o"
  "CMakeFiles/bench_table1_system.dir/bench_table1_system.cpp.o.d"
  "bench_table1_system"
  "bench_table1_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
