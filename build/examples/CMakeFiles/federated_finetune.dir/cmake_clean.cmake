file(REMOVE_RECURSE
  "CMakeFiles/federated_finetune.dir/federated_finetune.cpp.o"
  "CMakeFiles/federated_finetune.dir/federated_finetune.cpp.o.d"
  "federated_finetune"
  "federated_finetune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_finetune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
