# Empty compiler generated dependencies file for federated_finetune.
# This may be replaced when dependencies are built.
