# Empty compiler generated dependencies file for privacy_filters.
# This may be replaced when dependencies are built.
