file(REMOVE_RECURSE
  "CMakeFiles/privacy_filters.dir/privacy_filters.cpp.o"
  "CMakeFiles/privacy_filters.dir/privacy_filters.cpp.o.d"
  "privacy_filters"
  "privacy_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
