# Empty dependencies file for mlm_pretrain.
# This may be replaced when dependencies are built.
