file(REMOVE_RECURSE
  "CMakeFiles/mlm_pretrain.dir/mlm_pretrain.cpp.o"
  "CMakeFiles/mlm_pretrain.dir/mlm_pretrain.cpp.o.d"
  "mlm_pretrain"
  "mlm_pretrain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlm_pretrain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
