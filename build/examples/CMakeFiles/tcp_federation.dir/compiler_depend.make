# Empty compiler generated dependencies file for tcp_federation.
# This may be replaced when dependencies are built.
