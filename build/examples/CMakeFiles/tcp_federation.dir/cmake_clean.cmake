file(REMOVE_RECURSE
  "CMakeFiles/tcp_federation.dir/tcp_federation.cpp.o"
  "CMakeFiles/tcp_federation.dir/tcp_federation.cpp.o.d"
  "tcp_federation"
  "tcp_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcp_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
