# Empty compiler generated dependencies file for run_job.
# This may be replaced when dependencies are built.
