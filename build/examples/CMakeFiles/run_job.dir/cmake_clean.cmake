file(REMOVE_RECURSE
  "CMakeFiles/run_job.dir/run_job.cpp.o"
  "CMakeFiles/run_job.dir/run_job.cpp.o.d"
  "run_job"
  "run_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
