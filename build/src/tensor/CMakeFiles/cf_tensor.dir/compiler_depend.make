# Empty compiler generated dependencies file for cf_tensor.
# This may be replaced when dependencies are built.
