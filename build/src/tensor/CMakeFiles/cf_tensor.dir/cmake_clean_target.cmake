file(REMOVE_RECURSE
  "libcf_tensor.a"
)
