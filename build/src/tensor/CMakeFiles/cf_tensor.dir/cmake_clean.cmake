file(REMOVE_RECURSE
  "CMakeFiles/cf_tensor.dir/kernels.cpp.o"
  "CMakeFiles/cf_tensor.dir/kernels.cpp.o.d"
  "CMakeFiles/cf_tensor.dir/ops_elementwise.cpp.o"
  "CMakeFiles/cf_tensor.dir/ops_elementwise.cpp.o.d"
  "CMakeFiles/cf_tensor.dir/ops_matmul.cpp.o"
  "CMakeFiles/cf_tensor.dir/ops_matmul.cpp.o.d"
  "CMakeFiles/cf_tensor.dir/ops_nn.cpp.o"
  "CMakeFiles/cf_tensor.dir/ops_nn.cpp.o.d"
  "CMakeFiles/cf_tensor.dir/ops_shape.cpp.o"
  "CMakeFiles/cf_tensor.dir/ops_shape.cpp.o.d"
  "CMakeFiles/cf_tensor.dir/tensor.cpp.o"
  "CMakeFiles/cf_tensor.dir/tensor.cpp.o.d"
  "libcf_tensor.a"
  "libcf_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
