
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tensor/kernels.cpp" "src/tensor/CMakeFiles/cf_tensor.dir/kernels.cpp.o" "gcc" "src/tensor/CMakeFiles/cf_tensor.dir/kernels.cpp.o.d"
  "/root/repo/src/tensor/ops_elementwise.cpp" "src/tensor/CMakeFiles/cf_tensor.dir/ops_elementwise.cpp.o" "gcc" "src/tensor/CMakeFiles/cf_tensor.dir/ops_elementwise.cpp.o.d"
  "/root/repo/src/tensor/ops_matmul.cpp" "src/tensor/CMakeFiles/cf_tensor.dir/ops_matmul.cpp.o" "gcc" "src/tensor/CMakeFiles/cf_tensor.dir/ops_matmul.cpp.o.d"
  "/root/repo/src/tensor/ops_nn.cpp" "src/tensor/CMakeFiles/cf_tensor.dir/ops_nn.cpp.o" "gcc" "src/tensor/CMakeFiles/cf_tensor.dir/ops_nn.cpp.o.d"
  "/root/repo/src/tensor/ops_shape.cpp" "src/tensor/CMakeFiles/cf_tensor.dir/ops_shape.cpp.o" "gcc" "src/tensor/CMakeFiles/cf_tensor.dir/ops_shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/tensor/CMakeFiles/cf_tensor.dir/tensor.cpp.o" "gcc" "src/tensor/CMakeFiles/cf_tensor.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
