file(REMOVE_RECURSE
  "CMakeFiles/cf_data.dir/clinical_gen.cpp.o"
  "CMakeFiles/cf_data.dir/clinical_gen.cpp.o.d"
  "CMakeFiles/cf_data.dir/dataset.cpp.o"
  "CMakeFiles/cf_data.dir/dataset.cpp.o.d"
  "CMakeFiles/cf_data.dir/mlm.cpp.o"
  "CMakeFiles/cf_data.dir/mlm.cpp.o.d"
  "CMakeFiles/cf_data.dir/partitioner.cpp.o"
  "CMakeFiles/cf_data.dir/partitioner.cpp.o.d"
  "CMakeFiles/cf_data.dir/vocab.cpp.o"
  "CMakeFiles/cf_data.dir/vocab.cpp.o.d"
  "libcf_data.a"
  "libcf_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
