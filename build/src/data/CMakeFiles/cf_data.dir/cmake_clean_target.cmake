file(REMOVE_RECURSE
  "libcf_data.a"
)
