# Empty dependencies file for cf_data.
# This may be replaced when dependencies are built.
