
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/clinical_gen.cpp" "src/data/CMakeFiles/cf_data.dir/clinical_gen.cpp.o" "gcc" "src/data/CMakeFiles/cf_data.dir/clinical_gen.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/data/CMakeFiles/cf_data.dir/dataset.cpp.o" "gcc" "src/data/CMakeFiles/cf_data.dir/dataset.cpp.o.d"
  "/root/repo/src/data/mlm.cpp" "src/data/CMakeFiles/cf_data.dir/mlm.cpp.o" "gcc" "src/data/CMakeFiles/cf_data.dir/mlm.cpp.o.d"
  "/root/repo/src/data/partitioner.cpp" "src/data/CMakeFiles/cf_data.dir/partitioner.cpp.o" "gcc" "src/data/CMakeFiles/cf_data.dir/partitioner.cpp.o.d"
  "/root/repo/src/data/vocab.cpp" "src/data/CMakeFiles/cf_data.dir/vocab.cpp.o" "gcc" "src/data/CMakeFiles/cf_data.dir/vocab.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/cf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
