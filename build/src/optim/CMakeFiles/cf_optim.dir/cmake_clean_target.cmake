file(REMOVE_RECURSE
  "libcf_optim.a"
)
