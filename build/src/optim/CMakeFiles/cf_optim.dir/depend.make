# Empty dependencies file for cf_optim.
# This may be replaced when dependencies are built.
