file(REMOVE_RECURSE
  "CMakeFiles/cf_optim.dir/optimizer.cpp.o"
  "CMakeFiles/cf_optim.dir/optimizer.cpp.o.d"
  "libcf_optim.a"
  "libcf_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
