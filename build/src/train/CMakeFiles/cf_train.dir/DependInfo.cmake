
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/train/clinical_learner.cpp" "src/train/CMakeFiles/cf_train.dir/clinical_learner.cpp.o" "gcc" "src/train/CMakeFiles/cf_train.dir/clinical_learner.cpp.o.d"
  "/root/repo/src/train/clinical_metrics.cpp" "src/train/CMakeFiles/cf_train.dir/clinical_metrics.cpp.o" "gcc" "src/train/CMakeFiles/cf_train.dir/clinical_metrics.cpp.o.d"
  "/root/repo/src/train/cross_site.cpp" "src/train/CMakeFiles/cf_train.dir/cross_site.cpp.o" "gcc" "src/train/CMakeFiles/cf_train.dir/cross_site.cpp.o.d"
  "/root/repo/src/train/experiment.cpp" "src/train/CMakeFiles/cf_train.dir/experiment.cpp.o" "gcc" "src/train/CMakeFiles/cf_train.dir/experiment.cpp.o.d"
  "/root/repo/src/train/metrics.cpp" "src/train/CMakeFiles/cf_train.dir/metrics.cpp.o" "gcc" "src/train/CMakeFiles/cf_train.dir/metrics.cpp.o.d"
  "/root/repo/src/train/reporting.cpp" "src/train/CMakeFiles/cf_train.dir/reporting.cpp.o" "gcc" "src/train/CMakeFiles/cf_train.dir/reporting.cpp.o.d"
  "/root/repo/src/train/trainer.cpp" "src/train/CMakeFiles/cf_train.dir/trainer.cpp.o" "gcc" "src/train/CMakeFiles/cf_train.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/models/CMakeFiles/cf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/flare/CMakeFiles/cf_flare.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/cf_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
