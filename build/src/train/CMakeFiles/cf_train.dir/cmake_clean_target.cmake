file(REMOVE_RECURSE
  "libcf_train.a"
)
