file(REMOVE_RECURSE
  "CMakeFiles/cf_train.dir/clinical_learner.cpp.o"
  "CMakeFiles/cf_train.dir/clinical_learner.cpp.o.d"
  "CMakeFiles/cf_train.dir/clinical_metrics.cpp.o"
  "CMakeFiles/cf_train.dir/clinical_metrics.cpp.o.d"
  "CMakeFiles/cf_train.dir/cross_site.cpp.o"
  "CMakeFiles/cf_train.dir/cross_site.cpp.o.d"
  "CMakeFiles/cf_train.dir/experiment.cpp.o"
  "CMakeFiles/cf_train.dir/experiment.cpp.o.d"
  "CMakeFiles/cf_train.dir/metrics.cpp.o"
  "CMakeFiles/cf_train.dir/metrics.cpp.o.d"
  "CMakeFiles/cf_train.dir/reporting.cpp.o"
  "CMakeFiles/cf_train.dir/reporting.cpp.o.d"
  "CMakeFiles/cf_train.dir/trainer.cpp.o"
  "CMakeFiles/cf_train.dir/trainer.cpp.o.d"
  "libcf_train.a"
  "libcf_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
