# Empty compiler generated dependencies file for cf_train.
# This may be replaced when dependencies are built.
