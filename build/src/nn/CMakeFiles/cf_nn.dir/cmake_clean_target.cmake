file(REMOVE_RECURSE
  "libcf_nn.a"
)
