file(REMOVE_RECURSE
  "CMakeFiles/cf_nn.dir/gru.cpp.o"
  "CMakeFiles/cf_nn.dir/gru.cpp.o.d"
  "CMakeFiles/cf_nn.dir/layers.cpp.o"
  "CMakeFiles/cf_nn.dir/layers.cpp.o.d"
  "CMakeFiles/cf_nn.dir/lstm.cpp.o"
  "CMakeFiles/cf_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/cf_nn.dir/module.cpp.o"
  "CMakeFiles/cf_nn.dir/module.cpp.o.d"
  "CMakeFiles/cf_nn.dir/state_dict.cpp.o"
  "CMakeFiles/cf_nn.dir/state_dict.cpp.o.d"
  "CMakeFiles/cf_nn.dir/transformer.cpp.o"
  "CMakeFiles/cf_nn.dir/transformer.cpp.o.d"
  "libcf_nn.a"
  "libcf_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
