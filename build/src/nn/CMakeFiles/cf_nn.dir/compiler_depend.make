# Empty compiler generated dependencies file for cf_nn.
# This may be replaced when dependencies are built.
