
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/gru.cpp" "src/nn/CMakeFiles/cf_nn.dir/gru.cpp.o" "gcc" "src/nn/CMakeFiles/cf_nn.dir/gru.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/cf_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/cf_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/cf_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/cf_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/module.cpp" "src/nn/CMakeFiles/cf_nn.dir/module.cpp.o" "gcc" "src/nn/CMakeFiles/cf_nn.dir/module.cpp.o.d"
  "/root/repo/src/nn/state_dict.cpp" "src/nn/CMakeFiles/cf_nn.dir/state_dict.cpp.o" "gcc" "src/nn/CMakeFiles/cf_nn.dir/state_dict.cpp.o.d"
  "/root/repo/src/nn/transformer.cpp" "src/nn/CMakeFiles/cf_nn.dir/transformer.cpp.o" "gcc" "src/nn/CMakeFiles/cf_nn.dir/transformer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/cf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
