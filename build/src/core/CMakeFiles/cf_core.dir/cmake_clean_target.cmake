file(REMOVE_RECURSE
  "libcf_core.a"
)
