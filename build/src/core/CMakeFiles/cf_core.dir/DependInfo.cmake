
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bytes.cpp" "src/core/CMakeFiles/cf_core.dir/bytes.cpp.o" "gcc" "src/core/CMakeFiles/cf_core.dir/bytes.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/cf_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/cf_core.dir/config.cpp.o.d"
  "/root/repo/src/core/logging.cpp" "src/core/CMakeFiles/cf_core.dir/logging.cpp.o" "gcc" "src/core/CMakeFiles/cf_core.dir/logging.cpp.o.d"
  "/root/repo/src/core/rng.cpp" "src/core/CMakeFiles/cf_core.dir/rng.cpp.o" "gcc" "src/core/CMakeFiles/cf_core.dir/rng.cpp.o.d"
  "/root/repo/src/core/sha256.cpp" "src/core/CMakeFiles/cf_core.dir/sha256.cpp.o" "gcc" "src/core/CMakeFiles/cf_core.dir/sha256.cpp.o.d"
  "/root/repo/src/core/thread_pool.cpp" "src/core/CMakeFiles/cf_core.dir/thread_pool.cpp.o" "gcc" "src/core/CMakeFiles/cf_core.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
