# Empty compiler generated dependencies file for cf_core.
# This may be replaced when dependencies are built.
