file(REMOVE_RECURSE
  "CMakeFiles/cf_core.dir/bytes.cpp.o"
  "CMakeFiles/cf_core.dir/bytes.cpp.o.d"
  "CMakeFiles/cf_core.dir/config.cpp.o"
  "CMakeFiles/cf_core.dir/config.cpp.o.d"
  "CMakeFiles/cf_core.dir/logging.cpp.o"
  "CMakeFiles/cf_core.dir/logging.cpp.o.d"
  "CMakeFiles/cf_core.dir/rng.cpp.o"
  "CMakeFiles/cf_core.dir/rng.cpp.o.d"
  "CMakeFiles/cf_core.dir/sha256.cpp.o"
  "CMakeFiles/cf_core.dir/sha256.cpp.o.d"
  "CMakeFiles/cf_core.dir/thread_pool.cpp.o"
  "CMakeFiles/cf_core.dir/thread_pool.cpp.o.d"
  "libcf_core.a"
  "libcf_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
