file(REMOVE_RECURSE
  "CMakeFiles/cf_models.dir/bert.cpp.o"
  "CMakeFiles/cf_models.dir/bert.cpp.o.d"
  "CMakeFiles/cf_models.dir/lstm_classifier.cpp.o"
  "CMakeFiles/cf_models.dir/lstm_classifier.cpp.o.d"
  "CMakeFiles/cf_models.dir/model_config.cpp.o"
  "CMakeFiles/cf_models.dir/model_config.cpp.o.d"
  "libcf_models.a"
  "libcf_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
