# Empty dependencies file for cf_models.
# This may be replaced when dependencies are built.
