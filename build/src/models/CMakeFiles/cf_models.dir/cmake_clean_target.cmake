file(REMOVE_RECURSE
  "libcf_models.a"
)
