file(REMOVE_RECURSE
  "CMakeFiles/cf_flare.dir/aggregator.cpp.o"
  "CMakeFiles/cf_flare.dir/aggregator.cpp.o.d"
  "CMakeFiles/cf_flare.dir/client.cpp.o"
  "CMakeFiles/cf_flare.dir/client.cpp.o.d"
  "CMakeFiles/cf_flare.dir/dxo.cpp.o"
  "CMakeFiles/cf_flare.dir/dxo.cpp.o.d"
  "CMakeFiles/cf_flare.dir/filters.cpp.o"
  "CMakeFiles/cf_flare.dir/filters.cpp.o.d"
  "CMakeFiles/cf_flare.dir/fl_context.cpp.o"
  "CMakeFiles/cf_flare.dir/fl_context.cpp.o.d"
  "CMakeFiles/cf_flare.dir/messages.cpp.o"
  "CMakeFiles/cf_flare.dir/messages.cpp.o.d"
  "CMakeFiles/cf_flare.dir/model_selector.cpp.o"
  "CMakeFiles/cf_flare.dir/model_selector.cpp.o.d"
  "CMakeFiles/cf_flare.dir/persistor.cpp.o"
  "CMakeFiles/cf_flare.dir/persistor.cpp.o.d"
  "CMakeFiles/cf_flare.dir/provision.cpp.o"
  "CMakeFiles/cf_flare.dir/provision.cpp.o.d"
  "CMakeFiles/cf_flare.dir/robust_aggregator.cpp.o"
  "CMakeFiles/cf_flare.dir/robust_aggregator.cpp.o.d"
  "CMakeFiles/cf_flare.dir/secure_agg.cpp.o"
  "CMakeFiles/cf_flare.dir/secure_agg.cpp.o.d"
  "CMakeFiles/cf_flare.dir/secure_channel.cpp.o"
  "CMakeFiles/cf_flare.dir/secure_channel.cpp.o.d"
  "CMakeFiles/cf_flare.dir/server.cpp.o"
  "CMakeFiles/cf_flare.dir/server.cpp.o.d"
  "CMakeFiles/cf_flare.dir/simulator.cpp.o"
  "CMakeFiles/cf_flare.dir/simulator.cpp.o.d"
  "CMakeFiles/cf_flare.dir/tcp.cpp.o"
  "CMakeFiles/cf_flare.dir/tcp.cpp.o.d"
  "libcf_flare.a"
  "libcf_flare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cf_flare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
