
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flare/aggregator.cpp" "src/flare/CMakeFiles/cf_flare.dir/aggregator.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/aggregator.cpp.o.d"
  "/root/repo/src/flare/client.cpp" "src/flare/CMakeFiles/cf_flare.dir/client.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/client.cpp.o.d"
  "/root/repo/src/flare/dxo.cpp" "src/flare/CMakeFiles/cf_flare.dir/dxo.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/dxo.cpp.o.d"
  "/root/repo/src/flare/filters.cpp" "src/flare/CMakeFiles/cf_flare.dir/filters.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/filters.cpp.o.d"
  "/root/repo/src/flare/fl_context.cpp" "src/flare/CMakeFiles/cf_flare.dir/fl_context.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/fl_context.cpp.o.d"
  "/root/repo/src/flare/messages.cpp" "src/flare/CMakeFiles/cf_flare.dir/messages.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/messages.cpp.o.d"
  "/root/repo/src/flare/model_selector.cpp" "src/flare/CMakeFiles/cf_flare.dir/model_selector.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/model_selector.cpp.o.d"
  "/root/repo/src/flare/persistor.cpp" "src/flare/CMakeFiles/cf_flare.dir/persistor.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/persistor.cpp.o.d"
  "/root/repo/src/flare/provision.cpp" "src/flare/CMakeFiles/cf_flare.dir/provision.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/provision.cpp.o.d"
  "/root/repo/src/flare/robust_aggregator.cpp" "src/flare/CMakeFiles/cf_flare.dir/robust_aggregator.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/robust_aggregator.cpp.o.d"
  "/root/repo/src/flare/secure_agg.cpp" "src/flare/CMakeFiles/cf_flare.dir/secure_agg.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/secure_agg.cpp.o.d"
  "/root/repo/src/flare/secure_channel.cpp" "src/flare/CMakeFiles/cf_flare.dir/secure_channel.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/secure_channel.cpp.o.d"
  "/root/repo/src/flare/server.cpp" "src/flare/CMakeFiles/cf_flare.dir/server.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/server.cpp.o.d"
  "/root/repo/src/flare/simulator.cpp" "src/flare/CMakeFiles/cf_flare.dir/simulator.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/simulator.cpp.o.d"
  "/root/repo/src/flare/tcp.cpp" "src/flare/CMakeFiles/cf_flare.dir/tcp.cpp.o" "gcc" "src/flare/CMakeFiles/cf_flare.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/cf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cf_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cf_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
