file(REMOVE_RECURSE
  "libcf_flare.a"
)
