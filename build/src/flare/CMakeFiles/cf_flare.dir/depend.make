# Empty dependencies file for cf_flare.
# This may be replaced when dependencies are built.
