file(REMOVE_RECURSE
  "CMakeFiles/lstm_test.dir/lstm_test.cpp.o"
  "CMakeFiles/lstm_test.dir/lstm_test.cpp.o.d"
  "lstm_test"
  "lstm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lstm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
