# Empty dependencies file for lstm_test.
# This may be replaced when dependencies are built.
