file(REMOVE_RECURSE
  "CMakeFiles/simulator_test.dir/simulator_test.cpp.o"
  "CMakeFiles/simulator_test.dir/simulator_test.cpp.o.d"
  "simulator_test"
  "simulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
