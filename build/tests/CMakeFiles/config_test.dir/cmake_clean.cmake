file(REMOVE_RECURSE
  "CMakeFiles/config_test.dir/config_test.cpp.o"
  "CMakeFiles/config_test.dir/config_test.cpp.o.d"
  "config_test"
  "config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
