# Empty compiler generated dependencies file for cross_site_test.
# This may be replaced when dependencies are built.
