file(REMOVE_RECURSE
  "CMakeFiles/cross_site_test.dir/cross_site_test.cpp.o"
  "CMakeFiles/cross_site_test.dir/cross_site_test.cpp.o.d"
  "cross_site_test"
  "cross_site_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
