file(REMOVE_RECURSE
  "CMakeFiles/logging_test.dir/logging_test.cpp.o"
  "CMakeFiles/logging_test.dir/logging_test.cpp.o.d"
  "logging_test"
  "logging_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logging_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
