# Empty dependencies file for state_dict_test.
# This may be replaced when dependencies are built.
