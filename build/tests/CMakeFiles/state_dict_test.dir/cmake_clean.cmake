file(REMOVE_RECURSE
  "CMakeFiles/state_dict_test.dir/state_dict_test.cpp.o"
  "CMakeFiles/state_dict_test.dir/state_dict_test.cpp.o.d"
  "state_dict_test"
  "state_dict_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_dict_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
