# Empty dependencies file for robust_aggregator_test.
# This may be replaced when dependencies are built.
