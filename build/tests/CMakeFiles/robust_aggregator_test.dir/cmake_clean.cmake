file(REMOVE_RECURSE
  "CMakeFiles/robust_aggregator_test.dir/robust_aggregator_test.cpp.o"
  "CMakeFiles/robust_aggregator_test.dir/robust_aggregator_test.cpp.o.d"
  "robust_aggregator_test"
  "robust_aggregator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
