file(REMOVE_RECURSE
  "CMakeFiles/bytes_test.dir/bytes_test.cpp.o"
  "CMakeFiles/bytes_test.dir/bytes_test.cpp.o.d"
  "bytes_test"
  "bytes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bytes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
