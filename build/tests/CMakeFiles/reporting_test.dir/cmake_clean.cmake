file(REMOVE_RECURSE
  "CMakeFiles/reporting_test.dir/reporting_test.cpp.o"
  "CMakeFiles/reporting_test.dir/reporting_test.cpp.o.d"
  "reporting_test"
  "reporting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reporting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
