# Empty compiler generated dependencies file for provision_test.
# This may be replaced when dependencies are built.
