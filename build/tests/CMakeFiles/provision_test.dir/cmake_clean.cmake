file(REMOVE_RECURSE
  "CMakeFiles/provision_test.dir/provision_test.cpp.o"
  "CMakeFiles/provision_test.dir/provision_test.cpp.o.d"
  "provision_test"
  "provision_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/provision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
