file(REMOVE_RECURSE
  "CMakeFiles/secure_channel_test.dir/secure_channel_test.cpp.o"
  "CMakeFiles/secure_channel_test.dir/secure_channel_test.cpp.o.d"
  "secure_channel_test"
  "secure_channel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
