# Empty compiler generated dependencies file for secure_channel_test.
# This may be replaced when dependencies are built.
