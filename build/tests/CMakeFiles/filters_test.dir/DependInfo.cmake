
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/filters_test.cpp" "tests/CMakeFiles/filters_test.dir/filters_test.cpp.o" "gcc" "tests/CMakeFiles/filters_test.dir/filters_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/train/CMakeFiles/cf_train.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/cf_models.dir/DependInfo.cmake"
  "/root/repo/build/src/flare/CMakeFiles/cf_flare.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/cf_data.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/cf_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cf_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/cf_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cf_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
