# Empty dependencies file for integration_fl_test.
# This may be replaced when dependencies are built.
