file(REMOVE_RECURSE
  "CMakeFiles/integration_fl_test.dir/integration_fl_test.cpp.o"
  "CMakeFiles/integration_fl_test.dir/integration_fl_test.cpp.o.d"
  "integration_fl_test"
  "integration_fl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_fl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
