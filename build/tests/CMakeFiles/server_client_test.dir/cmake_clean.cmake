file(REMOVE_RECURSE
  "CMakeFiles/server_client_test.dir/server_client_test.cpp.o"
  "CMakeFiles/server_client_test.dir/server_client_test.cpp.o.d"
  "server_client_test"
  "server_client_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
