# Empty dependencies file for server_client_test.
# This may be replaced when dependencies are built.
