file(REMOVE_RECURSE
  "CMakeFiles/gru_test.dir/gru_test.cpp.o"
  "CMakeFiles/gru_test.dir/gru_test.cpp.o.d"
  "gru_test"
  "gru_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gru_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
