# Empty compiler generated dependencies file for gru_test.
# This may be replaced when dependencies are built.
