file(REMOVE_RECURSE
  "CMakeFiles/messages_test.dir/messages_test.cpp.o"
  "CMakeFiles/messages_test.dir/messages_test.cpp.o.d"
  "messages_test"
  "messages_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
