file(REMOVE_RECURSE
  "CMakeFiles/persistor_test.dir/persistor_test.cpp.o"
  "CMakeFiles/persistor_test.dir/persistor_test.cpp.o.d"
  "persistor_test"
  "persistor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/persistor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
