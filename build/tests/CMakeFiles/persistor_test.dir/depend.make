# Empty dependencies file for persistor_test.
# This may be replaced when dependencies are built.
