file(REMOVE_RECURSE
  "CMakeFiles/aggregator_test.dir/aggregator_test.cpp.o"
  "CMakeFiles/aggregator_test.dir/aggregator_test.cpp.o.d"
  "aggregator_test"
  "aggregator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
