file(REMOVE_RECURSE
  "CMakeFiles/flare_ext_test.dir/flare_ext_test.cpp.o"
  "CMakeFiles/flare_ext_test.dir/flare_ext_test.cpp.o.d"
  "flare_ext_test"
  "flare_ext_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flare_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
