# Empty dependencies file for flare_ext_test.
# This may be replaced when dependencies are built.
