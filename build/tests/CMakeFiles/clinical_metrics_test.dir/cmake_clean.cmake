file(REMOVE_RECURSE
  "CMakeFiles/clinical_metrics_test.dir/clinical_metrics_test.cpp.o"
  "CMakeFiles/clinical_metrics_test.dir/clinical_metrics_test.cpp.o.d"
  "clinical_metrics_test"
  "clinical_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clinical_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
