# Empty dependencies file for clinical_metrics_test.
# This may be replaced when dependencies are built.
