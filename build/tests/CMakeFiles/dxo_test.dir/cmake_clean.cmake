file(REMOVE_RECURSE
  "CMakeFiles/dxo_test.dir/dxo_test.cpp.o"
  "CMakeFiles/dxo_test.dir/dxo_test.cpp.o.d"
  "dxo_test"
  "dxo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dxo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
