# Empty dependencies file for dxo_test.
# This may be replaced when dependencies are built.
