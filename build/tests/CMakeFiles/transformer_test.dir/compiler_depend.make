# Empty compiler generated dependencies file for transformer_test.
# This may be replaced when dependencies are built.
