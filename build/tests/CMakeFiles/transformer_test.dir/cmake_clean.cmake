file(REMOVE_RECURSE
  "CMakeFiles/transformer_test.dir/transformer_test.cpp.o"
  "CMakeFiles/transformer_test.dir/transformer_test.cpp.o.d"
  "transformer_test"
  "transformer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transformer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
