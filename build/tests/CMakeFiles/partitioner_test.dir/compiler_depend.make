# Empty compiler generated dependencies file for partitioner_test.
# This may be replaced when dependencies are built.
