file(REMOVE_RECURSE
  "CMakeFiles/partitioner_test.dir/partitioner_test.cpp.o"
  "CMakeFiles/partitioner_test.dir/partitioner_test.cpp.o.d"
  "partitioner_test"
  "partitioner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
