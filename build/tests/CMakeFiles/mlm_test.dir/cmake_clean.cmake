file(REMOVE_RECURSE
  "CMakeFiles/mlm_test.dir/mlm_test.cpp.o"
  "CMakeFiles/mlm_test.dir/mlm_test.cpp.o.d"
  "mlm_test"
  "mlm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
