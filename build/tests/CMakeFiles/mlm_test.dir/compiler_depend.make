# Empty compiler generated dependencies file for mlm_test.
# This may be replaced when dependencies are built.
