#include "optim/optimizer.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace cppflare::optim {

Optimizer::Optimizer(std::vector<tensor::Tensor> params, float lr)
    : params_(std::move(params)), lr_(lr) {
  if (params_.empty()) throw Error("Optimizer: no parameters");
  for (const auto& p : params_) {
    if (!p.requires_grad()) throw Error("Optimizer: parameter does not require grad");
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.zero_grad();
}

float Optimizer::grad_norm() const {
  double acc = 0.0;
  for (const auto& p : params_) {
    if (p.impl()->grad.empty()) continue;
    for (float g : p.impl()->grad) acc += static_cast<double>(g) * g;
  }
  return static_cast<float>(std::sqrt(acc));
}

float Optimizer::clip_grad_norm(float max_norm) {
  const float norm = grad_norm();
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (auto& p : params_) {
      for (float& g : p.mutable_grad()) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<tensor::Tensor> params, float lr, float momentum)
    : Optimizer(std::move(params), lr), momentum_(momentum) {
  if (momentum_ != 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
    }
  }
}

void Sgd::step() {
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    if (p.impl()->grad.empty()) continue;  // unreached parameter this step
    float* w = p.data();
    const float* g = p.impl()->grad.data();
    const std::int64_t n = p.numel();
    if (momentum_ == 0.0f) {
      for (std::int64_t i = 0; i < n; ++i) w[i] -= lr_ * g[i];
    } else {
      float* vel = velocity_[pi].data();
      for (std::int64_t i = 0; i < n; ++i) {
        vel[i] = momentum_ * vel[i] + g[i];
        w[i] -= lr_ * vel[i];
      }
    }
  }
}

Adam::Adam(std::vector<tensor::Tensor> params, float lr, float beta1, float beta2,
           float eps, float weight_decay)
    : Optimizer(std::move(params), lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
    v_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t pi = 0; pi < params_.size(); ++pi) {
    auto& p = params_[pi];
    if (p.impl()->grad.empty()) continue;
    float* w = p.data();
    const float* g = p.impl()->grad.data();
    float* m = m_[pi].data();
    float* v = v_[pi].data();
    const std::int64_t n = p.numel();
    for (std::int64_t i = 0; i < n; ++i) {
      float grad = g[i];
      if (weight_decay_ != 0.0f) grad += weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[i] / bc1;
      const float vhat = v[i] / bc2;
      w[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

StepDecayLr::StepDecayLr(float base_lr, std::int64_t step_size, float gamma)
    : base_lr_(base_lr), step_size_(step_size), gamma_(gamma) {
  if (step_size_ <= 0) throw Error("StepDecayLr: step_size must be positive");
}

float StepDecayLr::lr_at(std::int64_t step) const {
  return base_lr_ * std::pow(gamma_, static_cast<float>(step / step_size_));
}

WarmupLinearLr::WarmupLinearLr(float base_lr, std::int64_t warmup, std::int64_t total)
    : base_lr_(base_lr), warmup_(warmup), total_(total) {
  if (total_ <= warmup_) throw Error("WarmupLinearLr: total must exceed warmup");
}

float WarmupLinearLr::lr_at(std::int64_t step) const {
  if (step < warmup_) {
    return base_lr_ * static_cast<float>(step + 1) / static_cast<float>(warmup_);
  }
  const float remain = static_cast<float>(total_ - step) /
                       static_cast<float>(total_ - warmup_);
  return base_lr_ * std::max(0.0f, remain);
}

}  // namespace cppflare::optim
