// First-order optimizers over parameter tensors.
//
// Optimizers hold references to the model's parameter tensors (leaf autograd
// nodes) and update data in place from the accumulated gradients. The paper
// trains with Adam at lr = 1e-2 (Table I).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace cppflare::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor> params, float lr);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the current gradients.
  virtual void step() = 0;

  /// Zeroes all parameter gradients (call after step()).
  void zero_grad();

  float lr() const { return lr_; }
  void set_lr(float lr) { lr_ = lr; }

  /// Global gradient L2 norm across all parameters.
  float grad_norm() const;

  /// Rescales gradients so the global norm is at most `max_norm`.
  /// Returns the pre-clip norm.
  float clip_grad_norm(float max_norm);

 protected:
  std::vector<tensor::Tensor> params_;
  float lr_;
};

/// Plain SGD with optional momentum.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> params, float lr, float momentum = 0.0f);
  void step() override;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

  std::int64_t steps_taken() const { return t_; }

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::int64_t t_ = 0;
  std::vector<std::vector<float>> m_;
  std::vector<std::vector<float>> v_;
};

// ---- learning-rate schedules -----------------------------------------------

/// Interface: maps a 0-based step index to a learning rate.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual float lr_at(std::int64_t step) const = 0;

  /// Convenience: sets `opt`'s lr for `step`.
  void apply(Optimizer& opt, std::int64_t step) const { opt.set_lr(lr_at(step)); }
};

class ConstantLr : public LrSchedule {
 public:
  explicit ConstantLr(float lr) : lr_(lr) {}
  float lr_at(std::int64_t) const override { return lr_; }

 private:
  float lr_;
};

/// Multiplies by `gamma` every `step_size` steps.
class StepDecayLr : public LrSchedule {
 public:
  StepDecayLr(float base_lr, std::int64_t step_size, float gamma);
  float lr_at(std::int64_t step) const override;

 private:
  float base_lr_;
  std::int64_t step_size_;
  float gamma_;
};

/// Linear warmup to base_lr over `warmup` steps, then linear decay to zero
/// at `total` steps (the schedule BERT pretraining uses).
class WarmupLinearLr : public LrSchedule {
 public:
  WarmupLinearLr(float base_lr, std::int64_t warmup, std::int64_t total);
  float lr_at(std::int64_t step) const override;

 private:
  float base_lr_;
  std::int64_t warmup_;
  std::int64_t total_;
};

}  // namespace cppflare::optim
