// The paper's "recursive" model: embedding -> 3-layer LSTM -> linear head
// reading the last valid hidden state of each sequence.
#pragma once

#include <memory>

#include "models/classifier.h"
#include "nn/layers.h"
#include "nn/gru.h"
#include "nn/lstm.h"

namespace cppflare::models {

class LstmClassifier : public SequenceClassifier {
 public:
  LstmClassifier(const ModelConfig& config, core::Rng& rng);

  tensor::Tensor class_logits(const data::Batch& batch, core::Rng& rng) const override;
  const ModelConfig& config() const override { return config_; }

 private:
  ModelConfig config_;
  std::shared_ptr<nn::Embedding> emb_;
  std::shared_ptr<nn::Lstm> lstm_;
  std::shared_ptr<nn::Linear> head_;
};

/// GRU counterpart of LstmClassifier (extension beyond the paper).
class GruClassifier : public SequenceClassifier {
 public:
  GruClassifier(const ModelConfig& config, core::Rng& rng);

  tensor::Tensor class_logits(const data::Batch& batch, core::Rng& rng) const override;
  const ModelConfig& config() const override { return config_; }

 private:
  ModelConfig config_;
  std::shared_ptr<nn::Embedding> emb_;
  std::shared_ptr<nn::Gru> gru_;
  std::shared_ptr<nn::Linear> head_;
};

/// Builds the classifier matching `config.kind` (Table II spec).
std::shared_ptr<SequenceClassifier> make_classifier(const ModelConfig& config,
                                                    core::Rng& rng);

}  // namespace cppflare::models
