// Model hyperparameters for the three NLP models of Table II.
//
// | Spec                  | BERT | BERT-mini | LSTM |
// | hidden dimension      | 128  | 50        | 128  |
// | # of attention heads  | 6    | 2         | -    |
// | # of hidden layers    | 12   | 6         | 3    |
//
// The per-head dimension follows the x-transformers convention of being
// decoupled from the model width (ceil(hidden/heads)), which also handles
// BERT's 128/6 non-divisible pairing.
#pragma once

#include <cstdint>
#include <string>

#include "core/error.h"

namespace cppflare::models {

enum class ModelKind { kBert, kBertMini, kLstm, kGru };

struct ModelConfig {
  ModelKind kind = ModelKind::kBert;
  std::string name = "bert";
  std::int64_t vocab_size = 0;
  std::int64_t max_seq_len = 0;
  std::int64_t hidden = 128;
  std::int64_t heads = 6;      // 0 for LSTM
  std::int64_t layers = 12;
  std::int64_t head_dim = 22;  // ceil(hidden / heads)
  std::int64_t ffn_dim = 512;  // 4 * hidden
  float dropout = 0.1f;
  std::int64_t num_classes = 2;  // ADR binary classification

  static ModelConfig bert(std::int64_t vocab_size, std::int64_t max_seq_len);
  static ModelConfig bert_mini(std::int64_t vocab_size, std::int64_t max_seq_len);
  static ModelConfig lstm(std::int64_t vocab_size, std::int64_t max_seq_len);
  /// Extension beyond the paper: a GRU with the LSTM's dimensions, for the
  /// recursive-model comparisons the paper lists as future work.
  static ModelConfig gru(std::int64_t vocab_size, std::int64_t max_seq_len);

  /// Lookup by the names used in benches/configs: "bert", "bert-mini",
  /// "lstm", "gru". Throws ConfigError for anything else.
  static ModelConfig by_name(const std::string& name, std::int64_t vocab_size,
                             std::int64_t max_seq_len);
};

}  // namespace cppflare::models
