// Common interface for the paper's sequence classifiers (BERT, BERT-mini,
// LSTM). Trainers and federated learners program against this interface, so
// the same training loop serves every model/scheme combination in Table III.
#pragma once

#include "core/rng.h"
#include "data/dataset.h"
#include "models/model_config.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace cppflare::models {

class SequenceClassifier : public nn::Module {
 public:
  /// Class logits [B, num_classes] for a collated batch. `rng` drives
  /// dropout; switch the module to eval mode for deterministic inference.
  virtual tensor::Tensor class_logits(const data::Batch& batch,
                                      core::Rng& rng) const = 0;

  virtual const ModelConfig& config() const = 0;
};

}  // namespace cppflare::models
