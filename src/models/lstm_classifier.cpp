#include "models/lstm_classifier.h"

#include "models/bert.h"
#include "tensor/ops.h"

namespace cppflare::models {

using tensor::Tensor;

LstmClassifier::LstmClassifier(const ModelConfig& config, core::Rng& rng)
    : config_(config) {
  if (config_.vocab_size <= 0) throw ConfigError("LstmClassifier: vocab_size unset");
  // PyTorch's nn.Embedding initializes N(0,1); the recurrent models train
  // their embeddings from scratch and need that scale to propagate signal
  // (BERT keeps its conventional 0.02 because it pairs with LayerNorm).
  emb_ = register_module<nn::Embedding>("emb", config_.vocab_size, config_.hidden,
                                        rng, /*init_stddev=*/1.0f);
  lstm_ = register_module<nn::Lstm>("lstm", config_.hidden, config_.hidden,
                                    config_.layers, config_.dropout, rng);
  head_ = register_module<nn::Linear>("head", config_.hidden, config_.num_classes,
                                      rng);
}

Tensor LstmClassifier::class_logits(const data::Batch& batch, core::Rng& rng) const {
  using namespace tensor;
  Tensor x = emb_->forward(batch.ids);
  x = reshape(x, {batch.batch_size, batch.seq_len, config_.hidden});
  Tensor h = lstm_->forward(x, rng);  // [B, T, H]
  // Read each sequence's last valid state (padding carries no information).
  std::vector<std::int64_t> last(batch.lengths.size());
  for (std::size_t i = 0; i < batch.lengths.size(); ++i) {
    last[i] = std::max<std::int64_t>(batch.lengths[i] - 1, 0);
  }
  return head_->forward(gather_dim1(h, last));
}

GruClassifier::GruClassifier(const ModelConfig& config, core::Rng& rng)
    : config_(config) {
  if (config_.vocab_size <= 0) throw ConfigError("GruClassifier: vocab_size unset");
  emb_ = register_module<nn::Embedding>("emb", config_.vocab_size, config_.hidden,
                                        rng, /*init_stddev=*/1.0f);
  gru_ = register_module<nn::Gru>("gru", config_.hidden, config_.hidden,
                                  config_.layers, config_.dropout, rng);
  head_ = register_module<nn::Linear>("head", config_.hidden, config_.num_classes,
                                      rng);
}

Tensor GruClassifier::class_logits(const data::Batch& batch, core::Rng& rng) const {
  using namespace tensor;
  Tensor x = emb_->forward(batch.ids);
  x = reshape(x, {batch.batch_size, batch.seq_len, config_.hidden});
  Tensor h = gru_->forward(x, rng);
  std::vector<std::int64_t> last(batch.lengths.size());
  for (std::size_t i = 0; i < batch.lengths.size(); ++i) {
    last[i] = std::max<std::int64_t>(batch.lengths[i] - 1, 0);
  }
  return head_->forward(gather_dim1(h, last));
}

std::shared_ptr<SequenceClassifier> make_classifier(const ModelConfig& config,
                                                    core::Rng& rng) {
  switch (config.kind) {
    case ModelKind::kBert:
    case ModelKind::kBertMini:
      return std::make_shared<BertForClassification>(config, rng);
    case ModelKind::kLstm:
      return std::make_shared<LstmClassifier>(config, rng);
    case ModelKind::kGru:
      return std::make_shared<GruClassifier>(config, rng);
  }
  throw ConfigError("make_classifier: unknown model kind");
}

}  // namespace cppflare::models
