#include "models/model_config.h"

namespace cppflare::models {

namespace {
std::int64_t ceil_div(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }
}  // namespace

ModelConfig ModelConfig::bert(std::int64_t vocab_size, std::int64_t max_seq_len) {
  ModelConfig c;
  c.kind = ModelKind::kBert;
  c.name = "bert";
  c.vocab_size = vocab_size;
  c.max_seq_len = max_seq_len;
  c.hidden = 128;
  c.heads = 6;
  c.layers = 12;
  c.head_dim = ceil_div(c.hidden, c.heads);
  c.ffn_dim = 4 * c.hidden;
  return c;
}

ModelConfig ModelConfig::bert_mini(std::int64_t vocab_size, std::int64_t max_seq_len) {
  ModelConfig c;
  c.kind = ModelKind::kBertMini;
  c.name = "bert-mini";
  c.vocab_size = vocab_size;
  c.max_seq_len = max_seq_len;
  c.hidden = 50;
  c.heads = 2;
  c.layers = 6;
  c.head_dim = ceil_div(c.hidden, c.heads);
  c.ffn_dim = 4 * c.hidden;
  return c;
}

ModelConfig ModelConfig::lstm(std::int64_t vocab_size, std::int64_t max_seq_len) {
  ModelConfig c;
  c.kind = ModelKind::kLstm;
  c.name = "lstm";
  c.vocab_size = vocab_size;
  c.max_seq_len = max_seq_len;
  c.hidden = 128;
  c.heads = 0;
  c.layers = 3;
  c.head_dim = 0;
  c.ffn_dim = 0;
  return c;
}

ModelConfig ModelConfig::gru(std::int64_t vocab_size, std::int64_t max_seq_len) {
  ModelConfig c = lstm(vocab_size, max_seq_len);
  c.kind = ModelKind::kGru;
  c.name = "gru";
  return c;
}

ModelConfig ModelConfig::by_name(const std::string& name, std::int64_t vocab_size,
                                 std::int64_t max_seq_len) {
  if (name == "bert") return bert(vocab_size, max_seq_len);
  if (name == "bert-mini") return bert_mini(vocab_size, max_seq_len);
  if (name == "lstm") return lstm(vocab_size, max_seq_len);
  if (name == "gru") return gru(vocab_size, max_seq_len);
  throw ConfigError("unknown model '" + name +
                    "' (expected bert|bert-mini|lstm|gru)");
}

}  // namespace cppflare::models
