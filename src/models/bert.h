// BERT-style bidirectional transformer encoder with MLM-pretraining and
// sequence-classification heads.
#pragma once

#include <memory>

#include "data/dataset.h"
#include "data/mlm.h"
#include "models/classifier.h"
#include "models/model_config.h"
#include "nn/lstm.h"
#include "nn/transformer.h"

namespace cppflare::models {

/// Token + learned positional embeddings, embedding LayerNorm/dropout, and a
/// stack of post-LN encoder layers.
class BertEncoder : public nn::Module {
 public:
  BertEncoder(const ModelConfig& config, core::Rng& rng);

  /// ids: flattened [B*T]; lengths: [B]. Returns hidden states [B, T, H].
  tensor::Tensor encode(const std::vector<std::int64_t>& ids,
                        const std::vector<std::int64_t>& lengths,
                        std::int64_t batch_size, std::int64_t seq_len,
                        core::Rng& rng) const;

  const ModelConfig& config() const { return config_; }

 private:
  ModelConfig config_;
  std::shared_ptr<nn::Embedding> tok_emb_;
  std::shared_ptr<nn::Embedding> pos_emb_;
  std::shared_ptr<nn::LayerNorm> emb_ln_;
  std::vector<std::shared_ptr<nn::TransformerEncoderLayer>> layers_;
};

/// Encoder + vocabulary projection, trained with the masked-LM objective.
class BertForPretraining : public nn::Module {
 public:
  BertForPretraining(const ModelConfig& config, core::Rng& rng);

  /// Mean MLM cross-entropy over the masked positions of the batch.
  tensor::Tensor mlm_loss(const data::MlmMasker::MaskedBatch& batch,
                          core::Rng& rng) const;

  /// The shared encoder (e.g. to transplant into a classifier after
  /// pretraining).
  const std::shared_ptr<BertEncoder>& encoder() const { return encoder_; }

 private:
  std::shared_ptr<BertEncoder> encoder_;
  std::shared_ptr<nn::Linear> mlm_head_;
};

/// Encoder + [CLS] pooler + binary classification head (ADR detection).
class BertForClassification : public SequenceClassifier {
 public:
  BertForClassification(const ModelConfig& config, core::Rng& rng);

  tensor::Tensor class_logits(const data::Batch& batch, core::Rng& rng) const override;
  const ModelConfig& config() const override { return encoder_->config(); }

  /// Copies encoder parameters from a pretrained model (the fine-tuning
  /// path of the paper's pipeline). Head parameters stay freshly
  /// initialized.
  void load_encoder_from(const BertForPretraining& pretrained);

 private:
  std::shared_ptr<BertEncoder> encoder_;
  std::shared_ptr<nn::Linear> pooler_;
  std::shared_ptr<nn::Linear> head_;
};

}  // namespace cppflare::models
