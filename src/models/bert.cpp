#include "models/bert.h"

#include "tensor/ops.h"

namespace cppflare::models {

using tensor::Tensor;

BertEncoder::BertEncoder(const ModelConfig& config, core::Rng& rng)
    : config_(config) {
  if (config_.vocab_size <= 0 || config_.max_seq_len <= 0) {
    throw ConfigError("BertEncoder: vocab_size and max_seq_len must be set");
  }
  tok_emb_ = register_module<nn::Embedding>("tok_emb", config_.vocab_size,
                                            config_.hidden, rng);
  pos_emb_ = register_module<nn::Embedding>("pos_emb", config_.max_seq_len,
                                            config_.hidden, rng);
  emb_ln_ = register_module<nn::LayerNorm>("emb_ln", config_.hidden);
  layers_.reserve(static_cast<std::size_t>(config_.layers));
  for (std::int64_t l = 0; l < config_.layers; ++l) {
    layers_.push_back(register_module<nn::TransformerEncoderLayer>(
        "layer" + std::to_string(l), config_.hidden, config_.heads,
        config_.head_dim, config_.ffn_dim, config_.dropout, rng));
  }
}

Tensor BertEncoder::encode(const std::vector<std::int64_t>& ids,
                           const std::vector<std::int64_t>& lengths,
                           std::int64_t batch_size, std::int64_t seq_len,
                           core::Rng& rng) const {
  using namespace tensor;
  if (static_cast<std::int64_t>(ids.size()) != batch_size * seq_len) {
    throw ShapeError("BertEncoder::encode: ids size mismatch");
  }
  if (seq_len > config_.max_seq_len) {
    throw ShapeError("BertEncoder::encode: seq_len " + std::to_string(seq_len) +
                     " exceeds max " + std::to_string(config_.max_seq_len));
  }

  std::vector<std::int64_t> pos_ids(ids.size());
  for (std::int64_t b = 0; b < batch_size; ++b) {
    for (std::int64_t t = 0; t < seq_len; ++t) {
      pos_ids[static_cast<std::size_t>(b * seq_len + t)] = t;
    }
  }

  Tensor x = add(tok_emb_->forward(ids), pos_emb_->forward(pos_ids));
  x = emb_ln_->forward(x);
  const float p = effective_dropout(config_.dropout);
  if (p > 0.0f) x = dropout(x, p, rng);
  x = reshape(x, {batch_size, seq_len, config_.hidden});

  const Tensor mask = nn::make_padding_mask(lengths, seq_len, config_.heads);
  for (const auto& layer : layers_) x = layer->forward(x, mask, rng);
  return x;
}

BertForPretraining::BertForPretraining(const ModelConfig& config, core::Rng& rng) {
  encoder_ = register_module<BertEncoder>("encoder", config, rng);
  mlm_head_ = register_module<nn::Linear>("mlm_head", config.hidden,
                                          config.vocab_size, rng);
}

Tensor BertForPretraining::mlm_loss(const data::MlmMasker::MaskedBatch& batch,
                                    core::Rng& rng) const {
  using namespace tensor;
  const auto& cfg = encoder_->config();
  Tensor h = encoder_->encode(batch.input_ids, batch.lengths, batch.batch_size,
                              batch.seq_len, rng);
  h = reshape(h, {batch.batch_size * batch.seq_len, cfg.hidden});
  const Tensor logits = mlm_head_->forward(h);
  return cross_entropy(logits, batch.targets, data::MlmMasker::kIgnore);
}

BertForClassification::BertForClassification(const ModelConfig& config,
                                             core::Rng& rng) {
  encoder_ = register_module<BertEncoder>("encoder", config, rng);
  pooler_ = register_module<nn::Linear>("pooler", config.hidden, config.hidden, rng);
  head_ = register_module<nn::Linear>("head", config.hidden, config.num_classes, rng);
}

Tensor BertForClassification::class_logits(const data::Batch& batch,
                                           core::Rng& rng) const {
  using namespace tensor;
  Tensor h = encoder_->encode(batch.ids, batch.lengths, batch.batch_size,
                              batch.seq_len, rng);
  // BERT pooling: the [CLS] position (index 0) through a tanh projection.
  Tensor cls = select_dim1(h, 0);
  cls = tanh_op(pooler_->forward(cls));
  return head_->forward(cls);
}

void BertForClassification::load_encoder_from(const BertForPretraining& pretrained) {
  // Encoder parameter names line up one-to-one between the two models
  // ("encoder.*"); copy those and leave pooler/head at fresh init.
  const nn::StateDict src = pretrained.state_dict();
  auto named = named_parameters();
  for (auto& [name, t] : named) {
    if (name.rfind("encoder.", 0) != 0) continue;
    const nn::ParamBlob& blob = src.at(name);
    if (blob.shape != t.shape()) {
      throw Error("load_encoder_from: shape mismatch for '" + name + "'");
    }
    t.vec() = blob.values;
  }
}

}  // namespace cppflare::models
