#include "nn/module.h"

#include <algorithm>

#include "core/error.h"

namespace cppflare::nn {

std::vector<tensor::Tensor> Module::parameters() const {
  std::vector<tensor::Tensor> out;
  for (const auto& [name, t] : named_parameters()) out.push_back(t);
  return out;
}

std::vector<std::pair<std::string, tensor::Tensor>> Module::named_parameters() const {
  std::vector<std::pair<std::string, tensor::Tensor>> out;
  collect("", out);
  return out;
}

void Module::collect(const std::string& prefix,
                     std::vector<std::pair<std::string, tensor::Tensor>>& out) const {
  for (const auto& [name, t] : params_) {
    out.emplace_back(prefix.empty() ? name : prefix + "." + name, t);
  }
  for (const auto& [name, child] : children_) {
    child->collect(prefix.empty() ? name : prefix + "." + name, out);
  }
}

std::int64_t Module::num_parameters() const {
  std::int64_t n = 0;
  for (const auto& t : parameters()) n += t.numel();
  return n;
}

StateDict Module::state_dict() const {
  StateDict dict;
  for (const auto& [name, t] : named_parameters()) {
    ParamBlob blob;
    blob.shape = t.shape();
    blob.values = t.vec();
    dict.insert(name, std::move(blob));
  }
  return dict;
}

void Module::load_state_dict(const StateDict& dict) {
  auto named = named_parameters();
  if (dict.size() != named.size()) {
    throw Error("load_state_dict: dict has " + std::to_string(dict.size()) +
                " entries, model has " + std::to_string(named.size()));
  }
  for (auto& [name, t] : named) {
    const ParamBlob& blob = dict.at(name);
    if (blob.shape != t.shape()) {
      throw Error("load_state_dict: shape mismatch for '" + name + "': " +
                  tensor::shape_to_string(blob.shape) + " vs " +
                  tensor::shape_to_string(t.shape()));
    }
    t.vec() = blob.values;
  }
}

void Module::zero_grad() {
  for (auto& t : parameters()) t.zero_grad();
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

tensor::Tensor& Module::register_parameter(const std::string& name, tensor::Tensor t) {
  if (!t.requires_grad()) {
    throw Error("register_parameter('" + name + "'): tensor must require grad");
  }
  params_.emplace_back(name, std::move(t));
  return params_.back().second;
}

void Module::register_child(const std::string& name, std::shared_ptr<Module> child) {
  children_.emplace_back(name, std::move(child));
}

void init_normal(tensor::Tensor& t, core::Rng& rng, float stddev) {
  for (float& v : t.vec()) v = static_cast<float>(rng.normal(0.0, stddev));
}

void init_uniform(tensor::Tensor& t, core::Rng& rng, float bound) {
  for (float& v : t.vec()) v = static_cast<float>(rng.uniform(-bound, bound));
}

void init_zeros(tensor::Tensor& t) {
  std::fill(t.vec().begin(), t.vec().end(), 0.0f);
}

void init_constant(tensor::Tensor& t, float value) {
  std::fill(t.vec().begin(), t.vec().end(), value);
}

}  // namespace cppflare::nn
