#include "nn/layers.h"

namespace cppflare::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, core::Rng& rng,
               bool bias, float init_stddev)
    : in_(in_features), out_(out_features) {
  tensor::Tensor w = tensor::Tensor::zeros({out_features, in_features}, true);
  init_normal(w, rng, init_stddev);
  weight_ = register_parameter("weight", std::move(w));
  if (bias) {
    tensor::Tensor b = tensor::Tensor::zeros({out_features}, true);
    bias_ = register_parameter("bias", std::move(b));
  }
}

tensor::Tensor Linear::forward(const tensor::Tensor& x) const {
  return tensor::linear(x, weight_, bias_);
}

Embedding::Embedding(std::int64_t vocab, std::int64_t hidden, core::Rng& rng,
                     float init_stddev)
    : vocab_(vocab), hidden_(hidden) {
  tensor::Tensor w = tensor::Tensor::zeros({vocab, hidden}, true);
  init_normal(w, rng, init_stddev);
  weight_ = register_parameter("weight", std::move(w));
}

tensor::Tensor Embedding::forward(const std::vector<std::int64_t>& ids) const {
  return tensor::embedding(weight_, ids);
}

LayerNorm::LayerNorm(std::int64_t hidden, float eps) : eps_(eps) {
  tensor::Tensor g = tensor::Tensor::zeros({hidden}, true);
  init_constant(g, 1.0f);
  gamma_ = register_parameter("gamma", std::move(g));
  tensor::Tensor b = tensor::Tensor::zeros({hidden}, true);
  beta_ = register_parameter("beta", std::move(b));
}

tensor::Tensor LayerNorm::forward(const tensor::Tensor& x) const {
  return tensor::layer_norm(x, gamma_, beta_, eps_);
}

}  // namespace cppflare::nn
