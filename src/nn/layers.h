// Elementary trainable layers: Linear, Embedding, LayerNorm.
#pragma once

#include "nn/module.h"
#include "tensor/ops.h"

namespace cppflare::nn {

/// Affine layer, y = x W^T + b, PyTorch weight layout [out, in].
class Linear : public Module {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, core::Rng& rng,
         bool bias = true, float init_stddev = 0.02f);

  /// x: [M, in] -> [M, out]
  tensor::Tensor forward(const tensor::Tensor& x) const;

  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

 private:
  std::int64_t in_;
  std::int64_t out_;
  tensor::Tensor weight_;
  tensor::Tensor bias_;  // undefined when bias == false
};

/// Token embedding table [vocab, hidden].
class Embedding : public Module {
 public:
  Embedding(std::int64_t vocab, std::int64_t hidden, core::Rng& rng,
            float init_stddev = 0.02f);

  /// ids (length N) -> [N, hidden]
  tensor::Tensor forward(const std::vector<std::int64_t>& ids) const;

  std::int64_t vocab() const { return vocab_; }
  std::int64_t hidden() const { return hidden_; }

 private:
  std::int64_t vocab_;
  std::int64_t hidden_;
  tensor::Tensor weight_;
};

/// Layer normalization over the last axis with learnable gain/offset.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(std::int64_t hidden, float eps = 1e-5f);

  tensor::Tensor forward(const tensor::Tensor& x) const;

 private:
  float eps_;
  tensor::Tensor gamma_;
  tensor::Tensor beta_;
};

}  // namespace cppflare::nn
