#include "nn/transformer.h"

#include <cmath>

#include "tensor/backend.h"

namespace cppflare::nn {

using tensor::Tensor;

tensor::Tensor make_padding_mask(const std::vector<std::int64_t>& lengths,
                                 std::int64_t seq_len, std::int64_t heads) {
  const std::int64_t b = static_cast<std::int64_t>(lengths.size());
  Tensor mask = Tensor::zeros({b * heads, seq_len, seq_len}, false);
  float* m = mask.data();
  const std::int64_t* len = lengths.data();
  constexpr float kNegInf = -1e9f;
  // [B*heads] planes are disjoint writes; plane bi*heads+h masks keys past
  // lengths[bi].
  tensor::backend::parallel_rows(
      b * heads, seq_len * seq_len, [=](std::int64_t p0, std::int64_t p1) {
        for (std::int64_t pi = p0; pi < p1; ++pi) {
          const std::int64_t valid = std::min(len[pi / heads], seq_len);
          float* plane = m + pi * seq_len * seq_len;
          for (std::int64_t q = 0; q < seq_len; ++q) {
            for (std::int64_t k = valid; k < seq_len; ++k) {
              plane[q * seq_len + k] = kNegInf;
            }
          }
        }
      });
  return mask;
}

MultiHeadSelfAttention::MultiHeadSelfAttention(std::int64_t hidden,
                                               std::int64_t heads,
                                               std::int64_t head_dim,
                                               float dropout_p, core::Rng& rng)
    : hidden_(hidden), heads_(heads), head_dim_(head_dim), dropout_p_(dropout_p) {
  const std::int64_t inner = heads * head_dim;
  wq_ = register_module<Linear>("wq", hidden, inner, rng);
  wk_ = register_module<Linear>("wk", hidden, inner, rng);
  wv_ = register_module<Linear>("wv", hidden, inner, rng);
  wo_ = register_module<Linear>("wo", inner, hidden, rng);
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x, const Tensor& mask,
                                       core::Rng& rng) const {
  using namespace tensor;
  const std::int64_t b = x.size(0), t = x.size(1), h = x.size(2);
  if (h != hidden_) {
    throw ShapeError("attention: input hidden " + std::to_string(h) + " vs " +
                     std::to_string(hidden_));
  }
  const std::int64_t inner = heads_ * head_dim_;

  // Project as one flat [B*T, hidden] matrix, then split heads.
  const Tensor flat = reshape(x, {b * t, h});
  auto split_heads = [&](const Tensor& proj) {
    // [B*T, inner] -> [B, T, heads, dh] -> [B, heads, T, dh] -> [B*heads, T, dh]
    Tensor y = reshape(proj, {b, t, heads_, head_dim_});
    y = permute(y, {0, 2, 1, 3});
    return reshape(y, {b * heads_, t, head_dim_});
  };
  const Tensor q = split_heads(wq_->forward(flat));
  const Tensor k = split_heads(wk_->forward(flat));
  const Tensor v = split_heads(wv_->forward(flat));

  Tensor scores = mul_scalar(bmm_nt(q, k),
                             1.0f / std::sqrt(static_cast<float>(head_dim_)));
  if (mask.defined()) scores = add(scores, mask);
  Tensor attn = softmax_lastdim(scores);
  const float p = effective_dropout(dropout_p_);
  if (p > 0.0f) attn = dropout(attn, p, rng);

  Tensor ctx = bmm(attn, v);  // [B*heads, T, dh]
  ctx = reshape(ctx, {b, heads_, t, head_dim_});
  ctx = permute(ctx, {0, 2, 1, 3});  // [B, T, heads, dh]
  ctx = reshape(ctx, {b * t, inner});
  return reshape(wo_->forward(ctx), {b, t, hidden_});
}

TransformerEncoderLayer::TransformerEncoderLayer(std::int64_t hidden,
                                                 std::int64_t heads,
                                                 std::int64_t head_dim,
                                                 std::int64_t ffn_dim,
                                                 float dropout_p, core::Rng& rng)
    : dropout_p_(dropout_p) {
  attn_ = register_module<MultiHeadSelfAttention>("attn", hidden, heads, head_dim,
                                                  dropout_p, rng);
  ln1_ = register_module<LayerNorm>("ln1", hidden);
  ln2_ = register_module<LayerNorm>("ln2", hidden);
  ffn_in_ = register_module<Linear>("ffn_in", hidden, ffn_dim, rng);
  ffn_out_ = register_module<Linear>("ffn_out", ffn_dim, hidden, rng);
}

Tensor TransformerEncoderLayer::forward(const Tensor& x, const Tensor& mask,
                                        core::Rng& rng) const {
  using namespace tensor;
  const std::int64_t b = x.size(0), t = x.size(1), h = x.size(2);
  const float p = effective_dropout(dropout_p_);

  Tensor attn_out = attn_->forward(x, mask, rng);
  if (p > 0.0f) attn_out = dropout(attn_out, p, rng);
  Tensor y = ln1_->forward(add(x, attn_out));

  Tensor ff = reshape(y, {b * t, h});
  ff = ffn_in_->forward(ff);
  ff = gelu(ff);
  ff = ffn_out_->forward(ff);
  ff = reshape(ff, {b, t, h});
  if (p > 0.0f) ff = dropout(ff, p, rng);
  return ln2_->forward(add(y, ff));
}

}  // namespace cppflare::nn
