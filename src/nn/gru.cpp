#include "nn/gru.h"

#include <cmath>

namespace cppflare::nn {

using tensor::Tensor;

GruLayer::GruLayer(std::int64_t input_dim, std::int64_t hidden_dim, core::Rng& rng)
    : hidden_(hidden_dim) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
  auto make = [&](tensor::Shape shape) {
    Tensor t = Tensor::zeros(std::move(shape), true);
    init_uniform(t, rng, bound);
    return t;
  };
  w_ih_ = register_parameter("w_ih", make({3 * hidden_dim, input_dim}));
  w_hh_ = register_parameter("w_hh", make({3 * hidden_dim, hidden_dim}));
  b_ih_ = register_parameter("b_ih", make({3 * hidden_dim}));
  b_hh_ = register_parameter("b_hh", make({3 * hidden_dim}));
}

Tensor GruLayer::step(const Tensor& x_t, const Tensor& h) const {
  using namespace tensor;
  const std::int64_t hd = hidden_;
  const Tensor gi = linear(x_t, w_ih_, b_ih_);
  const Tensor gh = linear(h, w_hh_, b_hh_);
  const Tensor r = sigmoid(add(slice_cols(gi, 0, hd), slice_cols(gh, 0, hd)));
  const Tensor z = sigmoid(add(slice_cols(gi, hd, hd), slice_cols(gh, hd, hd)));
  const Tensor n =
      tanh_op(add(slice_cols(gi, 2 * hd, hd), mul(r, slice_cols(gh, 2 * hd, hd))));
  // h' = (1 - z) * n + z * h  ==  n + z * (h - n)
  return add(n, mul(z, sub(h, n)));
}

Gru::Gru(std::int64_t input_dim, std::int64_t hidden_dim, std::int64_t num_layers,
         float dropout_p, core::Rng& rng)
    : hidden_(hidden_dim), dropout_p_(dropout_p) {
  if (num_layers < 1) throw Error("Gru: need at least one layer");
  layers_.reserve(static_cast<std::size_t>(num_layers));
  for (std::int64_t l = 0; l < num_layers; ++l) {
    const std::int64_t in = l == 0 ? input_dim : hidden_dim;
    layers_.push_back(
        register_module<GruLayer>("layer" + std::to_string(l), in, hidden_dim, rng));
  }
}

Tensor Gru::forward(const Tensor& x, core::Rng& rng) const {
  using namespace tensor;
  const std::int64_t b = x.size(0), t = x.size(1);
  const float p = effective_dropout(dropout_p_);

  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(t));
  for (std::int64_t ti = 0; ti < t; ++ti) inputs.push_back(select_dim1(x, ti));

  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Tensor h = Tensor::zeros({b, hidden_}, false);
    std::vector<Tensor> outputs;
    outputs.reserve(inputs.size());
    for (const Tensor& x_t : inputs) {
      h = layers_[l]->step(x_t, h);
      outputs.push_back(h);
    }
    if (p > 0.0f && l + 1 < layers_.size()) {
      for (Tensor& o : outputs) o = dropout(o, p, rng);
    }
    inputs = std::move(outputs);
  }
  return stack_dim1(inputs);
}

}  // namespace cppflare::nn
