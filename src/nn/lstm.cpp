#include "nn/lstm.h"

#include <cmath>

namespace cppflare::nn {

using tensor::Tensor;

LstmLayer::LstmLayer(std::int64_t input_dim, std::int64_t hidden_dim, core::Rng& rng)
    : hidden_(hidden_dim) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
  auto make = [&](tensor::Shape shape) {
    Tensor t = Tensor::zeros(std::move(shape), true);
    init_uniform(t, rng, bound);
    return t;
  };
  w_ih_ = register_parameter("w_ih", make({4 * hidden_dim, input_dim}));
  w_hh_ = register_parameter("w_hh", make({4 * hidden_dim, hidden_dim}));
  b_ih_ = register_parameter("b_ih", make({4 * hidden_dim}));
  b_hh_ = register_parameter("b_hh", make({4 * hidden_dim}));
}

std::pair<Tensor, Tensor> LstmLayer::step(const Tensor& x_t, const Tensor& h,
                                          const Tensor& c) const {
  using namespace tensor;
  const std::int64_t hd = hidden_;
  Tensor gates = add(linear(x_t, w_ih_, b_ih_), linear(h, w_hh_, b_hh_));
  const Tensor i = sigmoid(slice_cols(gates, 0, hd));
  const Tensor f = sigmoid(slice_cols(gates, hd, hd));
  const Tensor g = tanh_op(slice_cols(gates, 2 * hd, hd));
  const Tensor o = sigmoid(slice_cols(gates, 3 * hd, hd));
  Tensor c_new = add(mul(f, c), mul(i, g));
  Tensor h_new = mul(o, tanh_op(c_new));
  return {std::move(h_new), std::move(c_new)};
}

Lstm::Lstm(std::int64_t input_dim, std::int64_t hidden_dim, std::int64_t num_layers,
           float dropout_p, core::Rng& rng)
    : hidden_(hidden_dim), dropout_p_(dropout_p) {
  if (num_layers < 1) throw Error("Lstm: need at least one layer");
  layers_.reserve(static_cast<std::size_t>(num_layers));
  for (std::int64_t l = 0; l < num_layers; ++l) {
    const std::int64_t in = l == 0 ? input_dim : hidden_dim;
    layers_.push_back(
        register_module<LstmLayer>("layer" + std::to_string(l), in, hidden_dim, rng));
  }
}

Tensor Lstm::forward(const Tensor& x, core::Rng& rng) const {
  using namespace tensor;
  const std::int64_t b = x.size(0), t = x.size(1);
  const float p = effective_dropout(dropout_p_);

  // Pre-slice the input once per timestep.
  std::vector<Tensor> inputs;
  inputs.reserve(static_cast<std::size_t>(t));
  for (std::int64_t ti = 0; ti < t; ++ti) inputs.push_back(select_dim1(x, ti));

  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Tensor h = Tensor::zeros({b, hidden_}, false);
    Tensor c = Tensor::zeros({b, hidden_}, false);
    std::vector<Tensor> outputs;
    outputs.reserve(inputs.size());
    for (const Tensor& x_t : inputs) {
      auto [h_new, c_new] = layers_[l]->step(x_t, h, c);
      h = h_new;
      c = c_new;
      outputs.push_back(h);
    }
    if (p > 0.0f && l + 1 < layers_.size()) {
      for (Tensor& o : outputs) o = dropout(o, p, rng);
    }
    inputs = std::move(outputs);
  }
  return stack_dim1(inputs);
}

}  // namespace cppflare::nn
