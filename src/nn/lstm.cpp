#include "nn/lstm.h"

#include <cmath>

namespace cppflare::nn {

using tensor::Tensor;

LstmLayer::LstmLayer(std::int64_t input_dim, std::int64_t hidden_dim, core::Rng& rng)
    : hidden_(hidden_dim) {
  const float bound = 1.0f / std::sqrt(static_cast<float>(hidden_dim));
  auto make = [&](tensor::Shape shape) {
    Tensor t = Tensor::zeros(std::move(shape), true);
    init_uniform(t, rng, bound);
    return t;
  };
  w_ih_ = register_parameter("w_ih", make({4 * hidden_dim, input_dim}));
  w_hh_ = register_parameter("w_hh", make({4 * hidden_dim, hidden_dim}));
  b_ih_ = register_parameter("b_ih", make({4 * hidden_dim}));
  b_hh_ = register_parameter("b_hh", make({4 * hidden_dim}));
}

std::pair<Tensor, Tensor> LstmLayer::step(const Tensor& x_t, const Tensor& h,
                                          const Tensor& c) const {
  return step_premixed(tensor::linear(x_t, w_ih_, b_ih_), h, c);
}

Tensor LstmLayer::input_gates(const Tensor& x2d) const {
  return tensor::linear(x2d, w_ih_, b_ih_);
}

std::pair<Tensor, Tensor> LstmLayer::step_premixed(const Tensor& gates_x_t,
                                                   const Tensor& h,
                                                   const Tensor& c) const {
  using namespace tensor;
  const std::int64_t hd = hidden_;
  Tensor gates = add(gates_x_t, linear(h, w_hh_, b_hh_));
  const Tensor i = sigmoid(slice_cols(gates, 0, hd));
  const Tensor f = sigmoid(slice_cols(gates, hd, hd));
  const Tensor g = tanh_op(slice_cols(gates, 2 * hd, hd));
  const Tensor o = sigmoid(slice_cols(gates, 3 * hd, hd));
  Tensor c_new = add(mul(f, c), mul(i, g));
  Tensor h_new = mul(o, tanh_op(c_new));
  return {std::move(h_new), std::move(c_new)};
}

Lstm::Lstm(std::int64_t input_dim, std::int64_t hidden_dim, std::int64_t num_layers,
           float dropout_p, core::Rng& rng)
    : hidden_(hidden_dim), dropout_p_(dropout_p) {
  if (num_layers < 1) throw Error("Lstm: need at least one layer");
  layers_.reserve(static_cast<std::size_t>(num_layers));
  for (std::int64_t l = 0; l < num_layers; ++l) {
    const std::int64_t in = l == 0 ? input_dim : hidden_dim;
    layers_.push_back(
        register_module<LstmLayer>("layer" + std::to_string(l), in, hidden_dim, rng));
  }
}

Tensor Lstm::forward(const Tensor& x, core::Rng& rng) const {
  using namespace tensor;
  const std::int64_t b = x.size(0), t = x.size(1);
  const float p = effective_dropout(dropout_p_);

  // Each layer projects its whole input sequence through W_ih in one batched
  // [B*T, 4H] GEMM (the compute backend parallelizes across rows), then the
  // inherently sequential recurrence consumes one pre-mixed gate slice per
  // step. Per-row results match the per-step projection exactly.
  Tensor cur = x;  // [B, T, in]
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const std::int64_t in = cur.size(2);
    const Tensor gates_x =
        reshape(layers_[l]->input_gates(reshape(cur, {b * t, in})),
                {b, t, 4 * hidden_});
    Tensor h = Tensor::zeros({b, hidden_}, false);
    Tensor c = Tensor::zeros({b, hidden_}, false);
    std::vector<Tensor> outputs;
    outputs.reserve(static_cast<std::size_t>(t));
    for (std::int64_t ti = 0; ti < t; ++ti) {
      auto [h_new, c_new] =
          layers_[l]->step_premixed(select_dim1(gates_x, ti), h, c);
      h = h_new;
      c = c_new;
      outputs.push_back(h);
    }
    // Dropout stays in ti order so the rng stream is consumed exactly as the
    // per-step formulation consumed it.
    if (p > 0.0f && l + 1 < layers_.size()) {
      for (Tensor& o : outputs) o = dropout(o, p, rng);
    }
    cur = stack_dim1(outputs);
  }
  return cur;
}

}  // namespace cppflare::nn
