// Multi-head self-attention and the transformer encoder layer.
//
// Following x-transformers (which the paper's software stack lists), the
// per-head dimension is decoupled from the model width: attention projects
// hidden -> heads * head_dim and back. This also accommodates Table II's
// BERT spec (hidden 128, 6 heads), where hidden is not divisible by the
// head count.
#pragma once

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace cppflare::nn {

/// Builds an additive attention mask of shape [batch*heads, seq, seq]:
/// 0 where the key position is within `lengths[b]`, -1e9 where padded.
/// The mask is a constant (no gradient).
tensor::Tensor make_padding_mask(const std::vector<std::int64_t>& lengths,
                                 std::int64_t seq_len, std::int64_t heads);

class MultiHeadSelfAttention : public Module {
 public:
  MultiHeadSelfAttention(std::int64_t hidden, std::int64_t heads,
                         std::int64_t head_dim, float dropout_p, core::Rng& rng);

  /// x: [B, T, hidden]; mask: additive [B*heads, T, T] or undefined.
  /// rng drives attention dropout (ignored in eval mode).
  tensor::Tensor forward(const tensor::Tensor& x, const tensor::Tensor& mask,
                         core::Rng& rng) const;

  std::int64_t heads() const { return heads_; }
  std::int64_t head_dim() const { return head_dim_; }

 private:
  std::int64_t hidden_;
  std::int64_t heads_;
  std::int64_t head_dim_;
  float dropout_p_;
  std::shared_ptr<Linear> wq_, wk_, wv_, wo_;
};

/// Post-LN transformer encoder layer (BERT style):
///   x = LN(x + Attn(x)); x = LN(x + FFN(x)), FFN = Linear-GELU-Linear.
class TransformerEncoderLayer : public Module {
 public:
  TransformerEncoderLayer(std::int64_t hidden, std::int64_t heads,
                          std::int64_t head_dim, std::int64_t ffn_dim,
                          float dropout_p, core::Rng& rng);

  tensor::Tensor forward(const tensor::Tensor& x, const tensor::Tensor& mask,
                         core::Rng& rng) const;

 private:
  float dropout_p_;
  std::shared_ptr<MultiHeadSelfAttention> attn_;
  std::shared_ptr<LayerNorm> ln1_, ln2_;
  std::shared_ptr<Linear> ffn_in_, ffn_out_;
};

}  // namespace cppflare::nn
