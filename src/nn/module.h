// Base class for neural network modules.
//
// A `Module` owns named parameters (autograd leaf tensors) and named child
// modules; the tree yields dotted parameter names ("encoder.layer0.attn.wq")
// used by StateDict import/export. Forward signatures are defined by each
// concrete module — there is no virtual `forward` because inputs differ
// (sequences, ids, masks); the base class only handles parameter plumbing
// and train/eval mode.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "nn/state_dict.h"
#include "tensor/tensor.h"

namespace cppflare::nn {

class Module {
 public:
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All parameters of this module and its descendants (registration order).
  std::vector<tensor::Tensor> parameters() const;

  /// Dotted-name parameter listing, e.g. {"wq", t} under "attn" becomes
  /// "attn.wq" when the parent collects it.
  std::vector<std::pair<std::string, tensor::Tensor>> named_parameters() const;

  /// Total scalar count across all parameters.
  std::int64_t num_parameters() const;

  /// Copies current parameter values into a StateDict (detached).
  StateDict state_dict() const;

  /// Loads values from `dict`; every parameter must be present with a
  /// matching shape. Extra keys in `dict` are an error (they indicate a
  /// model-config mismatch between federation participants).
  void load_state_dict(const StateDict& dict);

  /// Zeroes the gradient buffers of all parameters.
  void zero_grad();

  /// Recursively switches train/eval mode (controls dropout).
  void set_training(bool training);
  bool training() const { return training_; }

 protected:
  Module() = default;

  tensor::Tensor& register_parameter(const std::string& name, tensor::Tensor t);

  template <typename M, typename... Args>
  std::shared_ptr<M> register_module(const std::string& name, Args&&... args) {
    auto child = std::make_shared<M>(std::forward<Args>(args)...);
    children_.emplace_back(name, child);
    return child;
  }

  void register_child(const std::string& name, std::shared_ptr<Module> child);

  /// Effective dropout probability: 0 in eval mode.
  float effective_dropout(float p) const { return training_ ? p : 0.0f; }

 private:
  void collect(const std::string& prefix,
               std::vector<std::pair<std::string, tensor::Tensor>>& out) const;

  std::vector<std::pair<std::string, tensor::Tensor>> params_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
  bool training_ = true;
};

// ---- weight initializers ----------------------------------------------------
/// Fills with N(0, stddev^2); BERT-style init uses stddev = 0.02.
void init_normal(tensor::Tensor& t, core::Rng& rng, float stddev);
/// Fills with U(-bound, bound); LSTM-style init uses bound = 1/sqrt(hidden).
void init_uniform(tensor::Tensor& t, core::Rng& rng, float bound);
/// Fills with zeros.
void init_zeros(tensor::Tensor& t);
/// Fills with a constant.
void init_constant(tensor::Tensor& t, float value);

}  // namespace cppflare::nn
