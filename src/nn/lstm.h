// Multi-layer LSTM (the "recursive model" of the paper's title).
//
// Gate layout follows PyTorch: the 4*H rows of W_ih/W_hh are
// [input | forget | cell | output]. The forward unrolls over time with the
// autograd ops, so backpropagation-through-time falls out of the tape.
#pragma once

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace cppflare::nn {

/// One LSTM layer's parameters; used internally by `Lstm`.
class LstmLayer : public Module {
 public:
  LstmLayer(std::int64_t input_dim, std::int64_t hidden_dim, core::Rng& rng);

  /// One step: x_t [B, input], h/c [B, hidden] -> new (h, c).
  std::pair<tensor::Tensor, tensor::Tensor> step(const tensor::Tensor& x_t,
                                                 const tensor::Tensor& h,
                                                 const tensor::Tensor& c) const;

  /// Input-side gate pre-activations for a whole sequence at once:
  /// x2d [B*T, input] -> [B*T, 4H]. One large GEMM instead of T small ones,
  /// which is what lets the compute backend parallelize across the batch*time
  /// dimension; per-row results are identical to the per-step projection.
  tensor::Tensor input_gates(const tensor::Tensor& x2d) const;

  /// `step` with the input projection already applied: gates_x_t is the
  /// [B, 4H] slice of `input_gates` output for this timestep.
  std::pair<tensor::Tensor, tensor::Tensor> step_premixed(
      const tensor::Tensor& gates_x_t, const tensor::Tensor& h,
      const tensor::Tensor& c) const;

  std::int64_t hidden_dim() const { return hidden_; }

 private:
  std::int64_t hidden_;
  tensor::Tensor w_ih_;  // [4H, input]
  tensor::Tensor w_hh_;  // [4H, H]
  tensor::Tensor b_ih_;  // [4H]
  tensor::Tensor b_hh_;  // [4H]
};

class Lstm : public Module {
 public:
  Lstm(std::int64_t input_dim, std::int64_t hidden_dim, std::int64_t num_layers,
       float dropout_p, core::Rng& rng);

  /// x: [B, T, input] -> top-layer hidden states [B, T, hidden].
  /// Initial h/c are zero. `rng` drives inter-layer dropout.
  tensor::Tensor forward(const tensor::Tensor& x, core::Rng& rng) const;

  std::int64_t hidden_dim() const { return hidden_; }
  std::int64_t num_layers() const { return static_cast<std::int64_t>(layers_.size()); }

 private:
  std::int64_t hidden_;
  float dropout_p_;
  std::vector<std::shared_ptr<LstmLayer>> layers_;
};

}  // namespace cppflare::nn
