// Named flat views of model parameters.
//
// `StateDict` is the interchange format of the whole system: modules export
// and import their parameters through it, the federated DXO carries it
// between client and server, the aggregator averages over it, and the
// persistor writes it to disk. It is deliberately a plain map of
// name -> float buffer (+shape) with no tensor/autograd dependency, so the
// server side never needs the NN stack to aggregate.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/bytes.h"

namespace cppflare::nn {

struct ParamBlob {
  std::vector<std::int64_t> shape;
  std::vector<float> values;

  std::int64_t numel() const { return static_cast<std::int64_t>(values.size()); }
  bool operator==(const ParamBlob& other) const = default;
};

class StateDict {
 public:
  using Map = std::map<std::string, ParamBlob>;

  void insert(const std::string& name, ParamBlob blob);
  bool contains(const std::string& name) const { return entries_.count(name) != 0; }
  const ParamBlob& at(const std::string& name) const;
  ParamBlob& at(const std::string& name);

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const Map& entries() const { return entries_; }
  Map& entries() { return entries_; }

  /// Total scalar parameter count across all blobs.
  std::int64_t total_numel() const;

  /// True iff both dicts have identical key sets and per-key shapes
  /// (values may differ). Aggregation requires congruent dicts.
  bool congruent_with(const StateDict& other) const;

  // ---- arithmetic used by FedAvg ---------------------------------------
  /// *this += scale * other. Dicts must be congruent.
  void axpy(float scale, const StateDict& other);
  /// *this *= scale.
  void scale(float factor);
  /// Same keys/shapes as *this, all values zero.
  StateDict zeros_like() const;

  // ---- wire format -------------------------------------------------------
  void serialize(core::ByteWriter& writer) const;
  static StateDict deserialize(core::ByteReader& reader);

  bool operator==(const StateDict& other) const = default;

 private:
  Map entries_;
};

}  // namespace cppflare::nn
