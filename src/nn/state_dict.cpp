#include "nn/state_dict.h"

#include "core/error.h"

namespace cppflare::nn {

void StateDict::insert(const std::string& name, ParamBlob blob) {
  if (entries_.count(name) != 0) {
    throw Error("StateDict: duplicate parameter name '" + name + "'");
  }
  entries_.emplace(name, std::move(blob));
}

const ParamBlob& StateDict::at(const std::string& name) const {
  auto it = entries_.find(name);
  if (it == entries_.end()) throw Error("StateDict: missing parameter '" + name + "'");
  return it->second;
}

ParamBlob& StateDict::at(const std::string& name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) throw Error("StateDict: missing parameter '" + name + "'");
  return it->second;
}

std::int64_t StateDict::total_numel() const {
  std::int64_t n = 0;
  for (const auto& [name, blob] : entries_) n += blob.numel();
  return n;
}

bool StateDict::congruent_with(const StateDict& other) const {
  if (entries_.size() != other.entries_.size()) return false;
  auto it = entries_.begin();
  auto jt = other.entries_.begin();
  for (; it != entries_.end(); ++it, ++jt) {
    if (it->first != jt->first || it->second.shape != jt->second.shape) return false;
  }
  return true;
}

void StateDict::axpy(float scale, const StateDict& other) {
  if (!congruent_with(other)) throw Error("StateDict::axpy: incongruent dicts");
  auto it = entries_.begin();
  auto jt = other.entries_.begin();
  for (; it != entries_.end(); ++it, ++jt) {
    auto& dst = it->second.values;
    const auto& src = jt->second.values;
    for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += scale * src[i];
  }
}

void StateDict::scale(float factor) {
  for (auto& [name, blob] : entries_) {
    for (float& v : blob.values) v *= factor;
  }
}

StateDict StateDict::zeros_like() const {
  StateDict out;
  for (const auto& [name, blob] : entries_) {
    ParamBlob z;
    z.shape = blob.shape;
    z.values.assign(blob.values.size(), 0.0f);
    out.insert(name, std::move(z));
  }
  return out;
}

namespace {
constexpr std::uint32_t kStateDictMagic = 0x53444331;  // "SDC1"
}

void StateDict::serialize(core::ByteWriter& writer) const {
  writer.write_u32(kStateDictMagic);
  writer.write_u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [name, blob] : entries_) {
    writer.write_string(name);
    writer.write_i64_vector(blob.shape);
    writer.write_f32_vector(blob.values);
  }
}

StateDict StateDict::deserialize(core::ByteReader& reader) {
  if (reader.read_u32() != kStateDictMagic) {
    throw SerializationError("StateDict: bad magic");
  }
  const std::uint32_t count = reader.read_u32();
  StateDict dict;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string name = reader.read_string();
    ParamBlob blob;
    blob.shape = reader.read_i64_vector();
    blob.values = reader.read_f32_vector();
    std::int64_t expect = 1;
    for (std::int64_t d : blob.shape) expect *= d;
    if (expect != blob.numel()) {
      throw SerializationError("StateDict: shape/value mismatch for '" + name +
                                     "'");
    }
    dict.insert(name, std::move(blob));
  }
  return dict;
}

}  // namespace cppflare::nn
