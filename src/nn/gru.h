// Multi-layer GRU — a second "recursive model" baseline beyond the paper's
// LSTM (its future-work section asks how recursive models behave across
// tasks/dataset sizes; the GRU gives that comparison a second point).
//
// Gate layout follows PyTorch: the 3*H rows of W_ih/W_hh are
// [reset | update | new].
#pragma once

#include <memory>

#include "nn/layers.h"
#include "nn/module.h"

namespace cppflare::nn {

class GruLayer : public Module {
 public:
  GruLayer(std::int64_t input_dim, std::int64_t hidden_dim, core::Rng& rng);

  /// One step: x_t [B, input], h [B, hidden] -> new h.
  tensor::Tensor step(const tensor::Tensor& x_t, const tensor::Tensor& h) const;

  std::int64_t hidden_dim() const { return hidden_; }

 private:
  std::int64_t hidden_;
  tensor::Tensor w_ih_;  // [3H, input]
  tensor::Tensor w_hh_;  // [3H, H]
  tensor::Tensor b_ih_;  // [3H]
  tensor::Tensor b_hh_;  // [3H]
};

class Gru : public Module {
 public:
  Gru(std::int64_t input_dim, std::int64_t hidden_dim, std::int64_t num_layers,
      float dropout_p, core::Rng& rng);

  /// x: [B, T, input] -> top-layer hidden states [B, T, hidden].
  tensor::Tensor forward(const tensor::Tensor& x, core::Rng& rng) const;

  std::int64_t hidden_dim() const { return hidden_; }
  std::int64_t num_layers() const { return static_cast<std::int64_t>(layers_.size()); }

 private:
  std::int64_t hidden_;
  float dropout_p_;
  std::vector<std::shared_ptr<GruLayer>> layers_;
};

}  // namespace cppflare::nn
