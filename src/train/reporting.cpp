#include "train/reporting.h"

#include <fstream>

#include "core/error.h"

namespace cppflare::train {

namespace {
std::ofstream open_csv(const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw Error("reporting: cannot open '" + path + "'");
  return out;
}
}  // namespace

void write_round_metrics_csv(const std::string& path,
                             const std::vector<flare::RoundMetrics>& history) {
  std::ofstream out = open_csv(path);
  out << "round,num_contributions,total_samples,train_loss,valid_acc,valid_loss\n";
  for (const flare::RoundMetrics& m : history) {
    out << m.round << ',' << m.num_contributions << ',' << m.total_samples << ','
        << m.train_loss << ',' << m.valid_acc << ',' << m.valid_loss << '\n';
  }
  if (!out) throw Error("reporting: write failed for '" + path + "'");
}

void write_metrics_csv(const std::string& path,
                       const core::MetricSnapshot& snapshot) {
  std::ofstream out = open_csv(path);
  out << "kind,name,value\n";
  for (const auto& [name, v] : snapshot.counters) {
    out << "counter," << name << ',' << v << '\n';
  }
  for (const auto& [name, v] : snapshot.gauges) {
    out << "gauge," << name << ',' << v << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out << "histogram," << name << ".count," << h.count << '\n';
    out << "histogram," << name << ".sum," << h.sum << '\n';
    out << "histogram," << name << ".mean," << h.mean << '\n';
    out << "histogram," << name << ".min," << h.min << '\n';
    out << "histogram," << name << ".max," << h.max << '\n';
    out << "histogram," << name << ".p50," << h.p50 << '\n';
    out << "histogram," << name << ".p90," << h.p90 << '\n';
    out << "histogram," << name << ".p99," << h.p99 << '\n';
  }
  if (!out) throw Error("reporting: write failed for '" + path + "'");
}

void write_epoch_stats_csv(const std::string& path,
                           const std::vector<EpochStats>& history) {
  std::ofstream out = open_csv(path);
  out << "epoch,train_loss,valid_loss,valid_acc,seconds\n";
  for (const EpochStats& e : history) {
    out << e.epoch << ',' << e.train_loss << ',' << e.valid_loss << ','
        << e.valid_acc << ',' << e.seconds << '\n';
  }
  if (!out) throw Error("reporting: write failed for '" + path + "'");
}

void write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& series) {
  if (names.size() != series.size()) {
    throw Error("reporting: names/series size mismatch");
  }
  std::ofstream out = open_csv(path);
  out << "index";
  for (const std::string& n : names) out << ',' << n;
  out << '\n';
  std::size_t longest = 0;
  for (const auto& s : series) longest = std::max(longest, s.size());
  for (std::size_t i = 0; i < longest; ++i) {
    out << i;
    for (const auto& s : series) {
      out << ',';
      if (i < s.size()) out << s[i];
    }
    out << '\n';
  }
  if (!out) throw Error("reporting: write failed for '" + path + "'");
}

}  // namespace cppflare::train
