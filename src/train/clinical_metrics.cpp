#include "train/clinical_metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"
#include "tensor/ops.h"

namespace cppflare::train {

double ConfusionMatrix::accuracy() const {
  const std::int64_t n = total();
  return n == 0 ? 0.0
               : static_cast<double>(true_positive + true_negative) /
                     static_cast<double>(n);
}

double ConfusionMatrix::sensitivity() const {
  const std::int64_t pos = true_positive + false_negative;
  return pos == 0 ? 0.0 : static_cast<double>(true_positive) / pos;
}

double ConfusionMatrix::specificity() const {
  const std::int64_t neg = true_negative + false_positive;
  return neg == 0 ? 0.0 : static_cast<double>(true_negative) / neg;
}

double ConfusionMatrix::precision() const {
  const std::int64_t pred_pos = true_positive + false_positive;
  return pred_pos == 0 ? 0.0 : static_cast<double>(true_positive) / pred_pos;
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = sensitivity();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

ConfusionMatrix confusion_at(const std::vector<double>& scores,
                             const std::vector<std::int64_t>& labels,
                             double threshold) {
  if (scores.size() != labels.size()) {
    throw Error("confusion_at: scores/labels size mismatch");
  }
  ConfusionMatrix cm;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    const bool actual = labels[i] == 1;
    if (predicted && actual) ++cm.true_positive;
    if (predicted && !actual) ++cm.false_positive;
    if (!predicted && !actual) ++cm.true_negative;
    if (!predicted && actual) ++cm.false_negative;
  }
  return cm;
}

double auroc(const std::vector<double>& scores,
             const std::vector<std::int64_t>& labels) {
  if (scores.size() != labels.size()) {
    throw Error("auroc: scores/labels size mismatch");
  }
  // Rank-based Mann-Whitney: AUC = (R_pos - n_pos(n_pos+1)/2) / (n_pos*n_neg)
  // with midranks for ties.
  const std::size_t n = scores.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  std::vector<double> rank(n);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && scores[order[j + 1]] == scores[order[i]]) ++j;
    const double midrank = 0.5 * static_cast<double>(i + j) + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = midrank;
    i = j + 1;
  }

  double pos_rank_sum = 0.0;
  std::int64_t n_pos = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (labels[k] == 1) {
      pos_rank_sum += rank[k];
      ++n_pos;
    }
  }
  const std::int64_t n_neg = static_cast<std::int64_t>(n) - n_pos;
  if (n_pos == 0 || n_neg == 0) return 0.5;
  return (pos_rank_sum - 0.5 * static_cast<double>(n_pos) * (n_pos + 1)) /
         (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

ScoredPredictions score_dataset(models::SequenceClassifier& model,
                                const data::Dataset& dataset,
                                std::int64_t batch_size) {
  if (dataset.empty()) throw Error("score_dataset: empty dataset");
  const bool was_training = model.training();
  model.set_training(false);
  tensor::NoGradGuard no_grad;
  core::Rng rng(0);

  ScoredPredictions out;
  std::vector<std::int64_t> order(static_cast<std::size_t>(dataset.size()));
  std::iota(order.begin(), order.end(), 0);
  for (std::int64_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::int64_t end = std::min(begin + batch_size, dataset.size());
    const data::Batch batch = data::collate(dataset.samples(), order, begin, end);
    const tensor::Tensor logits = model.class_logits(batch, rng);
    if (logits.size(1) != 2) {
      throw Error("score_dataset: binary classifier expected");
    }
    for (std::int64_t r = 0; r < batch.batch_size; ++r) {
      const float z0 = logits.data()[r * 2];
      const float z1 = logits.data()[r * 2 + 1];
      out.scores.push_back(1.0 / (1.0 + std::exp(static_cast<double>(z0 - z1))));
      out.labels.push_back(batch.labels[static_cast<std::size_t>(r)]);
    }
  }
  model.set_training(was_training);
  return out;
}

}  // namespace cppflare::train
