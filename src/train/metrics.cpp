#include "train/metrics.h"

#include "core/error.h"
#include "tensor/ops.h"

namespace cppflare::train {

double top1_accuracy(const tensor::Tensor& logits,
                     const std::vector<std::int64_t>& labels) {
  if (logits.dim() != 2 ||
      logits.size(0) != static_cast<std::int64_t>(labels.size())) {
    throw Error("top1_accuracy: logits/labels mismatch");
  }
  const std::int64_t n = logits.size(0), c = logits.size(1);
  std::int64_t correct = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

EvalResult evaluate(models::SequenceClassifier& model, const data::Dataset& dataset,
                    std::int64_t batch_size) {
  if (dataset.empty()) throw Error("evaluate: empty dataset");
  const bool was_training = model.training();
  model.set_training(false);
  tensor::NoGradGuard no_grad;
  core::Rng rng(0);  // unused in eval mode (no dropout), but required by API

  EvalResult result;
  RunningMean loss_mean;
  std::int64_t correct = 0;
  std::vector<std::int64_t> order(static_cast<std::size_t>(dataset.size()));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<std::int64_t>(i);
  for (std::int64_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::int64_t end = std::min(begin + batch_size, dataset.size());
    const data::Batch batch = data::collate(dataset.samples(), order, begin, end);
    const tensor::Tensor logits = model.class_logits(batch, rng);
    const tensor::Tensor loss = tensor::cross_entropy(logits, batch.labels);
    loss_mean.add(loss.item(), batch.batch_size);
    correct += static_cast<std::int64_t>(
        top1_accuracy(logits, batch.labels) * static_cast<double>(batch.batch_size) +
        0.5);
  }
  model.set_training(was_training);
  result.loss = loss_mean.mean();
  result.count = dataset.size();
  result.accuracy = static_cast<double>(correct) / static_cast<double>(dataset.size());
  return result;
}

}  // namespace cppflare::train
