#include "train/clinical_learner.h"

#include <cstdio>

#include "core/error.h"
#include "core/logging.h"
#include "core/trace.h"

#define CPPFLARE_LOG_COMPONENT "CiBertLearner"

namespace cppflare::train {

namespace {

/// global - reference, producing a kWeightDiff payload.
nn::StateDict diff_of(const nn::StateDict& updated, const nn::StateDict& reference) {
  nn::StateDict diff = updated;
  diff.axpy(-1.0f, reference);
  return diff;
}

}  // namespace

ClinicalLearner::ClinicalLearner(std::string site_name,
                                 std::shared_ptr<models::SequenceClassifier> model,
                                 data::Dataset local_train, data::Dataset valid_set,
                                 LearnerOptions options)
    : site_name_(std::move(site_name)),
      model_(std::move(model)),
      local_train_(std::move(local_train)),
      valid_set_(std::move(valid_set)),
      options_(options) {
  if (local_train_.empty()) throw Error("ClinicalLearner: empty local dataset");
}

flare::Dxo ClinicalLearner::train(const flare::Dxo& global_model,
                                  const flare::FLContext& ctx) {
  CF_TRACE_SPAN_SITE("learner.train", site_name_, ctx.current_round);
  if (global_model.kind() != flare::DxoKind::kWeights) {
    throw ProtocolError("ClinicalLearner: expected kWeights task payload");
  }
  model_->load_state_dict(global_model.data());

  TrainOptions topts;
  topts.epochs = options_.local_epochs;
  topts.batch_size = options_.batch_size;
  topts.lr = options_.lr;
  topts.weight_decay = options_.weight_decay;
  topts.clip_norm = options_.clip_norm;
  // Per-site, per-round stream so sites do not share dropout/shuffle noise.
  topts.seed = options_.seed ^ (static_cast<std::uint64_t>(ctx.current_round) << 20) ^
               std::hash<std::string>{}(site_name_);
  ClassifierTrainer trainer(model_, topts);
  if (options_.fedprox_mu > 0.0) {
    trainer.set_proximal_term(global_model.data(), options_.fedprox_mu);
  }

  double train_loss = 0.0;
  for (std::int64_t e = 0; e < options_.local_epochs; ++e) {
    train_loss = trainer.train_epoch(local_train_);
    if (options_.verbose) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "Local epoch %s: %lld/%lld (lr=%.3g), train_loss=%.3f",
                    site_name_.c_str(), static_cast<long long>(e + 1),
                    static_cast<long long>(options_.local_epochs), options_.lr,
                    train_loss);
      LOG(info).msg(buf);
    }
  }
  const EvalResult eval = valid_set_.empty()
                              ? EvalResult{}
                              : evaluate(*model_, valid_set_, options_.batch_size);
  if (options_.verbose && !valid_set_.empty()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "Validation %s: valid_acc=%.3f", site_name_.c_str(),
                  eval.accuracy);
    LOG(info).msg(buf);
  }

  last_local_model_ = model_->state_dict();
  flare::Dxo update;
  if (options_.send_diff) {
    update = flare::Dxo(flare::DxoKind::kWeightDiff,
                        diff_of(last_local_model_, global_model.data()));
  } else {
    update = flare::Dxo(flare::DxoKind::kWeights, last_local_model_);
  }
  update.set_meta_int(flare::Dxo::kMetaNumSamples, local_train_.size());
  update.set_meta_double(flare::Dxo::kMetaTrainLoss, train_loss);
  update.set_meta_double(flare::Dxo::kMetaValidAcc, eval.accuracy);
  update.set_meta_double(flare::Dxo::kMetaValidLoss, eval.loss);
  update.set_meta_int(flare::Dxo::kMetaRound, ctx.current_round);
  return update;
}

MlmFederatedLearner::MlmFederatedLearner(
    std::string site_name, std::shared_ptr<models::BertForPretraining> model,
    data::MlmMasker masker, data::Dataset local_corpus, data::Dataset valid_corpus,
    LearnerOptions options)
    : site_name_(std::move(site_name)),
      model_(std::move(model)),
      masker_(std::move(masker)),
      local_corpus_(std::move(local_corpus)),
      valid_corpus_(std::move(valid_corpus)),
      options_(options) {
  if (local_corpus_.empty()) throw Error("MlmFederatedLearner: empty corpus");
}

flare::Dxo MlmFederatedLearner::train(const flare::Dxo& global_model,
                                      const flare::FLContext& ctx) {
  CF_TRACE_SPAN_SITE("learner.train", site_name_, ctx.current_round);
  if (global_model.kind() != flare::DxoKind::kWeights) {
    throw ProtocolError("MlmFederatedLearner: expected kWeights task payload");
  }
  model_->load_state_dict(global_model.data());

  TrainOptions topts;
  topts.epochs = options_.local_epochs;
  topts.batch_size = options_.batch_size;
  topts.lr = options_.lr;
  topts.weight_decay = options_.weight_decay;
  topts.clip_norm = options_.clip_norm;
  topts.seed = options_.seed ^ (static_cast<std::uint64_t>(ctx.current_round) << 20) ^
               std::hash<std::string>{}(site_name_);
  MlmTrainer trainer(model_, masker_, topts);

  double train_loss = 0.0;
  for (std::int64_t e = 0; e < options_.local_epochs; ++e) {
    train_loss = trainer.train_epoch(local_corpus_);
    if (options_.verbose) {
      char buf[200];
      std::snprintf(buf, sizeof(buf),
                    "Local MLM epoch %s: %lld/%lld (lr=%.3g), mlm_loss=%.3f",
                    site_name_.c_str(), static_cast<long long>(e + 1),
                    static_cast<long long>(options_.local_epochs), options_.lr,
                    train_loss);
      LOG(info).msg(buf);
    }
  }
  const double valid_loss =
      valid_corpus_.empty() ? 0.0 : trainer.evaluate(valid_corpus_);

  flare::Dxo update(flare::DxoKind::kWeights, model_->state_dict());
  update.set_meta_int(flare::Dxo::kMetaNumSamples, local_corpus_.size());
  update.set_meta_double(flare::Dxo::kMetaTrainLoss, train_loss);
  update.set_meta_double(flare::Dxo::kMetaValidLoss, valid_loss);
  update.set_meta_double(flare::Dxo::kMetaValidAcc, 0.0);
  update.set_meta_int(flare::Dxo::kMetaRound, ctx.current_round);
  return update;
}

}  // namespace cppflare::train
