// Federated learners.
//
// `ClinicalLearner` is the C++ counterpart of the paper's `CiBertLearner`:
// it receives the round's global weights, fine-tunes the site's classifier
// on local ADR data for a number of local epochs, validates, and returns
// the contribution DXO. `MlmFederatedLearner` does the same for the BERT
// masked-LM pretraining task (Fig. 2's FL schemes).
#pragma once

#include <memory>

#include "data/mlm.h"
#include "flare/learner.h"
#include "models/bert.h"
#include "models/classifier.h"
#include "train/trainer.h"

namespace cppflare::train {

struct LearnerOptions {
  std::int64_t local_epochs = 1;
  std::int64_t batch_size = 16;
  double lr = 1e-2;
  double weight_decay = 0.0;
  float clip_norm = 1.0f;
  std::uint64_t seed = 5150;
  bool verbose = true;
  /// Send weight deltas instead of full weights.
  bool send_diff = false;
  /// FedProx proximal coefficient; 0 = plain FedAvg local training.
  double fedprox_mu = 0.0;
};

class ClinicalLearner : public flare::Learner {
 public:
  ClinicalLearner(std::string site_name,
                  std::shared_ptr<models::SequenceClassifier> model,
                  data::Dataset local_train, data::Dataset valid_set,
                  LearnerOptions options);

  flare::Dxo train(const flare::Dxo& global_model,
                   const flare::FLContext& ctx) override;
  std::string site_name() const override { return site_name_; }

  const data::Dataset& local_data() const { return local_train_; }
  const data::Dataset& valid_data() const { return valid_set_; }

  /// State dict after the most recent local training round; used by the
  /// cross-site evaluation workflow. Empty before the first round.
  const nn::StateDict& last_local_model() const { return last_local_model_; }

 private:
  std::string site_name_;
  std::shared_ptr<models::SequenceClassifier> model_;
  data::Dataset local_train_;
  data::Dataset valid_set_;
  LearnerOptions options_;
  nn::StateDict last_local_model_;
};

class MlmFederatedLearner : public flare::Learner {
 public:
  MlmFederatedLearner(std::string site_name,
                      std::shared_ptr<models::BertForPretraining> model,
                      data::MlmMasker masker, data::Dataset local_corpus,
                      data::Dataset valid_corpus, LearnerOptions options);

  flare::Dxo train(const flare::Dxo& global_model,
                   const flare::FLContext& ctx) override;
  std::string site_name() const override { return site_name_; }

 private:
  std::string site_name_;
  std::shared_ptr<models::BertForPretraining> model_;
  data::MlmMasker masker_;
  data::Dataset local_corpus_;
  data::Dataset valid_corpus_;
  LearnerOptions options_;
};

}  // namespace cppflare::train
