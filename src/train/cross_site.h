// Cross-site model evaluation (NVFlare's CrossSiteModelEval workflow).
//
// After federated training, every candidate model (the global model and
// each site's final local model) is evaluated on every site's local
// validation data, yielding the accuracy matrix NVFlare reports. Off-
// diagonal entries expose generalization across clinics; a local model
// that only wins on its own row is overfit to that site's distribution.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "models/classifier.h"
#include "nn/state_dict.h"
#include "train/metrics.h"

namespace cppflare::train {

struct [[nodiscard]] CrossSiteResult {
  std::vector<std::string> model_names;  // rows
  std::vector<std::string> site_names;   // columns
  // matrix[m][s] = evaluation of model m on site s's data.
  std::vector<std::vector<EvalResult>> matrix;

  /// Rendered table (accuracy %), for logs and benches.
  std::string to_table() const;

  /// Index of the row with the best mean accuracy across sites.
  std::size_t best_model_index() const;
};

/// Evaluates every (model, site) pair. All models must fit `config`.
CrossSiteResult cross_site_evaluate(
    const models::ModelConfig& config,
    const std::vector<std::pair<std::string, nn::StateDict>>& candidate_models,
    const std::vector<std::pair<std::string, data::Dataset>>& site_data,
    std::int64_t batch_size = 16, std::uint64_t seed = 7);

}  // namespace cppflare::train
