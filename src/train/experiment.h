// Shared experiment harness for the paper's evaluation section.
//
// The benches for Table III and Fig. 2 and the integration tests all drive
// these entry points. `ExperimentScale` collects every size knob with
// defaults small enough for a single CPU core; each field can be overridden
// through REPRO_* environment variables (see from_env) to scale toward the
// paper's sizes on bigger hardware.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/clinical_gen.h"
#include "data/dataset.h"
#include "data/partitioner.h"
#include "flare/aggregator.h"
#include "train/clinical_learner.h"

namespace cppflare::train {

struct ExperimentScale {
  // Cohort (paper: 8,638 patients; 6,927 train / 1,732 validation).
  std::int64_t num_patients = 2000;
  double valid_fraction = 0.2;
  // MLM pretraining corpus (paper: 453,377 train / 8,683 validation).
  std::int64_t pretrain_sequences = 1000;
  std::int64_t pretrain_valid = 160;
  // Sequence/vocabulary scale.
  std::int64_t max_seq_len = 32;
  std::int64_t num_drugs = 120;
  std::int64_t num_diagnoses = 160;
  std::int64_t num_procedures = 80;
  // Federation (Table I: 8 clients).
  std::int64_t num_clients = 8;
  std::int64_t fl_rounds = 6;
  std::int64_t local_epochs = 1;
  double label_skew_alpha = 0.3;
  // Optimization (Table I: Adam, lr 1e-2).
  std::int64_t batch_size = 16;
  /// Transformers amortize per-op overhead much better at larger batches
  /// on this CPU substrate; used for bert/bert-mini and MLM pretraining.
  std::int64_t transformer_batch_size = 48;
  double lr = 1e-2;
  /// Adam L2 coefficient for the ADR classification runs (the recurrent
  /// models overfit the small cohort without it).
  double weight_decay = 1e-3;
  std::int64_t epochs_centralized = 4;
  std::int64_t epochs_standalone = 4;
  // MLM pretraining epochs/rounds for Fig. 2.
  std::int64_t mlm_epochs = 3;
  std::uint64_t seed = 2024;
  /// Per-site compute-thread budget for federated runs; 0 auto-divides the
  /// machine between site workers and kernels (SimulatorConfig semantics).
  std::int64_t compute_threads = 0;

  /// Applies REPRO_<UPPERCASED_FIELD> env overrides (e.g.
  /// REPRO_NUM_PATIENTS=8638 REPRO_FL_ROUNDS=10).
  static ExperimentScale from_env();

  data::ClinicalGenConfig generator_config() const;
};

/// Tokenized cohort plus the federated shards (imbalanced sizes per the
/// paper's ratios + label skew).
struct ClassificationData {
  std::shared_ptr<data::ClinicalTokenizer> tokenizer;
  data::Dataset train;
  data::Dataset valid;
  std::vector<data::Dataset> shards;
};

ClassificationData prepare_classification_data(const ExperimentScale& scale);

struct [[nodiscard]] SchemeResult {
  std::string scheme;
  std::string model;
  double accuracy = 0.0;
  double loss = 0.0;
  double seconds = 0.0;
  /// The trained weights behind `accuracy` (the selected global model for
  /// the federated scheme, the fitted model for centralized). Standalone
  /// leaves it empty (there is one model per site).
  nn::StateDict trained_model;
};

/// Table III rows: one (model, scheme) cell each.
SchemeResult run_centralized(const std::string& model_name,
                             const ClassificationData& data,
                             const ExperimentScale& scale);
SchemeResult run_standalone(const std::string& model_name,
                            const ClassificationData& data,
                            const ExperimentScale& scale);

struct FederatedOptions {
  bool weighted_aggregation = true;
  double dp_sigma = 0.0;    // >0 adds a Gaussian privacy filter on clients
  bool send_diff = false;
  bool use_tcp = false;
  /// FedProx proximal coefficient for local training (0 = FedAvg).
  double fedprox_mu = 0.0;
  /// Pairwise-mask secure aggregation (forces uniform aggregation so the
  /// masks cancel; see flare/secure_agg.h).
  bool secure_masking = false;
  /// Report the best round's global model (IntimeModelSelector) instead of
  /// the final round's.
  bool select_best = false;
};
SchemeResult run_federated(const std::string& model_name,
                           const ClassificationData& data,
                           const ExperimentScale& scale,
                           const FederatedOptions& options = {});

// ---- Fig. 2: MLM pretraining schemes ---------------------------------------

enum class MlmScheme {
  kCentralized,   // all pretraining data pooled
  kSmallDataset,  // a single site's shard only (the paper's lower bound)
  kFlImbalanced,  // FL over the paper's imbalanced split
  kFlBalanced,    // FL over an equal split
};

const char* mlm_scheme_name(MlmScheme scheme);

/// Validation MLM loss after each epoch (centralized/small) or each round
/// (FL schemes); series length = scale.mlm_epochs (= fl rounds for FL).
std::vector<double> run_mlm_scheme(MlmScheme scheme, const ExperimentScale& scale);

}  // namespace cppflare::train
