// Clinical classification metrics beyond top-1 accuracy.
//
// The paper reports only top-1 accuracy, but ADR detection is an
// imbalanced screening problem where sensitivity/specificity and AUROC are
// the clinically meaningful quantities; this module adds them as an
// extension (and the examples report them alongside accuracy).
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "models/classifier.h"

namespace cppflare::train {

struct ConfusionMatrix {
  std::int64_t true_positive = 0;
  std::int64_t false_positive = 0;
  std::int64_t true_negative = 0;
  std::int64_t false_negative = 0;

  std::int64_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double accuracy() const;
  /// Sensitivity / recall: TP / (TP + FN). 0 when no positives exist.
  double sensitivity() const;
  /// Specificity: TN / (TN + FP). 0 when no negatives exist.
  double specificity() const;
  /// Precision / PPV: TP / (TP + FP). 0 when nothing predicted positive.
  double precision() const;
  /// F1 = harmonic mean of precision and sensitivity.
  double f1() const;
};

/// Builds the confusion matrix from positive-class scores thresholded at
/// `threshold`. Labels are 0/1; scores are P(class 1) or any monotone
/// surrogate (e.g. logit difference).
ConfusionMatrix confusion_at(const std::vector<double>& scores,
                             const std::vector<std::int64_t>& labels,
                             double threshold = 0.5);

/// Area under the ROC curve by the Mann-Whitney U statistic (ties counted
/// half). Returns 0.5 when either class is absent.
double auroc(const std::vector<double>& scores,
             const std::vector<std::int64_t>& labels);

/// Full evaluation of a classifier on a dataset: collects positive-class
/// probabilities (softmax over the two logits) and labels.
struct ScoredPredictions {
  std::vector<double> scores;  // P(label == 1)
  std::vector<std::int64_t> labels;
};
ScoredPredictions score_dataset(models::SequenceClassifier& model,
                                const data::Dataset& dataset,
                                std::int64_t batch_size);

}  // namespace cppflare::train
