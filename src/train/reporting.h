// CSV export of training/federation metrics, for plotting the paper's
// figures from bench output without parsing logs.
#pragma once

#include <string>
#include <vector>

#include "core/trace.h"
#include "flare/aggregator.h"
#include "train/trainer.h"

namespace cppflare::train {

/// Writes per-round federation metrics:
///   round,num_contributions,total_samples,train_loss,valid_acc,valid_loss
///
/// Deprecation note (observability PR): RoundMetrics is a view over the
/// server's MetricRegistry; for anything beyond these six columns export
/// the registry snapshot with write_metrics_csv below.
void write_round_metrics_csv(const std::string& path,
                             const std::vector<flare::RoundMetrics>& history);

/// Writes a full registry snapshot, one metric per row:
///   kind,name,value  — histograms expand to count/sum/mean/min/max/p50/p90/
///   p99 rows named "<metric>.count" etc., so the file stays flat.
void write_metrics_csv(const std::string& path,
                       const core::MetricSnapshot& snapshot);

/// Writes per-epoch training stats:
///   epoch,train_loss,valid_loss,valid_acc,seconds
void write_epoch_stats_csv(const std::string& path,
                           const std::vector<EpochStats>& history);

/// Writes labeled series side by side (e.g. Fig. 2's four MLM loss curves):
///   index,<name1>,<name2>,...  — shorter series leave trailing cells empty.
void write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<double>>& series);

}  // namespace cppflare::train
