#include "train/cross_site.h"

#include <cstdio>

#include "core/error.h"
#include "models/lstm_classifier.h"

namespace cppflare::train {

std::string CrossSiteResult::to_table() const {
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%-14s", "model\\site");
  out += buf;
  for (const std::string& site : site_names) {
    std::snprintf(buf, sizeof(buf), " | %-8s", site.c_str());
    out += buf;
  }
  out += "\n";
  for (std::size_t m = 0; m < model_names.size(); ++m) {
    std::snprintf(buf, sizeof(buf), "%-14s", model_names[m].c_str());
    out += buf;
    for (std::size_t s = 0; s < site_names.size(); ++s) {
      std::snprintf(buf, sizeof(buf), " | %6.1f%%%s", 100.0 * matrix[m][s].accuracy,
                    " ");
      out += buf;
    }
    out += "\n";
  }
  return out;
}

std::size_t CrossSiteResult::best_model_index() const {
  if (matrix.empty()) throw Error("CrossSiteResult: empty matrix");
  std::size_t best = 0;
  double best_mean = -1.0;
  for (std::size_t m = 0; m < matrix.size(); ++m) {
    double mean = 0.0;
    for (const EvalResult& r : matrix[m]) mean += r.accuracy;
    mean /= static_cast<double>(matrix[m].size());
    if (mean > best_mean) {
      best_mean = mean;
      best = m;
    }
  }
  return best;
}

CrossSiteResult cross_site_evaluate(
    const models::ModelConfig& config,
    const std::vector<std::pair<std::string, nn::StateDict>>& candidate_models,
    const std::vector<std::pair<std::string, data::Dataset>>& site_data,
    std::int64_t batch_size, std::uint64_t seed) {
  if (candidate_models.empty() || site_data.empty()) {
    throw Error("cross_site_evaluate: need at least one model and one site");
  }
  core::Rng rng(seed);
  auto probe = models::make_classifier(config, rng);

  CrossSiteResult result;
  for (const auto& [name, dict] : candidate_models) result.model_names.push_back(name);
  for (const auto& [name, dataset] : site_data) result.site_names.push_back(name);

  result.matrix.resize(candidate_models.size());
  for (std::size_t m = 0; m < candidate_models.size(); ++m) {
    probe->load_state_dict(candidate_models[m].second);
    for (const auto& [site, dataset] : site_data) {
      result.matrix[m].push_back(evaluate(*probe, dataset, batch_size));
    }
  }
  return result;
}

}  // namespace cppflare::train
