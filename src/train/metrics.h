// Evaluation metrics (top-1 accuracy, mean loss).
//
// Deprecation note (observability PR; the duplicated telemetry accessors
// were deleted in the multi-job coordinator PR): these are *computation*
// helpers that produce values; telemetry *storage* is consolidated on
// core/trace.h's MetricRegistry (names in flare/observability.h
// metric_names). Do not grow new cross-run accumulator types here — record
// into a registry instead (the trainer already publishes
// "train.epochs"/"train.batches"/"train.epoch_ms" that way).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "models/classifier.h"
#include "tensor/tensor.h"

namespace cppflare::train {

struct [[nodiscard]] EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  std::int64_t count = 0;
};

/// Fraction of rows whose argmax matches the label.
double top1_accuracy(const tensor::Tensor& logits,
                     const std::vector<std::int64_t>& labels);

/// Full-dataset evaluation in eval mode (no dropout, no autograd). The
/// model's training flag is restored afterwards.
EvalResult evaluate(models::SequenceClassifier& model, const data::Dataset& dataset,
                    std::int64_t batch_size);

/// Streaming mean for per-epoch loss reporting.
class RunningMean {
 public:
  void add(double value, std::int64_t weight = 1) {
    sum_ += value * static_cast<double>(weight);
    count_ += weight;
  }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  std::int64_t count() const { return count_; }

 private:
  double sum_ = 0.0;
  std::int64_t count_ = 0;
};

}  // namespace cppflare::train
