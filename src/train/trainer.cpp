#include "train/trainer.h"

#include <chrono>
#include <cstdio>

#include "core/logging.h"
#include "core/trace.h"
#include "tensor/ops.h"

namespace cppflare::train {

ClassifierTrainer::ClassifierTrainer(
    std::shared_ptr<models::SequenceClassifier> model, TrainOptions options)
    : model_(std::move(model)), options_(options), rng_(options.seed) {
  optimizer_ = std::make_unique<optim::Adam>(
      model_->parameters(), static_cast<float>(options_.lr), 0.9f, 0.999f, 1e-8f,
      static_cast<float>(options_.weight_decay));
}

double ClassifierTrainer::train_epoch(const data::Dataset& train_set) {
  CF_TRACE_SPAN("train.epoch");
  const auto epoch_start = std::chrono::steady_clock::now();
  core::Counter& batch_count =
      core::MetricRegistry::instance().counter("train.batches");
  model_->set_training(true);
  data::DataLoader loader(train_set, options_.batch_size, /*shuffle=*/true,
                          rng_.fork());
  RunningMean loss_mean;
  for (const data::Batch& batch : loader.epoch()) {
    CF_TRACE_SPAN("train.batch");
    const tensor::Tensor logits = model_->class_logits(batch, rng_);
    tensor::Tensor loss = tensor::cross_entropy(logits, batch.labels);
    loss_mean.add(loss.item(), batch.batch_size);
    model_->zero_grad();
    loss.backward();
    if (prox_mu_ > 0.0) apply_proximal_gradient();
    if (options_.clip_norm > 0.0f) optimizer_->clip_grad_norm(options_.clip_norm);
    optimizer_->step();
    batch_count.add(1);
  }
  core::MetricRegistry::instance().counter("train.epochs").add(1);
  core::MetricRegistry::instance().histogram("train.epoch_ms").record(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_start)
          .count());
  return loss_mean.mean();
}

void ClassifierTrainer::set_proximal_term(nn::StateDict reference, double mu) {
  prox_reference_ = std::move(reference);
  prox_mu_ = mu;
}

void ClassifierTrainer::apply_proximal_gradient() {
  for (auto& [name, param] : model_->named_parameters()) {
    const nn::ParamBlob& ref = prox_reference_.at(name);
    auto& grad = param.mutable_grad();
    const float* w = param.data();
    const float mu = static_cast<float>(prox_mu_);
    for (std::size_t i = 0; i < grad.size(); ++i) {
      grad[i] += mu * (w[i] - ref.values[i]);
    }
  }
}

std::vector<EpochStats> ClassifierTrainer::fit(const data::Dataset& train_set,
                                               const data::Dataset& valid_set) {
  std::vector<EpochStats> history;
  for (std::int64_t e = 0; e < options_.epochs; ++e) {
    const auto start = std::chrono::steady_clock::now();
    EpochStats stats;
    stats.epoch = e;
    stats.train_loss = train_epoch(train_set);
    const EvalResult eval = evaluate(*model_, valid_set, options_.batch_size);
    stats.valid_loss = eval.loss;
    stats.valid_acc = eval.accuracy;
    stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (options_.verbose) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "epoch %lld/%lld (lr=%.3g), train_loss=%.3f, valid_acc=%.3f",
                    static_cast<long long>(e + 1),
                    static_cast<long long>(options_.epochs), options_.lr,
                    stats.train_loss, stats.valid_acc);
      // Component name is runtime-chosen (per-site log_name), so LOG_AS.
      LOG_AS(options_.log_name, info).msg(buf);
    }
    history.push_back(stats);
  }
  return history;
}

MlmTrainer::MlmTrainer(std::shared_ptr<models::BertForPretraining> model,
                       data::MlmMasker masker, TrainOptions options)
    : model_(std::move(model)),
      masker_(std::move(masker)),
      options_(options),
      rng_(options.seed) {
  optimizer_ = std::make_unique<optim::Adam>(
      model_->parameters(), static_cast<float>(options_.lr), 0.9f, 0.999f, 1e-8f,
      static_cast<float>(options_.weight_decay));
}

double MlmTrainer::train_epoch(const data::Dataset& corpus) {
  CF_TRACE_SPAN("train.epoch");
  const auto epoch_start = std::chrono::steady_clock::now();
  core::Counter& batch_count =
      core::MetricRegistry::instance().counter("train.batches");
  model_->set_training(true);
  data::DataLoader loader(corpus, options_.batch_size, /*shuffle=*/true,
                          rng_.fork());
  RunningMean loss_mean;
  for (const data::Batch& batch : loader.epoch()) {
    CF_TRACE_SPAN("train.batch");
    const data::MlmMasker::MaskedBatch masked = masker_.mask_batch(batch, rng_);
    tensor::Tensor loss = model_->mlm_loss(masked, rng_);
    loss_mean.add(loss.item(), batch.batch_size);
    model_->zero_grad();
    loss.backward();
    if (options_.clip_norm > 0.0f) optimizer_->clip_grad_norm(options_.clip_norm);
    optimizer_->step();
    batch_count.add(1);
  }
  core::MetricRegistry::instance().counter("train.epochs").add(1);
  core::MetricRegistry::instance().histogram("train.epoch_ms").record(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - epoch_start)
          .count());
  return loss_mean.mean();
}

double MlmTrainer::evaluate(const data::Dataset& corpus) {
  const bool was_training = model_->training();
  model_->set_training(false);
  tensor::NoGradGuard no_grad;
  core::Rng eval_rng(options_.seed ^ 0xe7a1u);
  data::DataLoader loader(corpus, options_.batch_size, /*shuffle=*/false,
                          eval_rng.fork());
  RunningMean loss_mean;
  for (const data::Batch& batch : loader.epoch()) {
    const data::MlmMasker::MaskedBatch masked = masker_.mask_batch(batch, eval_rng);
    const tensor::Tensor loss = model_->mlm_loss(masked, eval_rng);
    loss_mean.add(loss.item(), batch.batch_size);
  }
  model_->set_training(was_training);
  return loss_mean.mean();
}

}  // namespace cppflare::train
