// Centralized/standalone training loops.
//
// `ClassifierTrainer` fits a SequenceClassifier on one dataset — used for
// the paper's "centralized" scheme (all data pooled) and "standalone"
// scheme (each site alone on its local shard). `MlmTrainer` runs the BERT
// masked-LM pretraining objective (Fig. 2).
#pragma once

#include <memory>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "data/mlm.h"
#include "models/bert.h"
#include "models/classifier.h"
#include "optim/optimizer.h"
#include "train/metrics.h"

namespace cppflare::train {

struct TrainOptions {
  std::int64_t epochs = 5;
  std::int64_t batch_size = 16;
  double lr = 1e-2;           // Table I: Adam, 10^-2
  double weight_decay = 0.0;  // Adam L2 coefficient
  float clip_norm = 1.0f;     // 0 disables clipping
  std::uint64_t seed = 1234;
  bool verbose = false;
  std::string log_name = "Trainer";
};

struct EpochStats {
  std::int64_t epoch = 0;
  double train_loss = 0.0;
  double valid_loss = 0.0;
  double valid_acc = 0.0;
  double seconds = 0.0;
};

class ClassifierTrainer {
 public:
  ClassifierTrainer(std::shared_ptr<models::SequenceClassifier> model,
                    TrainOptions options);

  /// One pass over `train_set`; returns the mean training loss.
  double train_epoch(const data::Dataset& train_set);

  /// Full fit with per-epoch validation.
  std::vector<EpochStats> fit(const data::Dataset& train_set,
                              const data::Dataset& valid_set);

  /// Enables FedProx-style training: after each backward pass, every
  /// parameter gradient gains mu * (w - w_ref), pulling local updates
  /// toward the reference (round-global) weights. Pass mu = 0 to disable.
  void set_proximal_term(nn::StateDict reference, double mu);

  models::SequenceClassifier& model() { return *model_; }
  optim::Adam& optimizer() { return *optimizer_; }

 private:
  void apply_proximal_gradient();

  std::shared_ptr<models::SequenceClassifier> model_;
  TrainOptions options_;
  std::unique_ptr<optim::Adam> optimizer_;
  core::Rng rng_;
  nn::StateDict prox_reference_;
  double prox_mu_ = 0.0;
};

class MlmTrainer {
 public:
  MlmTrainer(std::shared_ptr<models::BertForPretraining> model,
             data::MlmMasker masker, TrainOptions options);

  /// One pass; returns mean masked-LM loss.
  double train_epoch(const data::Dataset& corpus);

  /// Mean masked-LM loss without updates (validation); deterministic in
  /// `seed` via an internal evaluation mask stream.
  double evaluate(const data::Dataset& corpus);

  models::BertForPretraining& model() { return *model_; }

 private:
  std::shared_ptr<models::BertForPretraining> model_;
  data::MlmMasker masker_;
  TrainOptions options_;
  std::unique_ptr<optim::Adam> optimizer_;
  core::Rng rng_;
};

}  // namespace cppflare::train
