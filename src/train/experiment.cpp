#include "train/experiment.h"

#include <chrono>

#include "core/config.h"
#include "core/logging.h"
#include "flare/model_selector.h"
#include "flare/simulator.h"
#include "models/lstm_classifier.h"
#include "train/trainer.h"

#define CPPFLARE_LOG_COMPONENT "Experiment"

namespace cppflare::train {

namespace {


double elapsed_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

models::ModelConfig model_config_for(const std::string& model_name,
                                     const data::ClinicalTokenizer& tokenizer) {
  return models::ModelConfig::by_name(model_name, tokenizer.vocab().size(),
                                      tokenizer.max_seq_len());
}

bool is_transformer(const models::ModelConfig& config) {
  return config.kind == models::ModelKind::kBert ||
         config.kind == models::ModelKind::kBertMini;
}

std::int64_t batch_for(const models::ModelConfig& config,
                       const ExperimentScale& scale) {
  return is_transformer(config) ? scale.transformer_batch_size : scale.batch_size;
}

}  // namespace

ExperimentScale ExperimentScale::from_env() {
  ExperimentScale s;
  core::Config c;
  c.set_int("num_patients", s.num_patients);
  c.set_double("valid_fraction", s.valid_fraction);
  c.set_int("pretrain_sequences", s.pretrain_sequences);
  c.set_int("pretrain_valid", s.pretrain_valid);
  c.set_int("max_seq_len", s.max_seq_len);
  c.set_int("num_drugs", s.num_drugs);
  c.set_int("num_diagnoses", s.num_diagnoses);
  c.set_int("num_procedures", s.num_procedures);
  c.set_int("num_clients", s.num_clients);
  c.set_int("fl_rounds", s.fl_rounds);
  c.set_int("local_epochs", s.local_epochs);
  c.set_double("label_skew_alpha", s.label_skew_alpha);
  c.set_int("batch_size", s.batch_size);
  c.set_int("transformer_batch_size", s.transformer_batch_size);
  c.set_double("lr", s.lr);
  c.set_double("weight_decay", s.weight_decay);
  c.set_int("epochs_centralized", s.epochs_centralized);
  c.set_int("epochs_standalone", s.epochs_standalone);
  c.set_int("mlm_epochs", s.mlm_epochs);
  c.set_int("seed", static_cast<std::int64_t>(s.seed));
  c.set_int("compute_threads", s.compute_threads);
  c.apply_env_overrides("REPRO_");
  s.num_patients = c.require_int("num_patients");
  s.valid_fraction = c.require_double("valid_fraction");
  s.pretrain_sequences = c.require_int("pretrain_sequences");
  s.pretrain_valid = c.require_int("pretrain_valid");
  s.max_seq_len = c.require_int("max_seq_len");
  s.num_drugs = c.require_int("num_drugs");
  s.num_diagnoses = c.require_int("num_diagnoses");
  s.num_procedures = c.require_int("num_procedures");
  s.num_clients = c.require_int("num_clients");
  s.fl_rounds = c.require_int("fl_rounds");
  s.local_epochs = c.require_int("local_epochs");
  s.label_skew_alpha = c.require_double("label_skew_alpha");
  s.batch_size = c.require_int("batch_size");
  s.transformer_batch_size = c.require_int("transformer_batch_size");
  s.lr = c.require_double("lr");
  s.weight_decay = c.require_double("weight_decay");
  s.epochs_centralized = c.require_int("epochs_centralized");
  s.epochs_standalone = c.require_int("epochs_standalone");
  s.mlm_epochs = c.require_int("mlm_epochs");
  s.seed = static_cast<std::uint64_t>(c.require_int("seed"));
  s.compute_threads = c.require_int("compute_threads");
  return s;
}

data::ClinicalGenConfig ExperimentScale::generator_config() const {
  data::ClinicalGenConfig g;
  g.num_drugs = num_drugs;
  g.num_diagnoses = num_diagnoses;
  g.num_procedures = num_procedures;
  g.min_events = 8;
  // Leave room for [CLS] + genotype prefix within max_seq_len.
  g.max_events = std::max<std::int64_t>(max_seq_len - 4, 8);
  g.seed = seed;
  return g;
}

ClassificationData prepare_classification_data(const ExperimentScale& scale) {
  const data::ClinicalCohortGenerator generator(scale.generator_config());
  const auto records = generator.generate_labeled(scale.num_patients, scale.seed + 1);
  auto tokenizer = std::make_shared<data::ClinicalTokenizer>(
      generator.build_vocabulary(), scale.max_seq_len);

  data::Dataset all(tokenizer->encode_all(records));
  core::Rng split_rng(scale.seed + 2);
  const auto valid_size =
      static_cast<std::int64_t>(scale.valid_fraction * static_cast<double>(all.size()));
  auto [valid, train] = all.split(valid_size, split_rng);

  data::PartitionOptions popts;
  popts.size_ratios = data::paper_imbalanced_ratios();
  popts.num_clients = scale.num_clients;
  if (static_cast<std::int64_t>(popts.size_ratios.size()) != scale.num_clients) {
    popts.size_ratios.clear();  // fall back to balanced for != 8 clients
  }
  popts.label_skew_alpha = scale.label_skew_alpha;
  popts.seed = scale.seed + 3;

  ClassificationData data;
  data.tokenizer = std::move(tokenizer);
  data.train = std::move(train);
  data.valid = std::move(valid);
  data.shards = data::partition(data.train, popts);
  return data;
}

SchemeResult run_centralized(const std::string& model_name,
                             const ClassificationData& data,
                             const ExperimentScale& scale) {
  const auto start = std::chrono::steady_clock::now();
  core::Rng init_rng(scale.seed + 10);
  const models::ModelConfig mconfig = model_config_for(model_name, *data.tokenizer);
  auto model = models::make_classifier(mconfig, init_rng);

  TrainOptions topts;
  topts.epochs = scale.epochs_centralized;
  topts.batch_size = batch_for(mconfig, scale);
  topts.lr = scale.lr;
  topts.weight_decay = scale.weight_decay;
  topts.seed = scale.seed + 11;
  topts.log_name = "Centralized/" + model_name;
  ClassifierTrainer trainer(model, topts);
  const auto history = trainer.fit(data.train, data.valid);

  // The paper's pipeline "obtains optimal global models and performance
  // metrics" (Sec. III-A); report the best epoch, mirroring the FL path's
  // best-round selection.
  const EpochStats* best = &history.front();
  for (const EpochStats& e : history) {
    if (e.valid_acc > best->valid_acc) best = &e;
  }
  SchemeResult result;
  result.scheme = "centralized";
  result.model = model_name;
  result.accuracy = best->valid_acc;
  result.loss = best->valid_loss;
  result.trained_model = model->state_dict();
  result.seconds = elapsed_since(start);
  return result;
}

SchemeResult run_standalone(const std::string& model_name,
                            const ClassificationData& data,
                            const ExperimentScale& scale) {
  const auto start = std::chrono::steady_clock::now();
  double acc_sum = 0.0, loss_sum = 0.0;
  const models::ModelConfig standalone_config =
      model_config_for(model_name, *data.tokenizer);
  for (std::size_t site = 0; site < data.shards.size(); ++site) {
    core::Rng init_rng(scale.seed + 20 + site);
    auto model = models::make_classifier(standalone_config, init_rng);
    TrainOptions topts;
    topts.epochs = scale.epochs_standalone;
    topts.batch_size = batch_for(standalone_config, scale);
    topts.lr = scale.lr;
    topts.weight_decay = scale.weight_decay;
    topts.seed = scale.seed + 30 + site;
    topts.log_name = "Standalone/" + model_name;
    ClassifierTrainer trainer(model, topts);
    for (std::int64_t e = 0; e < topts.epochs; ++e) {
      trainer.train_epoch(data.shards[site]);
    }
    const EvalResult eval = evaluate(*model, data.valid, scale.batch_size);
    acc_sum += eval.accuracy;
    loss_sum += eval.loss;
    LOG(info).msg("standalone " + model_name + " site-" + std::to_string(site + 1) +
                  " valid_acc=" + std::to_string(eval.accuracy));
  }
  SchemeResult result;
  result.scheme = "standalone";
  result.model = model_name;
  result.accuracy = acc_sum / static_cast<double>(data.shards.size());
  result.loss = loss_sum / static_cast<double>(data.shards.size());
  result.seconds = elapsed_since(start);
  return result;
}

SchemeResult run_federated(const std::string& model_name,
                           const ClassificationData& data,
                           const ExperimentScale& scale,
                           const FederatedOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const models::ModelConfig mconfig = model_config_for(model_name, *data.tokenizer);

  core::Rng init_rng(scale.seed + 40);
  auto initial = models::make_classifier(mconfig, init_rng);

  flare::SimulatorConfig sim;
  sim.num_clients = static_cast<std::int64_t>(data.shards.size());
  sim.num_rounds = scale.fl_rounds;
  sim.seed = scale.seed + 41;
  sim.use_tcp = options.use_tcp;
  sim.compute_threads = scale.compute_threads;

  LearnerOptions lopts;
  lopts.local_epochs = scale.local_epochs;
  lopts.batch_size = batch_for(mconfig, scale);
  lopts.lr = scale.lr;
  lopts.weight_decay = scale.weight_decay;
  lopts.seed = scale.seed + 42;
  lopts.send_diff = options.send_diff;
  lopts.fedprox_mu = options.fedprox_mu;
  lopts.verbose = false;

  // Mask cancellation requires an unweighted sum over contributions; the
  // simulator owns the whole masked path (dealer, filters, unmask
  // provider) behind SimSecureAggConfig.
  const bool weighted = options.secure_masking ? false : options.weighted_aggregation;
  sim.secure_agg.enabled = options.secure_masking;
  sim.secure_agg.dealer_seed = scale.seed + 61;
  flare::SimulatorRunner runner(
      sim, initial->state_dict(), std::make_unique<flare::FedAvgAggregator>(weighted),
      [&](std::int64_t site, const std::string& name) {
        core::Rng site_rng(scale.seed + 50 + site);
        auto model = models::make_classifier(mconfig, site_rng);
        return std::make_shared<ClinicalLearner>(
            name, std::move(model), data.shards[static_cast<std::size_t>(site)],
            data.valid, lopts);
      });

  if (options.dp_sigma > 0.0) {
    runner.set_client_customizer([&](flare::FederatedClient& client) {
      client.outbound_filters().add(std::make_shared<flare::GaussianPrivacyFilter>(
          options.dp_sigma, scale.seed + 60));
    });
  }

  flare::BestModelSelector selector;
  if (options.select_best) selector.attach(runner.server());

  const flare::SimulationResult sim_result = runner.run();

  // Evaluate the chosen global model.
  core::Rng eval_rng(scale.seed + 70);
  auto final_model = models::make_classifier(mconfig, eval_rng);
  final_model->load_state_dict(options.select_best && selector.has_best()
                                   ? selector.best_model()
                                   : sim_result.final_model);
  const EvalResult eval = evaluate(*final_model, data.valid, scale.batch_size);

  SchemeResult result;
  result.scheme = "fl";
  result.model = model_name;
  result.accuracy = eval.accuracy;
  result.loss = eval.loss;
  result.trained_model = final_model->state_dict();
  result.seconds = elapsed_since(start);
  return result;
}

const char* mlm_scheme_name(MlmScheme scheme) {
  switch (scheme) {
    case MlmScheme::kCentralized: return "centralized";
    case MlmScheme::kSmallDataset: return "small-dataset";
    case MlmScheme::kFlImbalanced: return "fl-imbalanced";
    case MlmScheme::kFlBalanced: return "fl-balanced";
  }
  return "?";
}

std::vector<double> run_mlm_scheme(MlmScheme scheme, const ExperimentScale& scale) {
  const data::ClinicalCohortGenerator generator(scale.generator_config());
  const data::ClinicalTokenizer tokenizer(generator.build_vocabulary(),
                                          scale.max_seq_len);
  const data::Dataset corpus(tokenizer.encode_all(
      generator.generate_unlabeled(scale.pretrain_sequences, scale.seed + 80)));
  const data::Dataset valid(tokenizer.encode_all(
      generator.generate_unlabeled(scale.pretrain_valid, scale.seed + 81)));

  const models::ModelConfig mconfig = models::ModelConfig::bert(
      tokenizer.vocab().size(), tokenizer.max_seq_len());
  const data::MlmMasker masker(tokenizer.vocab().size());

  std::vector<double> series;

  const std::int64_t mlm_batch = scale.transformer_batch_size;
  if (scheme == MlmScheme::kCentralized || scheme == MlmScheme::kSmallDataset) {
    data::Dataset train_corpus = corpus;
    if (scheme == MlmScheme::kSmallDataset) {
      // The paper's lower bound: one small site's worth of data (the
      // smallest imbalanced shard, 2%).
      data::PartitionOptions popts;
      popts.size_ratios = data::paper_imbalanced_ratios();
      popts.num_clients = 8;
      popts.seed = scale.seed + 82;
      train_corpus = data::partition(corpus, popts).back();
    }
    core::Rng init_rng(scale.seed + 83);
    auto model = std::make_shared<models::BertForPretraining>(mconfig, init_rng);
    TrainOptions topts;
    topts.epochs = scale.mlm_epochs;
    topts.batch_size = mlm_batch;
    topts.lr = scale.lr;
    topts.seed = scale.seed + 84;
    MlmTrainer trainer(model, masker, topts);
    for (std::int64_t e = 0; e < scale.mlm_epochs; ++e) {
      trainer.train_epoch(train_corpus);
      series.push_back(trainer.evaluate(valid));
    }
    return series;
  }

  // FL schemes: partition the corpus, one MLM learner per site.
  data::PartitionOptions popts;
  popts.num_clients = scale.num_clients;
  if (scheme == MlmScheme::kFlImbalanced &&
      scale.num_clients ==
          static_cast<std::int64_t>(data::paper_imbalanced_ratios().size())) {
    popts.size_ratios = data::paper_imbalanced_ratios();
  }
  popts.seed = scale.seed + 85;
  const std::vector<data::Dataset> shards = data::partition(corpus, popts);

  core::Rng init_rng(scale.seed + 86);
  const models::BertForPretraining initial(mconfig, init_rng);

  flare::SimulatorConfig sim;
  sim.num_clients = scale.num_clients;
  sim.num_rounds = scale.mlm_epochs;
  sim.seed = scale.seed + 87;
  sim.compute_threads = scale.compute_threads;

  LearnerOptions lopts;
  lopts.local_epochs = 1;
  lopts.batch_size = mlm_batch;
  lopts.lr = scale.lr;
  lopts.seed = scale.seed + 88;
  lopts.verbose = false;

  flare::SimulatorRunner runner(
      sim, initial.state_dict(), std::make_unique<flare::FedAvgAggregator>(true),
      [&](std::int64_t site, const std::string& name) {
        core::Rng site_rng(scale.seed + 90 + site);
        auto model = std::make_shared<models::BertForPretraining>(mconfig, site_rng);
        return std::make_shared<MlmFederatedLearner>(
            name, std::move(model), masker,
            shards[static_cast<std::size_t>(site)], valid, lopts);
      });

  // Capture a copy of the global model after every aggregation; evaluating
  // inside the observer would stall the federation, so score them after.
  std::vector<nn::StateDict> round_models;
  runner.server().add_round_observer(
      [&round_models](std::int64_t, const nn::StateDict& model,
                      const flare::RoundMetrics&) { round_models.push_back(model); });
  const flare::SimulationResult run = runner.run();
  if (run.aborted) {
    throw Error("federated MLM run aborted: " + run.abort_reason);
  }

  core::Rng probe_rng(scale.seed + 95);
  auto probe = std::make_shared<models::BertForPretraining>(mconfig, probe_rng);
  TrainOptions probe_opts;
  probe_opts.batch_size = mlm_batch;
  probe_opts.seed = scale.seed + 96;
  MlmTrainer probe_trainer(probe, masker, probe_opts);
  for (const nn::StateDict& model : round_models) {
    probe->load_state_dict(model);
    series.push_back(probe_trainer.evaluate(valid));
  }
  return series;
}

}  // namespace cppflare::train
