// Secure aggregation by pairwise additive masking.
//
// Threat model: honest-but-curious server. Each pair of sites (a, b)
// receives a shared pairwise key at provisioning time (trusted-dealer
// setup; production systems derive it with Diffie-Hellman). Before
// uploading, site s adds to its update, for every other site o, a
// pseudorandom mask stream seeded by (pair key, round), with sign +1 if
// s < o lexicographically and -1 otherwise. Summing all contributions
// cancels every mask exactly, so the server learns only the aggregate:
//
//   sum_s (x_s + m_s) = sum_s x_s          since  sum_s m_s = 0.
//
// Cancellation requires an unweighted sum, so pair this filter with
// FedAvgAggregator(weighted=false) (clients with equal shards), or have
// clients pre-scale their update by the known sample weight.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flare/filters.h"
#include "flare/provision.h"

namespace cppflare::flare {

/// Deals deterministic symmetric pairwise keys for a project. The server
/// must never be given the dealer (only sites hold their pairwise keys).
class SecureAggregationDealer {
 public:
  SecureAggregationDealer(std::string project_name, std::uint64_t seed)
      : project_name_(std::move(project_name)), seed_(seed) {}

  /// 32-byte key shared by exactly the pair {a, b}; symmetric in a/b.
  std::vector<std::uint8_t> pair_key(const std::string& site_a,
                                     const std::string& site_b) const;

 private:
  std::string project_name_;
  std::uint64_t seed_;
};

/// Client-side filter that applies the pairwise masks for `self_site`
/// against every other site in `all_sites`. The mask stream is a
/// unit-normal PRG expansion of (pair key, round), so both members of a
/// pair generate identical values and opposite signs.
class SecureAggMaskFilter : public Filter {
 public:
  SecureAggMaskFilter(std::string self_site, std::vector<std::string> all_sites,
                      const SecureAggregationDealer& dealer,
                      double mask_stddev = 1.0);

  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "SecureAggMask(" + self_site_ + ")"; }

 private:
  std::string self_site_;
  std::vector<std::string> other_sites_;
  std::vector<std::vector<std::uint8_t>> pair_keys_;  // parallel to other_sites_
  double mask_stddev_;
};

}  // namespace cppflare::flare
