// Secure aggregation by pairwise additive masking over fixed-point words.
//
// Threat model: honest-but-curious server. Each pair of sites (a, b)
// receives a shared pairwise key at provisioning time (trusted-dealer
// setup; production systems derive it with Diffie-Hellman). Before
// uploading, site s quantizes every update value to a signed fixed-point
// word q = round(v * 2^frac_bits), then adds, for every other site o, a
// pseudorandom uint32 mask stream seeded by (pair key, round) — modulo
// 2^32, with sign +1 if s < o lexicographically and -1 otherwise — and
// ships the masked word bit-cast into the float slot. Summing the words
// modulo 2^32 cancels every mask *exactly* (modular addition is
// associative and commutative, unlike float addition), so the server
// learns only the quantized aggregate:
//
//   sum_s (q_s + m_s) = sum_s q_s  (mod 2^32)   since  sum_s m_s = 0.
//
// Dropout recovery: when a site's contribution is missing, the survivors'
// masks against it no longer cancel. The server then asks each survivor
// for its *summed* mask stream against the dropped set
// (`unmask_share`), subtracts the revealed sums, and only then decodes.
// The server never sees an individual pairwise mask, so no single link —
// and therefore no single update — is ever unmasked (DESIGN.md §14).
//
// Cancellation requires an unweighted sum, so pair the filter with
// FedAvgAggregator(weighted=false) semantics — `MaskedFedAvgAggregator`
// enforces exactly that — or have clients pre-scale their update by the
// known sample weight (flare/filters.h PreScaleFilter).
//
// Headroom: the decoded sum must satisfy |sum_s v_s| < 2^(31 - frac_bits)
// or the modular sum wraps. frac_bits = 16 leaves +-32768.0 of headroom
// on the aggregate, ample for normalized clinical models.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flare/aggregator.h"
#include "flare/filters.h"
#include "flare/provision.h"

namespace cppflare::flare {

/// Deals deterministic symmetric pairwise keys for a project. The server
/// must never be given the dealer (only sites hold their pairwise keys) —
/// lint R12 keeps references out of everything but this unit and
/// provisioning.
class SecureAggregationDealer {
 public:
  SecureAggregationDealer(std::string project_name, std::uint64_t seed)
      : project_name_(std::move(project_name)), seed_(seed) {}

  /// 32-byte key shared by exactly the pair {a, b}; symmetric in a/b.
  std::vector<std::uint8_t> pair_key(const std::string& site_a,
                                     const std::string& site_b) const;

 private:
  std::string project_name_;
  std::uint64_t seed_;
};

/// Client-side filter: quantizes the update and applies the pairwise mask
/// words for `self_site` against every other site in `all_sites`. Both
/// members of a pair expand (pair key, round) to identical uint32 streams
/// and apply opposite signs modulo 2^32.
class SecureAggMaskFilter : public Filter {
 public:
  SecureAggMaskFilter(std::string self_site, std::vector<std::string> all_sites,
                      const SecureAggregationDealer& dealer,
                      std::int64_t frac_bits = 16);

  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "SecureAggMask(" + self_site_ + ")"; }

  /// Recovery: the sum of this site's mask streams against `dropped` for
  /// `round`, modulo 2^32, bit-cast into a kWeights DXO with the skeleton
  /// of the last masked upload. Only ever a *sum* over the dropped set —
  /// never one pairwise stream. Unknown names in `dropped` (including
  /// self) are ignored, so server and site need not agree on liveness.
  /// Throws Error when called before any upload was masked (no skeleton).
  Dxo unmask_share(const std::vector<std::string>& dropped,
                   std::int64_t round) const;

  /// Restart-tolerant variant: when this filter never masked an upload in
  /// this process (its skeleton died with a crash), shape the share from
  /// `fallback_skeleton` — the zeros template the server attaches to
  /// UnmaskRequest. Masks themselves are seed-derived from (pair key,
  /// round), so the share is identical either way. Throws only when both
  /// skeletons are empty.
  Dxo unmask_share(const std::vector<std::string>& dropped, std::int64_t round,
                   const nn::StateDict& fallback_skeleton) const;

  std::int64_t frac_bits() const { return frac_bits_; }

 private:
  std::string self_site_;
  std::vector<std::string> other_sites_;
  std::vector<std::vector<std::uint8_t>> pair_keys_;  // parallel to other_sites_
  std::int64_t frac_bits_;
  /// Shape template of the last masked upload (zeros), recorded so
  /// unmask_share can draw streams in the exact element order process used.
  nn::StateDict skeleton_;
};

/// Server-side aggregator for masked uploads. Accepts contributions like
/// uniform FedAvg (the masked words ride bit-cast in the float slots), but
/// reduces them as uint32 words modulo 2^32, subtracts any recorded unmask
/// shares, decodes the fixed-point sum back to floats, and only then runs
/// FedAvg's scalar tail (1/n scale, kWeightDiff apply) — so a masked
/// no-drop round is bit-for-bit identical to plain uniform FedAvg whenever
/// the updates are exactly representable on the 2^-frac_bits grid.
class MaskedFedAvgAggregator : public FedAvgAggregator,
                               public MaskRecoveryCapable {
 public:
  explicit MaskedFedAvgAggregator(std::int64_t frac_bits = 16);

  void reset(const nn::StateDict& global, std::int64_t round) override;
  std::string name() const override {
    return "MaskedFedAvg(q" + std::to_string(frac_bits_) + ")";
  }

  // MaskRecoveryCapable
  std::vector<std::string> accepted_sites() const override;
  bool set_unmask_share(const std::string& survivor, const Dxo& share) override;
  void clear_unmask_shares() override;
  std::int64_t unmask_share_count() const override;

 protected:
  /// Modular word sum over pending_ minus recorded shares, decoded to the
  /// float sum StateDict FedAvg's aggregate() tail expects.
  nn::StateDict reduce_pending() const override;

 private:
  std::int64_t frac_bits_;
  std::map<std::string, Dxo> shares_;  // survivor -> revealed mask sum
};

/// Builds one site's mask filter without handing the caller the dealer:
/// the pairwise-key machinery stays inside this unit (lint R12). The
/// returned filter is shared so the simulator can both install it on the
/// outbound chain and route unmask requests to it.
std::shared_ptr<SecureAggMaskFilter> make_secure_agg_mask_filter(
    const std::string& project_name, std::uint64_t dealer_seed,
    const std::string& self_site, const std::vector<std::string>& all_sites,
    std::int64_t frac_bits = 16);

}  // namespace cppflare::flare
