#include "flare/messages.h"

#include "core/error.h"

namespace cppflare::flare {

namespace {

core::ByteWriter begin(MsgType type) {
  core::ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(type));
  return w;
}

core::ByteReader expect(const std::vector<std::uint8_t>& frame, MsgType type) {
  core::ByteReader r(frame);
  const std::uint8_t tag = r.read_u8();
  if (tag != static_cast<std::uint8_t>(type)) {
    throw ProtocolError("expected message type " +
                        std::to_string(static_cast<int>(type)) + ", got " +
                        std::to_string(static_cast<int>(tag)));
  }
  return r;
}

}  // namespace

std::vector<std::uint8_t> pack(const RegisterRequest& m) {
  core::ByteWriter w = begin(MsgType::kRegister);
  w.write_string(m.site_name);
  w.write_string(m.token);
  return w.take();
}

std::vector<std::uint8_t> pack(const RegisterAck& m) {
  core::ByteWriter w = begin(MsgType::kRegisterAck);
  w.write_bool(m.accepted);
  w.write_string(m.session_id);
  w.write_string(m.message);
  return w.take();
}

std::vector<std::uint8_t> pack(const GetTaskRequest& m) {
  core::ByteWriter w = begin(MsgType::kGetTask);
  w.write_string(m.session_id);
  w.write_i64(m.wait_ms);
  return w.take();
}

std::vector<std::uint8_t> pack(const TaskMessage& m) {
  core::ByteWriter w = begin(MsgType::kTask);
  w.write_u8(static_cast<std::uint8_t>(m.task));
  w.write_i64(m.round);
  w.write_i64(m.total_rounds);
  m.payload.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> pack(const SubmitUpdateRequest& m) {
  core::ByteWriter w = begin(MsgType::kSubmitUpdate);
  w.write_string(m.session_id);
  w.write_i64(m.round);
  m.payload.serialize(w);
  return w.take();
}

const char* reject_reason_name(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone: return "none";
    case RejectReason::kSchemaMismatch: return "schema_mismatch";
    case RejectReason::kNonFinite: return "non_finite";
    case RejectReason::kNormOutlier: return "norm_outlier";
    case RejectReason::kStaleRound: return "stale_round";
    case RejectReason::kBadSampleCount: return "bad_sample_count";
    case RejectReason::kQuarantined: return "quarantined";
    case RejectReason::kDuplicate: return "duplicate";
    case RejectReason::kNotSampled: return "not_sampled";
    case RejectReason::kAggregatorRefused: return "aggregator_refused";
    case RejectReason::kRunOver: return "run_over";
    case RejectReason::kRecoveryInProgress: return "recovery_in_progress";
  }
  return "unknown";
}

std::vector<std::uint8_t> pack(const SubmitAck& m) {
  core::ByteWriter w = begin(MsgType::kSubmitAck);
  w.write_bool(m.accepted);
  w.write_string(m.message);
  w.write_u8(static_cast<std::uint8_t>(m.reason));
  return w.take();
}

std::vector<std::uint8_t> pack(const ErrorMessage& m) {
  core::ByteWriter w = begin(MsgType::kError);
  w.write_string(m.message);
  w.write_u8(static_cast<std::uint8_t>(m.code));
  return w.take();
}

std::vector<std::uint8_t> pack(const UnmaskRequest& m) {
  core::ByteWriter w = begin(MsgType::kUnmaskRequest);
  w.write_i64(m.round);
  w.write_i64(m.wave);
  w.write_u32(static_cast<std::uint32_t>(m.dropped.size()));
  for (const std::string& site : m.dropped) w.write_string(site);
  m.skeleton.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> pack(const UnmaskResponse& m) {
  core::ByteWriter w = begin(MsgType::kUnmaskResponse);
  w.write_string(m.session_id);
  w.write_i64(m.round);
  w.write_i64(m.wave);
  m.share.serialize(w);
  return w.take();
}

MsgType peek_type(const std::vector<std::uint8_t>& frame) {
  if (frame.empty()) throw ProtocolError("empty frame");
  const std::uint8_t tag = frame[0];
  if (tag < static_cast<std::uint8_t>(MsgType::kRegister) ||
      tag > static_cast<std::uint8_t>(MsgType::kUnmaskResponse)) {
    throw ProtocolError("unknown message tag " + std::to_string(tag));
  }
  return static_cast<MsgType>(tag);
}

RegisterRequest decode_register(const std::vector<std::uint8_t>& frame) {
  core::ByteReader r = expect(frame, MsgType::kRegister);
  RegisterRequest m;
  m.site_name = r.read_string();
  m.token = r.read_string();
  return m;
}

RegisterAck decode_register_ack(const std::vector<std::uint8_t>& frame) {
  core::ByteReader r = expect(frame, MsgType::kRegisterAck);
  RegisterAck m;
  m.accepted = r.read_bool();
  m.session_id = r.read_string();
  m.message = r.read_string();
  return m;
}

GetTaskRequest decode_get_task(const std::vector<std::uint8_t>& frame) {
  core::ByteReader r = expect(frame, MsgType::kGetTask);
  GetTaskRequest m;
  m.session_id = r.read_string();
  // Trailing long-poll budget, absent in pre-long-poll frames.
  if (r.remaining() > 0) m.wait_ms = r.read_i64();
  return m;
}

TaskMessage decode_task(const std::vector<std::uint8_t>& frame) {
  core::ByteReader r = expect(frame, MsgType::kTask);
  TaskMessage m;
  const std::uint8_t kind = r.read_u8();
  if (kind > static_cast<std::uint8_t>(TaskKind::kStop)) {
    throw ProtocolError("bad task kind");
  }
  m.task = static_cast<TaskKind>(kind);
  m.round = r.read_i64();
  m.total_rounds = r.read_i64();
  m.payload = Dxo::deserialize(r);
  return m;
}

SubmitUpdateRequest decode_submit(const std::vector<std::uint8_t>& frame) {
  core::ByteReader r = expect(frame, MsgType::kSubmitUpdate);
  SubmitUpdateRequest m;
  m.session_id = r.read_string();
  m.round = r.read_i64();
  m.payload = Dxo::deserialize(r);
  return m;
}

SubmitAck decode_submit_ack(const std::vector<std::uint8_t>& frame) {
  core::ByteReader r = expect(frame, MsgType::kSubmitAck);
  SubmitAck m;
  m.accepted = r.read_bool();
  m.message = r.read_string();
  const std::uint8_t reason = r.read_u8();
  if (reason > static_cast<std::uint8_t>(RejectReason::kRecoveryInProgress)) {
    throw ProtocolError("bad reject reason");
  }
  m.reason = static_cast<RejectReason>(reason);
  return m;
}

ErrorMessage decode_error(const std::vector<std::uint8_t>& frame) {
  core::ByteReader r = expect(frame, MsgType::kError);
  ErrorMessage m;
  m.message = r.read_string();
  const std::uint8_t code = r.read_u8();
  if (code > static_cast<std::uint8_t>(ErrorCode::kWrongJob)) {
    throw ProtocolError("bad error code");
  }
  m.code = static_cast<ErrorCode>(code);
  return m;
}

UnmaskRequest decode_unmask_request(const std::vector<std::uint8_t>& frame) {
  core::ByteReader r = expect(frame, MsgType::kUnmaskRequest);
  UnmaskRequest m;
  m.round = r.read_i64();
  m.wave = r.read_i64();
  const std::uint32_t count = r.read_u32();
  m.dropped.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) m.dropped.push_back(r.read_string());
  // Trailing share skeleton, absent in pre-durability frames.
  if (r.remaining() > 0) m.skeleton = Dxo::deserialize(r);
  return m;
}

UnmaskResponse decode_unmask_response(const std::vector<std::uint8_t>& frame) {
  core::ByteReader r = expect(frame, MsgType::kUnmaskResponse);
  UnmaskResponse m;
  m.session_id = r.read_string();
  m.round = r.read_i64();
  m.wave = r.read_i64();
  m.share = Dxo::deserialize(r);
  return m;
}

}  // namespace cppflare::flare
