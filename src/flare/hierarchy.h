// Hierarchical (tree-of-aggregators) FedAvg and the canonical pairwise tree
// reduction shared with the flat aggregator.
//
// The point of the exercise is bitwise reproducibility: a two-level
// aggregation (leaf aggregators each reduce a shard of sites, the root
// reduces the leaf partials) must produce memcmp-identical bytes to the
// flat aggregator on the same contributions. Float addition is not
// associative, so "sum the shard, then sum the partials" only matches flat
// if *both* sides commit to the same reduction tree. We use the canonical
// pairwise tree:
//
//   T(x_0..x_{n-1}) = T(x_0..x_{p-1}) + T(x_p..x_{n-1}),
//   p = largest power of two strictly below n;  T(x_i) = w_i * x_i.
//
// Truncating that tree at an aligned power-of-two block granularity B
// (sites sorted by name, block k = sites [kB, (k+1)B)) yields exactly the
// canonical tree over the ceil(n/B) block partials: every full block — and
// the final ragged one — is a complete subtree. Hence a hierarchical
// reduction with power-of-two fanout B reproduces the flat tree bit for bit
// for ANY contributor count, as long as every contributor of the round sits
// in its name-sorted block. (With fixed roster-range shards and partial
// participation the block boundaries no longer align with the contributor
// count and equality is not guaranteed — see DESIGN.md §13.)
//
// Scalar bookkeeping (weight sums, loss-weighted metric means) is NOT tree
// reduced: it stays a sequential double sum over the same sorted order in
// both modes (see FedAvgAggregator::aggregate), so the final 1/weight_sum
// scale matches too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "flare/aggregator.h"

namespace cppflare::flare {

/// One leaf of a weighted tree reduction: weight * (*data).
struct WeightedRef {
  float weight = 0.0f;
  const nn::StateDict* data = nullptr;
};

/// Canonical pairwise tree over `items[0..n)`: split at the largest power of
/// two strictly below n, recurse, add. Leaf = zeros_like + axpy(weight, x).
/// Throws if n == 0.
nn::StateDict weighted_tree_sum(const WeightedRef* items, std::size_t n);

/// Canonical pairwise tree over already-reduced partials (same split rule,
/// combine = elementwise add). Consumes `parts`. Throws if empty.
nn::StateDict tree_combine(std::vector<nn::StateDict> parts);

/// Two-level FedAvg: contributions are split into name-sorted blocks of
/// `fanout` sites, each block is reduced by a "leaf aggregator" (the blocks
/// reduce independently — on the compute pool when it pays), and the root
/// combines the leaf partials. Semantics, validation, revocation and
/// metrics are inherited from FedAvgAggregator unchanged; only the
/// reduction shape differs, and by the block-subtree property above the
/// result is memcmp-equal to flat FedAvg.
///
/// `fanout` must be a power of two >= 2 (that is what keeps leaf blocks
/// aligned subtrees of the flat canonical tree).
class HierarchicalFedAvgAggregator : public FedAvgAggregator {
 public:
  explicit HierarchicalFedAvgAggregator(bool weighted = true,
                                        std::int64_t fanout = 16);

  std::string name() const override;
  std::int64_t fanout() const { return fanout_; }

 protected:
  nn::StateDict reduce_pending() const override;

 private:
  std::int64_t fanout_;
};

}  // namespace cppflare::flare
