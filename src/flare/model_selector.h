// Best-global-model selection (NVFlare's IntimeModelSelector).
//
// FedAvg's final round is not necessarily its best: with non-IID clients
// the global validation metric oscillates. The selector watches every
// aggregated round and keeps a copy of the best model by the clients'
// sample-weighted validation accuracy (or lowest validation loss).
#pragma once

#include <cstdint>
#include <optional>

#include "core/thread_annotations.h"
#include "flare/aggregator.h"
#include "flare/server.h"

namespace cppflare::flare {

class BestModelSelector {
 public:
  enum class Criterion {
    kMaxValidAccuracy,
    kMinValidLoss,
  };

  explicit BestModelSelector(Criterion criterion = Criterion::kMaxValidAccuracy)
      : criterion_(criterion) {}

  /// Registers this selector on the server. The selector must outlive the
  /// server's run.
  void attach(FederatedServer& server) {
    server.add_round_observer(
        [this](std::int64_t round, const nn::StateDict& model,
               const RoundMetrics& metrics) { observe(round, model, metrics); });
  }

  /// Feeds one aggregated round. Thread-safe.
  void observe(std::int64_t round, const nn::StateDict& model,
               const RoundMetrics& metrics);

  bool has_best() const;
  /// Best model so far; throws if no round was observed.
  nn::StateDict best_model() const;
  std::int64_t best_round() const;
  RoundMetrics best_metrics() const;

 private:
  double score_of(const RoundMetrics& metrics) const;

  Criterion criterion_;
  mutable core::Mutex mu_;
  std::optional<nn::StateDict> best_ CF_GUARDED_BY(mu_);
  std::int64_t best_round_ CF_GUARDED_BY(mu_) = -1;
  RoundMetrics best_metrics_ CF_GUARDED_BY(mu_){};
  double best_score_ CF_GUARDED_BY(mu_) = 0.0;
};

}  // namespace cppflare::flare
