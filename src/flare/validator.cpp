#include "flare/validator.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

#define CPPFLARE_LOG_COMPONENT "UpdateValidator"

namespace cppflare::flare {

namespace {

/// Consistency constant turning a MAD into a normal-comparable sigma.
constexpr double kMadToSigma = 1.4826;

double median_of(std::vector<double> values) {
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  if (values.size() % 2 == 1) return values[mid];
  const double hi = values[mid];
  const double lo = *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}
}  // namespace

UpdateValidator::UpdateValidator(ValidatorConfig config)
    : config_(config) {}

void UpdateValidator::reset(const nn::StateDict& global, std::int64_t round) {
  global_ = global;
  round_ = round;
  norms_.clear();
}

double UpdateValidator::deviation_norm(const Dxo& dxo) const {
  // The statistic is the distance *from the global model* (for kWeights)
  // or the magnitude of the delta (kWeightDiff), not the raw weight norm:
  // a sign-flipped model has exactly the honest norm but roughly twice the
  // honest deviation, so only the deviation catches it.
  double sq = 0.0;
  const bool diff = dxo.kind() == DxoKind::kWeightDiff;
  for (const auto& [name, blob] : dxo.data().entries()) {
    const auto* base = diff ? nullptr : &global_.at(name).values;
    for (std::size_t i = 0; i < blob.values.size(); ++i) {
      const double d = static_cast<double>(blob.values[i]) -
                       (base ? static_cast<double>((*base)[i]) : 0.0);
      sq += d * d;
    }
  }
  return std::sqrt(sq);
}

Verdict UpdateValidator::screen(const Dxo& dxo, double* norm_out) const {
  if (norm_out != nullptr) *norm_out = 0.0;
  if (!config_.enabled) return Verdict{};
  if (config_.check_schema) {
    if (dxo.kind() == DxoKind::kMetrics) {
      return Verdict{RejectReason::kSchemaMismatch,
                     "metrics-only payload cannot update the model"};
    }
    if (!dxo.data().congruent_with(global_)) {
      return Verdict{RejectReason::kSchemaMismatch,
                     "keys/shapes incongruent with the global model"};
    }
  }
  if (config_.check_finite && !dxo.all_finite()) {
    return Verdict{RejectReason::kNonFinite, "payload contains NaN or Inf"};
  }
  if (config_.check_round_freshness && dxo.has_meta(Dxo::kMetaRound)) {
    const std::int64_t claimed = dxo.meta_int(Dxo::kMetaRound, round_);
    if (claimed != round_) {
      return Verdict{RejectReason::kStaleRound,
                     "update stamped for round " + std::to_string(claimed) +
                         ", round " + std::to_string(round_) + " is open"};
    }
  }
  if (dxo.has_meta(Dxo::kMetaNumSamples)) {
    const std::int64_t samples = dxo.meta_int(Dxo::kMetaNumSamples, 0);
    if (samples <= 0) {
      return Verdict{RejectReason::kBadSampleCount,
                     "non-positive num_samples claim"};
    }
    if (config_.max_sample_count > 0 && samples > config_.max_sample_count) {
      return Verdict{RejectReason::kBadSampleCount,
                     "claimed " + std::to_string(samples) +
                         " samples, cap is " +
                         std::to_string(config_.max_sample_count)};
    }
  }
  // The schema check may be off while the norm pass is on; a payload that
  // is not congruent cannot produce a meaningful deviation norm, so guard.
  if (norm_out != nullptr && dxo.kind() != DxoKind::kMetrics &&
      (dxo.kind() == DxoKind::kWeightDiff ||
       dxo.data().congruent_with(global_))) {
    *norm_out = deviation_norm(dxo);
  }
  return Verdict{};
}

Verdict UpdateValidator::admit(Aggregator& aggregator, const std::string& site,
                               const Dxo& dxo) {
  double norm = 0.0;
  const Verdict verdict = screen(dxo, &norm);
  if (!verdict.ok()) {
    LOG(warn).msg("Update from " + site + " rejected (" +
                  reject_reason_name(verdict.reason) + "): " + verdict.detail);
    return verdict;
  }
  if (!aggregator.accept(site, dxo)) {
    return Verdict{RejectReason::kAggregatorRefused,
                   "aggregator refused the contribution"};
  }
  norms_[site] = norm;
  return Verdict{};
}

Verdict UpdateValidator::score(const std::string& site, const Dxo& dxo,
                               double* norm_out) const {
  const Verdict verdict = screen(dxo, norm_out);
  if (!verdict.ok()) {
    LOG(warn).msg("Scored update from quarantined " + site + " fails (" +
                  reject_reason_name(verdict.reason) + "): " + verdict.detail);
  }
  return verdict;
}

bool UpdateValidator::round_stats(double* median, double* scale) const {
  if (!config_.enabled || config_.norm_zscore_threshold <= 0.0) return false;
  if (static_cast<std::int64_t>(norms_.size()) <
      config_.min_updates_for_outlier) {
    return false;
  }
  std::vector<double> values;
  values.reserve(norms_.size());
  for (const auto& [site, norm] : norms_) values.push_back(norm);
  *median = median_of(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (const double v : values) deviations.push_back(std::abs(v - *median));
  // Floor the scale: honest sites with near-identical norms would otherwise
  // drive the MAD toward zero and turn float jitter into "outliers".
  *scale = std::max(kMadToSigma * median_of(deviations),
                    1e-9 + 1e-6 * std::abs(*median));
  return true;
}

std::vector<std::pair<std::string, Verdict>> UpdateValidator::flag_outliers()
    const {
  std::vector<std::pair<std::string, Verdict>> flagged;
  double median = 0.0;
  double scale = 0.0;
  if (!round_stats(&median, &scale)) return flagged;
  for (const auto& [site, norm] : norms_) {
    const double z = std::abs(norm - median) / scale;
    if (z > config_.norm_zscore_threshold) {
      flagged.emplace_back(
          site, Verdict{RejectReason::kNormOutlier,
                        "deviation norm " + std::to_string(norm) +
                            " is " + std::to_string(z) +
                            " robust sigmas from the round median " +
                            std::to_string(median)});
    }
  }
  return flagged;
}

Verdict UpdateValidator::judge_norm(double norm) const {
  double median = 0.0;
  double scale = 0.0;
  if (!round_stats(&median, &scale)) return Verdict{};
  if (!std::isfinite(norm)) {
    return Verdict{RejectReason::kNonFinite, "non-finite deviation norm"};
  }
  const double z = std::abs(norm - median) / scale;
  if (z > config_.norm_zscore_threshold) {
    return Verdict{RejectReason::kNormOutlier,
                   "deviation norm " + std::to_string(norm) + " is " +
                       std::to_string(z) + " robust sigmas from the median"};
  }
  return Verdict{};
}

// ---- SiteReputation ------------------------------------------------------

SiteReputation::SiteReputation(ReputationConfig config) : config_(config) {}

bool SiteReputation::record_rejection(const std::string& site) {
  SiteStanding& st = standings_[site];
  st.strikes += 1;
  st.total_rejections += 1;
  st.clean_streak = 0;
  if (enabled() && !st.quarantined && st.strikes >= config_.quarantine_after) {
    st.quarantined = true;
    st.times_quarantined += 1;
    return true;
  }
  return false;
}

bool SiteReputation::record_clean(const std::string& site) {
  SiteStanding& st = standings_[site];
  if (st.quarantined) {
    st.clean_streak += 1;
    if (config_.parole_after > 0 && st.clean_streak >= config_.parole_after) {
      st.quarantined = false;
      st.strikes = 0;
      st.clean_streak = 0;
      return true;
    }
    return false;
  }
  st.strikes = 0;
  return false;
}

bool SiteReputation::quarantined(const std::string& site) const {
  const auto it = standings_.find(site);
  return it != standings_.end() && it->second.quarantined;
}

std::int64_t SiteReputation::quarantined_count() const {
  std::int64_t n = 0;
  for (const auto& [site, st] : standings_) {
    if (st.quarantined) n += 1;
  }
  return n;
}

std::vector<std::string> SiteReputation::quarantined_sites() const {
  std::vector<std::string> sites;
  for (const auto& [site, st] : standings_) {
    if (st.quarantined) sites.push_back(site);
  }
  return sites;
}

void SiteReputation::restore(std::map<std::string, SiteStanding> standings) {
  standings_ = std::move(standings);
}

}  // namespace cppflare::flare
