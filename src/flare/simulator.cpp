#include "flare/simulator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "core/error.h"
#include "core/logging.h"
#include "core/parallel.h"
#include "core/thread_pool.h"
#include "core/trace.h"
#include "flare/observability.h"
#include "flare/secure_agg.h"
#include "flare/tcp.h"

#define CPPFLARE_LOG_COMPONENT "SimulatorRunner"

namespace cppflare::flare {

namespace {

/// Appends the privacy filters a site's outbound chain gets from the
/// simulator config — DP (clip + noise) first, then the pre-scaling that
/// stands in for server-side sample weighting under masking — and returns
/// the site's mask filter (null when secure_agg is off). The caller adds
/// the masker as the *last* filter, so whatever else touches the update
/// (poisoning included) happens before it is hidden under masks.
std::shared_ptr<SecureAggMaskFilter> add_privacy_filters(
    const SimulatorConfig& config, std::int64_t index, const std::string& name,
    const std::vector<std::string>& all_sites, FilterChain& chain) {
  if (config.dp.enabled) {
    chain.add(std::make_shared<DpGaussianFilter>(
        config.dp.clip_norm, config.dp.noise_multiplier,
        config.dp.seed ^ (0x9e3779b97f4a7c15ull *
                          static_cast<std::uint64_t>(index + 1))));
  }
  if (!config.secure_agg.enabled) return nullptr;
  if (config.secure_agg.pre_scale) {
    chain.add(std::make_shared<PreScaleFilter>(
        config.num_clients, config.secure_agg.total_samples));
  }
  return make_secure_agg_mask_filter(config.job_id, config.secure_agg.dealer_seed,
                                     name, all_sites,
                                     config.secure_agg.frac_bits);
}

/// Completion state shared by all multiplexed sites. `stopping` is the
/// teardown handshake: once the runner sets it (under mu), site callbacks
/// stop posting continuations to the worker pool, which makes destroying
/// the pool safe even if a stray parked reply arrives late.
struct MultiplexRun {
  core::Mutex mu;
  core::CondVar cv;
  std::int64_t remaining CF_GUARDED_BY(mu) = 0;
  bool stopping CF_GUARDED_BY(mu) = false;
  std::vector<std::string> failed CF_GUARDED_BY(mu);
};

/// One site of the multiplexed simulator: an event-driven state machine
/// (register -> long-poll -> train -> submit -> long-poll -> ... -> stop)
/// over the server's async dispatcher. A site never owns a thread; each
/// response is posted as a continuation to the shared worker pool, and
/// while the site waits for a task its get_task is *parked server-side*,
/// occupying no worker at all. That is what lets 256 sites run on 8
/// workers: at any instant only the sites actually training or decoding
/// hold a thread.
///
/// Threading: a site has exactly one exchange outstanding at a time, and
/// each continuation schedules the next, so all mutable state below is
/// accessed serially; the pool's queue mutex provides the happens-before
/// edges between consecutive continuations.
class SimSite : public std::enable_shared_from_this<SimSite> {
 public:
  SimSite(Credential credential, std::shared_ptr<Learner> learner,
          AsyncDispatcher dispatch, core::ThreadPool* pool,
          std::shared_ptr<MultiplexRun> run, std::string job_id,
          std::int64_t long_poll_ms, FilterChain filters,
          std::shared_ptr<SecureAggMaskFilter> masker)
      : credential_(std::move(credential)),
        learner_(std::move(learner)),
        dispatch_(std::move(dispatch)),
        pool_(pool),
        run_(std::move(run)),
        job_id_(std::move(job_id)),
        long_poll_ms_(long_poll_ms),
        filters_(std::move(filters)),
        masker_(std::move(masker)) {}

  void start() {
    auto self = shared_from_this();
    pool_->post([self] { self->send_step(); });
  }

 private:
  enum class Step { kRegister, kPoll, kSubmit, kUnmask };

  /// Seals and dispatches the frame for the current step. The respond
  /// callback only enqueues; all real work happens on a pool worker.
  void send_step() {
    std::vector<std::uint8_t> frame;
    switch (step_) {
      case Step::kRegister:
        frame = pack(RegisterRequest{credential_.name, credential_.token});
        break;
      case Step::kPoll:
        frame = pack(GetTaskRequest{session_id_, long_poll_ms_});
        break;
      case Step::kSubmit:
        frame = pack(
            SubmitUpdateRequest{session_id_, pending_round_, pending_update_});
        break;
      case Step::kUnmask:
        frame = pack(UnmaskResponse{session_id_, unmask_round_, unmask_wave_,
                                    unmask_share_});
        break;
    }
    const std::vector<std::uint8_t> sealed_frame = seal(
        credential_.name, credential_.secret, seq_.next(), frame, job_id_);
    auto self = shared_from_this();
    dispatch_(sealed_frame, [self](std::vector<std::uint8_t> response) {
      self->enqueue(std::move(response));
    });
  }

  /// Called from whatever thread completes the exchange (a pool worker for
  /// immediate replies, the server's ticker or another site's worker for
  /// parked ones). Posts the continuation unless the run is tearing down.
  void enqueue(std::vector<std::uint8_t> response) {
    core::MutexLock lock(run_->mu);
    if (run_->stopping) return;  // runner gave up on us; pool may be dying
    auto self = shared_from_this();
    // std::function needs a copyable callable, so the buffer is captured by
    // value (moved in; the pool's enqueue copies once).
    pool_->post([self, buf = std::move(response)] { self->resume(buf); });
  }

  void resume(const std::vector<std::uint8_t>& response) {
    try {
      const Envelope env = open(response, credential_.secret);
      if (env.sender != "server") {
        throw ProtocolError("response not from server but '" + env.sender + "'");
      }
      server_seq_.check_and_advance(env.sender, env.sequence);
      if (peek_type(env.payload) == MsgType::kError) {
        handle_error(decode_error(env.payload));
        return;
      }
      retries_ = 0;
      switch (step_) {
        case Step::kRegister: {
          const RegisterAck ack = decode_register_ack(env.payload);
          if (!ack.accepted) {
            throw ProtocolError("registration rejected for " +
                                credential_.name + ": " + ack.message);
          }
          session_id_ = ack.session_id;
          step_ = after_register_;
          after_register_ = Step::kPoll;
          break;
        }
        case Step::kPoll: {
          if (peek_type(env.payload) == MsgType::kUnmaskRequest) {
            // Mask-recovery phase (DESIGN.md §14): reveal the sum of our
            // pairwise masks against the dropped set so the server can
            // finish the frozen round.
            const UnmaskRequest req = decode_unmask_request(env.payload);
            if (!masker_) {
              throw ProtocolError(credential_.name +
                                  ": unmask request but masking is off");
            }
            {
              CF_TRACE_SPAN_SITE("client.unmask", credential_.name, req.round);
              unmask_share_ = masker_->unmask_share(req.dropped, req.round,
                                                    req.skeleton.data());
            }
            unmask_round_ = req.round;
            unmask_wave_ = req.wave;
            step_ = Step::kUnmask;
            break;
          }
          const TaskMessage task = decode_task(env.payload);
          if (task.task == TaskKind::kStop) {
            finish({});
            return;
          }
          // kNone: the long-poll budget expired (or this round sampled us
          // out) — re-poll immediately; the server parks us again.
          if (task.task == TaskKind::kTrain) {
            train(task);
            step_ = Step::kSubmit;
          }
          break;
        }
        case Step::kSubmit: {
          const SubmitAck ack = decode_submit_ack(env.payload);
          if (!ack.accepted && ack.message != kDuplicateContribution) {
            LOG(warn)
                .msg("contribution rejected:")
                .msg(ack.message)
                .kv("site", credential_.name)
                .kv("reason", reject_reason_name(ack.reason));
          }
          step_ = Step::kPoll;
          break;
        }
        case Step::kUnmask: {
          const SubmitAck ack = decode_submit_ack(env.payload);
          if (!ack.accepted) {
            // Stale wave / recovery already resolved — harmless.
            LOG(warn)
                .msg("unmask share not accepted:")
                .msg(ack.message)
                .kv("site", credential_.name)
                .kv("round", unmask_round_)
                .kv("wave", unmask_wave_);
          }
          step_ = Step::kPoll;
          break;
        }
      }
      send_step();
    } catch (const std::exception& e) {
      finish(e.what());
    }
  }

  /// In-process transport: retryable faults cannot occur here (the fault
  /// decorators are excluded in multiplexed mode), but honor the protocol
  /// anyway — bounded resend for kRetryable, idempotent re-registration
  /// (resuming the interrupted step) for kUnknownSession.
  void handle_error(const ErrorMessage& err) {
    if (err.code == ErrorCode::kRetryable && ++retries_ <= 5) {
      send_step();
      return;
    }
    if (err.code == ErrorCode::kUnknownSession && ++reregistrations_ <= 3) {
      after_register_ = step_ == Step::kRegister ? Step::kPoll : step_;
      step_ = Step::kRegister;
      send_step();
      return;
    }
    finish(credential_.name + ": server error: " + err.message);
  }

  void train(const TaskMessage& task) {
    FLContext ctx;
    ctx.job_id = job_id_;
    ctx.site_name = credential_.name;
    ctx.current_round = task.round;
    ctx.total_rounds = task.total_rounds;
    {
      CF_TRACE_SPAN_SITE("client.train", credential_.name, task.round);
      pending_update_ = learner_->train(task.payload, ctx);
    }
    if (!pending_update_.has_meta(Dxo::kMetaRound)) {
      pending_update_.set_meta_int(Dxo::kMetaRound, task.round);
    }
    // Same order as FederatedClient::run(): stamp the round, then the
    // outbound privacy chain (DP noise, pre-scaling, masking last).
    filters_.process(pending_update_, ctx);
    pending_round_ = task.round;
  }

  void finish(const std::string& error) {
    if (!error.empty()) {
      LOG(error).msg("site failed:").msg(error).kv("site", credential_.name);
    }
    core::MutexLock lock(run_->mu);
    if (!error.empty()) run_->failed.push_back(credential_.name);
    run_->remaining -= 1;
    run_->cv.notify_all();
  }

  Credential credential_;
  std::shared_ptr<Learner> learner_;
  AsyncDispatcher dispatch_;
  core::ThreadPool* pool_;
  std::shared_ptr<MultiplexRun> run_;
  std::string job_id_;
  std::int64_t long_poll_ms_;
  FilterChain filters_;
  std::shared_ptr<SecureAggMaskFilter> masker_;

  Step step_ = Step::kRegister;
  Step after_register_ = Step::kPoll;
  SequenceSource seq_;
  SequenceTracker server_seq_;
  std::string session_id_;
  std::int64_t pending_round_ = 0;
  Dxo pending_update_;
  std::int64_t unmask_round_ = 0;
  std::int64_t unmask_wave_ = 0;
  Dxo unmask_share_;
  std::int64_t retries_ = 0;
  std::int64_t reregistrations_ = 0;
};

}  // namespace

std::map<std::string, double> SimulationResult::site_metrics() const {
  return metrics.gauges_with_prefix(metric_names::kSitePrefix);
}

SimulatorRunner::SimulatorRunner(SimulatorConfig config, nn::StateDict initial_model,
                                 std::unique_ptr<Aggregator> aggregator,
                                 LearnerFactory factory)
    : config_(std::move(config)), factory_(std::move(factory)) {
  if (!factory_) throw Error("SimulatorRunner: learner factory required");
  const Provisioner provisioner(config_.job_id, config_.seed);
  registry_ = provisioner.provision_sites(config_.num_clients);
  if (config_.secure_agg.enabled) {
    if (config_.secure_agg.pre_scale && config_.secure_agg.total_samples <= 0) {
      throw ConfigError(
          "SimulatorRunner: secure_agg.pre_scale requires total_samples > 0");
    }
    if (const auto* fedavg = dynamic_cast<FedAvgAggregator*>(aggregator.get());
        fedavg && fedavg->weighted() && !config_.secure_agg.pre_scale) {
      throw ConfigError(
          "SimulatorRunner: masked aggregation cannot honor server-side "
          "sample-count weighting (pairwise masks only cancel through an "
          "unweighted sum); enable secure_agg.pre_scale with total_samples "
          "for the client-side weighted path");
    }
    // Substitute the masked aggregator unless the caller already supplied a
    // recovery-capable one.
    if (!dynamic_cast<MaskRecoveryCapable*>(aggregator.get())) {
      aggregator = std::make_unique<MaskedFedAvgAggregator>(
          config_.secure_agg.frac_bits);
    }
  }
  if (config_.resume && !config_.persist_path.empty()) {
    // The runner's job scheduler loads the checkpoint itself when it admits
    // the job; this peek only records where the run resumed from for the
    // result (and logs it before any training happens).
    if (const std::optional<Checkpoint> cpk =
            ModelPersistor(config_.persist_path).load()) {
      resumed_from_round_ = cpk->round;
      LOG(info)
          .msg("Resuming job " + cpk->job_id)
          .kv("completed_round", cpk->round);
    } else {
      LOG(info)
          .msg("resume requested but no checkpoint; starting fresh")
          .kv("path", config_.persist_path);
    }
  }
  ServerConfig server_config;
  server_config.job_id = config_.job_id;
  server_config.num_rounds = config_.num_rounds;
  server_config.min_clients =
      config_.min_clients > 0 ? config_.min_clients : config_.num_clients;
  server_config.expected_clients = config_.num_clients;
  server_config.clients_per_round = config_.clients_per_round;
  server_config.sampling_seed = config_.seed ^ 0xc11e;
  server_config.round_deadline_ms = config_.round_deadline_ms;
  server_config.liveness_timeout_ms = config_.liveness_timeout_ms;
  server_config.validator = config_.validator;
  server_config.reputation = config_.reputation;
  server_config.secure_agg.enabled = config_.secure_agg.enabled;
  server_config.secure_agg.recovery_deadline_ms =
      config_.secure_agg.recovery_deadline_ms;
  server_config.secure_agg.max_recovery_waves =
      config_.secure_agg.max_recovery_waves;
  if (config_.journal && config_.journal_path.empty() &&
      config_.persist_path.empty()) {
    throw ConfigError(
        "SimulatorRunner: journal enabled with neither journal_path nor "
        "persist_path to derive it from");
  }
  // The server is hosted through the job registry (DESIGN.md §16): the
  // runner owns construction (lint rule R14), durability wiring, and the
  // frame router every transport below dispatches into.
  JobSpec spec;
  spec.server = std::move(server_config);
  spec.initial_model = std::move(initial_model);
  spec.aggregator = std::move(aggregator);
  spec.persist_path = config_.persist_path;
  spec.resume = config_.resume;
  spec.journal = config_.journal;
  spec.journal_path = config_.journal_path;
  spec.journal_sync = config_.journal_sync;
  if (config_.dp.enabled) {
    // Surface the accountant's cumulative spend as a gauge after every
    // published round (validated here so a bad delta fails at construction,
    // not mid-run inside an observer).
    const DpAccountant accountant(config_.dp.noise_multiplier, config_.dp.delta);
    spec.configure = [accountant](FederatedServer& server) {
      core::MetricRegistry* metrics = &server.metrics_registry();
      server.add_round_observer(
          [accountant, metrics](std::int64_t round, const nn::StateDict&,
                                const RoundMetrics&) {
            metrics->gauge(metric_names::kDpEpsilonSpent)
                .set(accountant.epsilon_after(round + 1));
          });
    };
  }
  job_runner_ = std::make_unique<JobRunner>(registry_);
  job_runner_->submit(std::move(spec));
  // A single one-slot job always fits the compute budget, so submit admits
  // it synchronously and the server exists from here on.
  server_ = &job_runner_->server(config_.job_id);
}

SimulationResult SimulatorRunner::run() {
  const auto start = std::chrono::steady_clock::now();
  if (config_.trace) core::Tracer::instance().start(config_.trace_capacity);
  const std::int64_t trace_t0 = core::Tracer::instance().now_ns();
  LOG(info).msg("Create the simulate clients.");

  // Divide the machine between site workers and kernel threads before any
  // kernel runs, so every site's training shares one budgeted compute pool
  // instead of each site oversubscribing the host. In multiplexed mode the
  // site-thread count is the pool size, not the site count.
  if (config_.compute_threads > 0) {
    core::set_compute_threads(
        static_cast<std::size_t>(config_.compute_threads));
  } else if (config_.compute_threads == 0) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t sites = static_cast<std::size_t>(std::max<std::int64_t>(
        1, config_.site_workers > 0 ? config_.site_workers
                                    : config_.num_clients));
    const std::size_t per_site = hw > sites ? hw - sites + 1 : 1;
    core::set_compute_threads_if_default(per_site);
  }
  LOG(info)
      .msg("Compute budget")
      .kv("site_workers", config_.site_workers > 0 ? config_.site_workers
                                                   : config_.num_clients)
      .kv("compute_threads", static_cast<std::int64_t>(core::compute_threads()));

  if (config_.site_workers > 0) {
    if (config_.use_tcp) {
      throw ConfigError(
          "SimulatorRunner: site_workers (multiplexed mode) is in-process "
          "only; use_tcp requires the thread-per-site mode");
    }
    if (fault_planner_ || poison_planner_ || customizer_) {
      throw ConfigError(
          "SimulatorRunner: fault/poison planners and client customizers "
          "attach to per-site clients and are not supported with "
          "site_workers; use the thread-per-site mode");
    }
    return run_multiplexed(start, trace_t0);
  }

  std::unique_ptr<TcpServer> tcp_server;
  if (config_.use_tcp) {
    tcp_server = std::make_unique<TcpServer>(0, job_runner_->async_router());
    LOG(info)
        .msg("TCP transport listening")
        .kv("addr", "127.0.0.1")
        .kv("port", static_cast<std::int64_t>(tcp_server->port()));
  }

  // Each site gets a ConnectionFactory so the client can reconnect after a
  // transport failure. `incarnation` counts connections per site (0 = first),
  // letting a FaultPlanner hand out, say, a lossy first connection and a
  // clean replacement.
  auto make_factory = [&, this](std::int64_t index,
                                const std::string& name) -> ConnectionFactory {
    auto incarnation = std::make_shared<std::atomic<std::int64_t>>(0);
    return [this, &tcp_server, index, name,
            incarnation]() -> std::unique_ptr<Connection> {
      std::unique_ptr<Connection> conn;
      if (config_.use_tcp) {
        conn = std::make_unique<TcpConnection>("127.0.0.1", tcp_server->port());
      } else {
        // Async in-process channel so the server can *park* long-polls from
        // in-process clients too, instead of answering kNone immediately.
        // Routed through the job registry like every other transport.
        conn = std::make_unique<AsyncInProcConnection>(
            job_runner_->async_router());
      }
      const std::int64_t n = incarnation->fetch_add(1);
      if (fault_planner_) {
        if (const std::optional<FaultPlan> plan = fault_planner_(index, name, n)) {
          conn = std::make_unique<FaultyConnection>(std::move(conn), *plan);
        }
      }
      return conn;
    };
  };

  // The mask participant list is exactly the client sites: the registry's
  // "server" credential is a channel identity, not a masking peer — masks
  // against a non-contributing name would never cancel.
  std::vector<std::string> site_names;
  site_names.reserve(static_cast<std::size_t>(config_.num_clients));
  for (std::int64_t i = 0; i < config_.num_clients; ++i) {
    site_names.push_back("site-" + std::to_string(i + 1));
  }

  std::vector<std::unique_ptr<FederatedClient>> clients;
  for (std::int64_t i = 0; i < config_.num_clients; ++i) {
    const std::string name = "site-" + std::to_string(i + 1);
    ClientConfig client_config;
    client_config.job_id = config_.job_id;
    client_config.max_idle_ms = config_.timeout_ms;
    client_config.long_poll_ms = config_.long_poll_ms;
    client_config.retry = config_.client_retry;
    auto client = std::make_unique<FederatedClient>(
        client_config, registry_.at(name), make_factory(i, name), factory_(i, name));
    if (customizer_) customizer_(*client);
    const std::shared_ptr<SecureAggMaskFilter> masker = add_privacy_filters(
        config_, i, name, site_names, client->outbound_filters());
    // The poison filter goes in *after* the customizer's filters (privacy,
    // clipping): an adversarial site corrupts what it would actually have
    // sent, and its poison is not accidentally clipped back to sanity. The
    // mask filter goes in last of all — whatever the site sends, honest or
    // poisoned, is what gets hidden under masks.
    if (poison_planner_) {
      if (const std::optional<PoisonPlan> plan = poison_planner_(i, name)) {
        client->outbound_filters().add(std::make_shared<PoisonFilter>(*plan));
        LOG(warn).msg(name + " is ADVERSARIAL this run").kv("site", name);
      }
    }
    if (masker) {
      client->outbound_filters().add(masker);
      client->set_unmask_provider(
          [masker](const std::vector<std::string>& dropped, std::int64_t round,
                   const nn::StateDict& skeleton) {
            return masker->unmask_share(dropped, round, skeleton);
          });
    }
    clients.push_back(std::move(client));
  }

  // One worker per site, as SimulatorRunner multiplexes clients. A scoped
  // pool (not raw std::thread) so site workers are accounted for in the same
  // machine-division story as the compute pool above.
  std::vector<std::string> failed_sites;
  std::exception_ptr first_failure;
  {
    core::ThreadPool site_pool(clients.size());
    std::vector<std::future<void>> done;
    done.reserve(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      done.push_back(site_pool.submit([&, i] { clients[i]->run(); }));
    }
    for (std::size_t i = 0; i < done.size(); ++i) {
      try {
        done[i].get();
      } catch (...) {
        LOG(error).msg("client failed").kv("site", clients[i]->site_name());
        failed_sites.push_back(clients[i]->site_name());
        if (!first_failure) first_failure = std::current_exception();
      }
    }
  }
  const bool success = server_->wait_until_finished(config_.timeout_ms);
  if (tcp_server) tcp_server->stop();
  if (!success && !server_->aborted()) {
    // Nothing to salvage: the server neither finished nor aborted. Failed
    // clients are the likeliest cause — surface the first one.
    if (static_cast<std::int64_t>(failed_sites.size()) >= config_.num_clients &&
        first_failure) {
      std::rethrow_exception(first_failure);
    }
    if (first_failure) std::rethrow_exception(first_failure);
    throw Error("SimulatorRunner: run did not finish within timeout");
  }
  // A degraded but completed run (some clients failed, quorum still met) and
  // an aborted run both report through the result instead of throwing.
  return finalize(start, trace_t0, std::move(failed_sites));
}

SimulationResult SimulatorRunner::run_multiplexed(
    std::chrono::steady_clock::time_point start, std::int64_t trace_t0) {
  LOG(info)
      .msg("Multiplexed mode")
      .kv("sites", config_.num_clients)
      .kv("site_workers", config_.site_workers);
  auto run_state = std::make_shared<MultiplexRun>();
  {
    core::MutexLock lock(run_state->mu);
    run_state->remaining = config_.num_clients;
  }
  std::vector<std::string> failed_sites;
  bool timed_out = false;
  {
    core::ThreadPool pool(static_cast<std::size_t>(config_.site_workers));
    const std::int64_t long_poll =
        std::max<std::int64_t>(1, config_.long_poll_ms);
    // Client sites only — the registry's "server" entry is a channel
    // identity, not a masking peer (see run()).
    std::vector<std::string> site_names;
    site_names.reserve(static_cast<std::size_t>(config_.num_clients));
    for (std::int64_t i = 0; i < config_.num_clients; ++i) {
      site_names.push_back("site-" + std::to_string(i + 1));
    }
    std::vector<std::shared_ptr<SimSite>> sites;
    sites.reserve(static_cast<std::size_t>(config_.num_clients));
    for (std::int64_t i = 0; i < config_.num_clients; ++i) {
      const std::string name = "site-" + std::to_string(i + 1);
      FilterChain filters;
      std::shared_ptr<SecureAggMaskFilter> masker =
          add_privacy_filters(config_, i, name, site_names, filters);
      if (masker) filters.add(masker);
      sites.push_back(std::make_shared<SimSite>(
          registry_.at(name), factory_(i, name), job_runner_->async_router(),
          &pool, run_state, config_.job_id, long_poll, std::move(filters),
          std::move(masker)));
    }
    for (const auto& site : sites) site->start();

    // Every site ends by receiving kStop (run finished or aborted) or by
    // failing, so `remaining == 0` covers normal completion, abort, and
    // the everyone-failed case alike.
    bool drained;
    {
      core::MutexLock lock(run_state->mu);
      drained = run_state->cv.wait_for_ms(
          run_state->mu, config_.timeout_ms,
          [&]() CF_REQUIRES(run_state->mu) { return run_state->remaining == 0; });
    }
    if (!drained) {
      if (!server_->aborted()) {
        timed_out = true;
        // Aborting completes every parked poll with kStop, which is what
        // lets the stuck sites drain below.
        server_->abort("SimulatorRunner: run did not finish within timeout");
      }
      core::MutexLock lock(run_state->mu);
      drained = run_state->cv.wait_for_ms(
          run_state->mu, 60000,
          [&]() CF_REQUIRES(run_state->mu) { return run_state->remaining == 0; });
    }
    {
      core::MutexLock lock(run_state->mu);
      run_state->stopping = true;  // late replies must not touch the pool
      failed_sites = run_state->failed;
      if (!drained) {
        LOG(error)
            .msg("site state machines did not drain; abandoning")
            .kv("undrained", run_state->remaining);
      }
    }
  }  // joins the site worker pool
  if (timed_out) {
    throw Error("SimulatorRunner: run did not finish within timeout");
  }
  if (!server_->wait_until_finished(1000) && !server_->aborted()) {
    // All sites are done but the server never finished: every site failed
    // before the run could complete.
    throw Error("SimulatorRunner: every site failed before the run finished" +
                (failed_sites.empty() ? std::string()
                                      : " (first: " + failed_sites.front() + ")"));
  }
  return finalize(start, trace_t0, std::move(failed_sites));
}

SimulationResult SimulatorRunner::finalize(
    std::chrono::steady_clock::time_point start, std::int64_t trace_t0,
    std::vector<std::string> failed_sites) {
  SimulationResult result;
  result.final_model = server_->global_model();
  result.history = server_->history();
  result.aborted = server_->aborted();
  result.abort_reason = server_->abort_reason();
  result.abort_code = server_->abort_code();
  if (config_.dp.enabled) {
    const DpAccountant accountant(config_.dp.noise_multiplier, config_.dp.delta);
    result.dp_epsilon_spent = accountant.epsilon_after(
        static_cast<std::int64_t>(result.history.size()));
    result.dp_delta = config_.dp.delta;
  }
  result.failed_sites = std::move(failed_sites);
  result.resumed_from_round = resumed_from_round_;
  result.quarantined_sites = server_->quarantined_sites();
  // Snapshot the registry on success *and* abort: the per-site gauges were
  // recorded before validation, so even "every contribution was rejected"
  // aborts keep each site's last reported state.
  result.metrics = server_->metrics_snapshot();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (config_.trace) {
    // The whole-run span is recorded manually: a ScopedSpan here would
    // destruct only after stop() below and be dropped.
    core::Tracer::instance().record_complete("simulator.run", {}, -1, trace_t0,
                                             core::Tracer::instance().now_ns());
    core::Tracer::instance().stop();
    if (!config_.trace_json_path.empty()) {
      write_chrome_trace(config_.trace_json_path);
    }
  }
  if (result.aborted) {
    LOG(error)
        .msg("Simulation aborted:")
        .msg(result.abort_reason)
        .kv("wall_seconds", result.wall_seconds);
  } else {
    LOG(info)
        .msg("Simulation finished")
        .kv("wall_seconds", result.wall_seconds)
        .kv("rounds", config_.num_rounds);
  }
  return result;
}

}  // namespace cppflare::flare
