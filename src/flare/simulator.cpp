#include "flare/simulator.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/error.h"
#include "core/logging.h"
#include "core/parallel.h"
#include "core/thread_pool.h"
#include "flare/tcp.h"

namespace cppflare::flare {

namespace {
const core::Logger& logger() {
  static core::Logger log("SimulatorRunner");
  return log;
}
}  // namespace

SimulatorRunner::SimulatorRunner(SimulatorConfig config, nn::StateDict initial_model,
                                 std::unique_ptr<Aggregator> aggregator,
                                 LearnerFactory factory)
    : config_(std::move(config)), factory_(std::move(factory)) {
  if (!factory_) throw Error("SimulatorRunner: learner factory required");
  const Provisioner provisioner(config_.job_id, config_.seed);
  registry_ = provisioner.provision_sites(config_.num_clients);
  if (!config_.persist_path.empty()) {
    persistor_ = std::make_shared<ModelPersistor>(config_.persist_path);
  }
  ServerConfig server_config;
  server_config.job_id = config_.job_id;
  server_config.num_rounds = config_.num_rounds;
  server_config.min_clients = config_.num_clients;
  server_config.expected_clients = config_.num_clients;
  server_config.clients_per_round = config_.clients_per_round;
  server_config.sampling_seed = config_.seed ^ 0xc11e;
  server_ = std::make_unique<FederatedServer>(server_config, registry_,
                                              std::move(initial_model),
                                              std::move(aggregator), persistor_);
}

SimulationResult SimulatorRunner::run() {
  const auto start = std::chrono::steady_clock::now();
  logger().info("Create the simulate clients.");

  // Divide the machine between site workers and kernel threads before any
  // kernel runs, so every site's training shares one budgeted compute pool
  // instead of each site oversubscribing the host.
  if (config_.compute_threads > 0) {
    core::set_compute_threads(
        static_cast<std::size_t>(config_.compute_threads));
  } else if (config_.compute_threads == 0) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t sites = static_cast<std::size_t>(
        std::max<std::int64_t>(1, config_.num_clients));
    const std::size_t per_site = hw > sites ? hw - sites + 1 : 1;
    core::set_compute_threads_if_default(per_site);
  }
  logger().info("Compute budget: " + std::to_string(config_.num_clients) +
                " site workers x " + std::to_string(core::compute_threads()) +
                " compute threads");

  std::unique_ptr<TcpServer> tcp_server;
  if (config_.use_tcp) {
    tcp_server = std::make_unique<TcpServer>(0, server_->dispatcher());
    logger().info("TCP transport listening on 127.0.0.1:" +
                  std::to_string(tcp_server->port()));
  }

  auto make_connection = [&]() -> std::unique_ptr<Connection> {
    if (config_.use_tcp) {
      return std::make_unique<TcpConnection>("127.0.0.1", tcp_server->port());
    }
    return std::make_unique<InProcConnection>(server_->dispatcher());
  };

  std::vector<std::unique_ptr<FederatedClient>> clients;
  for (std::int64_t i = 0; i < config_.num_clients; ++i) {
    const std::string name = "site-" + std::to_string(i + 1);
    ClientConfig client_config;
    client_config.job_id = config_.job_id;
    client_config.max_idle_ms = config_.timeout_ms;
    auto client = std::make_unique<FederatedClient>(
        client_config, registry_.at(name), make_connection(), factory_(i, name));
    if (customizer_) customizer_(*client);
    clients.push_back(std::move(client));
  }

  // One worker per site, as SimulatorRunner multiplexes clients. A scoped
  // pool (not raw std::thread) so site workers are accounted for in the same
  // machine-division story as the compute pool above.
  {
    core::ThreadPool site_pool(clients.size());
    std::vector<std::future<void>> done;
    done.reserve(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      done.push_back(site_pool.submit([&, i] { clients[i]->run(); }));
    }
    std::exception_ptr first_failure;
    for (std::size_t i = 0; i < done.size(); ++i) {
      try {
        done[i].get();
      } catch (...) {
        logger().error("client " + clients[i]->site_name() + " failed");
        if (!first_failure) first_failure = std::current_exception();
      }
    }
    if (first_failure) std::rethrow_exception(first_failure);
  }
  if (!server_->wait_until_finished(config_.timeout_ms)) {
    throw Error("SimulatorRunner: run did not finish within timeout");
  }
  if (tcp_server) tcp_server->stop();

  SimulationResult result;
  result.final_model = server_->global_model();
  result.history = server_->history();
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  logger().info("Simulation finished in " + std::to_string(result.wall_seconds) +
                " s over " + std::to_string(config_.num_rounds) + " rounds");
  return result;
}

}  // namespace cppflare::flare
