#include "flare/simulator.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "core/error.h"
#include "core/logging.h"
#include "core/parallel.h"
#include "core/thread_pool.h"
#include "core/trace.h"
#include "flare/observability.h"
#include "flare/tcp.h"

#define CPPFLARE_LOG_COMPONENT "SimulatorRunner"

namespace cppflare::flare {

SimulatorRunner::SimulatorRunner(SimulatorConfig config, nn::StateDict initial_model,
                                 std::unique_ptr<Aggregator> aggregator,
                                 LearnerFactory factory)
    : config_(std::move(config)), factory_(std::move(factory)) {
  if (!factory_) throw Error("SimulatorRunner: learner factory required");
  const Provisioner provisioner(config_.job_id, config_.seed);
  registry_ = provisioner.provision_sites(config_.num_clients);
  if (!config_.persist_path.empty()) {
    persistor_ = std::make_shared<ModelPersistor>(config_.persist_path);
  }
  std::optional<Checkpoint> resume;
  if (persistor_ && config_.resume) {
    if (const std::optional<Checkpoint> cpk = persistor_->load()) {
      resume = *cpk;
      resumed_from_round_ = cpk->round;
      LOG(info)
          .msg("Resuming job " + cpk->job_id)
          .kv("completed_round", cpk->round);
    } else {
      LOG(info)
          .msg("resume requested but no checkpoint; starting fresh")
          .kv("path", config_.persist_path);
    }
  }
  ServerConfig server_config;
  server_config.job_id = config_.job_id;
  server_config.num_rounds = config_.num_rounds;
  server_config.min_clients =
      config_.min_clients > 0 ? config_.min_clients : config_.num_clients;
  server_config.expected_clients = config_.num_clients;
  server_config.clients_per_round = config_.clients_per_round;
  server_config.sampling_seed = config_.seed ^ 0xc11e;
  server_config.round_deadline_ms = config_.round_deadline_ms;
  server_config.liveness_timeout_ms = config_.liveness_timeout_ms;
  server_config.validator = config_.validator;
  server_config.reputation = config_.reputation;
  server_ = std::make_unique<FederatedServer>(
      server_config, registry_, std::move(initial_model), std::move(aggregator),
      persistor_, std::move(resume));
}

SimulationResult SimulatorRunner::run() {
  const auto start = std::chrono::steady_clock::now();
  const bool tracing = config_.trace;
  if (tracing) core::Tracer::instance().start(config_.trace_capacity);
  const std::int64_t trace_t0 = core::Tracer::instance().now_ns();
  LOG(info).msg("Create the simulate clients.");

  // Divide the machine between site workers and kernel threads before any
  // kernel runs, so every site's training shares one budgeted compute pool
  // instead of each site oversubscribing the host.
  if (config_.compute_threads > 0) {
    core::set_compute_threads(
        static_cast<std::size_t>(config_.compute_threads));
  } else if (config_.compute_threads == 0) {
    const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t sites = static_cast<std::size_t>(
        std::max<std::int64_t>(1, config_.num_clients));
    const std::size_t per_site = hw > sites ? hw - sites + 1 : 1;
    core::set_compute_threads_if_default(per_site);
  }
  LOG(info)
      .msg("Compute budget")
      .kv("site_workers", config_.num_clients)
      .kv("compute_threads", static_cast<std::int64_t>(core::compute_threads()));

  std::unique_ptr<TcpServer> tcp_server;
  if (config_.use_tcp) {
    tcp_server = std::make_unique<TcpServer>(0, server_->dispatcher());
    LOG(info)
        .msg("TCP transport listening")
        .kv("addr", "127.0.0.1")
        .kv("port", static_cast<std::int64_t>(tcp_server->port()));
  }

  // Each site gets a ConnectionFactory so the client can reconnect after a
  // transport failure. `incarnation` counts connections per site (0 = first),
  // letting a FaultPlanner hand out, say, a lossy first connection and a
  // clean replacement.
  auto make_factory = [&, this](std::int64_t index,
                                const std::string& name) -> ConnectionFactory {
    auto incarnation = std::make_shared<std::atomic<std::int64_t>>(0);
    return [this, &tcp_server, index, name,
            incarnation]() -> std::unique_ptr<Connection> {
      std::unique_ptr<Connection> conn;
      if (config_.use_tcp) {
        conn = std::make_unique<TcpConnection>("127.0.0.1", tcp_server->port());
      } else {
        conn = std::make_unique<InProcConnection>(server_->dispatcher());
      }
      const std::int64_t n = incarnation->fetch_add(1);
      if (fault_planner_) {
        if (const std::optional<FaultPlan> plan = fault_planner_(index, name, n)) {
          conn = std::make_unique<FaultyConnection>(std::move(conn), *plan);
        }
      }
      return conn;
    };
  };

  std::vector<std::unique_ptr<FederatedClient>> clients;
  for (std::int64_t i = 0; i < config_.num_clients; ++i) {
    const std::string name = "site-" + std::to_string(i + 1);
    ClientConfig client_config;
    client_config.job_id = config_.job_id;
    client_config.max_idle_ms = config_.timeout_ms;
    client_config.max_poll_interval_ms = config_.max_poll_interval_ms;
    client_config.retry = config_.client_retry;
    auto client = std::make_unique<FederatedClient>(
        client_config, registry_.at(name), make_factory(i, name), factory_(i, name));
    if (customizer_) customizer_(*client);
    // The poison filter goes in *after* the customizer's filters (privacy,
    // clipping): an adversarial site corrupts what it would actually have
    // sent, and its poison is not accidentally clipped back to sanity.
    if (poison_planner_) {
      if (const std::optional<PoisonPlan> plan = poison_planner_(i, name)) {
        client->outbound_filters().add(std::make_shared<PoisonFilter>(*plan));
        LOG(warn).msg(name + " is ADVERSARIAL this run").kv("site", name);
      }
    }
    clients.push_back(std::move(client));
  }

  // One worker per site, as SimulatorRunner multiplexes clients. A scoped
  // pool (not raw std::thread) so site workers are accounted for in the same
  // machine-division story as the compute pool above.
  std::vector<std::string> failed_sites;
  std::exception_ptr first_failure;
  {
    core::ThreadPool site_pool(clients.size());
    std::vector<std::future<void>> done;
    done.reserve(clients.size());
    for (std::size_t i = 0; i < clients.size(); ++i) {
      done.push_back(site_pool.submit([&, i] { clients[i]->run(); }));
    }
    for (std::size_t i = 0; i < done.size(); ++i) {
      try {
        done[i].get();
      } catch (...) {
        LOG(error).msg("client failed").kv("site", clients[i]->site_name());
        failed_sites.push_back(clients[i]->site_name());
        if (!first_failure) first_failure = std::current_exception();
      }
    }
  }
  const bool success = server_->wait_until_finished(config_.timeout_ms);
  if (tcp_server) tcp_server->stop();
  if (!success && !server_->aborted()) {
    // Nothing to salvage: the server neither finished nor aborted. Failed
    // clients are the likeliest cause — surface the first one.
    if (static_cast<std::int64_t>(failed_sites.size()) >= config_.num_clients &&
        first_failure) {
      std::rethrow_exception(first_failure);
    }
    if (first_failure) std::rethrow_exception(first_failure);
    throw Error("SimulatorRunner: run did not finish within timeout");
  }
  // A degraded but completed run (some clients failed, quorum still met) and
  // an aborted run both report through the result instead of throwing.

  SimulationResult result;
  result.final_model = server_->global_model();
  result.history = server_->history();
  result.aborted = server_->aborted();
  result.abort_reason = server_->abort_reason();
  result.failed_sites = std::move(failed_sites);
  result.resumed_from_round = resumed_from_round_;
  result.quarantined_sites = server_->quarantined_sites();
  // Snapshot the registry on success *and* abort: the per-site gauges were
  // recorded before validation, so even "every contribution was rejected"
  // aborts keep each site's last reported state.
  result.metrics = server_->metrics_snapshot();
  result.site_metrics =
      result.metrics.gauges_with_prefix(metric_names::kSitePrefix);
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (tracing) {
    // The whole-run span is recorded manually: a ScopedSpan here would
    // destruct only after stop() below and be dropped.
    core::Tracer::instance().record_complete("simulator.run", {}, -1, trace_t0,
                                             core::Tracer::instance().now_ns());
    core::Tracer::instance().stop();
    if (!config_.trace_json_path.empty()) {
      write_chrome_trace(config_.trace_json_path);
    }
  }
  if (result.aborted) {
    LOG(error)
        .msg("Simulation aborted:")
        .msg(result.abort_reason)
        .kv("wall_seconds", result.wall_seconds);
  } else {
    LOG(info)
        .msg("Simulation finished")
        .kv("wall_seconds", result.wall_seconds)
        .kv("rounds", config_.num_rounds);
  }
  return result;
}

}  // namespace cppflare::flare
