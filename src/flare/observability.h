// Profiling-hook exporters and federation-level telemetry glue over the
// core tracing substrate (core/trace.h).
//
// The span tracer and MetricRegistry live in core so tensor/train code can
// record without a flare dependency; this header owns everything that turns
// those recordings into artifacts:
//
//   * ChromeTraceSink — streams a drained trace to Chrome's `about:tracing`
//     JSON array format (one complete event per line; open the file at
//     chrome://tracing or https://ui.perfetto.dev).
//   * TraceSummarySink — aggregates spans by name into a fixed-width table
//     (count / total / mean / max wall ms, CPU ms) for terminal inspection.
//   * write_chrome_trace / write_trace_summary — one-call exports of the
//     process-wide tracer.
//
// Metric naming convention (enforced by taste, documented in DESIGN.md §11):
// dot-separated lowercase `layer.thing[.detail]`, with per-site values under
// `site.<name>.<metric>`. The `metric_names` namespace collects the shared
// names so call sites and tests don't drift apart.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "core/trace.h"

namespace cppflare::flare {

/// Shared metric names: the consolidation point for the telemetry that used
/// to live in RoundTelemetry, SimulationResult ad-hoc fields and
/// train/metrics.* (see the deprecation notes in those headers).
namespace metric_names {
// Server round lifecycle (per-run registry owned by FederatedServer).
inline constexpr const char* kServerRoundsCompleted = "server.rounds_completed";
inline constexpr const char* kServerContribAccepted = "server.contributions_accepted";
inline constexpr const char* kServerContribRejected = "server.contributions_rejected";
inline constexpr const char* kServerLateContribs = "server.late_contributions";
inline constexpr const char* kServerEvictedSites = "server.evicted_sites";
inline constexpr const char* kServerDeadlineFired = "server.deadline_fired";
inline constexpr const char* kServerTrainLoss = "server.round.train_loss";
inline constexpr const char* kServerValidAcc = "server.round.valid_acc";
inline constexpr const char* kServerValidLoss = "server.round.valid_loss";
// Prefixes for dynamic names.
inline constexpr const char* kRejectionPrefix = "server.rejections.";  // + reason
inline constexpr const char* kSitePrefix = "site.";  // + <name>.<metric>
// Secure-aggregation mask recovery (per-run registry; DESIGN.md §14).
inline constexpr const char* kServerRecoveryRounds =
    "server.secure_agg.recovery_rounds";
inline constexpr const char* kServerUnmaskShares =
    "server.secure_agg.unmask_shares";
inline constexpr const char* kServerRecoveryDemotions =
    "server.secure_agg.demotions";
inline constexpr const char* kServerRecoveryDropped =
    "server.secure_agg.dropped_sites";
// Differential-privacy accountant (per-run registry): cumulative epsilon
// spent across published rounds at the configured delta.
inline constexpr const char* kDpEpsilonSpent = "privacy.dp.epsilon_spent";
// Transport byte/frame accounting (process-wide registry).
inline constexpr const char* kTcpBytesSent = "tcp.bytes_sent";
inline constexpr const char* kTcpBytesRecv = "tcp.bytes_recv";
inline constexpr const char* kTcpFramesSent = "tcp.frames_sent";
inline constexpr const char* kTcpFramesRecv = "tcp.frames_recv";
// Reactor transport (process-wide registry): connection high-water mark and
// the number of get_task calls currently parked server-side.
inline constexpr const char* kTcpPeakConnections = "tcp.peak_connections";
inline constexpr const char* kServerParkedPolls = "server.parked_polls";
// Training-loop counters (process-wide registry).
inline constexpr const char* kTrainBatches = "train.batches";
inline constexpr const char* kTrainEpochs = "train.epochs";
inline constexpr const char* kTrainEpochMs = "train.epoch_ms";  // histogram
}  // namespace metric_names

/// Builds the canonical per-site gauge name `site.<site>.<metric>`.
std::string site_metric_name(const std::string& site, const std::string& metric);

/// Streams trace events as a Chrome `about:tracing`-compatible JSON array,
/// one complete ("ph":"X") event per line. Timestamps/durations are emitted
/// in microseconds as the format requires; span metadata (site, round, CPU
/// time, span/parent ids) rides in "args". Dropped-event counts surface as
/// one metadata event so truncated timelines are visibly truncated.
class ChromeTraceSink final : public core::TraceSink {
 public:
  /// Does not own `out`; the caller keeps it open until end() returns.
  explicit ChromeTraceSink(std::FILE* out) : out_(out) {}

  void begin(std::int64_t dropped) override;
  void event(const core::TraceEvent& e) override;
  void end() override;

 private:
  std::FILE* out_;
  bool first_ = true;
};

/// One row of the per-span-name aggregation produced by TraceSummarySink.
struct SpanSummary {
  std::int64_t count = 0;
  std::int64_t wall_ns = 0;
  std::int64_t cpu_ns = 0;
  std::int64_t max_wall_ns = 0;
};

/// Aggregates spans by name; render with format() or read rows() directly.
class TraceSummarySink final : public core::TraceSink {
 public:
  void begin(std::int64_t dropped) override { dropped_ = dropped; }
  void event(const core::TraceEvent& e) override;

  const std::map<std::string, SpanSummary>& rows() const { return rows_; }
  std::int64_t dropped() const { return dropped_; }

  /// Fixed-width table, one line per span name, sorted by total wall time.
  std::string format() const;

 private:
  std::map<std::string, SpanSummary> rows_;
  std::int64_t dropped_ = 0;
};

/// Drains the process-wide tracer into `path` as Chrome-tracing JSON.
/// Returns false (and logs) if the file cannot be written.
bool write_chrome_trace(const std::string& path);

/// Drains the process-wide tracer into a summary table string.
std::string write_trace_summary();

}  // namespace cppflare::flare
