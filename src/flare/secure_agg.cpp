#include "flare/secure_agg.h"

#include <algorithm>

#include "core/error.h"
#include "core/rng.h"
#include "core/sha256.h"

namespace cppflare::flare {

std::vector<std::uint8_t> SecureAggregationDealer::pair_key(
    const std::string& site_a, const std::string& site_b) const {
  if (site_a == site_b) throw Error("pair_key: a pair needs two distinct sites");
  const std::string lo = std::min(site_a, site_b);
  const std::string hi = std::max(site_a, site_b);
  const core::Digest digest = core::Sha256::hash(
      "pairkey:" + project_name_ + "\x1f" + std::to_string(seed_) + "\x1f" + lo +
      "\x1f" + hi);
  return std::vector<std::uint8_t>(digest.begin(), digest.end());
}

SecureAggMaskFilter::SecureAggMaskFilter(std::string self_site,
                                         std::vector<std::string> all_sites,
                                         const SecureAggregationDealer& dealer,
                                         double mask_stddev)
    : self_site_(std::move(self_site)), mask_stddev_(mask_stddev) {
  bool found_self = false;
  for (const std::string& site : all_sites) {
    if (site == self_site_) {
      found_self = true;
      continue;
    }
    other_sites_.push_back(site);
    pair_keys_.push_back(dealer.pair_key(self_site_, site));
  }
  if (!found_self) {
    throw Error("SecureAggMaskFilter: self site '" + self_site_ +
                "' not in participant list");
  }
  if (other_sites_.empty()) {
    throw Error("SecureAggMaskFilter: need at least two sites");
  }
}

void SecureAggMaskFilter::process(Dxo& dxo, const FLContext& ctx) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  for (std::size_t p = 0; p < other_sites_.size(); ++p) {
    // Both pair members derive the same seed; the lexicographically
    // smaller site adds the stream, the larger subtracts it.
    const float sign = self_site_ < other_sites_[p] ? 1.0f : -1.0f;
    std::uint64_t seed = 0x5ec0de;
    for (std::uint8_t b : pair_keys_[p]) seed = seed * 131 + b;
    seed ^= static_cast<std::uint64_t>(ctx.current_round) * 0x9e3779b97f4a7c15ull;
    core::Rng stream(seed);
    // Iterate blobs in map order (deterministic and identical across the
    // pair because the dicts are congruent by protocol).
    for (auto& [name, blob] : dxo.data().entries()) {
      for (float& v : blob.values) {
        v += sign * static_cast<float>(stream.normal(0.0, mask_stddev_));
      }
    }
  }
}

}  // namespace cppflare::flare
