#include "flare/secure_agg.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/error.h"
#include "core/rng.h"
#include "core/sha256.h"

namespace cppflare::flare {

namespace {

/// Quantize to a signed fixed-point word, saturating so non-finite or
/// out-of-range values cannot trip UB in llround; wrap-around is then
/// confined to the (documented) aggregate-headroom contract.
std::uint32_t quantize(float v, std::int64_t frac_bits) {
  const double scaled = static_cast<double>(v) *
                        static_cast<double>(std::int64_t{1} << frac_bits);
  if (!std::isfinite(scaled)) return 0;
  constexpr double kMax = 2147483647.0;
  const double clamped = std::max(-kMax, std::min(kMax, scaled));
  return static_cast<std::uint32_t>(
      static_cast<std::int32_t>(std::llround(clamped)));
}

float dequantize(std::uint32_t word, std::int64_t frac_bits) {
  const auto q = static_cast<std::int32_t>(word);
  return static_cast<float>(static_cast<double>(q) /
                            static_cast<double>(std::int64_t{1} << frac_bits));
}

/// One pair's deterministic mask stream for a round: both members fold the
/// pairwise key into the same seed and draw identical uint32 words.
core::Rng pair_stream(const std::vector<std::uint8_t>& pair_key,
                      std::int64_t round) {
  std::uint64_t seed = 0x5ec0de;
  for (std::uint8_t b : pair_key) seed = seed * 131 + b;
  seed ^= static_cast<std::uint64_t>(round) * 0x9e3779b97f4a7c15ull;
  return core::Rng(seed);
}

}  // namespace

std::vector<std::uint8_t> SecureAggregationDealer::pair_key(
    const std::string& site_a, const std::string& site_b) const {
  if (site_a == site_b) throw Error("pair_key: a pair needs two distinct sites");
  const std::string lo = std::min(site_a, site_b);
  const std::string hi = std::max(site_a, site_b);
  const core::Digest digest = core::Sha256::hash(
      "pairkey:" + project_name_ + "\x1f" + std::to_string(seed_) + "\x1f" + lo +
      "\x1f" + hi);
  return std::vector<std::uint8_t>(digest.begin(), digest.end());
}

SecureAggMaskFilter::SecureAggMaskFilter(std::string self_site,
                                         std::vector<std::string> all_sites,
                                         const SecureAggregationDealer& dealer,
                                         std::int64_t frac_bits)
    : self_site_(std::move(self_site)), frac_bits_(frac_bits) {
  if (frac_bits_ < 1 || frac_bits_ > 30) {
    throw Error("SecureAggMaskFilter: frac_bits must be in [1, 30]");
  }
  bool found_self = false;
  for (const std::string& site : all_sites) {
    if (site == self_site_) {
      found_self = true;
      continue;
    }
    other_sites_.push_back(site);
    pair_keys_.push_back(dealer.pair_key(self_site_, site));
  }
  if (!found_self) {
    throw Error("SecureAggMaskFilter: self site '" + self_site_ +
                "' not in participant list");
  }
  if (other_sites_.empty()) {
    throw Error("SecureAggMaskFilter: need at least two sites");
  }
}

void SecureAggMaskFilter::process(Dxo& dxo, const FLContext& ctx) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  // Quantize once, then work purely modulo 2^32 in the float bit slots.
  for (auto& [name, blob] : dxo.data().entries()) {
    for (float& v : blob.values) {
      v = std::bit_cast<float>(quantize(v, frac_bits_));
    }
  }
  for (std::size_t p = 0; p < other_sites_.size(); ++p) {
    // Both pair members derive the same stream; the lexicographically
    // smaller site adds each word, the larger subtracts it (mod 2^32).
    const bool add = self_site_ < other_sites_[p];
    core::Rng stream = pair_stream(pair_keys_[p], ctx.current_round);
    // Iterate blobs in map order (deterministic and identical across the
    // pair because the dicts are congruent by protocol).
    for (auto& [name, blob] : dxo.data().entries()) {
      for (float& v : blob.values) {
        const auto mask = static_cast<std::uint32_t>(stream.engine()());
        const std::uint32_t word = std::bit_cast<std::uint32_t>(v);
        v = std::bit_cast<float>(add ? word + mask : word - mask);
      }
    }
  }
  skeleton_ = dxo.data().zeros_like();
}

Dxo SecureAggMaskFilter::unmask_share(const std::vector<std::string>& dropped,
                                      std::int64_t round) const {
  return unmask_share(dropped, round, nn::StateDict{});
}

Dxo SecureAggMaskFilter::unmask_share(
    const std::vector<std::string>& dropped, std::int64_t round,
    const nn::StateDict& fallback_skeleton) const {
  if (skeleton_.empty() && fallback_skeleton.empty()) {
    throw Error("SecureAggMaskFilter: unmask_share before any masked upload");
  }
  // Zeros, in the element order process used; a restarted process that
  // never masked this round falls back to the server-supplied template.
  nn::StateDict sum = skeleton_.empty() ? fallback_skeleton : skeleton_;
  for (std::size_t p = 0; p < other_sites_.size(); ++p) {
    if (std::find(dropped.begin(), dropped.end(), other_sites_[p]) ==
        dropped.end()) {
      continue;
    }
    const bool add = self_site_ < other_sites_[p];
    core::Rng stream = pair_stream(pair_keys_[p], round);
    for (auto& [name, blob] : sum.entries()) {
      for (float& v : blob.values) {
        const auto mask = static_cast<std::uint32_t>(stream.engine()());
        const std::uint32_t word = std::bit_cast<std::uint32_t>(v);
        v = std::bit_cast<float>(add ? word + mask : word - mask);
      }
    }
  }
  return Dxo(DxoKind::kWeights, std::move(sum));
}

MaskedFedAvgAggregator::MaskedFedAvgAggregator(std::int64_t frac_bits)
    : FedAvgAggregator(/*weighted=*/false), frac_bits_(frac_bits) {
  if (frac_bits_ < 1 || frac_bits_ > 30) {
    throw Error("MaskedFedAvgAggregator: frac_bits must be in [1, 30]");
  }
}

void MaskedFedAvgAggregator::reset(const nn::StateDict& global,
                                   std::int64_t round) {
  FedAvgAggregator::reset(global, round);
  shares_.clear();
}

std::vector<std::string> MaskedFedAvgAggregator::accepted_sites() const {
  std::vector<std::string> sites;
  sites.reserve(pending_.size());
  for (const auto& [site, p] : pending_) sites.push_back(site);
  return sites;
}

bool MaskedFedAvgAggregator::set_unmask_share(const std::string& survivor,
                                              const Dxo& share) {
  if (pending_.count(survivor) == 0) return false;
  if (!share.data().congruent_with(global_)) return false;
  shares_[survivor] = share;
  return true;
}

void MaskedFedAvgAggregator::clear_unmask_shares() { shares_.clear(); }

std::int64_t MaskedFedAvgAggregator::unmask_share_count() const {
  return static_cast<std::int64_t>(shares_.size());
}

nn::StateDict MaskedFedAvgAggregator::reduce_pending() const {
  // Word-wise modular sum of the masked contributions. Order-independent
  // by construction (modular addition commutes), but iterate site-name
  // order anyway to mirror the float path.
  nn::StateDict accum = global_.zeros_like();
  auto fold = [&accum](const nn::StateDict& d, bool add) {
    auto it = accum.entries().begin();
    for (const auto& [name, blob] : d.entries()) {
      auto& out = it->second.values;
      for (std::size_t i = 0; i < blob.values.size(); ++i) {
        const std::uint32_t a = std::bit_cast<std::uint32_t>(out[i]);
        const std::uint32_t b = std::bit_cast<std::uint32_t>(blob.values[i]);
        out[i] = std::bit_cast<float>(add ? a + b : a - b);
      }
      ++it;
    }
  };
  for (const auto& [site, p] : pending_) fold(p.dxo.data(), /*add=*/true);
  // Dropout recovery: strip the survivors' revealed mask sums against the
  // dropped set; masks among the summed contributors already cancelled.
  for (const auto& [site, share] : shares_) fold(share.data(), /*add=*/false);
  for (auto& [name, blob] : accum.entries()) {
    for (float& v : blob.values) {
      v = dequantize(std::bit_cast<std::uint32_t>(v), frac_bits_);
    }
  }
  return accum;
}

std::shared_ptr<SecureAggMaskFilter> make_secure_agg_mask_filter(
    const std::string& project_name, std::uint64_t dealer_seed,
    const std::string& self_site, const std::vector<std::string>& all_sites,
    std::int64_t frac_bits) {
  const SecureAggregationDealer dealer(project_name, dealer_seed);
  return std::make_shared<SecureAggMaskFilter>(self_site, all_sites, dealer,
                                               frac_bits);
}

}  // namespace cppflare::flare
