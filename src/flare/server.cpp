#include "flare/server.h"

#include <chrono>

#include "core/error.h"
#include "core/logging.h"
#include "core/rng.h"

namespace cppflare::flare {

namespace {
const core::Logger& client_manager_log() {
  static core::Logger log("ClientManager");
  return log;
}
const core::Logger& sag_log() {
  static core::Logger log("ScatterAndGather");
  return log;
}
}  // namespace

FederatedServer::FederatedServer(ServerConfig config,
                                 std::map<std::string, Credential> registry,
                                 nn::StateDict initial_model,
                                 std::unique_ptr<Aggregator> aggregator,
                                 std::shared_ptr<ModelPersistor> persistor)
    : config_(std::move(config)),
      registry_(std::move(registry)),
      persistor_(std::move(persistor)),
      global_(std::move(initial_model)),
      aggregator_(std::move(aggregator)) {
  if (!aggregator_) throw Error("FederatedServer: aggregator required");
  if (config_.num_rounds <= 0) throw Error("FederatedServer: num_rounds must be > 0");
  aggregator_->reset(global_, 0);
}

Dispatcher FederatedServer::dispatcher() {
  return [this](const std::vector<std::uint8_t>& request) {
    return handle_sealed(request);
  };
}

std::vector<std::uint8_t> FederatedServer::handle_sealed(
    const std::vector<std::uint8_t>& request) {
  std::string sender;
  try {
    sender = peek_sender(request);
    auto cred_it = registry_.find(sender);
    if (cred_it == registry_.end()) {
      throw ProtocolError("unknown participant '" + sender + "'");
    }
    const Envelope env = open(request, cred_it->second.secret);
    inbound_seq_.check_and_advance(sender, env.sequence);
    const std::vector<std::uint8_t> response = handle_frame(sender, env.payload);
    std::uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seq = ++outbound_seq_[sender];
    }
    return seal("server", cred_it->second.secret, seq, response);
  } catch (const std::exception& e) {
    // Errors to authenticated-but-misbehaving peers are sealed too when we
    // know the key; otherwise send a plain error envelope under an empty
    // key (the client will fail verification, which is the right outcome
    // for an unknown sender).
    const std::vector<std::uint8_t> body = pack(ErrorMessage{e.what()});
    auto cred_it = registry_.find(sender);
    const std::vector<std::uint8_t> key =
        cred_it == registry_.end() ? std::vector<std::uint8_t>{}
                                   : cred_it->second.secret;
    std::uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(mu_);
      seq = ++outbound_seq_[sender];
    }
    return seal("server", key, seq, body);
  }
}

std::vector<std::uint8_t> FederatedServer::handle_frame(
    const std::string& sender, const std::vector<std::uint8_t>& frame) {
  switch (peek_type(frame)) {
    case MsgType::kRegister:
      return on_register(sender, decode_register(frame));
    case MsgType::kGetTask:
      return on_get_task(sender, decode_get_task(frame));
    case MsgType::kSubmitUpdate:
      return on_submit(sender, decode_submit(frame));
    default:
      throw ProtocolError("unexpected message type from '" + sender + "'");
  }
}

std::vector<std::uint8_t> FederatedServer::on_register(const std::string& sender,
                                                       const RegisterRequest& req) {
  if (req.site_name != sender) {
    throw ProtocolError("register: site name does not match envelope sender");
  }
  const Credential& cred = registry_.at(sender);
  if (req.token != cred.token) {
    client_manager_log().warn("Client " + sender + " presented a bad token");
    return pack(RegisterAck{false, "", "invalid token"});
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::string session =
      "sess-" + std::to_string(++session_counter_) + "-" + sender;
  sessions_[sender] = session;
  client_manager_log().info(
      "Client: New client " + sender + "@127.0.0.1 joined. Sent token: " +
      cred.token + ". Total clients: " + std::to_string(sessions_.size()));
  if (!started_ &&
      static_cast<std::int64_t>(sessions_.size()) >= config_.expected_clients) {
    started_ = true;
    round_start_ = std::chrono::steady_clock::now();
    sample_round_participants_locked();
    sag_log().info("Round " + std::to_string(round_) + " started.");
    events_.fire(EventType::kStartRun, make_context_locked());
    events_.fire(EventType::kRoundStarted, make_context_locked());
  }
  return pack(RegisterAck{
      true, session,
      "Successfully registered client:" + sender + " for project " +
          config_.job_id + ". Token:" + cred.token});
}

std::vector<std::uint8_t> FederatedServer::on_get_task(const std::string& sender,
                                                       const GetTaskRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(sender);
  if (it == sessions_.end() || it->second != req.session_id) {
    throw ProtocolError("get_task: no active session for '" + sender + "'");
  }
  maybe_close_round_locked();
  TaskMessage task;
  task.total_rounds = config_.num_rounds;
  task.round = round_;
  if (finished_) {
    task.task = TaskKind::kStop;
  } else if (!started_ || submitted_.count(sender) != 0 ||
             !participates_locked(sender)) {
    task.task = TaskKind::kNone;
  } else {
    task.task = TaskKind::kTrain;
    task.payload = Dxo(DxoKind::kWeights, global_);
    task.payload.set_meta_int(Dxo::kMetaRound, round_);
  }
  return pack(task);
}

std::vector<std::uint8_t> FederatedServer::on_submit(const std::string& sender,
                                                     const SubmitUpdateRequest& req) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(sender);
  if (it == sessions_.end() || it->second != req.session_id) {
    throw ProtocolError("submit: no active session for '" + sender + "'");
  }
  if (finished_) return pack(SubmitAck{false, "run already finished"});
  if (req.round != round_) {
    sag_log().warn("Stale contribution from " + sender + " for round " +
                   std::to_string(req.round) + " (current " +
                   std::to_string(round_) + ")");
    return pack(SubmitAck{false, "stale round"});
  }
  if (submitted_.count(sender) != 0) {
    return pack(SubmitAck{false, "duplicate contribution"});
  }
  if (!participates_locked(sender)) {
    return pack(SubmitAck{false, "not sampled for this round"});
  }

  Dxo contribution = req.payload;
  const FLContext ctx = make_context_locked();
  inbound_filters_.process(contribution, ctx);
  if (!aggregator_->accept(sender, contribution)) {
    return pack(SubmitAck{false, "rejected by aggregator"});
  }
  submitted_.insert(sender);
  if (aggregator_->accepted_count() >= round_quorum_locked()) {
    finish_round_locked();
  } else {
    maybe_close_round_locked();
  }
  return pack(SubmitAck{true, "accepted"});
}

FLContext FederatedServer::make_context_locked() const {
  FLContext ctx;
  ctx.job_id = config_.job_id;
  ctx.current_round = round_;
  ctx.total_rounds = config_.num_rounds;
  return ctx;
}

void FederatedServer::finish_round_locked() {
  events_.fire(EventType::kBeforeAggregation, make_context_locked());
  sag_log().info("End aggregation.");
  global_ = aggregator_->aggregate();
  history_.push_back(aggregator_->metrics());
  events_.fire(EventType::kAfterAggregation, make_context_locked());
  for (const RoundObserver& observer : round_observers_) {
    observer(round_, global_, history_.back());
  }

  if (persistor_) {
    sag_log().info("Start persist model on server.");
    persistor_->save({config_.job_id, round_, global_});
    sag_log().info("End persist model on server.");
  }
  sag_log().info("Round " + std::to_string(round_) + " finished.");
  events_.fire(EventType::kRoundDone, make_context_locked());

  submitted_.clear();
  round_ += 1;
  if (round_ >= config_.num_rounds) {
    finished_ = true;
    events_.fire(EventType::kEndRun, make_context_locked());
    finished_cv_.notify_all();
  } else {
    aggregator_->reset(global_, round_);
    round_start_ = std::chrono::steady_clock::now();
    sample_round_participants_locked();
    sag_log().info("Round " + std::to_string(round_) + " started.");
    events_.fire(EventType::kRoundStarted, make_context_locked());
  }
}

void FederatedServer::maybe_close_round_locked() {
  if (finished_ || !started_ || config_.round_deadline_ms <= 0) return;
  if (aggregator_->accepted_count() < config_.min_clients) return;
  if (aggregator_->accepted_count() >= round_quorum_locked()) return;  // closes anyway
  const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - round_start_)
                       .count();
  if (age < config_.round_deadline_ms) return;
  sag_log().warn("Round " + std::to_string(round_) + " deadline exceeded; closing with " +
                 std::to_string(aggregator_->accepted_count()) + " of " +
                 std::to_string(round_quorum_locked()) + " contributions");
  finish_round_locked();
}

void FederatedServer::sample_round_participants_locked() {
  sampled_.clear();
  if (config_.clients_per_round <= 0 ||
      config_.clients_per_round >= static_cast<std::int64_t>(sessions_.size())) {
    return;  // empty set means "everyone participates"
  }
  std::vector<std::string> sites;
  sites.reserve(sessions_.size());
  for (const auto& [site, session] : sessions_) sites.push_back(site);
  core::Rng rng(config_.sampling_seed ^
                (static_cast<std::uint64_t>(round_) * 0x9e3779b97f4a7c15ull));
  rng.shuffle(sites);
  for (std::int64_t i = 0; i < config_.clients_per_round; ++i) {
    sampled_.insert(sites[static_cast<std::size_t>(i)]);
  }
  std::string names;
  for (const std::string& s : sampled_) names += (names.empty() ? "" : ", ") + s;
  sag_log().info("Round " + std::to_string(round_) + " sampled participants: " +
                 names);
}

bool FederatedServer::participates_locked(const std::string& site) const {
  return sampled_.empty() || sampled_.count(site) != 0;
}

std::int64_t FederatedServer::round_quorum_locked() const {
  if (!sampled_.empty()) return static_cast<std::int64_t>(sampled_.size());
  return config_.min_clients;
}

bool FederatedServer::finished() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

bool FederatedServer::wait_until_finished(std::int64_t timeout_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  return finished_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                               [this] { return finished_; });
}

nn::StateDict FederatedServer::global_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return global_;
}

std::vector<RoundMetrics> FederatedServer::history() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

std::int64_t FederatedServer::current_round() const {
  std::lock_guard<std::mutex> lock(mu_);
  return round_;
}

std::int64_t FederatedServer::registered_clients() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<std::int64_t>(sessions_.size());
}

}  // namespace cppflare::flare
