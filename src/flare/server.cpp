#include "flare/server.h"

#include <algorithm>
#include <chrono>

#include "core/crashpoint.h"
#include "core/error.h"
#include "core/logging.h"
#include "core/rng.h"
#include "flare/observability.h"

namespace cppflare::flare {

namespace {
/// Two components log from this file (NVFlare splits them the same way):
/// registration/liveness under ClientManager, round control under
/// ScatterAndGather — hence LOG_AS instead of a file-wide LOG component.
constexpr const char* kClientManager = "ClientManager";
constexpr const char* kSag = "ScatterAndGather";

/// The sender is authenticated but its session is gone (server restart or
/// eviction followed by session loss). Mapped to ErrorCode::kUnknownSession
/// so clients know to re-register instead of aborting.
struct UnknownSessionError : public ProtocolError {
  using ProtocolError::ProtocolError;
};

/// Masked uploads are pseudorandom bit patterns: NaN/Inf scans and norm
/// statistics would reject every honest contribution, so secure aggregation
/// forces those validator passes off (the documented trade-off — masking
/// defeats per-site inspection; DESIGN.md §14). Schema, freshness and
/// sample-count checks still run: shapes and meta stay plaintext.
ValidatorConfig effective_validator_config(const ServerConfig& config) {
  ValidatorConfig v = config.validator;
  if (!config.secure_agg.enabled) return v;
  if (v.enabled && (v.check_finite || v.norm_zscore_threshold > 0.0)) {
    LOG_AS(kSag, warn)
        .msg("Secure aggregation enabled: disabling finite-value and "
             "norm-outlier validation (masked updates are opaque to "
             "per-site inspection)")
        .kv("job", config.job_id);
    v.check_finite = false;
    v.norm_zscore_threshold = 0.0;
  }
  return v;
}
}  // namespace

const char* abort_code_name(AbortCode code) {
  switch (code) {
    case AbortCode::kNone: return "none";
    case AbortCode::kExternal: return "external";
    case AbortCode::kAllRejected: return "all_rejected";
    case AbortCode::kDeadlineBelowQuorum: return "deadline_below_quorum";
    case AbortCode::kRecoveryBelowQuorum: return "recovery_below_quorum";
    case AbortCode::kRecoveryExhausted: return "recovery_exhausted";
  }
  return "unknown";
}

FederatedServer::FederatedServer(ServerConfig config,
                                 std::map<std::string, Credential> registry,
                                 nn::StateDict initial_model,
                                 std::unique_ptr<Aggregator> aggregator,
                                 std::shared_ptr<ModelPersistor> persistor,
                                 std::optional<Checkpoint> resume,
                                 std::shared_ptr<RoundJournal> journal)
    : config_(std::move(config)),
      registry_(std::move(registry)),
      persistor_(std::move(persistor)),
      journal_(std::move(journal)),
      global_(std::move(initial_model)),
      aggregator_(std::move(aggregator)),
      validator_(effective_validator_config(config_)),
      reputation_(config_.reputation) {
  if (!aggregator_) throw Error("FederatedServer: aggregator required");
  if (config_.job_id.empty()) {
    throw ConfigError(
        "FederatedServer: job_id is required (the job registry keys servers "
        "and routes wire frames by it)");
  }
  if (config_.num_rounds <= 0) throw Error("FederatedServer: num_rounds must be > 0");
  mask_recovery_ = dynamic_cast<MaskRecoveryCapable*>(aggregator_.get());
  if (config_.secure_agg.enabled) {
    if (mask_recovery_ == nullptr) {
      throw ConfigError(
          "FederatedServer: secure_agg.enabled requires a mask-recovery-"
          "capable aggregator (got " + aggregator_->name() + ")");
    }
    if (config_.clients_per_round > 0) {
      throw ConfigError(
          "FederatedServer: secure aggregation cannot be combined with "
          "clients_per_round sampling — a sampled-out site's pairwise masks "
          "never cancel");
    }
  }
  if (resume.has_value()) {
    if (resume->job_id != config_.job_id) {
      throw ConfigError("FederatedServer: checkpoint is for job '" +
                        resume->job_id + "', not '" + config_.job_id + "'");
    }
    global_ = std::move(resume->model);
    history_ = std::move(resume->history);
    round_ = resume->round + 1;
    reputation_.restore(std::move(resume->reputation));
    const std::int64_t quarantined = reputation_.quarantined_count();
    LOG_AS(kSag, info)
        .msg("Resuming job " + config_.job_id + " from checkpoint")
        .kv("last_round", resume->round)
        .kv("next_round", round_)
        .kv("num_rounds", config_.num_rounds)
        .kv("quarantined", quarantined);
    if (round_ >= config_.num_rounds) finished_ = true;
  }
  if (!finished_) {
    aggregator_->reset(global_, round_);
    validator_.reset(global_, round_);
  }
  if (journal_) {
    // Reconcile journal against checkpoint. Only a journal whose open round
    // IS the round we are about to run holds usable mid-round state; any
    // other open round is stale — most commonly a crash in the window after
    // the CPK3 checkpoint was saved but before the commit frame landed, in
    // which case the checkpoint already owns that round's outcome.
    const JournalReplay replay = journal_->open(config_.job_id);
    if (replay.open_round >= 0 && !finished_ &&
        replay.open_round == round_) {
      core::MutexLock lock(mu_);
      apply_journal_locked(replay);
    } else if (replay.open_round >= 0) {
      LOG_AS(kSag, warn)
          .msg("Journal holds a round the checkpoint superseded (or that no "
               "checkpoint backs); discarding it")
          .kv("journal_round", replay.open_round)
          .kv("next_round", round_)
          .kv("path", journal_->path());
      journal_->discard();
    }
  }
  // Unlocked reads are safe here: the ticker — the first other thread — has
  // not started yet, so construction still owns all state exclusively.
  born_terminal_ = finished_ || aborted_;
  // R5-exempt: the server's ticker thread (round deadlines, park expiry)
  ticker_thread_ = std::thread([this] { ticker_loop(); });
}

FederatedServer::~FederatedServer() {
  {
    core::MutexLock lock(mu_);
    ticker_stop_ = true;
    // Force-complete every park with its current answer (kStop when the run
    // ended, kNone otherwise) so no transport continuation outlives us.
    for (auto& [sender, park] : parked_) {
      ready_replies_.push_back(ReadyReply{sender, std::move(park.key),
                                          build_poll_reply_locked(sender).body,
                                          std::move(park.respond)});
    }
    parked_.clear();
    metrics_.gauge(metric_names::kServerParkedPolls).set(0.0);
    ticker_cv_.notify_all();
  }
  if (ticker_thread_.joinable()) ticker_thread_.join();
  drain_ready_replies();
}

Dispatcher FederatedServer::dispatcher() {
  return [this](const std::vector<std::uint8_t>& request) {
    return handle_sealed(request);
  };
}

AsyncDispatcher FederatedServer::async_dispatcher() {
  return [this](const std::vector<std::uint8_t>& request, RespondFn respond) {
    handle_sealed_async(request, std::move(respond));
  };
}

std::vector<std::uint8_t> FederatedServer::seal_as_server(
    const std::string& sender, const std::vector<std::uint8_t>& key,
    const std::vector<std::uint8_t>& body) {
  // The pool is internally synchronized (and possibly shared with the job
  // router), so sealing no longer touches mu_.
  return seal("server", key, outbound_seq_->next(sender), body,
              config_.job_id);
}

std::vector<std::uint8_t> FederatedServer::handle_sealed(
    const std::vector<std::uint8_t>& request) {
  std::string sender;
  std::vector<std::uint8_t> key;
  try {
    sender = peek_sender(request);
    auto cred_it = registry_.find(sender);
    if (cred_it == registry_.end()) {
      throw ProtocolError("unknown participant '" + sender + "'");
    }
    key = cred_it->second.secret;
    Envelope env;
    try {
      env = open(request, key);
    } catch (const std::exception& e) {
      // The frame failed verification *before* it was trusted: a corrupted
      // or truncated envelope. That is damage in flight, not a misbehaving
      // application — tell the client to re-seal and resend.
      return seal_as_server(
          sender, key, pack(ErrorMessage{e.what(), ErrorCode::kRetryable}));
    }
    if (!env.job_id.empty() && env.job_id != config_.job_id) {
      // Authenticated but bound to another job: a misrouted or cross-job
      // replayed frame. Typed so the client aborts instead of retrying.
      // Checked BEFORE the replay tracker advances: sites share one
      // credential across jobs, so a replayed high-sequence frame from
      // another job must not poison this job's per-sender sequence state
      // (it would wedge the site's legitimate client as a false replay).
      return seal_as_server(
          sender, key,
          pack(ErrorMessage{"frame bound to job '" + env.job_id +
                                "' reached job '" + config_.job_id + "'",
                            ErrorCode::kWrongJob}));
    }
    try {
      inbound_seq_.check_and_advance(sender, env.sequence);
    } catch (const std::exception& e) {
      // Replayed envelope: retryable, the client re-seals with a fresh
      // sequence and resends.
      return seal_as_server(
          sender, key, pack(ErrorMessage{e.what(), ErrorCode::kRetryable}));
    }
    record_liveness(sender);
    const std::vector<std::uint8_t> response = handle_frame(sender, env.payload);
    const std::vector<std::uint8_t> sealed = seal_as_server(sender, key, response);
    // The request may have advanced the round and released parked polls;
    // deliver them now that mu_ is free.
    drain_ready_replies();
    return sealed;
  } catch (const UnknownSessionError& e) {
    return seal_as_server(sender, key,
                          pack(ErrorMessage{e.what(), ErrorCode::kUnknownSession}));
  } catch (const TransportError& e) {
    return seal_as_server(sender, key,
                          pack(ErrorMessage{e.what(), ErrorCode::kRetryable}));
  } catch (const std::exception& e) {
    // Errors to authenticated-but-misbehaving peers are sealed too when we
    // know the key; otherwise send a plain error envelope under an empty
    // key (the client will fail verification, which is the right outcome
    // for an unknown sender).
    return seal_as_server(sender, key,
                          pack(ErrorMessage{e.what(), ErrorCode::kFatal}));
  }
}

void FederatedServer::handle_sealed_async(
    const std::vector<std::uint8_t>& request, RespondFn respond) {
  // Same authentication skeleton as handle_sealed; the difference is the
  // get_task fork, which may park `respond` instead of answering inline.
  std::string sender;
  std::vector<std::uint8_t> key;
  try {
    sender = peek_sender(request);
    auto cred_it = registry_.find(sender);
    if (cred_it == registry_.end()) {
      throw ProtocolError("unknown participant '" + sender + "'");
    }
    key = cred_it->second.secret;
    Envelope env;
    try {
      env = open(request, key);
    } catch (const std::exception& e) {
      respond(seal_as_server(
          sender, key, pack(ErrorMessage{e.what(), ErrorCode::kRetryable})));
      return;
    }
    // Job binding before the replay tracker, for the same reason as in
    // handle_sealed: cross-job frames must not mutate sequence state.
    if (!env.job_id.empty() && env.job_id != config_.job_id) {
      respond(seal_as_server(
          sender, key,
          pack(ErrorMessage{"frame bound to job '" + env.job_id +
                                "' reached job '" + config_.job_id + "'",
                            ErrorCode::kWrongJob})));
      return;
    }
    try {
      inbound_seq_.check_and_advance(sender, env.sequence);
    } catch (const std::exception& e) {
      respond(seal_as_server(
          sender, key, pack(ErrorMessage{e.what(), ErrorCode::kRetryable})));
      return;
    }
    record_liveness(sender);
    if (peek_type(env.payload) == MsgType::kGetTask) {
      const GetTaskRequest req = decode_get_task(env.payload);
      if (req.wait_ms > 0) {
        park_or_reply_get_task(sender, key, req, respond);
        drain_ready_replies();
        return;
      }
    }
    respond(seal_as_server(sender, key, handle_frame(sender, env.payload)));
  } catch (const UnknownSessionError& e) {
    respond(seal_as_server(
        sender, key, pack(ErrorMessage{e.what(), ErrorCode::kUnknownSession})));
  } catch (const TransportError& e) {
    respond(seal_as_server(
        sender, key, pack(ErrorMessage{e.what(), ErrorCode::kRetryable})));
  } catch (const std::exception& e) {
    respond(seal_as_server(sender, key,
                           pack(ErrorMessage{e.what(), ErrorCode::kFatal})));
  }
  drain_ready_replies();
}

void FederatedServer::park_or_reply_get_task(const std::string& sender,
                                             const std::vector<std::uint8_t>& key,
                                             const GetTaskRequest& req,
                                             RespondFn& respond) {
  core::MutexLock lock(mu_);
  CF_TRACE_SPAN_SITE("server.get_task", sender, round_);
  auto it = sessions_.find(sender);
  if (it == sessions_.end() || it->second != req.session_id) {
    throw UnknownSessionError("get_task: no active session for '" + sender + "'");
  }
  maybe_close_round_locked();
  service_parked_locked();
  PollReply reply = build_poll_reply_locked(sender);
  if (reply.parkable) {
    // Park until the answer changes (round opens/advances/stops, or mask
    // recovery wants a share) or the clamped wait expires. One park per
    // site: a newer poll means the old connection is gone, so complete its
    // park with kNone (a dead connection drops the bytes harmlessly).
    auto existing = parked_.find(sender);
    if (existing != parked_.end()) {
      ready_replies_.push_back(ReadyReply{sender,
                                          std::move(existing->second.key),
                                          reply.body,
                                          std::move(existing->second.respond)});
      parked_.erase(existing);
    }
    const std::int64_t wait = std::min(req.wait_ms, kMaxGetTaskWaitMs);
    parked_.emplace(
        sender,
        ParkedPoll{key, std::move(respond),
                   std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(wait)});
    metrics_.gauge(metric_names::kServerParkedPolls)
        .set(static_cast<double>(parked_.size()));
    // The nearest deadline may have moved; let the ticker re-plan.
    ticker_cv_.notify_all();
    return;
  }
  ready_replies_.push_back(
      ReadyReply{sender, key, std::move(reply.body), std::move(respond)});
}

std::vector<std::uint8_t> FederatedServer::handle_frame(
    const std::string& sender, const std::vector<std::uint8_t>& frame) {
  switch (peek_type(frame)) {
    case MsgType::kRegister:
      return on_register(sender, decode_register(frame));
    case MsgType::kGetTask:
      return on_get_task(sender, decode_get_task(frame));
    case MsgType::kSubmitUpdate:
      return on_submit(sender, decode_submit(frame));
    case MsgType::kUnmaskResponse:
      return on_unmask(sender, decode_unmask_response(frame));
    default:
      throw ProtocolError("unexpected message type from '" + sender + "'");
  }
}

void FederatedServer::record_liveness(const std::string& sender) {
  core::MutexLock lock(mu_);
  last_seen_[sender] = std::chrono::steady_clock::now();
  if (evicted_.erase(sender) != 0) {
    LOG_AS(kClientManager, info)
        .msg("Site seen again; re-admitted to the quorum")
        .kv("site", sender)
        .kv("round", round_);
  }
}

std::vector<std::uint8_t> FederatedServer::on_register(const std::string& sender,
                                                       const RegisterRequest& req) {
  CF_TRACE_SPAN_SITE("server.register", sender, -1);
  if (req.site_name != sender) {
    throw ProtocolError("register: site name does not match envelope sender");
  }
  const Credential& cred = registry_.at(sender);
  if (req.token != cred.token) {
    LOG_AS(kClientManager, warn).msg("Client presented a bad token").kv("site", sender);
    return pack(RegisterAck{false, "", "invalid token"});
  }
  core::MutexLock lock(mu_);
  auto existing = sessions_.find(sender);
  if (existing != sessions_.end()) {
    // Idempotent re-registration: a client that reconnected resumes its
    // session (and sequence state) instead of forking a second identity.
    LOG_AS(kClientManager, info)
        .msg("Client re-registered; resuming session")
        .kv("site", sender)
        .kv("session", existing->second);
    return pack(RegisterAck{
        true, existing->second,
        "Resumed session for client:" + sender + " in project " + config_.job_id});
  }
  const std::string session =
      "sess-" + std::to_string(++session_counter_) + "-" + sender;
  sessions_[sender] = session;
  LOG_AS(kClientManager, info)
      .msg("Client: New client " + sender + "@127.0.0.1 joined. Sent token: " +
           cred.token + ". Total clients: " + std::to_string(sessions_.size()));
  if (!started_ && !finished_ && !aborted_ &&
      static_cast<std::int64_t>(sessions_.size()) >= config_.expected_clients) {
    started_ = true;
    events_.fire(EventType::kStartRun, make_context_locked());
    start_round_locked();
    // The round just opened: every parked long-poll now has a train task.
    service_parked_locked();
  }
  return pack(RegisterAck{
      true, session,
      "Successfully registered client:" + sender + " for project " +
          config_.job_id + ". Token:" + cred.token});
}

FederatedServer::PollReply FederatedServer::build_poll_reply_locked(
    const std::string& sender) {
  if (phase_ == RoundPhase::kRecovering && !finished_ && !aborted_) {
    if (unmask_pending_.count(sender) != 0) {
      // The skeleton lets a survivor restarted after a coordinator crash
      // (its mask filter's upload-time state gone) still derive its share.
      return PollReply{
          pack(UnmaskRequest{round_, recovery_wave_, recovery_dropped_,
                             Dxo(DxoKind::kWeights, global_.zeros_like())}),
          /*parkable=*/false};
    }
    // The round is frozen: nobody else gets work until recovery resolves.
    TaskMessage none;
    none.round = round_;
    none.total_rounds = config_.num_rounds;
    return PollReply{pack(none), /*parkable=*/true};
  }
  TaskMessage task = build_task_locked(sender);
  const bool parkable =
      task.task == TaskKind::kNone && !finished_ && !aborted_;
  return PollReply{pack(task), parkable};
}

TaskMessage FederatedServer::build_task_locked(const std::string& sender) {
  TaskMessage task;
  task.total_rounds = config_.num_rounds;
  task.round = round_;
  if (finished_ || aborted_) {
    task.task = TaskKind::kStop;
  } else if (!started_ || resolved_locked(sender) ||
             !participates_locked(sender)) {
    task.task = TaskKind::kNone;
  } else {
    task.task = TaskKind::kTrain;
    task.payload = Dxo(DxoKind::kWeights, global_);
    task.payload.set_meta_int(Dxo::kMetaRound, round_);
  }
  return task;
}

void FederatedServer::service_parked_locked() {
  if (parked_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto it = parked_.begin(); it != parked_.end();) {
    PollReply reply = build_poll_reply_locked(it->first);
    if (reply.parkable && now < it->second.deadline) {
      ++it;
      continue;
    }
    // Completing a park is traffic from the site's point of view: the
    // client was waiting on us, not silent — refresh its liveness clock.
    last_seen_[it->first] = now;
    ready_replies_.push_back(ReadyReply{it->first, std::move(it->second.key),
                                        std::move(reply.body),
                                        std::move(it->second.respond)});
    it = parked_.erase(it);
  }
  metrics_.gauge(metric_names::kServerParkedPolls)
      .set(static_cast<double>(parked_.size()));
}

void FederatedServer::drain_ready_replies() {
  std::vector<ReadyReply> ready;
  {
    core::MutexLock lock(mu_);
    ready.swap(ready_replies_);
  }
  for (ReadyReply& reply : ready) {
    try {
      reply.respond(seal_as_server(reply.sender, reply.key, reply.body));
    } catch (const std::exception& e) {
      LOG_AS(kSag, warn)
          .msg("Dropping undeliverable parked reply")
          .kv("site", reply.sender)
          .kv("error", e.what());
    }
  }
}

void FederatedServer::ticker_loop() {
  core::MutexLock lock(mu_);
  while (!ticker_stop_) {
    // Plan the nap: coarse by default, fine while timed fault-tolerance
    // machinery is armed, and never past the nearest park deadline.
    std::int64_t wait_ms = 500;
    if (started_ && !finished_ && !aborted_ &&
        (config_.round_deadline_ms > 0 || config_.liveness_timeout_ms > 0 ||
         phase_ == RoundPhase::kRecovering)) {
      wait_ms = 20;
    }
    if (!parked_.empty()) {
      const auto now = std::chrono::steady_clock::now();
      for (const auto& [site, park] : parked_) {
        const auto until = std::chrono::duration_cast<std::chrono::milliseconds>(
                               park.deadline - now)
                               .count();
        wait_ms = std::min(wait_ms, std::max<std::int64_t>(5, until));
      }
    }
    ticker_cv_.wait_for_ms(mu_, wait_ms,
                           [this]() CF_REQUIRES(mu_) { return ticker_stop_; });
    if (ticker_stop_) break;
    if (started_ && !finished_ && !aborted_) maybe_close_round_locked();
    service_parked_locked();
    if (!ready_replies_.empty()) {
      lock.unlock();
      drain_ready_replies();
      lock.lock();
    }
  }
}

std::vector<std::uint8_t> FederatedServer::on_get_task(const std::string& sender,
                                                       const GetTaskRequest& req) {
  core::MutexLock lock(mu_);
  CF_TRACE_SPAN_SITE("server.get_task", sender, round_);
  auto it = sessions_.find(sender);
  if (it == sessions_.end() || it->second != req.session_id) {
    throw UnknownSessionError("get_task: no active session for '" + sender + "'");
  }
  maybe_close_round_locked();
  service_parked_locked();
  return build_poll_reply_locked(sender).body;
}

void FederatedServer::record_rejection_locked(RejectReason reason) {
  metrics_
      .counter(std::string(metric_names::kRejectionPrefix) +
               reject_reason_name(reason))
      .add(1);
  if (reason != RejectReason::kQuarantined) {
    metrics_.counter(metric_names::kServerContribRejected).add(1);
  }
}

// Per-site gauges recorded for *every* upload that reaches the server,
// before validation runs — so a run that aborts mid-round still carries the
// last reported state of each site (SimulationResult::site_metrics).
void FederatedServer::record_site_metrics_locked(const std::string& site,
                                                 const Dxo& contribution) {
  metrics_.gauge(site_metric_name(site, "round")).set(static_cast<double>(round_));
  metrics_.gauge(site_metric_name(site, "num_samples"))
      .set(static_cast<double>(contribution.meta_int(Dxo::kMetaNumSamples, 0)));
  metrics_.gauge(site_metric_name(site, "train_loss"))
      .set(contribution.meta_double(Dxo::kMetaTrainLoss, 0.0));
  metrics_.gauge(site_metric_name(site, "valid_acc"))
      .set(contribution.meta_double(Dxo::kMetaValidAcc, 0.0));
  metrics_.gauge(site_metric_name(site, "valid_loss"))
      .set(contribution.meta_double(Dxo::kMetaValidLoss, 0.0));
}

/// This round's rejection tally: current counters minus the round-start
/// baseline, keyed by reason name (counter name with the prefix stripped).
std::map<std::string, std::int64_t> FederatedServer::round_rejects_locked() const {
  const std::string prefix = metric_names::kRejectionPrefix;
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, value] :
       metrics_.snapshot().counters_with_prefix(prefix)) {
    std::int64_t base = 0;
    auto it = reject_baseline_.find(name);
    if (it != reject_baseline_.end()) base = it->second;
    if (value > base) out[name.substr(prefix.size())] = value - base;
  }
  return out;
}

std::vector<std::uint8_t> FederatedServer::on_submit(const std::string& sender,
                                                     const SubmitUpdateRequest& req) {
  core::MutexLock lock(mu_);
  CF_TRACE_SPAN_SITE("server.submit", sender, round_);
  auto it = sessions_.find(sender);
  if (it == sessions_.end() || it->second != req.session_id) {
    throw UnknownSessionError("submit: no active session for '" + sender + "'");
  }
  if (finished_) {
    return pack(SubmitAck{false, "run already finished", RejectReason::kRunOver});
  }
  if (aborted_) return pack(SubmitAck{false, "run aborted", RejectReason::kRunOver});
  if (req.round != round_) {
    LOG_AS(kSag, warn)
        .msg("Stale contribution")
        .kv("site", sender)
        .kv("round", req.round)
        .kv("current", round_);
    metrics_.counter(metric_names::kServerLateContribs).add(1);
    if (req.round >= 0 &&
        req.round < static_cast<std::int64_t>(history_.size())) {
      // The round it was meant for already closed (deadline or eviction):
      // count it as late telemetry on that round's history entry.
      history_[static_cast<std::size_t>(req.round)].late_contributions += 1;
    }
    return pack(SubmitAck{false, "stale round", RejectReason::kStaleRound});
  }
  if (submitted_.count(sender) != 0) {
    // At-least-once delivery: the first submit landed but its ack was lost
    // and the client resent. Dedup here; the client maps this message back
    // to success.
    return pack(SubmitAck{false, kDuplicateContribution, RejectReason::kDuplicate});
  }
  if (rejected_acks_.count(sender) != 0) {
    // Already resolved this round with a rejection; answer resends with
    // the same verdict (at-least-once delivery, idempotent acks).
    return pack(rejected_acks_.at(sender));
  }
  if (phase_ == RoundPhase::kRecovering) {
    // The round is frozen mid-recovery: this site is in the dropped set,
    // and admitting it now would invalidate the shares already requested
    // from the survivors. It trains again when the next round opens.
    record_rejection_locked(RejectReason::kRecoveryInProgress);
    return pack(SubmitAck{false, "round frozen in mask recovery",
                          RejectReason::kRecoveryInProgress});
  }
  if (!participates_locked(sender)) {
    return pack(SubmitAck{false, "not sampled for this round",
                          RejectReason::kNotSampled});
  }

  Dxo contribution = req.payload;
  const FLContext ctx = make_context_locked();
  inbound_filters_.process(contribution, ctx);
  record_site_metrics_locked(sender, contribution);

  if (reputation_.quarantined(sender)) {
    // Quarantined uploads never reach the aggregator, but they are still
    // screened (and their norm judged at round close) so clean rounds can
    // grow the site's parole streak.
    ScoredUpload scored;
    scored.verdict = validator_.score(sender, contribution, &scored.norm);
    if (journal_) {
      journal_->quarantine_scored(
          sender, static_cast<std::uint8_t>(scored.verdict.reason),
          scored.verdict.detail, scored.norm);
    }
    scored_quarantined_[sender] = std::move(scored);
    record_rejection_locked(RejectReason::kQuarantined);
    const SubmitAck ack{false,
                        "quarantined: update scored but excluded from "
                        "aggregation",
                        RejectReason::kQuarantined};
    rejected_acks_[sender] = ack;
    maybe_close_round_locked();
    service_parked_locked();
    return pack(ack);
  }

  const Verdict verdict = validator_.admit(*aggregator_, sender, contribution);
  if (!verdict.ok()) {
    const SubmitAck ack{
        false,
        "rejected: " + std::string(reject_reason_name(verdict.reason)) +
            (verdict.detail.empty() ? "" : " (" + verdict.detail + ")"),
        verdict.reason};
    if (journal_) {
      journal_->rejected(sender, static_cast<std::uint8_t>(verdict.reason),
                         ack.message);
    }
    record_rejection_locked(verdict.reason);
    if (reputation_.record_rejection(sender)) {
      LOG_AS(kSag, warn)
          .msg("Site QUARANTINED after consecutive rejections")
          .kv("site", sender)
          .kv("strikes", config_.reputation.quarantine_after);
    }
    rejected_acks_[sender] = ack;
    maybe_close_round_locked();
    service_parked_locked();
    return pack(ack);
  }
  // Journal the accepted (post-filter) bytes before mutating round state:
  // after this frame is down, a crash anywhere leaves a replayable record
  // and the client's resend maps to kDuplicateContribution — the site is
  // never asked to train this round again.
  if (journal_) journal_->accepted(sender, contribution);
  CF_CRASHPOINT("journal.append.after");
  submitted_.insert(sender);
  metrics_.counter(metric_names::kServerContribAccepted).add(1);
  maybe_close_round_locked();
  // The submit may have closed the round (or aborted the run): wake every
  // parked long-poll whose answer changed.
  service_parked_locked();
  return pack(SubmitAck{true, "accepted"});
}

std::vector<std::uint8_t> FederatedServer::on_unmask(const std::string& sender,
                                                     const UnmaskResponse& req) {
  core::MutexLock lock(mu_);
  CF_TRACE_SPAN_SITE("server.unmask", sender, round_);
  auto it = sessions_.find(sender);
  if (it == sessions_.end() || it->second != req.session_id) {
    throw UnknownSessionError("unmask: no active session for '" + sender + "'");
  }
  if (finished_) {
    return pack(SubmitAck{false, "run already finished", RejectReason::kRunOver});
  }
  if (aborted_) return pack(SubmitAck{false, "run aborted", RejectReason::kRunOver});
  if (req.round < round_) {
    // That round already published: the share (or a retransmission of it)
    // served its purpose. At-least-once delivery maps this to success.
    return pack(SubmitAck{true, "recovery already complete"});
  }
  if (phase_ != RoundPhase::kRecovering || req.round != round_) {
    return pack(SubmitAck{false,
                          "no mask recovery in progress for round " +
                              std::to_string(req.round),
                          RejectReason::kStaleRound});
  }
  if (req.wave != recovery_wave_) {
    // An answer against a previous wave's (smaller) dropped set is void.
    return pack(
        SubmitAck{false, "stale recovery wave", RejectReason::kStaleRound});
  }
  if (unmask_pending_.count(sender) == 0) {
    // Duplicate delivery of a share already recorded this wave; the client
    // maps the duplicate-contribution message back to success.
    return pack(
        SubmitAck{false, kDuplicateContribution, RejectReason::kDuplicate});
  }
  if (!mask_recovery_->set_unmask_share(sender, req.share)) {
    return pack(SubmitAck{false, "mask share rejected (incongruent skeleton)",
                          RejectReason::kSchemaMismatch});
  }
  if (journal_) journal_->unmask_share(sender, req.share);
  CF_CRASHPOINT("recovery.share.after");
  unmask_pending_.erase(sender);
  metrics_.counter(metric_names::kServerUnmaskShares).add(1);
  LOG_AS(kSag, info)
      .msg("Unmask share recorded")
      .kv("site", sender)
      .kv("round", round_)
      .kv("wave", recovery_wave_)
      .kv("outstanding", static_cast<std::int64_t>(unmask_pending_.size()));
  // The last share finishes recovery and publishes the round: wake every
  // parked long-poll whose answer changed.
  advance_recovery_locked();
  service_parked_locked();
  return pack(SubmitAck{true, "mask share recorded"});
}

FLContext FederatedServer::make_context_locked() const {
  FLContext ctx;
  ctx.job_id = config_.job_id;
  ctx.current_round = round_;
  ctx.total_rounds = config_.num_rounds;
  return ctx;
}

void FederatedServer::start_round_locked() {
  round_start_ = std::chrono::steady_clock::now();
  round_start_ns_ = core::Tracer::instance().now_ns();
  if (round_replayed_) {
    // The round was reconstructed from the journal: it is already open (and
    // journaled), its cohort is the journaled one, and the rejection
    // baseline stays empty — this process's counters started at zero and
    // replay re-incremented exactly the rejections that happened before the
    // crash. Resampling or re-journaling here would fork the round.
    round_replayed_ = false;
    LOG_AS(kSag, info)
        .msg("Round " + std::to_string(round_) +
             " resumed mid-flight from journal replay.")
        .kv("accepted", aggregator_->accepted_count())
        .kv("recovering", phase_ == RoundPhase::kRecovering);
    return;
  }
  reject_baseline_ = metrics_.snapshot().counters_with_prefix(
      metric_names::kRejectionPrefix);
  sample_round_participants_locked();
  if (journal_ && journal_open_round_ != round_) {
    journal_->round_open(
        round_, std::vector<std::string>(sampled_.begin(), sampled_.end()));
    journal_open_round_ = round_;
    CF_CRASHPOINT("journal.open.after");
  }
  LOG_AS(kSag, info).msg("Round " + std::to_string(round_) + " started.");
  events_.fire(EventType::kRoundStarted, make_context_locked());
}

// Reconstructs mid-round state by re-driving each journaled event through
// the same admission machinery the live path used: accepted DXO bytes go
// back through validator_.admit (rebuilding the aggregator's buffers AND
// the round's norm population), rejections re-strike reputation, and the
// recovery events replay the freeze/share/demotion sequence against the
// rebuilt aggregator. Runs in the constructor before the ticker exists and
// before any client can connect; deadlines restart from "now" — wall-clock
// budgets are per-process, only the *state* is durable.
void FederatedServer::apply_journal_locked(const JournalReplay& replay) {
  bool crash_pending = true;
  for (const JournalEvent& ev : replay.events) {
    switch (ev.type) {
      case JournalEventType::kRoundOpen:
        sampled_.clear();
        for (const std::string& site : ev.names) sampled_.insert(site);
        journal_open_round_ = ev.round;
        break;
      case JournalEventType::kAccepted: {
        const Verdict verdict =
            validator_.admit(*aggregator_, ev.site, *ev.payload);
        if (!verdict.ok()) {
          // Cannot happen for bytes that were admitted live unless the code
          // changed between runs; surface it rather than silently dropping
          // a contribution the client will never resend.
          throw ProtocolError(
              "journal replay: previously accepted contribution from '" +
              ev.site + "' no longer admits (" + verdict.detail + ")");
        }
        submitted_.insert(ev.site);
        metrics_.counter(metric_names::kServerContribAccepted).add(1);
        break;
      }
      case JournalEventType::kRejected: {
        const auto reason = static_cast<RejectReason>(ev.reason);
        record_rejection_locked(reason);
        (void)reputation_.record_rejection(ev.site);
        rejected_acks_[ev.site] = SubmitAck{false, ev.detail, reason};
        break;
      }
      case JournalEventType::kQuarantineScored: {
        ScoredUpload scored;
        scored.verdict.reason = static_cast<RejectReason>(ev.reason);
        scored.verdict.detail = ev.detail;
        scored.norm = ev.norm;
        scored_quarantined_[ev.site] = std::move(scored);
        record_rejection_locked(RejectReason::kQuarantined);
        rejected_acks_[ev.site] =
            SubmitAck{false,
                      "quarantined: update scored but excluded from "
                      "aggregation",
                      RejectReason::kQuarantined};
        break;
      }
      case JournalEventType::kEviction:
        evicted_.insert(ev.site);
        break;
      case JournalEventType::kRecoveryBegin:
        if (mask_recovery_ == nullptr) {
          throw ConfigError(
              "journal replay: log holds mask-recovery events but the "
              "aggregator is not mask-recovery capable");
        }
        phase_ = RoundPhase::kRecovering;
        recovery_wave_ = 0;
        recovery_deadline_fired_ = ev.deadline_fired;
        recovery_dropped_ = ev.names;
        unmask_pending_.clear();
        for (const std::string& site : mask_recovery_->accepted_sites()) {
          unmask_pending_.insert(site);
        }
        recovery_deadline_ =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.secure_agg.recovery_deadline_ms);
        recovery_start_ns_ = core::Tracer::instance().now_ns();
        metrics_.counter(metric_names::kServerRecoveryRounds).add(1);
        metrics_.gauge(metric_names::kServerRecoveryDropped)
            .set(static_cast<double>(recovery_dropped_.size()));
        break;
      case JournalEventType::kUnmaskShare:
        if (mask_recovery_->set_unmask_share(ev.site, *ev.payload)) {
          unmask_pending_.erase(ev.site);
          metrics_.counter(metric_names::kServerUnmaskShares).add(1);
        }
        break;
      case JournalEventType::kRecoveryWave: {
        // Re-run the demotion cascade exactly as the live path did.
        for (const std::string& site : ev.names) {
          (void)aggregator_->revoke(site);
          submitted_.erase(site);
          recovery_dropped_.push_back(site);
        }
        metrics_.counter(metric_names::kServerRecoveryDemotions)
            .add(static_cast<std::int64_t>(ev.names.size()));
        std::sort(recovery_dropped_.begin(), recovery_dropped_.end());
        mask_recovery_->clear_unmask_shares();
        unmask_pending_.clear();
        for (const std::string& site : mask_recovery_->accepted_sites()) {
          unmask_pending_.insert(site);
        }
        metrics_.gauge(metric_names::kServerRecoveryDropped)
            .set(static_cast<double>(recovery_dropped_.size()));
        const std::int64_t required = min_required_locked();
        if (static_cast<std::int64_t>(unmask_pending_.size()) < required) {
          abort_run_locked(
              "round " + std::to_string(round_) +
                  " (journal replay): mask recovery demoted the surviving "
                  "set below min_clients",
              AbortCode::kRecoveryBelowQuorum);
          return;
        }
        recovery_wave_ = ev.wave + 1;
        if (recovery_wave_ >= config_.secure_agg.max_recovery_waves) {
          abort_run_locked(
              "round " + std::to_string(round_) +
                  " (journal replay): mask recovery did not converge within " +
                  std::to_string(config_.secure_agg.max_recovery_waves) +
                  " wave(s)",
              AbortCode::kRecoveryExhausted);
          return;
        }
        recovery_deadline_ =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.secure_agg.recovery_deadline_ms);
        break;
      }
      case JournalEventType::kJobHeader:
      case JournalEventType::kCommit:
        break;  // structural frames; RoundJournal::open consumed them
    }
    if (crash_pending) {
      crash_pending = false;
      CF_CRASHPOINT("replay.mid");
    }
  }
  round_replayed_ = true;
  LOG_AS(kSag, info)
      .msg("Journal replay reconstructed mid-round state")
      .kv("round", round_)
      .kv("events", static_cast<std::int64_t>(replay.events.size()))
      .kv("accepted", aggregator_->accepted_count())
      .kv("rejected", static_cast<std::int64_t>(rejected_acks_.size()))
      .kv("recovering", phase_ == RoundPhase::kRecovering)
      .kv("torn_bytes", static_cast<std::int64_t>(replay.torn_bytes));
}

// Round-close defense pass. The norm-outlier judgment runs here, over the
// round's *complete* set of admitted norms (never a running estimate), so
// verdicts — and therefore the aggregate — are independent of arrival
// order. Flagged contributions are revoked from the aggregator, then every
// site's reputation is settled for the round.
void FederatedServer::settle_round_verdicts_locked() {
  for (const auto& [site, verdict] : validator_.flag_outliers()) {
    if (!aggregator_->revoke(site)) {
      LOG_AS(kSag, warn)
          .msg("Site flagged as a norm outlier but aggregator cannot revoke; "
               "contribution kept")
          .kv("site", site)
          .kv("aggregator", aggregator_->name());
      continue;
    }
    LOG_AS(kSag, warn)
        .msg("Update revoked at round close")
        .kv("site", site)
        .kv("detail", verdict.detail);
    submitted_.erase(site);
    rejected_acks_[site] =
        SubmitAck{false, "rejected: norm_outlier (" + verdict.detail + ")",
                  RejectReason::kNormOutlier};
    record_rejection_locked(RejectReason::kNormOutlier);
    if (reputation_.record_rejection(site)) {
      LOG_AS(kSag, warn)
          .msg("Site QUARANTINED after consecutive rejections")
          .kv("site", site)
          .kv("strikes", config_.reputation.quarantine_after);
    }
  }
  // Sites whose contributions survived to aggregation were clean.
  for (const std::string& site : submitted_) {
    (void)reputation_.record_clean(site);
  }
  // Quarantined sites' scored uploads: a screening failure is a strike; a
  // screening pass is judged against the round's norm population, and a
  // clean verdict grows the parole streak.
  for (const auto& [site, scored] : scored_quarantined_) {
    Verdict verdict = scored.verdict;
    if (verdict.ok()) verdict = validator_.judge_norm(scored.norm);
    if (verdict.ok()) {
      if (reputation_.record_clean(site)) {
        LOG_AS(kSag, info)
            .msg("Site paroled; re-admitted")
            .kv("site", site)
            .kv("clean_rounds", config_.reputation.parole_after)
            .kv("from_round", round_ + 1);
      }
    } else {
      (void)reputation_.record_rejection(site);
    }
  }
}

void FederatedServer::finish_round_locked(bool deadline_fired) {
  // However this round closes, it is no longer the replayed one.
  round_replayed_ = false;
  events_.fire(EventType::kBeforeAggregation, make_context_locked());
  settle_round_verdicts_locked();
  if (aggregator_->accepted_count() == 0) {
    abort_run_locked("round " + std::to_string(round_) +
                         ": every contribution was rejected by the update "
                         "validator",
                     AbortCode::kAllRejected);
    return;
  }
  LOG_AS(kSag, info).msg("End aggregation.");
  {
    CF_TRACE_SPAN_SITE("server.aggregate", "", round_);
    global_ = aggregator_->aggregate();
  }
  RoundMetrics metrics = aggregator_->metrics();
  metrics.evicted_sites = static_cast<std::int64_t>(evicted_.size());
  metrics.deadline_fired = deadline_fired;
  for (const auto& [reason, count] : round_rejects_locked()) {
    metrics.rejections_by_reason[reason] = count;
    if (reason != reject_reason_name(RejectReason::kQuarantined)) {
      metrics.rejected_updates += count;
    }
  }
  metrics.quarantined_sites = reputation_.quarantined_count();
  history_.push_back(metrics);

  metrics_.counter(metric_names::kServerRoundsCompleted).add(1);
  metrics_.gauge(metric_names::kServerTrainLoss).set(metrics.train_loss);
  metrics_.gauge(metric_names::kServerValidAcc).set(metrics.valid_acc);
  metrics_.gauge(metric_names::kServerValidLoss).set(metrics.valid_loss);
  metrics_.gauge(metric_names::kServerEvictedSites)
      .set(static_cast<double>(metrics.evicted_sites));
  if (deadline_fired) {
    metrics_.counter(metric_names::kServerDeadlineFired).add(1);
  }
  // The round span opened in start_round_locked and closes here, across
  // many dispatch calls — hence a manual complete-event, not a ScopedSpan.
  core::Tracer& tracer = core::Tracer::instance();
  if (tracer.enabled()) {
    tracer.record_complete("server.round", {}, round_, round_start_ns_,
                           tracer.now_ns());
  }

  events_.fire(EventType::kAfterAggregation, make_context_locked());
  for (const RoundObserver& observer : round_observers_) {
    observer(round_, global_, history_.back());
  }

  if (persistor_) {
    LOG_AS(kSag, info).msg("Start persist model on server.");
    {
      CF_TRACE_SPAN_SITE("server.persist", "", round_);
      persistor_->save({config_.job_id, round_, global_, history_,
                        reputation_.standings()});
    }
    LOG_AS(kSag, info).msg("End persist model on server.");
  }
  if (journal_) {
    // Commit barrier: the checkpoint above now owns this round's outcome;
    // the commit frame marks the journal's round state obsolete and the
    // log is compacted back to its job header. A crash in this window
    // (journal.commit.before) resolves at restart by the open-round-vs-
    // checkpoint reconciliation — the stale journal is discarded.
    CF_CRASHPOINT("journal.commit.before");
    journal_->commit(round_);
    journal_open_round_ = -1;
  }
  LOG_AS(kSag, info).msg("Round " + std::to_string(round_) + " finished.");
  events_.fire(EventType::kRoundDone, make_context_locked());

  submitted_.clear();
  rejected_acks_.clear();
  scored_quarantined_.clear();
  round_ += 1;
  if (round_ >= config_.num_rounds) {
    finished_ = true;
    events_.fire(EventType::kEndRun, make_context_locked());
    finished_cv_.notify_all();
  } else {
    aggregator_->reset(global_, round_);
    validator_.reset(global_, round_);
    start_round_locked();
  }
}

void FederatedServer::maybe_close_round_locked() {
  if (finished_ || aborted_ || !started_) return;
  if (phase_ == RoundPhase::kRecovering) {
    // The round already closed for contributions; only recovery progress
    // (shares arriving, the wave deadline) can move it now.
    advance_recovery_locked();
    return;
  }
  evict_stragglers_locked();
  // A round closes when enough participants have *resolved* (accepted or
  // rejected), not just accepted: a rejected site will never submit again
  // this round, so waiting on it would stall until the deadline.
  if (resolved_participant_count_locked() >= round_quorum_locked()) {
    close_round_locked(/*deadline_fired=*/false);
    return;
  }
  const std::int64_t accepted = aggregator_->accepted_count();
  if (config_.round_deadline_ms <= 0) return;
  const auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - round_start_)
                       .count();
  if (age < config_.round_deadline_ms) return;
  const std::int64_t required = min_required_locked();
  if (accepted >= required) {
    LOG_AS(kSag, warn)
        .msg("Round deadline exceeded; closing early")
        .kv("round", round_)
        .kv("accepted", accepted)
        .kv("quorum", round_quorum_locked());
    close_round_locked(/*deadline_fired=*/true);
  } else {
    abort_run_locked("round " + std::to_string(round_) +
                         " deadline exceeded with " + std::to_string(accepted) +
                         " contribution(s), below min_clients=" +
                         std::to_string(required),
                     AbortCode::kDeadlineBelowQuorum);
  }
}

void FederatedServer::close_round_locked(bool deadline_fired) {
  if (config_.secure_agg.enabled && mask_recovery_ != nullptr &&
      aggregator_->accepted_count() > 0) {
    // Masked round: every registered site whose contribution is *not* in
    // the aggregate (crashed, evicted, rejected, or simply late) leaves
    // uncancelled masks behind. Detour into recovery when any exist.
    std::set<std::string> accepted;
    for (const std::string& site : mask_recovery_->accepted_sites()) {
      accepted.insert(site);
    }
    std::vector<std::string> dropped;
    for (const auto& [site, session] : sessions_) {
      if (accepted.count(site) == 0) dropped.push_back(site);
    }
    if (!dropped.empty()) {
      begin_recovery_locked(std::move(dropped), deadline_fired);
      return;
    }
  }
  finish_round_locked(deadline_fired);
}

void FederatedServer::begin_recovery_locked(std::vector<std::string> dropped,
                                            bool deadline_fired) {
  std::sort(dropped.begin(), dropped.end());
  // Journal the freeze before entering it: a crash anywhere in the recovery
  // phase replays back to a frozen round with this exact dropped set.
  if (journal_) journal_->recovery_begin(round_, dropped, deadline_fired);
  CF_CRASHPOINT("recovery.begin.after");
  phase_ = RoundPhase::kRecovering;
  recovery_wave_ = 0;
  recovery_deadline_fired_ = deadline_fired;
  recovery_dropped_ = std::move(dropped);
  unmask_pending_.clear();
  for (const std::string& site : mask_recovery_->accepted_sites()) {
    unmask_pending_.insert(site);
  }
  recovery_deadline_ =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.secure_agg.recovery_deadline_ms);
  recovery_start_ns_ = core::Tracer::instance().now_ns();
  metrics_.counter(metric_names::kServerRecoveryRounds).add(1);
  metrics_.gauge(metric_names::kServerRecoveryDropped)
      .set(static_cast<double>(recovery_dropped_.size()));
  std::string names;
  for (const std::string& s : recovery_dropped_) {
    names += (names.empty() ? "" : ", ") + s;
  }
  LOG_AS(kSag, warn)
      .msg("Masked round closed with sites missing; entering mask recovery")
      .kv("round", round_)
      .kv("dropped", names)
      .kv("survivors", static_cast<std::int64_t>(unmask_pending_.size()));
  // Survivors parked in long-polls must receive their UnmaskRequest now;
  // the ticker must watch the new deadline.
  service_parked_locked();
  ticker_cv_.notify_all();
}

void FederatedServer::advance_recovery_locked() {
  if (phase_ != RoundPhase::kRecovering) return;
  if (unmask_pending_.empty()) {
    finish_recovery_locked();
    return;
  }
  if (std::chrono::steady_clock::now() < recovery_deadline_) return;
  // Wave deadline: every survivor still owing its share is demoted — the
  // buffered masked contribution is revoked byte-exactly (so its own masks
  // leave the sum with it) and its name joins the dropped set. The
  // remaining survivors must answer again against the enlarged set, so all
  // recorded shares are void.
  const std::set<std::string> laggards = unmask_pending_;
  // One frame covers the whole demotion cascade: replay re-runs it
  // atomically, so a crash mid-loop (recovery.wave.mid) cannot leave a
  // half-demoted wave.
  if (journal_) {
    journal_->recovery_wave(
        recovery_wave_,
        std::vector<std::string>(laggards.begin(), laggards.end()));
  }
  bool first_demotion = true;
  for (const std::string& site : laggards) {
    (void)aggregator_->revoke(site);
    submitted_.erase(site);
    recovery_dropped_.push_back(site);
    if (first_demotion) {
      first_demotion = false;
      CF_CRASHPOINT("recovery.wave.mid");
    }
    LOG_AS(kSag, warn)
        .msg("Survivor failed to reveal its mask share in time; demoted")
        .kv("site", site)
        .kv("round", round_)
        .kv("wave", recovery_wave_);
  }
  metrics_.counter(metric_names::kServerRecoveryDemotions)
      .add(static_cast<std::int64_t>(laggards.size()));
  std::sort(recovery_dropped_.begin(), recovery_dropped_.end());
  mask_recovery_->clear_unmask_shares();
  unmask_pending_.clear();
  for (const std::string& site : mask_recovery_->accepted_sites()) {
    unmask_pending_.insert(site);
  }
  metrics_.gauge(metric_names::kServerRecoveryDropped)
      .set(static_cast<double>(recovery_dropped_.size()));
  const std::int64_t required = min_required_locked();
  if (static_cast<std::int64_t>(unmask_pending_.size()) < required) {
    abort_run_locked(
        "round " + std::to_string(round_) +
            ": mask recovery demoted the surviving set to " +
            std::to_string(unmask_pending_.size()) +
            " site(s), below min_clients=" + std::to_string(required),
        AbortCode::kRecoveryBelowQuorum);
    return;
  }
  recovery_wave_ += 1;
  if (recovery_wave_ >= config_.secure_agg.max_recovery_waves) {
    abort_run_locked("round " + std::to_string(round_) +
                         ": mask recovery did not converge within " +
                         std::to_string(config_.secure_agg.max_recovery_waves) +
                         " wave(s)",
                     AbortCode::kRecoveryExhausted);
    return;
  }
  recovery_deadline_ =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(config_.secure_agg.recovery_deadline_ms);
  // Re-ask: parked survivors receive the wave's UnmaskRequest immediately.
  service_parked_locked();
  ticker_cv_.notify_all();
}

void FederatedServer::finish_recovery_locked() {
  core::Tracer& tracer = core::Tracer::instance();
  if (tracer.enabled()) {
    tracer.record_complete("server.mask_recovery", {}, round_,
                           recovery_start_ns_, tracer.now_ns());
  }
  LOG_AS(kSag, info)
      .msg("Mask recovery complete; publishing the round")
      .kv("round", round_)
      .kv("dropped", static_cast<std::int64_t>(recovery_dropped_.size()))
      .kv("waves", recovery_wave_ + 1);
  phase_ = RoundPhase::kCollecting;
  recovery_dropped_.clear();
  unmask_pending_.clear();
  recovery_wave_ = 0;
  const bool deadline_fired = recovery_deadline_fired_;
  recovery_deadline_fired_ = false;
  finish_round_locked(deadline_fired);
}

void FederatedServer::evict_stragglers_locked() {
  if (config_.liveness_timeout_ms <= 0 || !started_) return;
  const auto now = std::chrono::steady_clock::now();
  for (const auto& [site, session] : sessions_) {
    if (resolved_locked(site) || evicted_.count(site) != 0 ||
        !participates_locked(site)) {
      continue;
    }
    // A parked long-poll is the opposite of silence: the site is connected
    // and waiting on *us*. Never evict it for not sending frames.
    if (parked_.count(site) != 0) continue;
    // Survivors answering an unmask request are doing recovery work for
    // this round — exempt (they are in submitted_, but be explicit: the
    // recovery deadline, not the liveness clock, judges them).
    if (unmask_pending_.count(site) != 0) continue;
    const auto seen = last_seen_.find(site);
    if (seen == last_seen_.end()) continue;
    // Silence is measured within the round: a site that resolved round N
    // and has not yet spoken in round N+1 owes nothing until N+1 started —
    // without this, the ticker would evict last round's contributors the
    // moment a lingering round finally closes.
    const auto silent_since = std::max(seen->second, round_start_);
    const auto silent = std::chrono::duration_cast<std::chrono::milliseconds>(
                            now - silent_since)
                            .count();
    if (silent >= config_.liveness_timeout_ms) {
      if (journal_) journal_->evicted(site);
      evicted_.insert(site);
      LOG_AS(kClientManager, warn)
          .msg("Site unseen; evicted from the quorum")
          .kv("site", site)
          .kv("silent_ms", silent)
          .kv("round", round_);
    }
  }
}

void FederatedServer::abort_run_locked(const std::string& reason,
                                       AbortCode code) {
  if (finished_ || aborted_) return;
  aborted_ = true;
  abort_reason_ = reason;
  abort_code_ = code;
  LOG_AS(kSag, error).msg("Run aborted:").msg(reason).kv(
      "code", abort_code_name(code));
  events_.fire(EventType::kEndRun, make_context_locked());
  finished_cv_.notify_all();
}

bool FederatedServer::abort(const std::string& reason) {
  bool did_abort = false;
  {
    core::MutexLock lock(mu_);
    // Terminal state is settled under mu_: a run that finished (or already
    // aborted) before we got the lock stays that way — the caller learns the
    // abort lost the race instead of a finished run flipping to aborted.
    if (!finished_ && !aborted_) {
      abort_run_locked(reason);
      did_abort = true;
    }
    service_parked_locked();  // every park now answers kStop
  }
  drain_ready_replies();
  return did_abort;
}

void FederatedServer::sample_round_participants_locked() {
  sampled_.clear();
  if (config_.clients_per_round <= 0 ||
      config_.clients_per_round >= static_cast<std::int64_t>(sessions_.size())) {
    return;  // empty set means "everyone participates"
  }
  // Quarantined sites are left out of the draw: sampling one would shrink
  // the round's effective quorum for no benefit (its upload could not be
  // aggregated anyway). They still poll and are scored when everyone
  // participates (the unsampled path).
  std::vector<std::string> sites;
  sites.reserve(sessions_.size());
  for (const auto& [site, session] : sessions_) {
    if (!reputation_.quarantined(site)) sites.push_back(site);
  }
  if (static_cast<std::int64_t>(sites.size()) <= config_.clients_per_round) {
    return;
  }
  core::Rng rng(config_.sampling_seed ^
                (static_cast<std::uint64_t>(round_) * 0x9e3779b97f4a7c15ull));
  rng.shuffle(sites);
  for (std::int64_t i = 0; i < config_.clients_per_round; ++i) {
    sampled_.insert(sites[static_cast<std::size_t>(i)]);
  }
  std::string names;
  for (const std::string& s : sampled_) names += (names.empty() ? "" : ", ") + s;
  LOG_AS(kSag, info)
      .msg("Round sampled participants:")
      .msg(names)
      .kv("round", round_);
}

bool FederatedServer::participates_locked(const std::string& site) const {
  return sampled_.empty() || sampled_.count(site) != 0;
}

bool FederatedServer::resolved_locked(const std::string& site) const {
  return submitted_.count(site) != 0 || rejected_acks_.count(site) != 0;
}

// Quarantined sites are excluded from every quorum count below: they still
// poll and are scored, but the round must not wait on them (and must not
// shrink toward min_clients because of them) — an 8-site round with one
// quarantined site closes exactly like a clean 7-site round.
std::int64_t FederatedServer::participant_count_locked() const {
  std::int64_t count = 0;
  for (const auto& [site, session] : sessions_) {
    if (participates_locked(site) && !reputation_.quarantined(site)) count += 1;
  }
  return count;
}

std::int64_t FederatedServer::live_participant_count_locked() const {
  std::int64_t live = 0;
  for (const auto& [site, session] : sessions_) {
    if (!participates_locked(site) || reputation_.quarantined(site)) continue;
    if (evicted_.count(site) == 0) live += 1;
  }
  return live;
}

std::int64_t FederatedServer::resolved_participant_count_locked() const {
  std::int64_t resolved = 0;
  for (const auto& [site, session] : sessions_) {
    if (!participates_locked(site) || reputation_.quarantined(site)) continue;
    if (resolved_locked(site)) resolved += 1;
  }
  return resolved;
}

std::int64_t FederatedServer::min_required_locked() const {
  // min_clients cannot demand more sites than this round even has.
  return std::max<std::int64_t>(
      1, std::min(config_.min_clients, participant_count_locked()));
}

std::int64_t FederatedServer::round_quorum_locked() const {
  // Wait for every live participant, but never close below the
  // graceful-degradation floor even when eviction thinned the round out.
  return std::max(min_required_locked(), live_participant_count_locked());
}

bool FederatedServer::finished() const {
  core::MutexLock lock(mu_);
  return finished_;
}

bool FederatedServer::aborted() const {
  core::MutexLock lock(mu_);
  return aborted_;
}

std::string FederatedServer::abort_reason() const {
  core::MutexLock lock(mu_);
  return abort_reason_;
}

AbortCode FederatedServer::abort_code() const {
  core::MutexLock lock(mu_);
  return abort_code_;
}

bool FederatedServer::wait_until_finished(std::int64_t timeout_ms) const {
  core::MutexLock lock(mu_);
  finished_cv_.wait_for_ms(mu_, timeout_ms, [this]() CF_REQUIRES(mu_) {
    return finished_ || aborted_;
  });
  return finished_ && !aborted_;
}

nn::StateDict FederatedServer::global_model() const {
  core::MutexLock lock(mu_);
  return global_;
}

std::vector<RoundMetrics> FederatedServer::history() const {
  core::MutexLock lock(mu_);
  return history_;
}

std::int64_t FederatedServer::current_round() const {
  core::MutexLock lock(mu_);
  return round_;
}

std::int64_t FederatedServer::registered_clients() const {
  core::MutexLock lock(mu_);
  return static_cast<std::int64_t>(sessions_.size());
}

std::vector<std::string> FederatedServer::evicted_sites() const {
  core::MutexLock lock(mu_);
  return std::vector<std::string>(evicted_.begin(), evicted_.end());
}

std::vector<std::string> FederatedServer::quarantined_sites() const {
  core::MutexLock lock(mu_);
  return reputation_.quarantined_sites();
}

std::map<std::string, SiteStanding> FederatedServer::reputation() const {
  core::MutexLock lock(mu_);
  return reputation_.standings();
}

}  // namespace cppflare::flare
