#include "flare/faults.h"

#include "core/backoff.h"
#include "core/error.h"
#include "core/logging.h"

#define CPPFLARE_LOG_COMPONENT "FaultInjector"

namespace cppflare::flare {

FaultyConnection::FaultyConnection(std::unique_ptr<Connection> inner,
                                   FaultPlan plan,
                                   std::shared_ptr<FaultStats> stats)
    : inner_(std::move(inner)),
      plan_(plan),
      stats_(stats ? std::move(stats) : std::make_shared<FaultStats>()),
      rng_(plan.seed) {
  if (!inner_) throw Error("FaultyConnection: inner connection required");
}

bool FaultyConnection::faults_left() const {
  return plan_.max_faults < 0 || injected_ < plan_.max_faults;
}

std::vector<std::uint8_t> FaultyConnection::call(
    const std::vector<std::uint8_t>& request) {
  if (!inner_) {
    throw TransportError("fault: connection is down");
  }
  const std::int64_t index = call_index_++;
  stats_->calls += 1;

  // Draw every fault gate each call, whether or not it can fire — the rng
  // stream position is then a function of the call index alone, so enabling
  // one fault kind never shifts another kind's schedule.
  const bool want_disconnect = rng_.bernoulli(plan_.disconnect_prob);
  const bool want_drop = rng_.bernoulli(plan_.drop_prob);
  const bool want_delay = rng_.bernoulli(plan_.delay_prob);
  const bool want_duplicate = rng_.bernoulli(plan_.duplicate_prob);
  const bool want_corrupt = rng_.bernoulli(plan_.corrupt_prob);

  if ((want_disconnect || index == plan_.disconnect_on_call) && faults_left()) {
    injected_ += 1;
    stats_->disconnects += 1;
    inner_.reset();
    LOG(warn).msg("injected disconnect at call " + std::to_string(index));
    throw TransportError("fault: connection lost");
  }

  bool drop_response = false;
  if (want_drop && faults_left()) {
    injected_ += 1;
    if (drop_parity_++ % 2 == 0) {
      stats_->dropped_requests += 1;
      throw TransportError("fault: request dropped");
    }
    stats_->dropped_responses += 1;
    drop_response = true;
  }

  if (want_delay && faults_left()) {
    injected_ += 1;
    stats_->delays += 1;
    core::Backoff::sleep_ms(plan_.delay_ms);
  }

  std::vector<std::uint8_t> delivered = request;
  if (want_corrupt && faults_left() && !delivered.empty()) {
    injected_ += 1;
    stats_->corruptions += 1;
    const std::size_t byte = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(delivered.size()) - 1));
    const int bit = static_cast<int>(rng_.uniform_int(0, 7));
    delivered[byte] ^= static_cast<std::uint8_t>(1u << bit);
  }

  std::vector<std::uint8_t> response = inner_->call(delivered);
  if (want_duplicate && faults_left()) {
    injected_ += 1;
    stats_->duplicates += 1;
    // The network replays the same sealed bytes; the receiver's sequence
    // tracking rejects them, and that rejection never reaches the caller.
    (void)inner_->call(delivered);
  }
  if (drop_response) {
    throw TransportError("fault: response dropped");
  }
  return response;
}

}  // namespace cppflare::flare
