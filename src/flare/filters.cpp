#include "flare/filters.h"

#include <cmath>

namespace cppflare::flare {

void FilterChain::process(Dxo& dxo, const FLContext& ctx) const {
  for (const auto& f : filters_) f->process(dxo, ctx);
}

void GaussianPrivacyFilter::process(Dxo& dxo, const FLContext&) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  for (auto& [name, blob] : dxo.data().entries()) {
    for (float& v : blob.values) {
      v += static_cast<float>(rng_.normal(0.0, sigma_));
    }
  }
}

void NormClipFilter::process(Dxo& dxo, const FLContext&) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  double sq = 0.0;
  for (const auto& [name, blob] : dxo.data().entries()) {
    for (float v : blob.values) sq += static_cast<double>(v) * v;
  }
  const double norm = std::sqrt(sq);
  // A NaN/Inf norm means the payload itself is non-finite; scaling by
  // max_norm/NaN would smear NaN over every value. Pass it through and let
  // the server-side validator reject the whole update.
  if (!std::isfinite(norm)) return;
  if (norm <= max_norm_ || norm == 0.0) return;
  const float scale = static_cast<float>(max_norm_ / norm);
  for (auto& [name, blob] : dxo.data().entries()) {
    for (float& v : blob.values) v *= scale;
  }
}

void ExcludeVarsFilter::process(Dxo& dxo, const FLContext&) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  auto& entries = dxo.data().entries();
  for (auto it = entries.begin(); it != entries.end();) {
    if (it->first.rfind(prefix_, 0) == 0) {
      it = entries.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cppflare::flare
