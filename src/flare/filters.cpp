#include "flare/filters.h"

#include <cmath>
#include <limits>

#include "core/error.h"

namespace cppflare::flare {

void FilterChain::process(Dxo& dxo, const FLContext& ctx) const {
  for (const auto& f : filters_) f->process(dxo, ctx);
}

void GaussianPrivacyFilter::process(Dxo& dxo, const FLContext&) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  for (auto& [name, blob] : dxo.data().entries()) {
    for (float& v : blob.values) {
      v += static_cast<float>(rng_.normal(0.0, sigma_));
    }
  }
}

void NormClipFilter::process(Dxo& dxo, const FLContext&) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  double sq = 0.0;
  for (const auto& [name, blob] : dxo.data().entries()) {
    for (float v : blob.values) sq += static_cast<double>(v) * v;
  }
  const double norm = std::sqrt(sq);
  // A NaN/Inf norm means the payload itself is non-finite; scaling by
  // max_norm/NaN would smear NaN over every value. Pass it through and let
  // the server-side validator reject the whole update.
  if (!std::isfinite(norm)) return;
  if (norm <= max_norm_ || norm == 0.0) return;
  const float scale = static_cast<float>(max_norm_ / norm);
  for (auto& [name, blob] : dxo.data().entries()) {
    for (float& v : blob.values) v *= scale;
  }
}

DpGaussianFilter::DpGaussianFilter(double clip_norm, double noise_multiplier,
                                   std::uint64_t seed)
    : clip_norm_(clip_norm),
      noise_multiplier_(noise_multiplier),
      clip_(clip_norm),
      noise_(noise_multiplier * clip_norm, seed) {
  if (clip_norm <= 0.0) throw Error("DpGaussianFilter: clip_norm must be > 0");
  if (noise_multiplier < 0.0) {
    throw Error("DpGaussianFilter: noise_multiplier must be >= 0");
  }
}

void DpGaussianFilter::process(Dxo& dxo, const FLContext& ctx) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  clip_.process(dxo, ctx);
  if (noise_multiplier_ > 0.0) noise_.process(dxo, ctx);
}

DpAccountant::DpAccountant(double noise_multiplier, double delta)
    : delta_(delta) {
  if (delta <= 0.0 || delta >= 1.0) {
    throw Error("DpAccountant: delta must be in (0, 1)");
  }
  // Classic Gaussian-mechanism calibration (Dwork & Roth Thm A.1),
  // inverted: sigma = z * C covers sensitivity C at
  // epsilon = sqrt(2 ln(1.25/delta)) / z. z == 0 means no noise: the
  // mechanism offers no DP guarantee, reported as infinite spend.
  epsilon_per_round_ =
      noise_multiplier > 0.0
          ? std::sqrt(2.0 * std::log(1.25 / delta)) / noise_multiplier
          : std::numeric_limits<double>::infinity();
}

PreScaleFilter::PreScaleFilter(std::int64_t num_sites,
                               std::int64_t total_samples)
    : num_sites_(num_sites), total_samples_(total_samples) {
  if (num_sites <= 0 || total_samples <= 0) {
    throw Error("PreScaleFilter: num_sites and total_samples must be > 0");
  }
}

void PreScaleFilter::process(Dxo& dxo, const FLContext&) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  const std::int64_t samples = dxo.meta_int(Dxo::kMetaNumSamples, 1);
  const float factor =
      static_cast<float>(static_cast<double>(samples) *
                         static_cast<double>(num_sites_) /
                         static_cast<double>(total_samples_));
  for (auto& [name, blob] : dxo.data().entries()) {
    for (float& v : blob.values) v *= factor;
  }
}

void ExcludeVarsFilter::process(Dxo& dxo, const FLContext&) {
  if (dxo.kind() == DxoKind::kMetrics) return;
  auto& entries = dxo.data().entries();
  for (auto it = entries.begin(); it != entries.end();) {
    if (it->first.rfind(prefix_, 0) == 0) {
      it = entries.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace cppflare::flare
