// Run context and event system.
//
// `FLContext` carries the identifiers and knobs a component needs to act in
// a run (mirrors NVFlare's FLContext, flattened to the fields this system
// uses). `EventBus` lets components observe workflow milestones without
// coupling to the controller — the simulator uses it to collect per-round
// metrics, and tests use it to assert ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/thread_annotations.h"

namespace cppflare::flare {

struct FLContext {
  std::string job_id;
  std::string site_name;       // "" on the server
  std::int64_t current_round = 0;
  std::int64_t total_rounds = 0;
  core::Config props;          // job-level knobs (lr, epochs, ...)
};

enum class EventType {
  kStartRun = 0,
  kRoundStarted,
  kBeforeAggregation,
  kAfterAggregation,
  kRoundDone,
  kEndRun,
};

const char* event_type_name(EventType type);

class EventBus {
 public:
  using Handler = std::function<void(const FLContext&)>;

  /// Registers a handler; handlers run synchronously in subscription order.
  void subscribe(EventType type, Handler handler);

  void fire(EventType type, const FLContext& ctx);

 private:
  core::Mutex mu_;
  std::map<EventType, std::vector<Handler>> handlers_ CF_GUARDED_BY(mu_);
};

}  // namespace cppflare::flare
