// Multi-job coordinator (DESIGN.md §16).
//
// Real NVFlare is a long-lived system: one server process hosts many jobs
// over a shared site pool behind an admin console. `JobRunner` is that
// subsystem — a job registry plus scheduler that runs N concurrent
// federated jobs, each with its own rounds/model/aggregator/filter stack
// and its own durability (per-job CPK3 checkpoint + round journal), admits
// jobs resource-aware against the process compute-thread budget
// (core/parallel.h; jobs queue when the budget is exhausted and start when
// capacity frees), and routes wire frames to the right job by the
// envelope's MAC-covered `job_id`.
//
// JobRunner is the only sanctioned way to construct a FederatedServer
// outside the test tree (lint rule R14): hosting every server behind one
// registry is what makes job ids collision-checked, frames routable, and
// the admin console able to see every run.
//
// Admin API: a line protocol over the same sealed transport. A frame from
// the provisioned "admin" identity carries a UTF-8 command line instead of
// a tagged message; the reply payload is UTF-8 text starting "ok" or "err".
// Commands: `submit <blueprint> <job>` (instantiate a registered blueprint),
// `list`, `status <job>`, `abort <job> [reason]`, `metrics <job>`.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "core/wal.h"
#include "flare/server.h"
#include "flare/transport.h"

namespace cppflare::flare {

/// Lifecycle of a registered job.
enum class JobState : std::uint8_t {
  kQueued = 0,    // submitted, waiting for compute capacity
  kRunning = 1,   // server constructed, rounds in progress
  kFinished = 2,  // all rounds completed
  kAborted = 3,   // aborted (operator, quorum failure, or cancelled queued)
};

const char* job_state_name(JobState state);

/// Everything the registry needs to build and run one federated job: the
/// FederatedServer construction surface plus scheduling and durability
/// knobs. Movable, not copyable (owns the aggregator).
struct JobSpec {
  /// server.job_id names the job; the registry enforces uniqueness.
  ServerConfig server;
  nn::StateDict initial_model;
  std::unique_ptr<Aggregator> aggregator;
  /// Scheduler weight: compute slots this job occupies against the process
  /// budget (core::compute_threads() at admission time). Clamped to
  /// [1, budget], so a job demanding more than the machine still runs —
  /// alone.
  std::int64_t compute_slots = 1;
  /// Per-job CPK3 checkpoint path (empty = no checkpointing). With
  /// `resume`, an existing checkpoint restores the job past a coordinator
  /// restart independently of every other job.
  std::string persist_path;
  bool resume = false;
  /// Per-job write-ahead round journal (DESIGN.md §15); empty journal_path
  /// derives `persist_path + ".journal"`.
  bool journal = false;
  std::string journal_path;
  core::WalSyncPolicy journal_sync = core::WalSyncPolicy::kEveryRound;
  /// Runs right after the job's server is constructed, before any frame is
  /// routed to it — the hook for inbound filters, event subscriptions, and
  /// round observers (a queued job has no server to configure yet).
  std::function<void(FederatedServer&)> configure;
};

/// Point-in-time view of one job for `list`/`status`.
struct [[nodiscard]] JobStatus {
  std::string job_id;
  JobState state = JobState::kQueued;
  std::int64_t current_round = 0;
  std::int64_t num_rounds = 0;
  std::int64_t registered_clients = 0;
  std::int64_t compute_slots = 1;
  AbortCode abort_code = AbortCode::kNone;
  std::string abort_reason;
};

/// Authenticated admin console client: seals each command line as the
/// "admin" identity over any Connection and returns the reply text.
class AdminClient {
 public:
  AdminClient(std::unique_ptr<Connection> connection, Credential credential);

  /// One command round trip. Returns the reply line(s) ("ok ..." or
  /// "err ..."). Throws TransportError on channel failure, ProtocolError
  /// when the reply fails verification.
  std::string call(const std::string& line);

 private:
  std::unique_ptr<Connection> connection_;
  Credential credential_;
  SequenceSource seq_;
  SequenceTracker server_seq_;
};

class JobRunner {
 public:
  /// Builds a JobSpec for the admin `submit` command; the returned spec's
  /// server.job_id is overwritten with the submitted job id.
  using Blueprint = std::function<JobSpec(const std::string& job_id)>;

  /// `site_pool` is the shared participant registry every hosted job is
  /// born with: per-site credentials plus the "server" channel identity.
  /// An "admin" entry, when present, enables the admin API for that
  /// identity (absent = admin frames are rejected as unknown participants).
  explicit JobRunner(std::map<std::string, Credential> site_pool);
  ~JobRunner();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Registers the job and admits it immediately when compute capacity
  /// allows (otherwise it queues FIFO). Returns the job id. Throws typed
  /// ConfigError on an empty or duplicate id — the registry is what makes
  /// job ids actually unique in a process.
  std::string submit(JobSpec spec);

  /// Registers a named spec factory for the admin `submit` command.
  void register_blueprint(std::string name, Blueprint blueprint);

  /// The job's server. Throws ConfigError for an unknown job or one still
  /// queued (no server exists yet — use JobSpec::configure for pre-traffic
  /// setup).
  FederatedServer& server(const std::string& job_id);

  /// Registry views. Thread-safe; each status is a snapshot.
  std::vector<JobStatus> list() const;
  JobStatus status(const std::string& job_id) const;  // ConfigError unknown

  /// Aborts a running job (forwards to its server) or cancels a queued one
  /// before it ever gets a server. Returns false for unknown or already
  /// terminal jobs.
  bool abort(const std::string& job_id, const std::string& reason);

  /// Blocks until the job leaves the queue (its server exists). Returns
  /// false on timeout or when the job was cancelled while queued.
  bool wait_until_running(const std::string& job_id, std::int64_t timeout_ms);
  /// Blocks until every registered job is terminal. Returns false on
  /// timeout.
  bool wait_all(std::int64_t timeout_ms);

  /// Transport entry points: route each sealed frame to the job its
  /// envelope names (admin frames to the admin handler). Unknown or
  /// unbound-but-ambiguous jobs are rejected with the typed
  /// ErrorCode::kWrongJob; frames for a queued job get kRetryable until it
  /// is admitted. The callables must not outlive the runner.
  Dispatcher router();
  AsyncDispatcher async_router();

  /// Parses and executes one admin command line; returns the reply text.
  /// Public so harnesses can drive the console without a transport.
  std::string admin_execute(const std::string& line);

 private:
  struct Job {
    std::string id;
    JobSpec spec;  // aggregator/model moved out when the server starts
    std::int64_t slots = 1;
    JobState phase = JobState::kQueued;  // kFinished/kAborted only for
                                         // cancelled-while-queued; a live
                                         // server owns its terminal state
    bool terminal = false;               // kEndRun observed
    bool routable = false;               // configure hook done; frames may
                                         // dispatch (see finalize_started)
    std::string cancel_reason;           // cancelled-while-queued
    std::unique_ptr<FederatedServer> server;
  };

  /// Admits queued jobs (FIFO) while the compute budget allows. Returns the
  /// jobs it gave servers to; the caller must hand them to
  /// finalize_started() once mu_ is released.
  [[nodiscard]] std::vector<Job*> schedule_locked() CF_REQUIRES(mu_);
  void start_job_locked(Job& job) CF_REQUIRES(mu_);
  /// Runs each started job's configure hook and marks it routable. The hook
  /// registers observers/filters, which take the new server's lock — and by
  /// then that server's ticker is live and can fire kEndRun (deadline
  /// abort), whose on_job_end handler takes mu_. Holding mu_ across the
  /// hook would therefore deadlock; this step must run outside it.
  void finalize_started(const std::vector<Job*>& started) CF_EXCLUDES(mu_);
  /// kEndRun observer: frees the job's slots and admits successors. Runs
  /// under the finishing server's lock — must never call back into it.
  void on_job_end(const std::string& job_id);
  Job* find_locked(const std::string& job_id) const CF_REQUIRES(mu_);
  /// Status split in two because a server query takes that server's lock,
  /// which must never nest inside mu_ (on_job_end nests them the other way
  /// round): seed under mu_, then finish against the server outside it.
  JobStatus seed_status_locked(const Job& job) const CF_REQUIRES(mu_);
  void fill_from_server(JobStatus& status, FederatedServer* server) const;

  /// Routing decision resolved under mu_, executed outside it (dispatching
  /// into a server takes that server's lock; see lock-order note above).
  struct Route {
    Dispatcher sync_dispatch;            // set: forward (synchronous path)
    AsyncDispatcher async_dispatch;      // set: forward (long-poll path)
    std::vector<std::uint8_t> reply;     // set: answer directly (errors)
  };
  Route resolve(const std::vector<std::uint8_t>& request);
  std::vector<std::uint8_t> handle_admin(const std::vector<std::uint8_t>& request);
  std::vector<std::uint8_t> seal_reply(const std::string& sender,
                                       const std::vector<std::uint8_t>& key,
                                       const std::string& job_id,
                                       const std::vector<std::uint8_t>& body);

  std::map<std::string, Credential> site_pool_;
  /// One outbound "server" sequence pool shared with every hosted server,
  /// so router errors and server replies to the same client stay strictly
  /// increasing (the client's replay check demands it).
  std::shared_ptr<SequencePool> sequences_ = std::make_shared<SequencePool>();
  SequenceTracker admin_inbound_;  // internally synchronized

  mutable core::Mutex mu_;
  mutable core::CondVar cv_;
  /// Submission order; jobs are never erased (a terminal job keeps its id
  /// reserved and its server queryable for results).
  std::vector<std::unique_ptr<Job>> jobs_ CF_GUARDED_BY(mu_);
  std::map<std::string, Blueprint> blueprints_ CF_GUARDED_BY(mu_);
};

}  // namespace cppflare::flare
