#include "flare/client.h"

#include <chrono>
#include <thread>

#include "core/error.h"
#include "core/logging.h"

namespace cppflare::flare {

namespace {
const core::Logger& logger() {
  static core::Logger log("FederatedClient");
  return log;
}
}  // namespace

FederatedClient::FederatedClient(ClientConfig config, Credential credential,
                                 std::unique_ptr<Connection> connection,
                                 std::shared_ptr<Learner> learner)
    : config_(std::move(config)),
      credential_(std::move(credential)),
      connection_(std::move(connection)),
      learner_(std::move(learner)) {
  if (!connection_) throw Error("FederatedClient: connection required");
  if (!learner_) throw Error("FederatedClient: learner required");
}

std::vector<std::uint8_t> FederatedClient::call(
    const std::vector<std::uint8_t>& frame) {
  const std::vector<std::uint8_t> sealed =
      seal(credential_.name, credential_.secret, seq_.next(), frame);
  const std::vector<std::uint8_t> sealed_response = connection_->call(sealed);
  const Envelope env = open(sealed_response, credential_.secret);
  if (env.sender != "server") {
    throw ProtocolError("response not from server but '" + env.sender + "'");
  }
  server_seq_.check_and_advance(env.sender, env.sequence);
  if (peek_type(env.payload) == MsgType::kError) {
    throw ProtocolError("server error: " + decode_error(env.payload).message);
  }
  return env.payload;
}

void FederatedClient::run() {
  // ---- register ----------------------------------------------------------
  const RegisterAck ack = decode_register_ack(
      call(pack(RegisterRequest{credential_.name, credential_.token})));
  if (!ack.accepted) {
    throw ProtocolError("registration rejected for " + credential_.name + ": " +
                        ack.message);
  }
  session_id_ = ack.session_id;
  logger().info("Successfully registered client:" + credential_.name +
                " for project " + config_.job_id + ". Token:" + credential_.token);

  // ---- task loop ----------------------------------------------------------
  std::int64_t idle_ms = 0;
  for (;;) {
    const TaskMessage task = decode_task(call(pack(GetTaskRequest{session_id_})));
    if (task.task == TaskKind::kStop) {
      logger().info(credential_.name + " received stop; shutting down");
      return;
    }
    if (task.task == TaskKind::kNone) {
      if (config_.max_idle_ms > 0 && idle_ms >= config_.max_idle_ms) {
        throw TransportError(credential_.name + " idle for too long; aborting");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(config_.poll_interval_ms));
      idle_ms += config_.poll_interval_ms;
      continue;
    }
    idle_ms = 0;

    FLContext ctx;
    ctx.job_id = config_.job_id;
    ctx.site_name = credential_.name;
    ctx.current_round = task.round;
    ctx.total_rounds = task.total_rounds;

    Dxo update = learner_->train(task.payload, ctx);
    outbound_filters_.process(update, ctx);

    const SubmitAck submit_ack = decode_submit_ack(
        call(pack(SubmitUpdateRequest{session_id_, task.round, update})));
    if (!submit_ack.accepted) {
      logger().warn(credential_.name + " contribution rejected: " +
                    submit_ack.message);
    } else {
      rounds_participated_ += 1;
    }
  }
}

}  // namespace cppflare::flare
