#include "flare/client.h"

#include <algorithm>
#include <chrono>

#include "core/error.h"
#include "core/logging.h"
#include "core/trace.h"

#define CPPFLARE_LOG_COMPONENT "FederatedClient"

namespace cppflare::flare {

namespace {
/// Raised by call_once when the server no longer knows our session; the
/// retry loop converts it into an idempotent re-registration.
struct UnknownSessionSignal {
  std::string message;
};

/// Stable string hash (FNV-1a) so retry jitter is reproducible per site
/// across processes, unlike std::hash.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}
}  // namespace

FederatedClient::FederatedClient(ClientConfig config, Credential credential,
                                 std::unique_ptr<Connection> connection,
                                 std::shared_ptr<Learner> learner)
    : config_(std::move(config)),
      credential_(std::move(credential)),
      connection_(std::move(connection)),
      learner_(std::move(learner)) {
  if (!connection_) throw Error("FederatedClient: connection required");
  if (!learner_) throw Error("FederatedClient: learner required");
}

FederatedClient::FederatedClient(ClientConfig config, Credential credential,
                                 ConnectionFactory factory,
                                 std::shared_ptr<Learner> learner)
    : config_(std::move(config)),
      credential_(std::move(credential)),
      factory_(std::move(factory)),
      learner_(std::move(learner)) {
  if (!factory_) throw Error("FederatedClient: connection factory required");
  if (!learner_) throw Error("FederatedClient: learner required");
}

void FederatedClient::ensure_connection() {
  if (connection_) return;
  if (!factory_) {
    throw TransportError(credential_.name + ": connection lost and no factory");
  }
  connection_ = factory_();
  if (!connection_) {
    throw TransportError(credential_.name + ": connection factory returned null");
  }
}

std::vector<std::uint8_t> FederatedClient::call_once(
    const std::vector<std::uint8_t>& frame) {
  ensure_connection();
  // Every attempt is re-sealed with a fresh sequence number, so a resend
  // never trips the server's replay protection. The envelope is bound to
  // our job so the multi-job router can dispatch it (and a cross-job replay
  // fails the MAC on the other job's channel).
  const std::vector<std::uint8_t> sealed = seal(
      credential_.name, credential_.secret, seq_.next(), frame, config_.job_id);
  const std::vector<std::uint8_t> sealed_response = connection_->call(sealed);
  Envelope env;
  try {
    env = open(sealed_response, credential_.secret);
  } catch (const Error& e) {
    // The response failed verification: corrupted in flight, or the server
    // could not even identify us (its error was sealed under an empty
    // key). Either way the request may not have taken effect — retry.
    throw TransportError(credential_.name +
                         ": response unverifiable: " + e.what());
  }
  if (env.sender != "server") {
    throw ProtocolError("response not from server but '" + env.sender + "'");
  }
  if (!config_.job_id.empty() && !env.job_id.empty() &&
      env.job_id != config_.job_id) {
    throw ProtocolError(credential_.name + ": response bound to job '" +
                        env.job_id + "', expected '" + config_.job_id + "'");
  }
  server_seq_.check_and_advance(env.sender, env.sequence);
  if (peek_type(env.payload) == MsgType::kError) {
    const ErrorMessage err = decode_error(env.payload);
    switch (err.code) {
      case ErrorCode::kRetryable:
        throw TransportError("server (retryable): " + err.message);
      case ErrorCode::kUnknownSession:
        throw UnknownSessionSignal{err.message};
      case ErrorCode::kWrongJob:
        throw ProtocolError(credential_.name + " (cross-job traffic): " +
                            err.message);
      case ErrorCode::kFatal:
        break;
    }
    throw ProtocolError("server error: " + err.message);
  }
  return env.payload;
}

std::vector<std::uint8_t> FederatedClient::call(const FrameBuilder& build_frame) {
  core::Backoff backoff(config_.retry,
                        config_.retry_seed ^ fnv1a(credential_.name));
  std::int64_t session_recoveries = 0;
  for (;;) {
    try {
      return call_once(build_frame());
    } catch (const TransportError& e) {
      transport_failures_ += 1;
      if (!backoff.try_again()) {
        LOG(warn)
            .msg("giving up:")
            .msg(e.what())
            .kv("site", credential_.name)
            .kv("retries", backoff.retries());
        throw;
      }
      LOG(warn)
          .msg("transport failure:")
          .msg(e.what())
          .kv("site", credential_.name)
          .kv("retry", backoff.retries())
          .kv("max_retries", config_.retry.max_retries);
      if (factory_ && connection_) {
        // A broken socket cannot be told apart from a lost frame; rebuild
        // the connection when we can and let the factory decide how.
        connection_.reset();
        reconnects_ += 1;
      }
    } catch (const UnknownSessionSignal& e) {
      if (registering_ || ++session_recoveries > 3) {
        throw ProtocolError(credential_.name +
                            ": session repeatedly rejected: " + e.message);
      }
      LOG(warn)
          .msg("session unknown to server; re-registering")
          .kv("site", credential_.name)
          .kv("detail", e.message);
      reregistrations_ += 1;
      register_session();
    }
  }
}

void FederatedClient::register_session() {
  registering_ = true;
  try {
    const RegisterAck ack = decode_register_ack(call(
        [this] { return pack(RegisterRequest{credential_.name, credential_.token}); }));
    registering_ = false;
    if (!ack.accepted) {
      throw ProtocolError("registration rejected for " + credential_.name +
                          ": " + ack.message);
    }
    session_id_ = ack.session_id;
  } catch (...) {
    registering_ = false;
    throw;
  }
  LOG(info).msg("Successfully registered client:" + credential_.name +
                " for project " + config_.job_id + ". Token:" + credential_.token);
}

void FederatedClient::run() {
  // ---- register ----------------------------------------------------------
  register_session();

  // ---- task loop ----------------------------------------------------------
  // Idle handling is long-poll, not timed re-polling: each get_task carries
  // a wait budget and the server parks the call until a task exists (or the
  // budget runs out, which doubles as a liveness heartbeat). A kNone answer
  // therefore just re-polls immediately; `max_idle_ms` bounds the total
  // task-less stretch by wall clock.
  const std::int64_t wait_ms = std::max<std::int64_t>(1, config_.long_poll_ms);
  auto last_progress = std::chrono::steady_clock::now();
  for (;;) {
    const auto poll_started = std::chrono::steady_clock::now();
    const std::vector<std::uint8_t> reply =
        call([this, wait_ms] { return pack(GetTaskRequest{session_id_, wait_ms}); });
    if (peek_type(reply) == MsgType::kUnmaskRequest) {
      // Mask-recovery phase (DESIGN.md §14): the server lost sites after
      // masked submissions landed and asks us to reveal the sum of our
      // pairwise masks against the dropped set. call() already retries
      // transport failures under backoff, so recovery traffic survives the
      // same fault injection as ordinary exchanges.
      const UnmaskRequest req = decode_unmask_request(reply);
      if (!unmask_provider_) {
        throw ProtocolError(credential_.name +
                            ": server asked for mask shares but no unmask "
                            "provider is installed");
      }
      Dxo share;
      {
        CF_TRACE_SPAN_SITE("client.unmask", credential_.name, req.round);
        share = unmask_provider_(req.dropped, req.round, req.skeleton.data());
      }
      const SubmitAck ack =
          decode_submit_ack(call([this, &req, &share] {
            return pack(UnmaskResponse{session_id_, req.round, req.wave, share});
          }));
      if (ack.accepted) {
        unmask_answers_ += 1;
      } else {
        // Stale wave / already-finished recovery: harmless, the server moved
        // on without us. Log and resume polling.
        LOG(warn)
            .msg("unmask share not accepted:")
            .msg(ack.message)
            .kv("site", credential_.name)
            .kv("round", req.round)
            .kv("wave", req.wave);
      }
      last_progress = std::chrono::steady_clock::now();
      continue;
    }
    const TaskMessage task = decode_task(reply);
    if (task.task == TaskKind::kStop) {
      LOG(info).msg("received stop; shutting down").kv("site", credential_.name);
      return;
    }
    if (task.task == TaskKind::kNone) {
      const auto now = std::chrono::steady_clock::now();
      const auto idle_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               now - last_progress)
                               .count();
      if (config_.max_idle_ms > 0 && idle_ms >= config_.max_idle_ms) {
        throw TransportError(credential_.name + " idle for too long; aborting");
      }
      // A server that cannot park (synchronous dispatch path) answers kNone
      // instantly; without this guard the loop would busy-spin on its lock.
      const auto answered_in = std::chrono::duration_cast<std::chrono::milliseconds>(
                                   now - poll_started)
                                   .count();
      if (answered_in < 2) core::Backoff::sleep_ms(2);
      continue;
    }
    last_progress = std::chrono::steady_clock::now();

    FLContext ctx;
    ctx.job_id = config_.job_id;
    ctx.site_name = credential_.name;
    ctx.current_round = task.round;
    ctx.total_rounds = task.total_rounds;

    Dxo update;
    {
      CF_TRACE_SPAN_SITE("client.train", credential_.name, task.round);
      update = learner_->train(task.payload, ctx);
    }
    // Stamp the round before the filter chain runs: the server's freshness
    // check needs the honest stamp, and a poisoning filter replaying an old
    // update must carry the *old* stamp through (that is the attack).
    if (!update.has_meta(Dxo::kMetaRound)) {
      update.set_meta_int(Dxo::kMetaRound, task.round);
    }
    outbound_filters_.process(update, ctx);

    SubmitAck submit_ack;
    {
      CF_TRACE_SPAN_SITE("client.submit", credential_.name, task.round);
      submit_ack = decode_submit_ack(call([this, &task, &update] {
        return pack(SubmitUpdateRequest{session_id_, task.round, update});
      }));
    }
    if (submit_ack.accepted || submit_ack.message == kDuplicateContribution) {
      // A duplicate ack means an earlier attempt landed but its response
      // was lost — the contribution is in, count the round.
      rounds_participated_ += 1;
    } else {
      updates_rejected_ += 1;
      LOG(warn)
          .msg("contribution rejected:")
          .msg(submit_ack.message)
          .kv("site", credential_.name)
          .kv("reason", reject_reason_name(submit_ack.reason));
    }
  }
}

}  // namespace cppflare::flare
