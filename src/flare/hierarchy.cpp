#include "flare/hierarchy.h"

#include <utility>

#include "core/error.h"
#include "core/logging.h"
#include "core/parallel.h"

#define CPPFLARE_LOG_COMPONENT "HierAggregator"

namespace cppflare::flare {

namespace {

/// Largest power of two strictly below n (n >= 2).
std::size_t canonical_split(std::size_t n) {
  std::size_t p = 1;
  while (p * 2 < n) p *= 2;
  return p;
}

bool is_pow2(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace

nn::StateDict weighted_tree_sum(const WeightedRef* items, std::size_t n) {
  if (n == 0) throw Error("weighted_tree_sum: empty reduction");
  if (n == 1) {
    nn::StateDict leaf = items[0].data->zeros_like();
    leaf.axpy(items[0].weight, *items[0].data);
    return leaf;
  }
  const std::size_t p = canonical_split(n);
  nn::StateDict left = weighted_tree_sum(items, p);
  const nn::StateDict right = weighted_tree_sum(items + p, n - p);
  left.axpy(1.0f, right);
  return left;
}

nn::StateDict tree_combine(std::vector<nn::StateDict> parts) {
  if (parts.empty()) throw Error("tree_combine: empty reduction");
  // Iterative bottom-up pass with the same shape as the recursive canonical
  // tree: combining adjacent pairs left-to-right, repeatedly, computes
  // exactly the canonical pairwise tree because its split point (largest
  // power of two below n) is where the pairing rounds align.
  while (parts.size() > 1) {
    std::vector<nn::StateDict> next;
    next.reserve((parts.size() + 1) / 2);
    for (std::size_t i = 0; i < parts.size(); i += 2) {
      if (i + 1 < parts.size()) {
        parts[i].axpy(1.0f, parts[i + 1]);
      }
      next.push_back(std::move(parts[i]));
    }
    parts = std::move(next);
  }
  return std::move(parts.front());
}

HierarchicalFedAvgAggregator::HierarchicalFedAvgAggregator(bool weighted,
                                                           std::int64_t fanout)
    : FedAvgAggregator(weighted), fanout_(fanout) {
  if (fanout_ < 2 || !is_pow2(fanout_)) {
    throw ConfigError(
        "HierarchicalFedAvgAggregator: fanout must be a power of two >= 2, "
        "got " +
        std::to_string(fanout_));
  }
}

std::string HierarchicalFedAvgAggregator::name() const {
  return std::string("HierFedAvg(") + (weighted_ ? "weighted" : "uniform") +
         ",fanout=" + std::to_string(fanout_) + ")";
}

nn::StateDict HierarchicalFedAvgAggregator::reduce_pending() const {
  std::vector<WeightedRef> refs;
  refs.reserve(pending_.size());
  for (const auto& [site, p] : pending_) {
    refs.push_back(WeightedRef{static_cast<float>(p.weight), &p.dxo.data()});
  }
  const std::size_t block = static_cast<std::size_t>(fanout_);
  const std::size_t num_blocks = (refs.size() + block - 1) / block;
  if (num_blocks <= 1) return weighted_tree_sum(refs.data(), refs.size());

  // Leaf level: each power-of-two-aligned block is an independent shard —
  // exactly what a leaf aggregator would hold. Blocks write disjoint slots,
  // so running them on the compute pool keeps the result deterministic.
  std::vector<nn::StateDict> partials(num_blocks);
  core::parallel_for(0, static_cast<std::int64_t>(num_blocks), 1,
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t b = lo; b < hi; ++b) {
                         const std::size_t begin =
                             static_cast<std::size_t>(b) * block;
                         const std::size_t len =
                             std::min(block, refs.size() - begin);
                         partials[static_cast<std::size_t>(b)] =
                             weighted_tree_sum(refs.data() + begin, len);
                       }
                     });
  // Root level: canonical combine of the leaf partials reproduces the flat
  // tree bit for bit (block-subtree property, see header).
  return tree_combine(std::move(partials));
}

}  // namespace cppflare::flare
