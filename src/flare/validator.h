// Server-side update validation and cross-round site reputation.
//
// PR 3 hardened the transport; this layer hardens the *update path*: a site
// that behaves perfectly at the wire level can still upload a poisoned or
// NaN-laden model (see poison.h for the attack catalogue). Every inbound
// contribution is screened before it may touch the aggregator:
//
//  * schema check       — keys and shapes must be congruent with the global
//                         model, and the payload must carry weights;
//  * finite-value scan  — any NaN/Inf rejects the update outright;
//  * round freshness    — a kMetaRound stamp older than the open round is a
//                         replay (stale-round attack);
//  * sample-count sanity— non-positive or implausibly inflated num_samples
//                         claims (weight-gaming FedAvg) are refused;
//  * norm outlier       — at round close, a robust z-score of each update's
//                         deviation norm against the round's median/MAD
//                         flags scale/sign-flip/noise attacks; flagged
//                         contributions are revoked from the aggregator.
//
// The outlier pass runs over the *complete* set of admitted norms rather
// than a running estimate, so verdicts are independent of arrival order and
// defended runs stay bit-for-bit reproducible (the same contract FedAvg's
// buffered reduction upholds).
//
// `UpdateValidator::admit` is the single sanctioned gateway to
// `Aggregator::accept` in server code — lint rule R7 enforces that no other
// src/flare call site feeds the aggregator directly.
//
// `SiteReputation` carries verdicts across rounds: a run of consecutive
// rejections quarantines a site (its uploads are still scored, never
// aggregated); a run of clean scored rounds paroles it back in. Standings
// persist in checkpoint v3 so a restarted server keeps its quarantine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "flare/aggregator.h"
#include "flare/dxo.h"
#include "flare/messages.h"

namespace cppflare::flare {

struct ValidatorConfig {
  /// Master switch; disabled, every update passes straight through to the
  /// aggregator (the undefended baseline used by bench_poison).
  bool enabled = true;
  /// Reject payloads whose keys/shapes differ from the global model.
  bool check_schema = true;
  /// Reject payloads containing NaN or Inf.
  bool check_finite = true;
  /// Reject updates whose kMetaRound stamp disagrees with the open round.
  /// Applies only when the meta is present, so harnesses that never stamp
  /// rounds are unaffected.
  bool check_round_freshness = true;
  /// Reject claimed num_samples above this (0 = no upper bound). A
  /// non-positive claim is always rejected when the meta is present.
  std::int64_t max_sample_count = 0;
  /// Robust z-score threshold for the round-close norm-outlier pass
  /// (0 = off). 6 is a forgiving default: honest inter-site heterogeneity
  /// rarely exceeds 3, scale/sign-flip attacks land in the tens.
  double norm_zscore_threshold = 0.0;
  /// Outlier statistics need a population; below this many admitted
  /// updates the pass is skipped.
  std::int64_t min_updates_for_outlier = 4;
};

/// One screening outcome; `ok()` means the update may be aggregated.
struct Verdict {
  RejectReason reason = RejectReason::kNone;
  std::string detail;
  bool ok() const { return reason == RejectReason::kNone; }
};

class UpdateValidator {
 public:
  explicit UpdateValidator(ValidatorConfig config = {});

  /// Starts a round: remembers the global model (schema + norm reference)
  /// and the open round index, clears the admitted-norm set.
  void reset(const nn::StateDict& global, std::int64_t round);

  /// Screens one contribution and, when it passes, feeds it to the
  /// aggregator. The single sanctioned Aggregator::accept call site in
  /// server code (lint R7).
  Verdict admit(Aggregator& aggregator, const std::string& site, const Dxo& dxo);

  /// Screens without aggregating — quarantined sites are scored this way.
  /// Returns the screening verdict and the update's deviation norm (for
  /// the round-close outlier judgment) via `norm_out`.
  Verdict score(const std::string& site, const Dxo& dxo, double* norm_out) const;

  /// Round-close pass: robust z-score of every admitted norm against the
  /// round's median/MAD. Returns flagged (site, verdict) pairs in
  /// site-name order; the caller revokes them from the aggregator.
  std::vector<std::pair<std::string, Verdict>> flag_outliers() const;

  /// Judges one norm (e.g. a quarantined site's scored upload) against the
  /// round's admitted-norm population. ok() when the pass is off, the
  /// population is too small, or the norm is inside the threshold.
  Verdict judge_norm(double norm) const;

  const ValidatorConfig& config() const { return config_; }

 private:
  Verdict screen(const Dxo& dxo, double* norm_out) const;
  double deviation_norm(const Dxo& dxo) const;
  bool round_stats(double* median, double* scale) const;

  ValidatorConfig config_;
  nn::StateDict global_;
  std::int64_t round_ = 0;
  std::map<std::string, double> norms_;  // site -> admitted deviation norm
};

// ---- cross-round reputation ----------------------------------------------

struct ReputationConfig {
  /// Consecutive rejected rounds that quarantine a site (0 = never).
  std::int64_t quarantine_after = 0;
  /// Consecutive clean scored rounds that parole a quarantined site.
  std::int64_t parole_after = 2;
};

/// One site's standing; serialized into checkpoint v3.
struct SiteStanding {
  /// Consecutive rejections (reset by a clean accepted round).
  std::int64_t strikes = 0;
  /// Consecutive clean scored rounds while quarantined.
  std::int64_t clean_streak = 0;
  bool quarantined = false;
  std::int64_t total_rejections = 0;
  std::int64_t times_quarantined = 0;
};

class SiteReputation {
 public:
  explicit SiteReputation(ReputationConfig config = {});

  bool enabled() const { return config_.quarantine_after > 0; }

  /// Records a rejected (or outlier-scored) round for the site. Returns
  /// true when this strike crosses the threshold and quarantines it.
  bool record_rejection(const std::string& site);

  /// Records a clean round. For a quarantined site this grows its parole
  /// streak; returns true when the streak re-admits it (takes effect the
  /// next round — the current round already excluded its upload).
  bool record_clean(const std::string& site);

  bool quarantined(const std::string& site) const;
  std::int64_t quarantined_count() const;
  std::vector<std::string> quarantined_sites() const;
  const std::map<std::string, SiteStanding>& standings() const {
    return standings_;
  }

  /// Restores checkpointed standings (resume path).
  void restore(std::map<std::string, SiteStanding> standings);

 private:
  ReputationConfig config_;
  std::map<std::string, SiteStanding> standings_;
};

}  // namespace cppflare::flare
