#include "flare/journal.h"

#include <utility>

#include "core/bytes.h"
#include "core/crashpoint.h"
#include "core/error.h"

namespace cppflare::flare {

const char* journal_event_name(JournalEventType type) {
  switch (type) {
    case JournalEventType::kJobHeader: return "job_header";
    case JournalEventType::kRoundOpen: return "round_open";
    case JournalEventType::kAccepted: return "accepted";
    case JournalEventType::kRejected: return "rejected";
    case JournalEventType::kQuarantineScored: return "quarantine_scored";
    case JournalEventType::kEviction: return "eviction";
    case JournalEventType::kRecoveryBegin: return "recovery_begin";
    case JournalEventType::kUnmaskShare: return "unmask_share";
    case JournalEventType::kRecoveryWave: return "recovery_wave";
    case JournalEventType::kCommit: return "commit";
  }
  return "unknown";
}

namespace {

void write_names(core::ByteWriter& w, const std::vector<std::string>& names) {
  w.write_u32(static_cast<std::uint32_t>(names.size()));
  for (const std::string& name : names) w.write_string(name);
}

std::vector<std::string> read_names(core::ByteReader& r) {
  const std::uint32_t count = r.read_u32();
  std::vector<std::string> names;
  names.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) names.push_back(r.read_string());
  return names;
}

}  // namespace

std::vector<std::uint8_t> JournalEvent::encode() const {
  core::ByteWriter w;
  w.write_u8(static_cast<std::uint8_t>(type));
  switch (type) {
    case JournalEventType::kJobHeader:
      w.write_string(job_id);
      break;
    case JournalEventType::kRoundOpen:
      w.write_i64(round);
      write_names(w, names);
      break;
    case JournalEventType::kAccepted:
    case JournalEventType::kUnmaskShare:
      w.write_string(site);
      payload->serialize(w);
      break;
    case JournalEventType::kRejected:
      w.write_string(site);
      w.write_u8(reason);
      w.write_string(detail);
      break;
    case JournalEventType::kQuarantineScored:
      w.write_string(site);
      w.write_u8(reason);
      w.write_string(detail);
      w.write_f64(norm);
      break;
    case JournalEventType::kEviction:
      w.write_string(site);
      break;
    case JournalEventType::kRecoveryBegin:
      w.write_i64(round);
      write_names(w, names);
      w.write_bool(deadline_fired);
      break;
    case JournalEventType::kRecoveryWave:
      w.write_i64(wave);
      write_names(w, names);
      break;
    case JournalEventType::kCommit:
      w.write_i64(round);
      break;
  }
  return w.take();
}

JournalEvent JournalEvent::decode(const std::vector<std::uint8_t>& bytes) {
  core::ByteReader r(bytes);
  JournalEvent ev;
  ev.type = static_cast<JournalEventType>(r.read_u8());
  switch (ev.type) {
    case JournalEventType::kJobHeader:
      ev.job_id = r.read_string();
      break;
    case JournalEventType::kRoundOpen:
      ev.round = r.read_i64();
      ev.names = read_names(r);
      break;
    case JournalEventType::kAccepted:
    case JournalEventType::kUnmaskShare:
      ev.site = r.read_string();
      ev.payload = Dxo::deserialize(r);
      break;
    case JournalEventType::kRejected:
      ev.site = r.read_string();
      ev.reason = r.read_u8();
      ev.detail = r.read_string();
      break;
    case JournalEventType::kQuarantineScored:
      ev.site = r.read_string();
      ev.reason = r.read_u8();
      ev.detail = r.read_string();
      ev.norm = r.read_f64();
      break;
    case JournalEventType::kEviction:
      ev.site = r.read_string();
      break;
    case JournalEventType::kRecoveryBegin:
      ev.round = r.read_i64();
      ev.names = read_names(r);
      ev.deadline_fired = r.read_bool();
      break;
    case JournalEventType::kRecoveryWave:
      ev.wave = r.read_i64();
      ev.names = read_names(r);
      break;
    case JournalEventType::kCommit:
      ev.round = r.read_i64();
      break;
    default:
      throw SerializationError("unknown journal event type " +
                               std::to_string(static_cast<int>(ev.type)));
  }
  return ev;
}

RoundJournal::RoundJournal(std::string path, core::WalSyncPolicy policy)
    : wal_(std::move(path), policy) {}

JournalReplay RoundJournal::open(const std::string& job_id) {
  job_id_ = job_id;
  const core::WalReplayResult raw = wal_.open_and_replay();
  JournalReplay replay;
  replay.torn_bytes = raw.truncated_bytes;
  if (raw.records.empty()) {
    JournalEvent header;
    header.type = JournalEventType::kJobHeader;
    header.job_id = job_id;
    wal_.append(header.encode());
    wal_.sync();
    header_end_ = wal_.size();
    return replay;
  }
  // Frame overhead is the u32 len + u32 crc pair (core/wal.h).
  header_end_ = 8 + raw.records.front().size();
  const JournalEvent header = JournalEvent::decode(raw.records.front());
  if (header.type != JournalEventType::kJobHeader) {
    throw core::WalCorruptionError("journal '" + wal_.path() +
                                   "' does not start with a job header");
  }
  if (header.job_id != job_id) {
    throw ConfigError("journal '" + wal_.path() + "' belongs to job '" +
                      header.job_id + "', not '" + job_id + "'");
  }
  for (std::size_t i = 1; i < raw.records.size(); ++i) {
    JournalEvent ev = JournalEvent::decode(raw.records[i]);
    switch (ev.type) {
      case JournalEventType::kRoundOpen:
        replay.open_round = ev.round;
        replay.events.clear();
        replay.events.push_back(std::move(ev));
        break;
      case JournalEventType::kCommit:
        replay.committed_round = ev.round;
        replay.open_round = -1;
        replay.events.clear();
        break;
      default:
        replay.events.push_back(std::move(ev));
        break;
    }
  }
  if (replay.open_round < 0) replay.events.clear();
  return replay;
}

void RoundJournal::append(const JournalEvent& event) {
  wal_.append(event.encode());
}

void RoundJournal::round_open(std::int64_t round,
                              const std::vector<std::string>& cohort) {
  JournalEvent ev;
  ev.type = JournalEventType::kRoundOpen;
  ev.round = round;
  ev.names = cohort;
  append(ev);
  // No sync here: the previous round was already made durable by its own
  // commit barrier and the compaction fsync, and kEveryRound promises
  // power-loss durability only for *committed* rounds — this open frame is
  // covered by this round's commit() barrier (kEveryRecord still syncs the
  // append itself).
}

void RoundJournal::accepted(const std::string& site, const Dxo& update) {
  JournalEvent ev;
  ev.type = JournalEventType::kAccepted;
  ev.site = site;
  ev.payload = update;
  append(ev);
}

void RoundJournal::rejected(const std::string& site, std::uint8_t reason,
                            const std::string& message) {
  JournalEvent ev;
  ev.type = JournalEventType::kRejected;
  ev.site = site;
  ev.reason = reason;
  ev.detail = message;
  append(ev);
}

void RoundJournal::quarantine_scored(const std::string& site,
                                     std::uint8_t reason,
                                     const std::string& detail, double norm) {
  JournalEvent ev;
  ev.type = JournalEventType::kQuarantineScored;
  ev.site = site;
  ev.reason = reason;
  ev.detail = detail;
  ev.norm = norm;
  append(ev);
}

void RoundJournal::evicted(const std::string& site) {
  JournalEvent ev;
  ev.type = JournalEventType::kEviction;
  ev.site = site;
  append(ev);
}

void RoundJournal::recovery_begin(std::int64_t round,
                                  const std::vector<std::string>& dropped,
                                  bool deadline_fired) {
  JournalEvent ev;
  ev.type = JournalEventType::kRecoveryBegin;
  ev.round = round;
  ev.names = dropped;
  ev.deadline_fired = deadline_fired;
  append(ev);
}

void RoundJournal::unmask_share(const std::string& site, const Dxo& share) {
  JournalEvent ev;
  ev.type = JournalEventType::kUnmaskShare;
  ev.site = site;
  ev.payload = share;
  append(ev);
}

void RoundJournal::recovery_wave(std::int64_t wave,
                                 const std::vector<std::string>& demoted) {
  JournalEvent ev;
  ev.type = JournalEventType::kRecoveryWave;
  ev.wave = wave;
  ev.names = demoted;
  append(ev);
}

void RoundJournal::commit(std::int64_t round) {
  JournalEvent ev;
  ev.type = JournalEventType::kCommit;
  ev.round = round;
  append(ev);
  // No sync of the commit frame: by contract the round's CPK3 checkpoint is
  // already durable when commit() is called, so the checkpoint — not this
  // frame — is the round's source of truth. A crash that eats the un-synced
  // kCommit leaves an open round the restart reconciles against the newer
  // checkpoint and discards (the stale-journal branch), landing in the same
  // state a surviving kCommit would. The frame still matters for the
  // process-death window below: page cache survives SIGKILL, so a kill
  // between here and compaction replays into the clean committed branch.
  CF_CRASHPOINT("journal.commit.after");
  discard();
}

void RoundJournal::discard() {
  CF_CRASHPOINT("journal.compact.before");
  // In-place compaction: drop every frame after the job header. Cheap (no
  // temp-file rewrite — the fd, inode and header bytes stay put) and
  // crash-atomic on the frame boundary: a kill here leaves either the
  // committed/stale frames (replay skips past a trailing kCommit, or the
  // stale branch discards again) or the bare header.
  wal_.truncate(header_end_);
}

void RoundJournal::sync() { wal_.sync(); }

std::vector<JournalEvent> RoundJournal::read(const std::string& path) {
  const core::WalReplayResult raw = core::Wal::read(path);
  std::vector<JournalEvent> events;
  events.reserve(raw.records.size());
  for (const auto& record : raw.records) {
    events.push_back(JournalEvent::decode(record));
  }
  return events;
}

}  // namespace cppflare::flare
