// Fault-injection transport decorator.
//
// `FaultyConnection` wraps any `Connection` (in-proc or TCP) and injects
// transport failures — dropped frames, delays, duplicated frames, bit
// corruption, hard disconnects — according to a `FaultPlan`. All randomness
// comes from a seeded core::Rng (lint R1), so a given (plan, seed) produces
// the exact same fault sequence every run: fault-tolerance tests are
// reproducible, never flaky. This is the simulator-side stand-in for the
// real-deployment failures the NVFlare paper calls out (crashing sites,
// flapping links, stragglers).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "flare/transport.h"

namespace cppflare::flare {

/// Probabilities are evaluated per call(), in a fixed order (disconnect,
/// drop, delay, duplicate, corrupt), so the injected sequence is a pure
/// function of the seed and the call index.
struct FaultPlan {
  std::uint64_t seed = 0x5eed;
  /// Hard-kill the connection before delivery; every later call on this
  /// connection fails until the owner reconnects (see ConnectionFactory).
  double disconnect_prob = 0.0;
  /// Deterministic variant: disconnect exactly once, on this 0-based call
  /// index (-1 = never). Fires in addition to disconnect_prob.
  std::int64_t disconnect_on_call = -1;
  /// The frame vanishes: even-numbered drops lose the request (the server
  /// never sees it), odd-numbered drops lose the response (the server
  /// processed it — retries must be idempotent).
  double drop_prob = 0.0;
  /// Stall the exchange by delay_ms before delivery (straggler injection).
  double delay_prob = 0.0;
  std::int64_t delay_ms = 5;
  /// Deliver the sealed frame twice; the duplicate's response is discarded
  /// (exercises the server's replay protection).
  double duplicate_prob = 0.0;
  /// Flip one random bit of the sealed request before delivery (exercises
  /// MAC verification and the retryable-error path).
  double corrupt_prob = 0.0;
  /// Stop injecting after this many faults (-1 = unlimited); lets a plan
  /// model a transient outage that heals.
  std::int64_t max_faults = -1;

  bool enabled() const {
    return disconnect_prob > 0.0 || disconnect_on_call >= 0 || drop_prob > 0.0 ||
           delay_prob > 0.0 || duplicate_prob > 0.0 || corrupt_prob > 0.0;
  }
};

/// Injected-fault counters; share one instance across reconnects to see a
/// site's whole fault history.
struct FaultStats {
  std::int64_t calls = 0;
  std::int64_t disconnects = 0;
  std::int64_t dropped_requests = 0;
  std::int64_t dropped_responses = 0;
  std::int64_t delays = 0;
  std::int64_t duplicates = 0;
  std::int64_t corruptions = 0;

  std::int64_t total_faults() const {
    return disconnects + dropped_requests + dropped_responses + delays +
           duplicates + corruptions;
  }
};

class FaultyConnection : public Connection {
 public:
  FaultyConnection(std::unique_ptr<Connection> inner, FaultPlan plan,
                   std::shared_ptr<FaultStats> stats = nullptr);

  /// Throws TransportError for injected drops/disconnects; otherwise
  /// delivers (possibly delayed, duplicated, or corrupted) and returns the
  /// genuine response.
  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& request) override;

  const FaultStats& stats() const { return *stats_; }
  bool disconnected() const { return !inner_; }

 private:
  bool faults_left() const;

  std::unique_ptr<Connection> inner_;
  FaultPlan plan_;
  std::shared_ptr<FaultStats> stats_;
  core::Rng rng_;
  std::int64_t call_index_ = 0;
  std::int64_t injected_ = 0;
  std::int64_t drop_parity_ = 0;
};

}  // namespace cppflare::flare
