#include "flare/dxo.h"

#include <cmath>
#include <sstream>

#include "core/error.h"

namespace cppflare::flare {

const char* dxo_kind_name(DxoKind kind) {
  switch (kind) {
    case DxoKind::kWeights: return "WEIGHTS";
    case DxoKind::kWeightDiff: return "WEIGHT_DIFF";
    case DxoKind::kMetrics: return "METRICS";
  }
  return "?";
}

bool Dxo::all_finite() const {
  for (const auto& [name, blob] : data_.entries()) {
    for (const float v : blob.values) {
      if (!std::isfinite(v)) return false;
    }
  }
  return true;
}

void Dxo::set_meta(const std::string& key, const std::string& value) {
  meta_[key] = value;
}

void Dxo::set_meta_int(const std::string& key, std::int64_t value) {
  meta_[key] = std::to_string(value);
}

void Dxo::set_meta_double(const std::string& key, double value) {
  std::ostringstream os;
  os.precision(12);
  os << value;
  meta_[key] = os.str();
}

bool Dxo::has_meta(const std::string& key) const { return meta_.count(key) != 0; }

std::string Dxo::meta(const std::string& key, const std::string& fallback) const {
  auto it = meta_.find(key);
  return it == meta_.end() ? fallback : it->second;
}

std::int64_t Dxo::meta_int(const std::string& key, std::int64_t fallback) const {
  auto it = meta_.find(key);
  return it == meta_.end() ? fallback : std::stoll(it->second);
}

double Dxo::meta_double(const std::string& key, double fallback) const {
  auto it = meta_.find(key);
  return it == meta_.end() ? fallback : std::stod(it->second);
}

void Dxo::serialize(core::ByteWriter& writer) const {
  writer.write_u8(static_cast<std::uint8_t>(kind_));
  writer.write_u32(static_cast<std::uint32_t>(meta_.size()));
  for (const auto& [k, v] : meta_) {
    writer.write_string(k);
    writer.write_string(v);
  }
  data_.serialize(writer);
}

Dxo Dxo::deserialize(core::ByteReader& reader) {
  Dxo dxo;
  const std::uint8_t kind = reader.read_u8();
  if (kind > static_cast<std::uint8_t>(DxoKind::kMetrics)) {
    throw SerializationError("Dxo: bad kind byte");
  }
  dxo.kind_ = static_cast<DxoKind>(kind);
  const std::uint32_t meta_count = reader.read_u32();
  for (std::uint32_t i = 0; i < meta_count; ++i) {
    const std::string k = reader.read_string();
    dxo.meta_[k] = reader.read_string();
  }
  dxo.data_ = nn::StateDict::deserialize(reader);
  return dxo;
}

}  // namespace cppflare::flare
