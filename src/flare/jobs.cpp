#include "flare/jobs.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "core/error.h"
#include "core/logging.h"
#include "core/parallel.h"

#define CPPFLARE_LOG_COMPONENT "JobRunner"

namespace cppflare::flare {

namespace {

std::string format_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(std::move(token));
  return tokens;
}

std::vector<std::uint8_t> to_bytes(const std::string& text) {
  return std::vector<std::uint8_t>(text.begin(), text.end());
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kFinished:
      return "finished";
    case JobState::kAborted:
      return "aborted";
  }
  return "unknown";
}

// ---- AdminClient ----------------------------------------------------------

AdminClient::AdminClient(std::unique_ptr<Connection> connection,
                         Credential credential)
    : connection_(std::move(connection)), credential_(std::move(credential)) {
  if (!connection_) throw Error("AdminClient: connection required");
}

std::string AdminClient::call(const std::string& line) {
  const std::vector<std::uint8_t> sealed =
      seal(credential_.name, credential_.secret, seq_.next(), to_bytes(line));
  const std::vector<std::uint8_t> sealed_reply = connection_->call(sealed);
  Envelope env;
  try {
    env = open(sealed_reply, credential_.secret);
  } catch (const Error& e) {
    throw TransportError(std::string("admin: reply unverifiable: ") + e.what());
  }
  if (env.sender != "server") {
    throw ProtocolError("admin: reply not from server but '" + env.sender + "'");
  }
  server_seq_.check_and_advance(env.sender, env.sequence);
  // Replies are raw UTF-8 text except transport-layer rejections, which
  // arrive as the ordinary tagged ErrorMessage. Text is printable ASCII, so
  // the kError tag byte (7) is unambiguous.
  if (!env.payload.empty() &&
      env.payload[0] == static_cast<std::uint8_t>(MsgType::kError)) {
    const ErrorMessage err = decode_error(env.payload);
    if (err.code == ErrorCode::kRetryable) {
      throw TransportError("admin (retryable): " + err.message);
    }
    throw ProtocolError("admin: " + err.message);
  }
  return std::string(env.payload.begin(), env.payload.end());
}

// ---- JobRunner ------------------------------------------------------------
//
// Lock order: a finishing server fires kEndRun while holding its own round
// lock, and the runner's on_job_end handler then takes mu_ — the order is
// server.mu_ -> runner.mu_. Every other runner method therefore resolves
// what it needs under mu_ (copying the raw server pointer, which stays
// valid because jobs are never erased), releases, and only then calls into
// a server. Constructing a *new* server under mu_ is fine — nothing else
// can hold its lock before its ticker thread starts at the tail of the
// ctor — and so is subscribing to its events (EventBus never holds its own
// lock while running handlers). But once the ticker is live, anything that
// takes the server's round lock (the configure hook's observer/filter
// registrations) must run with mu_ released: the ticker can fire kEndRun
// at any moment, and on_job_end wants mu_. Hence two-phase admission —
// start_job_locked builds and subscribes under mu_, finalize_started runs
// configure outside it, and only then does the job turn routable.

JobRunner::JobRunner(std::map<std::string, Credential> site_pool)
    : site_pool_(std::move(site_pool)) {}

JobRunner::~JobRunner() {
  std::vector<std::unique_ptr<Job>> jobs;
  {
    core::MutexLock lock(mu_);
    jobs.swap(jobs_);
  }
  // Tear servers down outside mu_: anything they run on their last legs
  // (parked-poll completions, event handlers) may re-enter the runner and
  // must find an empty registry, not a half-destroyed vector.
  jobs.clear();
}

std::string JobRunner::submit(JobSpec spec) {
  const std::string id = spec.server.job_id;
  if (id.empty()) {
    throw ConfigError(
        "JobRunner::submit: job id is required (spec.server.job_id)");
  }
  if (!spec.aggregator) {
    throw ConfigError("JobRunner::submit: aggregator required for job '" + id +
                      "'");
  }
  if (spec.journal && spec.journal_path.empty() && spec.persist_path.empty()) {
    throw ConfigError("JobRunner::submit: job '" + id +
                      "' wants a journal but has neither journal_path nor "
                      "persist_path to derive one from");
  }
  std::vector<Job*> started;
  {
    core::MutexLock lock(mu_);
    if (find_locked(id) != nullptr) {
      throw ConfigError("JobRunner::submit: duplicate job id '" + id +
                        "' (job ids are registry-unique)");
    }
    auto job = std::make_unique<Job>();
    job->id = id;
    job->slots = std::max<std::int64_t>(1, spec.compute_slots);
    job->spec = std::move(spec);
    jobs_.push_back(std::move(job));
    LOG(info)
        .msg("job submitted")
        .kv("job", id)
        .kv("slots", jobs_.back()->slots);
    started = schedule_locked();
    cv_.notify_all();
  }
  finalize_started(started);
  return id;
}

void JobRunner::register_blueprint(std::string name, Blueprint blueprint) {
  core::MutexLock lock(mu_);
  blueprints_[std::move(name)] = std::move(blueprint);
}

std::vector<JobRunner::Job*> JobRunner::schedule_locked() {
  const std::int64_t budget =
      std::max<std::int64_t>(1, core::compute_threads());
  std::int64_t used = 0;
  for (const auto& job : jobs_) {
    if (job->phase == JobState::kRunning && !job->terminal) used += job->slots;
  }
  std::vector<Job*> started;
  for (const auto& job : jobs_) {
    if (job->phase != JobState::kQueued) continue;
    // Clamp so a job demanding more than the machine still runs — alone.
    const std::int64_t want = std::min(job->slots, budget);
    // Strict FIFO: a job that does not fit blocks everything behind it,
    // keeping admission order (and thus scheduling) deterministic.
    if (used + want > budget) break;
    job->slots = want;
    start_job_locked(*job);
    if (job->server) started.push_back(job.get());
    // A job that failed to start, or resumed already terminal, holds no
    // slots — don't let it shadow capacity from the jobs behind it.
    if (job->phase == JobState::kRunning && !job->terminal) used += want;
  }
  return started;
}

void JobRunner::start_job_locked(Job& job) {
  try {
    std::shared_ptr<ModelPersistor> persistor;
    std::optional<Checkpoint> resume;
    if (!job.spec.persist_path.empty()) {
      persistor = std::make_shared<ModelPersistor>(job.spec.persist_path);
      if (job.spec.resume) resume = persistor->load();
    }
    std::shared_ptr<RoundJournal> journal;
    if (job.spec.journal) {
      const std::string path = job.spec.journal_path.empty()
                                   ? job.spec.persist_path + ".journal"
                                   : job.spec.journal_path;
      journal = std::make_shared<RoundJournal>(path, job.spec.journal_sync);
    }
    job.server = std::make_unique<FederatedServer>(
        job.spec.server, site_pool_, std::move(job.spec.initial_model),
        std::move(job.spec.aggregator), std::move(persistor), std::move(resume),
        std::move(journal));
  } catch (const Error& e) {
    // A job that cannot start (bad config, corrupt journal) must not wedge
    // the queue behind it: record the failure as an abort and move on.
    job.phase = JobState::kAborted;
    job.cancel_reason = std::string("failed to start: ") + e.what();
    LOG(warn).msg("job failed to start").kv("job", job.id).kv("error", e.what());
    return;
  }
  job.server->share_outbound_sequences(sequences_);
  const std::string id = job.id;
  // Subscribing here — before mu_ is ever released — means kEndRun can
  // never fire unobserved, even for a job aborted the instant it is
  // admitted. Safe under mu_: EventBus drops its own lock before running
  // handlers, so no path leads from the subscription back into this mutex.
  // The configure hook is NOT safe here (it takes the server's now-shared
  // round lock) and waits for finalize_started.
  job.server->events().subscribe(
      EventType::kEndRun, [this, id](const FLContext&) { on_job_end(id); });
  job.phase = JobState::kRunning;
  // A job resumed from an already-complete checkpoint is born terminal and
  // never fires kEndRun, so the subscription above would leave its slots
  // counted as used forever — wedging the strict-FIFO queue and wait_all().
  // born_terminal() is immutable and lock-free, so this never takes the
  // server's lock inside mu_ (which would invert the documented order).
  if (job.server->born_terminal()) {
    job.terminal = true;
    LOG(info)
        .msg("job terminal at admission (resumed past its last round)")
        .kv("job", job.id);
    return;
  }
  LOG(info).msg("job admitted").kv("job", job.id).kv("slots", job.slots);
}

void JobRunner::finalize_started(const std::vector<Job*>& started) {
  for (Job* job : started) {
    // No lock needed to touch spec/server here: both were written by this
    // very thread inside schedule_locked, and nothing else mutates them
    // once a job has left kQueued.
    if (job->spec.configure) job->spec.configure(*job->server);
    core::MutexLock lock(mu_);
    job->routable = true;
    cv_.notify_all();
  }
}

void JobRunner::on_job_end(const std::string& job_id) {
  std::vector<Job*> started;
  {
    core::MutexLock lock(mu_);
    Job* job = find_locked(job_id);
    if (job == nullptr || job->terminal) return;
    job->terminal = true;
    // We are under the finishing server's round lock here (kEndRun fires
    // with it held): free the slots and admit successors, but never call
    // back into that server.
    started = schedule_locked();
    cv_.notify_all();
  }
  // Still under the finishing server's round lock — but these are
  // *different*, newly admitted servers; the finishing one is not touched.
  finalize_started(started);
}

JobRunner::Job* JobRunner::find_locked(const std::string& job_id) const {
  for (const auto& job : jobs_) {
    if (job->id == job_id) return job.get();
  }
  return nullptr;
}

FederatedServer& JobRunner::server(const std::string& job_id) {
  core::MutexLock lock(mu_);
  Job* job = find_locked(job_id);
  if (job == nullptr) {
    throw ConfigError("JobRunner: unknown job '" + job_id + "'");
  }
  if (!job->server) {
    if (job->phase == JobState::kAborted) {
      throw ConfigError("JobRunner: job '" + job_id +
                        "' has no server: " + job->cancel_reason);
    }
    throw ConfigError("JobRunner: job '" + job_id +
                      "' has no server yet (queued)");
  }
  return *job->server;
}

JobStatus JobRunner::seed_status_locked(const Job& job) const {
  JobStatus status;
  status.job_id = job.id;
  status.state = job.phase;
  status.compute_slots = job.slots;
  status.num_rounds = job.spec.server.num_rounds;
  if (job.phase == JobState::kAborted) {
    // Cancelled (or failed) while queued: the abort never reached a server.
    status.abort_code = AbortCode::kExternal;
    status.abort_reason = job.cancel_reason;
  }
  return status;
}

void JobRunner::fill_from_server(JobStatus& status,
                                 FederatedServer* server) const {
  if (server == nullptr) return;
  status.current_round = server->current_round();
  status.registered_clients = server->registered_clients();
  if (server->aborted()) {
    status.state = JobState::kAborted;
    status.abort_code = server->abort_code();
    status.abort_reason = server->abort_reason();
  } else if (server->finished()) {
    status.state = JobState::kFinished;
  } else {
    status.state = JobState::kRunning;
  }
}

std::vector<JobStatus> JobRunner::list() const {
  std::vector<std::pair<JobStatus, FederatedServer*>> seeds;
  {
    core::MutexLock lock(mu_);
    seeds.reserve(jobs_.size());
    for (const auto& job : jobs_) {
      seeds.emplace_back(seed_status_locked(*job), job->server.get());
    }
  }
  std::vector<JobStatus> out;
  out.reserve(seeds.size());
  for (auto& [status, server] : seeds) {
    fill_from_server(status, server);
    out.push_back(std::move(status));
  }
  return out;
}

JobStatus JobRunner::status(const std::string& job_id) const {
  JobStatus status;
  FederatedServer* server = nullptr;
  {
    core::MutexLock lock(mu_);
    Job* job = find_locked(job_id);
    if (job == nullptr) {
      throw ConfigError("JobRunner: unknown job '" + job_id + "'");
    }
    status = seed_status_locked(*job);
    server = job->server.get();
  }
  fill_from_server(status, server);
  return status;
}

bool JobRunner::abort(const std::string& job_id, const std::string& reason) {
  FederatedServer* server = nullptr;
  std::vector<Job*> started;
  bool cancelled_queued = false;
  {
    core::MutexLock lock(mu_);
    Job* job = find_locked(job_id);
    if (job == nullptr) return false;
    if (job->phase == JobState::kQueued) {
      job->phase = JobState::kAborted;
      job->cancel_reason =
          reason.empty() ? "cancelled while queued" : reason;
      LOG(info).msg("queued job cancelled").kv("job", job_id);
      // Cancelling a queued job cannot free capacity, but keep the queue
      // moving in case it was the head-of-line blocker.
      started = schedule_locked();
      cv_.notify_all();
      cancelled_queued = true;
    } else {
      if (job->terminal || job->phase != JobState::kRunning) return false;
      server = job->server.get();
    }
  }
  if (cancelled_queued) {
    finalize_started(started);
    return true;
  }
  // The server settles the race under its own lock: abort() refuses once
  // the run is terminal, so a run finishing right here stays finished.
  return server->abort(reason.empty() ? "aborted by admin" : reason);
}

bool JobRunner::wait_until_running(const std::string& job_id,
                                   std::int64_t timeout_ms) {
  core::MutexLock lock(mu_);
  cv_.wait_for_ms(mu_, timeout_ms, [this, &job_id]() CF_REQUIRES(mu_) {
    Job* job = find_locked(job_id);
    if (job == nullptr || job->phase == JobState::kQueued) {
      return job == nullptr;
    }
    // Admitted but mid-finalize: routing still bounces frames, so keep
    // callers waiting until the configure hook has run.
    return job->server == nullptr || job->routable;
  });
  Job* job = find_locked(job_id);
  return job != nullptr && job->server != nullptr && job->routable;
}

bool JobRunner::wait_all(std::int64_t timeout_ms) {
  core::MutexLock lock(mu_);
  return cv_.wait_for_ms(mu_, timeout_ms, [this]() CF_REQUIRES(mu_) {
    for (const auto& job : jobs_) {
      if (job->phase == JobState::kQueued) return false;
      if (job->phase == JobState::kRunning && !job->terminal) return false;
    }
    return true;
  });
}

// ---- routing --------------------------------------------------------------

std::vector<std::uint8_t> JobRunner::seal_reply(
    const std::string& sender, const std::vector<std::uint8_t>& key,
    const std::string& job_id, const std::vector<std::uint8_t>& body) {
  // Sealed from the shared pool so this sequence interleaves correctly with
  // whatever any hosted server later sends the same peer. The claimed job id
  // is echoed so the client's own binding check accepts the reply.
  return seal("server", key, sequences_->next(sender), body, job_id);
}

JobRunner::Route JobRunner::resolve(const std::vector<std::uint8_t>& request) {
  Route route;
  std::string sender;
  std::string job_id;
  try {
    sender = peek_sender(request);
    job_id = peek_job(request);
  } catch (const Error&) {
    // Unparseable prefix: mirror FederatedServer's unknown-sender shape — a
    // retryable error sealed under an empty key (the caller cannot verify
    // it, which correctly reads as a transport failure).
    route.reply = seal_reply("", {}, "",
                             pack(ErrorMessage{"malformed envelope",
                                               ErrorCode::kRetryable}));
    return route;
  }
  if (sender == "admin") {
    route.reply = handle_admin(request);
    return route;
  }
  const auto key_it = site_pool_.find(sender);
  if (key_it == site_pool_.end()) {
    // Unknown peer: rejected uniformly before the job registry is even
    // consulted, mirroring the single-job server's unknown-participant
    // reply. Answering per-job would let an unauthenticated peer — who can
    // seal under the empty secret — tell kWrongJob apart from
    // unknown-participant and enumerate which job ids this process hosts.
    route.reply = seal_reply(
        sender, {}, "",
        pack(ErrorMessage{"unknown participant '" + sender + "'",
                          ErrorCode::kRetryable}));
    return route;
  }
  const std::vector<std::uint8_t>& key = key_it->second.secret;
  // The routing key is unauthenticated until the MAC checks out, so a
  // misroute must not be declared fatal on a frame that is merely damaged
  // in flight: verify first, and answer corruption with the same retryable
  // error the single-job server would have sent. The corrupted frame's ids
  // cannot be trusted either, so that reply goes out *unbound* — echoing a
  // garbage job id would trip the sender's own binding check.
  const auto wrong_job = [&](const std::string& message) {
    try {
      (void)open(request, key);
    } catch (const Error&) {
      return seal_reply(
          sender, key, "",
          pack(ErrorMessage{"frame failed verification at the job router",
                            ErrorCode::kRetryable}));
    }
    return seal_reply(sender, key, job_id,
                      pack(ErrorMessage{message, ErrorCode::kWrongJob}));
  };
  // Registry lookup under mu_; wrong_job stays outside — it re-verifies the
  // whole frame (a MAC over the full payload) and sealing the reply is not
  // free either, so doing it under the registry lock would serialize every
  // concurrent frame's route resolution behind one bad frame.
  std::string wrong_job_msg;
  {
    core::MutexLock lock(mu_);
    Job* job = nullptr;
    if (job_id.empty()) {
      // Unbound frame (pre-multi-job client): unambiguous only when this
      // process hosts exactly one job.
      if (jobs_.size() == 1) {
        job = jobs_.front().get();
      } else {
        wrong_job_msg = "unbound frame but " + std::to_string(jobs_.size()) +
                        " jobs are hosted here; set ClientConfig::job_id";
      }
    } else {
      job = find_locked(job_id);
      if (job == nullptr) {
        wrong_job_msg = "no job '" + job_id + "' is hosted here";
      }
    }
    if (job != nullptr) {
      if (job->phase == JobState::kQueued) {
        route.reply = seal_reply(
            sender, key, job_id,
            pack(ErrorMessage{"job '" + job->id +
                                  "' is queued awaiting compute capacity",
                              ErrorCode::kRetryable}));
      } else if (!job->server) {
        route.reply = seal_reply(
            sender, key, job_id,
            pack(ErrorMessage{"job '" + job->id + "' never started: " +
                                  job->cancel_reason,
                              ErrorCode::kFatal}));
      } else if (!job->routable) {
        // Admitted but its configure hook is still running: no frame may
        // reach a half-configured server (filters and observers would miss
        // this round). Momentary, so retryable.
        route.reply = seal_reply(
            sender, key, job_id,
            pack(ErrorMessage{"job '" + job->id + "' is starting",
                              ErrorCode::kRetryable}));
      } else {
        route.sync_dispatch = job->server->dispatcher();
        route.async_dispatch = job->server->async_dispatcher();
      }
      return route;
    }
  }
  route.reply = wrong_job(wrong_job_msg);
  return route;
}

Dispatcher JobRunner::router() {
  return [this](const std::vector<std::uint8_t>& request) {
    Route route = resolve(request);
    if (route.sync_dispatch) return route.sync_dispatch(request);
    return route.reply;
  };
}

AsyncDispatcher JobRunner::async_router() {
  return [this](const std::vector<std::uint8_t>& request, RespondFn respond) {
    Route route = resolve(request);
    if (route.async_dispatch) {
      route.async_dispatch(request, std::move(respond));
      return;
    }
    respond(std::move(route.reply));
  };
}

// ---- admin console --------------------------------------------------------

std::vector<std::uint8_t> JobRunner::handle_admin(
    const std::vector<std::uint8_t>& request) {
  const auto it = site_pool_.find("admin");
  if (it == site_pool_.end()) {
    return seal_reply("admin", {}, "",
                      pack(ErrorMessage{"no admin identity is provisioned",
                                        ErrorCode::kFatal}));
  }
  const std::vector<std::uint8_t>& key = it->second.secret;
  Envelope env;
  try {
    env = open(request, key);
    admin_inbound_.check_and_advance(env.sender, env.sequence);
  } catch (const Error& e) {
    return seal_reply(
        "admin", key, "",
        pack(ErrorMessage{std::string("admin frame rejected: ") + e.what(),
                          ErrorCode::kRetryable}));
  }
  const std::string line(env.payload.begin(), env.payload.end());
  return seal_reply("admin", key, "", to_bytes(admin_execute(line)));
}

std::string JobRunner::admin_execute(const std::string& line) {
  const std::vector<std::string> tokens = tokenize(line);
  if (tokens.empty()) {
    return "err empty command (expected submit|list|status|abort|metrics)";
  }
  const std::string& cmd = tokens[0];
  try {
    if (cmd == "list") {
      std::string reply;
      const std::vector<JobStatus> statuses = list();
      reply = "ok jobs=" + std::to_string(statuses.size());
      for (const JobStatus& s : statuses) {
        reply += "\n" + s.job_id + " state=" + job_state_name(s.state) +
                 " round=" + std::to_string(s.current_round) + "/" +
                 std::to_string(s.num_rounds) +
                 " clients=" + std::to_string(s.registered_clients) +
                 " slots=" + std::to_string(s.compute_slots);
      }
      return reply;
    }
    if (cmd == "status") {
      if (tokens.size() != 2) return "err usage: status <job>";
      const JobStatus s = status(tokens[1]);
      std::string reply =
          "ok " + s.job_id + " state=" + job_state_name(s.state) +
          " round=" + std::to_string(s.current_round) + "/" +
          std::to_string(s.num_rounds) +
          " clients=" + std::to_string(s.registered_clients) +
          " slots=" + std::to_string(s.compute_slots);
      if (s.state == JobState::kAborted) {
        reply += " abort=" + std::string(abort_code_name(s.abort_code)) +
                 " reason=\"" + s.abort_reason + "\"";
      }
      return reply;
    }
    if (cmd == "metrics") {
      if (tokens.size() != 2) return "err usage: metrics <job>";
      core::MetricSnapshot snapshot;
      {
        // server() validates existence; the snapshot itself is lock-free
        // with respect to the server's round lock.
        snapshot = server(tokens[1]).metrics_snapshot();
      }
      std::string reply = "ok " + tokens[1] +
                          " counters=" + std::to_string(snapshot.counters.size()) +
                          " gauges=" + std::to_string(snapshot.gauges.size());
      for (const auto& [name, value] : snapshot.counters) {
        reply += "\ncounter " + name + " " + std::to_string(value);
      }
      for (const auto& [name, value] : snapshot.gauges) {
        reply += "\ngauge " + name + " " + format_double(value);
      }
      return reply;
    }
    if (cmd == "abort") {
      if (tokens.size() < 2) return "err usage: abort <job> [reason]";
      std::string reason;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (!reason.empty()) reason += " ";
        reason += tokens[i];
      }
      if (!abort(tokens[1], reason)) {
        return "err job '" + tokens[1] + "' is unknown or already terminal";
      }
      return "ok aborting " + tokens[1];
    }
    if (cmd == "submit") {
      if (tokens.size() != 3) return "err usage: submit <blueprint> <job>";
      Blueprint blueprint;
      {
        core::MutexLock lock(mu_);
        const auto bp = blueprints_.find(tokens[1]);
        if (bp == blueprints_.end()) {
          return "err unknown blueprint '" + tokens[1] + "'";
        }
        blueprint = bp->second;
      }
      JobSpec spec = blueprint(tokens[2]);
      spec.server.job_id = tokens[2];
      submit(std::move(spec));
      return "ok submitted " + tokens[2];
    }
  } catch (const Error& e) {
    return std::string("err ") + e.what();
  }
  return "err unknown command '" + cmd +
         "' (expected submit|list|status|abort|metrics)";
}

}  // namespace cppflare::flare
