// Model-poisoning injection — the adversarial sibling of faults.h.
//
// Where `FaultyConnection` attacks the *transport* (drops, delays, corrupt
// bytes), `PoisonFilter` attacks the *update*: it sits last in a client's
// outbound filter chain and mutates the trained DXO the way a compromised
// clinic would, per a seeded `PoisonPlan`. Every mutation draws from one
// core::Rng (lint R1) in a fixed order, so a given (plan, seed) produces
// the exact same attack sequence every run — defense tests are
// reproducible, never flaky.
//
// Attack catalogue (all composable):
//  * scale       — multiply every weight by k (k = -10 is the classic
//                  model-replacement attack);
//  * sign flip   — negate the update, steering the average away from the
//                  honest direction at an honest-looking magnitude;
//  * noise       — add i.i.d. N(0, sigma^2), drowning the signal;
//  * NaN/Inf     — plant non-finite values that propagate through a mean;
//  * stale replay— resubmit the site's own update from `lag` rounds ago,
//                  complete with its old round stamp;
//  * sample lie  — inflate the claimed num_samples to dominate a weighted
//                  average without touching a single weight.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "flare/filters.h"

namespace cppflare::flare {

struct PoisonPlan {
  std::uint64_t seed = 0xbadd;
  /// Rounds before this one pass through untouched (sleeper agent); the
  /// FLContext round drives the comparison.
  std::int64_t start_round = 0;
  /// Multiply every weight value by this factor (1 = off).
  double scale_factor = 1.0;
  /// Negate every weight value.
  bool sign_flip = false;
  /// Add i.i.d. N(0, sigma^2) noise to every weight value (0 = off).
  double noise_sigma = 0.0;
  /// Per-value probability of replacement with NaN (or Inf, below).
  double nan_prob = 0.0;
  /// Replace with +Inf instead of NaN.
  bool inject_inf = false;
  /// Resubmit the genuine update from this many rounds ago, with its old
  /// kMetaRound stamp (0 = off). Takes effect once enough history exists.
  std::int64_t stale_round_lag = 0;
  /// Multiply the claimed num_samples meta by this factor (1 = off).
  double sample_count_factor = 1.0;

  bool enabled() const {
    return scale_factor != 1.0 || sign_flip || noise_sigma > 0.0 ||
           nan_prob > 0.0 || stale_round_lag > 0 || sample_count_factor != 1.0;
  }
};

/// Injected-attack counters; share one instance across a run to audit what
/// the plan actually did.
struct PoisonStats {
  std::int64_t calls = 0;
  std::int64_t poisoned_updates = 0;
  std::int64_t scaled = 0;
  std::int64_t sign_flips = 0;
  std::int64_t noised = 0;
  std::int64_t non_finite_values = 0;
  std::int64_t replays = 0;
  std::int64_t sample_lies = 0;
};

class PoisonFilter : public Filter {
 public:
  explicit PoisonFilter(PoisonPlan plan,
                        std::shared_ptr<PoisonStats> stats = nullptr);

  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "Poison"; }

  const PoisonStats& stats() const { return *stats_; }

 private:
  PoisonPlan plan_;
  std::shared_ptr<PoisonStats> stats_;
  core::Rng rng_;
  /// Genuine (pre-mutation) updates, oldest first, for stale replay.
  std::vector<Dxo> history_;
};

}  // namespace cppflare::flare
