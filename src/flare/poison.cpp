#include "flare/poison.h"

#include <cmath>
#include <limits>

#include "core/error.h"
#include "core/logging.h"

#define CPPFLARE_LOG_COMPONENT "PoisonInjector"

namespace cppflare::flare {

PoisonFilter::PoisonFilter(PoisonPlan plan, std::shared_ptr<PoisonStats> stats)
    : plan_(plan),
      stats_(stats ? std::move(stats) : std::make_shared<PoisonStats>()),
      rng_(plan.seed) {
  if (plan_.stale_round_lag < 0) {
    throw Error("PoisonFilter: stale_round_lag must be >= 0");
  }
}

void PoisonFilter::process(Dxo& dxo, const FLContext& ctx) {
  stats_->calls += 1;
  if (dxo.kind() == DxoKind::kMetrics) return;

  // Record the genuine update first so a later replay resends what the
  // site would honestly have submitted back then, old round stamp and all.
  if (plan_.stale_round_lag > 0) {
    history_.push_back(dxo);
    const std::size_t keep =
        static_cast<std::size_t>(plan_.stale_round_lag) + 1;
    if (history_.size() > keep) {
      history_.erase(history_.begin(),
                     history_.begin() +
                         static_cast<std::ptrdiff_t>(history_.size() - keep));
    }
  }

  if (ctx.current_round < plan_.start_round || !plan_.enabled()) return;
  stats_->poisoned_updates += 1;

  if (plan_.stale_round_lag > 0 &&
      history_.size() > static_cast<std::size_t>(plan_.stale_round_lag)) {
    dxo = history_[history_.size() - 1 -
                   static_cast<std::size_t>(plan_.stale_round_lag)];
    stats_->replays += 1;
    LOG(warn).msg(ctx.site_name + " replaying its round " +
                  dxo.meta(Dxo::kMetaRound, "?") + " update at round " +
                  std::to_string(ctx.current_round));
  }

  const float factor = static_cast<float>(
      (plan_.sign_flip ? -1.0 : 1.0) * plan_.scale_factor);
  const float bad = plan_.inject_inf
                        ? std::numeric_limits<float>::infinity()
                        : std::numeric_limits<float>::quiet_NaN();
  for (auto& [name, blob] : dxo.data().entries()) {
    for (float& v : blob.values) {
      // Draw every per-value gate each iteration, whether or not it can
      // fire — the rng stream position is then a function of the value
      // index alone, so enabling one attack never shifts another's draws
      // (same contract as FaultyConnection).
      const double noise = rng_.normal(0.0, 1.0);
      const bool want_bad = rng_.uniform() < plan_.nan_prob;
      v *= factor;
      if (plan_.noise_sigma > 0.0) {
        v += static_cast<float>(noise * plan_.noise_sigma);
      }
      if (want_bad) {
        v = bad;
        stats_->non_finite_values += 1;
      }
    }
  }
  if (plan_.scale_factor != 1.0) stats_->scaled += 1;
  if (plan_.sign_flip) stats_->sign_flips += 1;
  if (plan_.noise_sigma > 0.0) stats_->noised += 1;

  if (plan_.sample_count_factor != 1.0 &&
      dxo.has_meta(Dxo::kMetaNumSamples)) {
    const auto honest = dxo.meta_int(Dxo::kMetaNumSamples, 1);
    const auto claimed = static_cast<std::int64_t>(
        static_cast<double>(honest) * plan_.sample_count_factor);
    dxo.set_meta_int(Dxo::kMetaNumSamples, claimed);
    stats_->sample_lies += 1;
    LOG(warn).msg(ctx.site_name + " claiming " + std::to_string(claimed) +
                  " samples (honest: " + std::to_string(honest) + ")");
  }
}

}  // namespace cppflare::flare
