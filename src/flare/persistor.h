// Model persistence (NVFlare's "persist model on server" step).
//
// Saves the global StateDict plus round/job metadata to a single binary
// file, atomically (write to a temp file, then rename), so a crashed run
// never leaves a torn checkpoint behind. Format v3 ("CPK3") carries the
// per-round metrics history plus the site-reputation standings (resume
// keeps quarantines — see validator.h) and ends in a SHA-256 footer, so a
// truncated or bit-rotted file fails loudly instead of loading garbage.
// v1 files still load (empty history), as do v2 files (no reputation, no
// footer).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "flare/aggregator.h"
#include "flare/validator.h"
#include "nn/state_dict.h"

namespace cppflare::flare {

struct Checkpoint {
  std::string job_id;
  /// Index of the last *completed* round; a resumed server starts at
  /// round + 1.
  std::int64_t round = 0;
  nn::StateDict model;
  /// Metrics for rounds 0..round (aggregation state for mid-run resume).
  std::vector<RoundMetrics> history;
  /// Site-reputation standings at the end of `round` (empty for v1/v2
  /// checkpoints and runs without quarantine).
  std::map<std::string, SiteStanding> reputation;
};

class ModelPersistor {
 public:
  explicit ModelPersistor(std::string path) : path_(std::move(path)) {}

  /// Atomically writes the checkpoint (always in the v3 format).
  void save(const Checkpoint& checkpoint) const;

  /// Loads the checkpoint; std::nullopt if the file does not exist.
  std::optional<Checkpoint> load() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace cppflare::flare
