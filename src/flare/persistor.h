// Model persistence (NVFlare's "persist model on server" step).
//
// Saves the global StateDict plus round/job metadata to a single binary
// file, atomically (write to a temp file, then rename), so a crashed run
// never leaves a torn checkpoint behind.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "nn/state_dict.h"

namespace cppflare::flare {

struct Checkpoint {
  std::string job_id;
  std::int64_t round = 0;
  nn::StateDict model;
};

class ModelPersistor {
 public:
  explicit ModelPersistor(std::string path) : path_(std::move(path)) {}

  /// Atomically writes the checkpoint.
  void save(const Checkpoint& checkpoint) const;

  /// Loads the checkpoint; std::nullopt if the file does not exist.
  std::optional<Checkpoint> load() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace cppflare::flare
