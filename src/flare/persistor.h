// Model persistence (NVFlare's "persist model on server" step).
//
// Saves the global StateDict plus round/job metadata to a single binary
// file, atomically (write to a temp file, then rename), so a crashed run
// never leaves a torn checkpoint behind. Format v2 ("CPK2") also carries
// the per-round metrics history, which is what lets a restarted server
// resume from the last completed round instead of round 0; v1 files still
// load (with an empty history).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "flare/aggregator.h"
#include "nn/state_dict.h"

namespace cppflare::flare {

struct Checkpoint {
  std::string job_id;
  /// Index of the last *completed* round; a resumed server starts at
  /// round + 1.
  std::int64_t round = 0;
  nn::StateDict model;
  /// Metrics for rounds 0..round (aggregation state for mid-run resume).
  std::vector<RoundMetrics> history;
};

class ModelPersistor {
 public:
  explicit ModelPersistor(std::string path) : path_(std::move(path)) {}

  /// Atomically writes the checkpoint (always in the v2 format).
  void save(const Checkpoint& checkpoint) const;

  /// Loads the checkpoint; std::nullopt if the file does not exist.
  std::optional<Checkpoint> load() const;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace cppflare::flare
