#include "flare/fl_context.h"

namespace cppflare::flare {

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kStartRun: return "START_RUN";
    case EventType::kRoundStarted: return "ROUND_STARTED";
    case EventType::kBeforeAggregation: return "BEFORE_AGGREGATION";
    case EventType::kAfterAggregation: return "AFTER_AGGREGATION";
    case EventType::kRoundDone: return "ROUND_DONE";
    case EventType::kEndRun: return "END_RUN";
  }
  return "?";
}

void EventBus::subscribe(EventType type, Handler handler) {
  core::MutexLock lock(mu_);
  handlers_[type].push_back(std::move(handler));
}

void EventBus::fire(EventType type, const FLContext& ctx) {
  std::vector<Handler> to_run;
  {
    core::MutexLock lock(mu_);
    auto it = handlers_.find(type);
    if (it != handlers_.end()) to_run = it->second;
  }
  for (const Handler& h : to_run) h(ctx);
}

}  // namespace cppflare::flare
