// DXO — Data Exchange Object.
//
// The typed payload that crosses the federation boundary, mirroring
// NVFlare's DXO: a kind discriminator, a model payload (StateDict), and a
// small string/number meta map (sample counts, metrics, round info).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/bytes.h"
#include "nn/state_dict.h"

namespace cppflare::flare {

enum class DxoKind : std::uint8_t {
  kWeights = 0,     // full model weights
  kWeightDiff = 1,  // delta vs the round's global model
  kMetrics = 2,     // no weights, meta only
};

const char* dxo_kind_name(DxoKind kind);

class Dxo {
 public:
  Dxo() = default;
  Dxo(DxoKind kind, nn::StateDict data) : kind_(kind), data_(std::move(data)) {}

  DxoKind kind() const { return kind_; }
  void set_kind(DxoKind kind) { kind_ = kind; }

  const nn::StateDict& data() const { return data_; }
  nn::StateDict& data() { return data_; }

  /// True iff every payload value is finite (no NaN/Inf). A metrics-only
  /// DXO is trivially finite.
  bool all_finite() const;

  // ---- meta ------------------------------------------------------------
  void set_meta(const std::string& key, const std::string& value);
  void set_meta_int(const std::string& key, std::int64_t value);
  void set_meta_double(const std::string& key, double value);
  bool has_meta(const std::string& key) const;
  std::string meta(const std::string& key, const std::string& fallback = "") const;
  std::int64_t meta_int(const std::string& key, std::int64_t fallback = 0) const;
  double meta_double(const std::string& key, double fallback = 0.0) const;
  const std::map<std::string, std::string>& meta_entries() const { return meta_; }

  // ---- wire --------------------------------------------------------------
  void serialize(core::ByteWriter& writer) const;
  static Dxo deserialize(core::ByteReader& reader);

  /// Well-known meta keys.
  static constexpr const char* kMetaNumSamples = "num_samples";
  static constexpr const char* kMetaTrainLoss = "train_loss";
  static constexpr const char* kMetaValidAcc = "valid_acc";
  static constexpr const char* kMetaValidLoss = "valid_loss";
  static constexpr const char* kMetaRound = "round";

 private:
  DxoKind kind_ = DxoKind::kMetrics;
  nn::StateDict data_;
  std::map<std::string, std::string> meta_;
};

}  // namespace cppflare::flare
