#include "flare/robust_aggregator.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"
#include "core/logging.h"

#define CPPFLARE_LOG_COMPONENT "RobustAggregator"

namespace cppflare::flare {

void BufferingAggregator::reset(const nn::StateDict& global, std::int64_t round) {
  global_ = global;
  round_kind_.reset();
  contributions_.clear();
  metrics_ = RoundMetrics{};
  metrics_.round = round;
  loss_weight_sum_ = 0.0;
}

bool BufferingAggregator::accept(const std::string& site, const Dxo& contribution) {
  if (contribution.kind() == DxoKind::kMetrics) return false;
  if (contributions_.count(site) != 0) {
    LOG(warn).msg("Duplicate contribution from " + site + " ignored");
    return false;
  }
  if (round_kind_.has_value() && *round_kind_ != contribution.kind()) {
    LOG(warn).msg("Mixed DXO kinds in one round; rejecting " + site);
    return false;
  }
  if (!contribution.data().congruent_with(global_)) {
    LOG(warn).msg("Incongruent model from " + site + " rejected");
    return false;
  }
  round_kind_ = contribution.kind();
  Entry entry;
  entry.data = contribution.data();
  entry.samples = contribution.meta_int(Dxo::kMetaNumSamples, 1);
  metrics_.num_contributions += 1;
  metrics_.total_samples += entry.samples;
  if (contribution.has_meta(Dxo::kMetaTrainLoss)) {
    const double w = static_cast<double>(entry.samples);
    entry.has_loss = true;
    entry.train_loss = w * contribution.meta_double(Dxo::kMetaTrainLoss);
    entry.valid_acc = w * contribution.meta_double(Dxo::kMetaValidAcc);
    entry.valid_loss = w * contribution.meta_double(Dxo::kMetaValidLoss);
    metrics_.train_loss += entry.train_loss;
    metrics_.valid_acc += entry.valid_acc;
    metrics_.valid_loss += entry.valid_loss;
    loss_weight_sum_ += w;
  }
  contributions_.emplace(site, std::move(entry));
  return true;
}

bool BufferingAggregator::revoke(const std::string& site) {
  auto it = contributions_.find(site);
  if (it == contributions_.end()) return false;
  const Entry& entry = it->second;
  metrics_.num_contributions -= 1;
  metrics_.total_samples -= entry.samples;
  if (entry.has_loss) {
    metrics_.train_loss -= entry.train_loss;
    metrics_.valid_acc -= entry.valid_acc;
    metrics_.valid_loss -= entry.valid_loss;
    loss_weight_sum_ -= static_cast<double>(entry.samples);
  }
  contributions_.erase(it);
  if (contributions_.empty()) round_kind_.reset();
  LOG(info).msg("Contribution from " + site + " REVOKED at round " +
                std::to_string(metrics_.round) + ".");
  return true;
}

nn::StateDict BufferingAggregator::aggregate() {
  if (contributions_.empty()) {
    throw Error("BufferingAggregator: no contributions to aggregate");
  }
  if (loss_weight_sum_ > 0.0) {
    metrics_.train_loss /= loss_weight_sum_;
    metrics_.valid_acc /= loss_weight_sum_;
    metrics_.valid_loss /= loss_weight_sum_;
  }
  LOG(info).msg("robust-aggregating " + std::to_string(contributions_.size()) +
                " update(s) at round " + std::to_string(metrics_.round));

  nn::StateDict out = global_;  // structure template
  std::vector<float> column(contributions_.size());
  for (auto& [name, blob] : out.entries()) {
    // Hoist the per-blob lookups out of the per-coordinate loop.
    std::vector<const std::vector<float>*> sources;
    sources.reserve(contributions_.size());
    for (const auto& [site, entry] : contributions_) {
      sources.push_back(&entry.data.at(name).values);
    }
    for (std::size_t i = 0; i < blob.values.size(); ++i) {
      for (std::size_t c = 0; c < sources.size(); ++c) {
        column[c] = (*sources[c])[i];
      }
      blob.values[i] = combine(column);
    }
  }
  if (*round_kind_ == DxoKind::kWeightDiff) {
    nn::StateDict next = global_;
    next.axpy(1.0f, out);
    return next;
  }
  return out;
}

std::int64_t BufferingAggregator::accepted_count() const {
  return metrics_.num_contributions;
}

RoundMetrics BufferingAggregator::metrics() const { return metrics_; }

namespace {
/// operator< on floats is not a strict weak ordering once NaN appears, and
/// feeding it to sort/nth_element is undefined behavior — exactly the input
/// a poisoning site produces. This total order ranks NaN above every finite
/// value, so NaN coordinates land in the upper tail where the median skips
/// them and the trimmed mean cuts them.
bool nan_last_less(float a, float b) {
  if (std::isnan(b)) return !std::isnan(a);
  if (std::isnan(a)) return false;
  return a < b;
}
}  // namespace

float MedianAggregator::combine(std::vector<float>& values) const {
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end(),
                   nan_last_less);
  if (values.size() % 2 == 1) return values[mid];
  const float hi = values[mid];
  const float lo = *std::max_element(values.begin(), values.begin() + mid,
                                     nan_last_less);
  return 0.5f * (lo + hi);
}

float TrimmedMeanAggregator::combine(std::vector<float>& values) const {
  const auto n = static_cast<std::int64_t>(values.size());
  if (n <= 2 * trim_) {
    throw Error("TrimmedMean: need more than " + std::to_string(2 * trim_) +
                " contributions, got " + std::to_string(n));
  }
  std::sort(values.begin(), values.end(), nan_last_less);
  double acc = 0.0;
  for (std::int64_t i = trim_; i < n - trim_; ++i) acc += values[i];
  return static_cast<float>(acc / static_cast<double>(n - 2 * trim_));
}

}  // namespace cppflare::flare
