// The federated server: client manager + ScatterAndGather controller.
//
// Implements the server half of the paper's Fig. 1/Fig. 3 pipeline:
// provisioned clients register with their tokens, then for E rounds the
// server hands out the global model as a train task, collects contributions
// through the filter chain into the aggregator, aggregates when everyone
// has reported, persists the model, and advances. All entry points are
// thread-safe; transports call `dispatcher()` from any number of threads.
//
// Failure model (DESIGN.md §9): per-round deadlines close a round with at
// least `min_clients` contributions (or abort the run below that), sites
// unseen past the liveness timeout are evicted from the quorum and
// re-admitted on their next authenticated frame, and a server restarted
// from a Checkpoint resumes at the round after the last completed one.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"
#include "core/trace.h"
#include "flare/aggregator.h"
#include "flare/filters.h"
#include "flare/fl_context.h"
#include "flare/journal.h"
#include "flare/messages.h"
#include "flare/persistor.h"
#include "flare/provision.h"
#include "flare/secure_channel.h"
#include "flare/transport.h"
#include "flare/validator.h"

namespace cppflare::flare {

/// Secure-aggregation recovery knobs (DESIGN.md §14). Enabling requires a
/// MaskRecoveryCapable aggregator; masked rounds that close with sites
/// missing then freeze in a bounded recovery phase instead of publishing a
/// corrupted aggregate.
struct ServerSecureAggConfig {
  bool enabled = false;
  /// Budget for each recovery wave: survivors that have not revealed their
  /// mask share when it expires are demoted (their contribution revoked,
  /// their name added to the dropped set) and the next wave begins.
  std::int64_t recovery_deadline_ms = 5000;
  /// Demotion cascade bound: abort when this many waves did not converge.
  std::int64_t max_recovery_waves = 4;
};

/// Why a run aborted, typed — the string abort_reason() stays the human
/// narrative, this is the machine-checkable classification.
enum class AbortCode : std::uint8_t {
  kNone = 0,
  /// abort() called from outside (operator / harness teardown).
  kExternal = 1,
  /// Every contribution this round was rejected by the update validator.
  kAllRejected = 2,
  /// Round deadline passed with fewer than min_clients contributions.
  kDeadlineBelowQuorum = 3,
  /// Mask recovery demoted the surviving set below min_clients.
  kRecoveryBelowQuorum = 4,
  /// Mask recovery spent its wave budget without converging.
  kRecoveryExhausted = 5,
};

const char* abort_code_name(AbortCode code);

struct ServerConfig {
  /// Required, with no default: the job registry keys servers by job id and
  /// routes wire frames on it (DESIGN.md §16), so a silently shared
  /// placeholder would collide. Construction throws ConfigError when empty.
  std::string job_id;
  std::int64_t num_rounds = 10;
  /// Graceful-degradation floor: a round that hits its deadline closes with
  /// at least this many contributions; below it the run aborts. Capped by
  /// the round's participant count, so leaving it at the client count means
  /// "wait for everyone".
  std::int64_t min_clients = 8;
  /// Clients that must register before train tasks are issued.
  std::int64_t expected_clients = 8;
  /// Partial participation: when > 0, each round samples this many of the
  /// registered clients (seeded, without replacement); only they receive
  /// train tasks and the round closes after that many contributions.
  std::int64_t clients_per_round = 0;
  std::uint64_t sampling_seed = 1337;
  /// Straggler handling: when > 0, a round older than this closes with
  /// `min_clients`..quorum contributions — or aborts the run if even
  /// `min_clients` have not reported. Checked on client traffic and by the
  /// server's ticker thread (so deadlines fire even when every client is
  /// parked in a long-poll and generating no frames).
  std::int64_t round_deadline_ms = 0;
  /// Dead-site handling: when > 0, a participant unseen for this long while
  /// a round is open is evicted — it stops counting toward the quorum until
  /// its next authenticated frame re-admits it. Checked on traffic and by
  /// the ticker; a site with a parked long-poll counts as seen.
  std::int64_t liveness_timeout_ms = 0;
  /// Update-validation pipeline applied before the aggregator (defaults
  /// screen schema/finiteness/freshness; the norm-outlier pass is off).
  ValidatorConfig validator;
  /// Cross-round quarantine/parole policy (quarantine off by default).
  ReputationConfig reputation;
  /// Secure-aggregation mask recovery (off by default). Incompatible with
  /// clients_per_round sampling: a sampled-out site's pairwise masks never
  /// cancel, so construction throws ConfigError on that pairing.
  ServerSecureAggConfig secure_agg;
};

class FederatedServer {
 public:
  /// `resume` restores a checkpointed run: the global model, metrics
  /// history, and round counter continue from `resume->round + 1` instead
  /// of round 0 (throws ConfigError on a job_id mismatch).
  ///
  /// `journal` adds intra-round durability (DESIGN.md §15): every round
  /// mutation is journaled before it is applied, and construction replays a
  /// journal left by a crashed predecessor — when its open round matches
  /// the resume point the server resumes *within* that round (buffered
  /// contributions, reputation strikes, recovery-wave position restored;
  /// already-submitted sites answer kDuplicate instead of re-training); a
  /// journal for any other round is stale (the checkpoint superseded it)
  /// and is discarded with a warning. A journal from a different job is a
  /// typed ConfigError.
  FederatedServer(ServerConfig config, std::map<std::string, Credential> registry,
                  nn::StateDict initial_model,
                  std::unique_ptr<Aggregator> aggregator,
                  std::shared_ptr<ModelPersistor> persistor = nullptr,
                  std::optional<Checkpoint> resume = std::nullopt,
                  std::shared_ptr<RoundJournal> journal = nullptr);
  ~FederatedServer();

  /// The sealed-bytes entry point for transports. The returned callable
  /// keeps *this alive only as long as the server object; do not use it
  /// after destruction.
  ///
  /// This synchronous form answers every request inline and NEVER parks a
  /// get_task (GetTaskRequest::wait_ms is ignored) — the caller's thread is
  /// the transport's only delivery vehicle, so holding it hostage would
  /// stall unrelated requests. Long-poll dispatch needs async_dispatcher().
  Dispatcher dispatcher();

  /// The long-poll-capable entry point: a get_task with wait_ms > 0 whose
  /// answer would be kNone is *parked* — the RespondFn is retained and
  /// completed when the round opens/advances/stops or the (clamped) wait
  /// expires — instead of bouncing kNone back for the client to re-poll.
  /// At most one park per site; a newer poll from the same site completes
  /// the older park with kNone. Completions may be delivered from another
  /// site's dispatch thread, the server's ticker thread, or the destructor;
  /// RespondFns must tolerate all three (the reactor's do).
  AsyncDispatcher async_dispatcher();

  /// Filters applied to every inbound contribution before aggregation.
  FilterChain& inbound_filters() { return inbound_filters_; }

  EventBus& events() { return events_; }

  /// Called after every aggregation with the round index, a copy of the new
  /// global model, and the round's metrics. Observers run in registration
  /// order on the submitting client's dispatch path while the server lock
  /// is held: keep them cheap and never call back into the server from one.
  using RoundObserver =
      std::function<void(std::int64_t, const nn::StateDict&, const RoundMetrics&)>;
  void add_round_observer(RoundObserver observer) {
    // Guarded by mu_: registration may race a round finishing on a client
    // dispatch thread, which iterates this vector under the same lock.
    core::MutexLock lock(mu_);
    round_observers_.push_back(std::move(observer));
  }
  /// Kills the run: polling clients receive kStop, waiters wake with false.
  /// Used when an operator (or a crash-simulation harness) tears the run
  /// down mid-flight; also taken internally when a round deadline passes
  /// below `min_clients`. Refuses (returns false) once the run is already
  /// terminal, so an abort racing a clean finish cannot overwrite the
  /// finished state.
  bool abort(const std::string& reason);

  bool finished() const;
  bool aborted() const;
  /// True when the run was already terminal at construction (a resume past
  /// its last round): kEndRun never fires for such a run. Immutable after
  /// construction and readable without the server lock — the job registry
  /// checks it at admission while holding its own lock, where taking this
  /// server's lock would invert the documented server→runner lock order.
  bool born_terminal() const { return born_terminal_; }
  std::string abort_reason() const;
  AbortCode abort_code() const;
  /// Blocks until the run completes or aborts. Returns false on timeout or
  /// abort (see abort_reason()); true only for a successful finish.
  bool wait_until_finished(std::int64_t timeout_ms) const;

  nn::StateDict global_model() const;

  /// The run's metric registry — the primary telemetry surface since the
  /// observability PR (names in flare/observability.h metric_names;
  /// per-site gauges under "site.<name>."). `history()` and the
  /// RoundMetrics handed to round observers are thin views rebuilt from
  /// these metrics when a round closes.
  core::MetricRegistry& metrics_registry() { return metrics_; }
  /// Point-in-time copy of every metric (thread-safe, lock-free wrt mu_).
  core::MetricSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

  std::vector<RoundMetrics> history() const;
  std::int64_t current_round() const;
  std::int64_t registered_clients() const;
  /// Sites currently evicted by the liveness tracker.
  std::vector<std::string> evicted_sites() const;
  /// Sites currently quarantined by the reputation tracker.
  std::vector<std::string> quarantined_sites() const;
  /// A copy of every site's reputation standing.
  std::map<std::string, SiteStanding> reputation() const;

  /// Replaces the outbound sequence counters with a pool shared across
  /// sealers (the JobRunner installs one spanning its router and every
  /// hosted server, so a client sees strictly increasing "server" sequences
  /// no matter which component sealed the reply). Must be called before any
  /// traffic is dispatched.
  void share_outbound_sequences(std::shared_ptr<SequencePool> pool) {
    if (pool) outbound_seq_ = std::move(pool);
  }

 private:
  std::vector<std::uint8_t> handle_sealed(const std::vector<std::uint8_t>& request);
  void handle_sealed_async(const std::vector<std::uint8_t>& request,
                           RespondFn respond);
  std::vector<std::uint8_t> handle_frame(const std::string& sender,
                                         const std::vector<std::uint8_t>& frame);
  std::vector<std::uint8_t> seal_as_server(const std::string& sender,
                                           const std::vector<std::uint8_t>& key,
                                           const std::vector<std::uint8_t>& body);

  /// Async-path get_task: parks the call (consuming `respond`) or stages an
  /// immediate reply on ready_replies_. Only moves from `respond` on
  /// success, so the caller's error paths can still answer after a throw.
  void park_or_reply_get_task(const std::string& sender,
                              const std::vector<std::uint8_t>& key,
                              const GetTaskRequest& req, RespondFn& respond);

  std::vector<std::uint8_t> on_register(const std::string& sender,
                                        const RegisterRequest& req);
  std::vector<std::uint8_t> on_get_task(const std::string& sender,
                                        const GetTaskRequest& req);
  std::vector<std::uint8_t> on_submit(const std::string& sender,
                                      const SubmitUpdateRequest& req);
  std::vector<std::uint8_t> on_unmask(const std::string& sender,
                                      const UnmaskResponse& req);

  FLContext make_context_locked() const CF_REQUIRES(mu_);
  TaskMessage build_task_locked(const std::string& sender) CF_REQUIRES(mu_);
  /// What a poll from `sender` should receive *now*: during mask recovery a
  /// survivor that owes its share gets an UnmaskRequest, everyone else a
  /// TaskMessage. `parkable` marks the do-nothing kNone answer a long-poll
  /// may hold instead of delivering.
  struct PollReply {
    std::vector<std::uint8_t> body;
    bool parkable = false;
  };
  PollReply build_poll_reply_locked(const std::string& sender) CF_REQUIRES(mu_);
  /// Completes every parked poll whose task is no longer kNone (or whose
  /// deadline passed) by staging it on ready_replies_. Called after any
  /// state change that can change build_task_locked's answer.
  void service_parked_locked() CF_REQUIRES(mu_);
  /// Seals and delivers everything staged on ready_replies_. Must be called
  /// with mu_ RELEASED (respond may wake a client that immediately calls
  /// back in).
  void drain_ready_replies();
  void ticker_loop();
  void start_round_locked() CF_REQUIRES(mu_);
  void finish_round_locked(bool deadline_fired) CF_REQUIRES(mu_);
  void maybe_close_round_locked() CF_REQUIRES(mu_);
  /// Round-close gate: a masked round with missing sites detours into the
  /// recovery phase; everything else finishes directly.
  void close_round_locked(bool deadline_fired) CF_REQUIRES(mu_);
  void begin_recovery_locked(std::vector<std::string> dropped,
                             bool deadline_fired) CF_REQUIRES(mu_);
  /// Drives the recovery phase: finishes the round when every share is in,
  /// or runs the demotion cascade when the wave deadline expired.
  void advance_recovery_locked() CF_REQUIRES(mu_);
  void finish_recovery_locked() CF_REQUIRES(mu_);
  void evict_stragglers_locked() CF_REQUIRES(mu_);
  void abort_run_locked(const std::string& reason,
                        AbortCode code = AbortCode::kExternal)
      CF_REQUIRES(mu_);
  /// Re-drives journaled round events through the normal admission paths so
  /// a restarted server resumes mid-round (ctor only; see class comment).
  void apply_journal_locked(const JournalReplay& replay) CF_REQUIRES(mu_);
  void record_liveness(const std::string& sender);
  void sample_round_participants_locked() CF_REQUIRES(mu_);
  void settle_round_verdicts_locked() CF_REQUIRES(mu_);
  void record_rejection_locked(RejectReason reason) CF_REQUIRES(mu_);
  void record_site_metrics_locked(const std::string& site, const Dxo& contribution) CF_REQUIRES(mu_);
  std::map<std::string, std::int64_t> round_rejects_locked() const CF_REQUIRES(mu_);
  bool participates_locked(const std::string& site) const CF_REQUIRES(mu_);
  bool resolved_locked(const std::string& site) const CF_REQUIRES(mu_);
  std::int64_t participant_count_locked() const CF_REQUIRES(mu_);
  std::int64_t live_participant_count_locked() const CF_REQUIRES(mu_);
  std::int64_t resolved_participant_count_locked() const CF_REQUIRES(mu_);
  std::int64_t min_required_locked() const CF_REQUIRES(mu_);
  std::int64_t round_quorum_locked() const CF_REQUIRES(mu_);

  // config_ and registry_ are immutable after construction; inbound_filters_
  // and events_ are configured before the run starts and are internally
  // synchronized (EventBus) or read-only on the dispatch path — none of them
  // needs mu_. Everything below mu_ is round/run state guarded by it.
  ServerConfig config_;
  std::map<std::string, Credential> registry_;
  std::vector<RoundObserver> round_observers_ CF_GUARDED_BY(mu_);
  FilterChain inbound_filters_;
  EventBus events_;
  std::shared_ptr<ModelPersistor> persistor_;
  /// Write-ahead round journal (null = no intra-round durability). The
  /// pointee is single-writer and every call happens with mu_ held, so mu_
  /// is its capability just like the aggregator's.
  std::shared_ptr<RoundJournal> journal_;

  mutable core::Mutex mu_;
  mutable core::CondVar finished_cv_;
  nn::StateDict global_ CF_GUARDED_BY(mu_);
  // The aggregator's per-site buffers and the validator's admitted-norm set
  // have no locks of their own: FederatedServer::mu_ is their capability
  // (accept/revoke/aggregate and admit/score/flag_outliers are only ever
  // called with mu_ held).
  std::unique_ptr<Aggregator> aggregator_ CF_GUARDED_BY(mu_)
      CF_PT_GUARDED_BY(mu_);
  UpdateValidator validator_ CF_GUARDED_BY(mu_);
  SiteReputation reputation_ CF_GUARDED_BY(mu_);
  std::map<std::string, std::string> sessions_
      CF_GUARDED_BY(mu_);                        // site -> session id
  std::set<std::string> submitted_ CF_GUARDED_BY(mu_);  // accepted this round
  /// Sites resolved this round by a rejection (validator verdict or
  /// quarantine scoring), mapped to the ack we sent so resends are
  /// answered identically.
  std::map<std::string, SubmitAck> rejected_acks_ CF_GUARDED_BY(mu_);
  /// Quarantined sites' scored uploads: screening verdict + deviation
  /// norm, judged against the round population when the round closes.
  struct ScoredUpload {
    Verdict verdict;
    double norm = 0.0;
  };
  std::map<std::string, ScoredUpload> scored_quarantined_ CF_GUARDED_BY(mu_);
  /// Per-run metric registry (see metrics_registry()). Rejection tallies
  /// live here as "server.rejections.<reason>" counters; the per-round view
  /// in RoundMetrics is rebuilt by diffing against `reject_baseline_`,
  /// snapshotted when the round starts.
  core::MetricRegistry metrics_;  // internally synchronized
  std::map<std::string, std::int64_t> reject_baseline_ CF_GUARDED_BY(mu_);
  std::set<std::string> sampled_
      CF_GUARDED_BY(mu_);                        // this round's participants
  std::map<std::string, std::chrono::steady_clock::time_point> last_seen_
      CF_GUARDED_BY(mu_);
  std::set<std::string> evicted_
      CF_GUARDED_BY(mu_);                        // unseen past the timeout
  std::int64_t round_ CF_GUARDED_BY(mu_) = 0;
  /// True between a ctor journal replay and that round's close: the next
  /// start_round_locked must not resample or re-journal a round that is
  /// already open in the journal.
  bool round_replayed_ CF_GUARDED_BY(mu_) = false;
  /// Round whose kRoundOpen frame is in the journal (-1 none) — makes the
  /// double start_round_locked call benign (register racing a replayed
  /// recovery finish) instead of journaling a second open frame.
  std::int64_t journal_open_round_ CF_GUARDED_BY(mu_) = -1;
  std::chrono::steady_clock::time_point round_start_ CF_GUARDED_BY(mu_){};
  std::int64_t round_start_ns_ CF_GUARDED_BY(mu_) = 0;  // round span start
  bool started_ CF_GUARDED_BY(mu_) = false;
  bool finished_ CF_GUARDED_BY(mu_) = false;
  bool aborted_ CF_GUARDED_BY(mu_) = false;
  bool born_terminal_ = false;  // set in the ctor, immutable after
  std::string abort_reason_ CF_GUARDED_BY(mu_);
  AbortCode abort_code_ CF_GUARDED_BY(mu_) = AbortCode::kNone;

  /// Mask-recovery round state (DESIGN.md §14). The round number does not
  /// advance during kRecovering — the round is frozen: submits bounce with
  /// kRecoveryInProgress, polls from anyone but a share-owing survivor
  /// park, and quorum logic is bypassed until recovery resolves.
  enum class RoundPhase : std::uint8_t { kCollecting, kRecovering };
  RoundPhase phase_ CF_GUARDED_BY(mu_) = RoundPhase::kCollecting;
  /// The aggregator's recovery side-interface (dynamic_cast once at
  /// construction; null for unmasked aggregators). Pointee state is the
  /// aggregator's, so the same mu_ capability applies.
  MaskRecoveryCapable* mask_recovery_ = nullptr;
  std::vector<std::string> recovery_dropped_ CF_GUARDED_BY(mu_);
  /// Survivors that still owe their mask share this wave. Exempt from
  /// straggler eviction: they are doing protocol work for us.
  std::set<std::string> unmask_pending_ CF_GUARDED_BY(mu_);
  std::int64_t recovery_wave_ CF_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point recovery_deadline_ CF_GUARDED_BY(mu_){};
  std::int64_t recovery_start_ns_ CF_GUARDED_BY(mu_) = 0;
  bool recovery_deadline_fired_ CF_GUARDED_BY(mu_) = false;
  std::vector<RoundMetrics> history_ CF_GUARDED_BY(mu_);
  SequenceTracker inbound_seq_;  // internally synchronized
  /// Outbound "server" sequences, one counter per recipient. Internally
  /// synchronized; possibly shared with the JobRunner's router (see
  /// share_outbound_sequences).
  std::shared_ptr<SequencePool> outbound_seq_ = std::make_shared<SequencePool>();
  std::uint64_t session_counter_ CF_GUARDED_BY(mu_) = 0;

  /// A long-poll get_task waiting for its round. The RespondFn is the
  /// transport continuation; `key` re-seals without another registry lookup.
  struct ParkedPoll {
    std::vector<std::uint8_t> key;
    RespondFn respond;
    std::chrono::steady_clock::time_point deadline;
  };
  /// A reply whose state is decided but which cannot be delivered under mu_
  /// (respond may re-enter the server).
  struct ReadyReply {
    std::string sender;
    std::vector<std::uint8_t> key;
    std::vector<std::uint8_t> body;  // packed, not yet sealed
    RespondFn respond;
  };
  std::map<std::string, ParkedPoll> parked_ CF_GUARDED_BY(mu_);
  std::vector<ReadyReply> ready_replies_ CF_GUARDED_BY(mu_);
  /// Wakes the ticker when the nearest park deadline moves or on shutdown.
  mutable core::CondVar ticker_cv_;
  bool ticker_stop_ CF_GUARDED_BY(mu_) = false;
  /// Drives time-based transitions (round deadlines, liveness eviction,
  /// park expiry) now that long-poll removed the steady client traffic the
  /// lazy checks used to piggyback on.
  std::thread ticker_thread_;  // R5-exempt: server ticker (deadlines/park expiry)
};

}  // namespace cppflare::flare
