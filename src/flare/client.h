// The federated client runtime.
//
// Owns a transport connection, the site credential, and a `Learner`. The
// `run()` loop is the client half of Fig. 3: register (token handshake),
// poll for tasks, run local training, pass the result through the outbound
// filter chain, submit, repeat until the server says stop.
//
// Resilience (DESIGN.md §9): transport failures (socket errors, dropped or
// corrupted frames, retryable server errors) are retried with bounded
// exponential backoff, reconnecting through the `ConnectionFactory` when
// one is available; kUnknownSession errors trigger an idempotent
// re-registration that resumes the session. Application-level protocol
// errors stay fatal.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/backoff.h"
#include "flare/filters.h"
#include "flare/learner.h"
#include "flare/messages.h"
#include "flare/provision.h"
#include "flare/secure_channel.h"
#include "flare/transport.h"

namespace cppflare::flare {

/// Builds a fresh connection to the server; called once lazily and again
/// after every transport failure. May throw TransportError (counted against
/// the same retry budget as a failed call).
using ConnectionFactory = std::function<std::unique_ptr<Connection>()>;

struct ClientConfig {
  /// Job binding: stamped on every outbound envelope (the multi-job
  /// coordinator routes frames by it and rejects cross-job traffic with
  /// ErrorCode::kWrongJob) and carried into the Learner's FLContext. Empty
  /// means unbound — accepted when the peer hosts exactly one job.
  std::string job_id;
  /// Long-poll budget sent with every get_task: the server parks the call
  /// until a task is ready or this much time passed (it also clamps the
  /// value, kMaxGetTaskWaitMs). Must be >= 1; against a server whose
  /// transport cannot park (the synchronous dispatcher), kNone answers
  /// return immediately and the client inserts a tiny anti-spin sleep.
  std::int64_t long_poll_ms = 10000;
  /// Give up if the server stays silent this long (0 = never).
  std::int64_t max_idle_ms = 60000;
  /// Retry schedule for transport-level failures (initial/max delay,
  /// multiplier, retries per failed exchange, jitter fraction, fast first
  /// retry). Each exchange gets a fresh episode, so the common transient —
  /// one lost or corrupted frame — is retried immediately; only repeated
  /// failures of the same exchange sleep the exponential schedule.
  core::BackoffPolicy retry = {10, 2000, 2.0, 5, 0.2, true};
  /// Seed for the retry jitter (combined with the site name), keeping
  /// fault-injection runs reproducible.
  std::uint64_t retry_seed = 0x9277;
};

class FederatedClient {
 public:
  /// Single fixed connection (no reconnect on failure; retries re-use it).
  FederatedClient(ClientConfig config, Credential credential,
                  std::unique_ptr<Connection> connection,
                  std::shared_ptr<Learner> learner);
  /// Reconnecting client: the factory is invoked lazily and again after
  /// every transport failure.
  FederatedClient(ClientConfig config, Credential credential,
                  ConnectionFactory factory, std::shared_ptr<Learner> learner);

  /// Filters applied to every outbound contribution (privacy lives here).
  FilterChain& outbound_filters() { return outbound_filters_; }

  /// Answers the server's mask-recovery question (DESIGN.md §14): given the
  /// set of dropped sites and the round, return the sum of this site's
  /// pairwise masks against them so the server can subtract them from the
  /// masked aggregate. `skeleton` is the server-supplied zeros template of
  /// the expected share, for providers restarted after a crash with no
  /// upload-time state (DESIGN.md §15). Installed by the secure-aggregation
  /// wiring; a client without a provider answers UnmaskRequest with a fatal
  /// protocol error, which is correct for unmasked runs (the server never
  /// asks).
  using UnmaskProvider =
      std::function<Dxo(const std::vector<std::string>& dropped,
                        std::int64_t round, const nn::StateDict& skeleton)>;
  void set_unmask_provider(UnmaskProvider provider) {
    unmask_provider_ = std::move(provider);
  }

  /// Blocking: registers and participates until the server stops the run.
  /// Throws ProtocolError on fatal protocol violations and TransportError
  /// once the retry budget for a transport failure is exhausted.
  void run();

  std::int64_t rounds_participated() const { return rounds_participated_; }
  /// Contributions the server refused (validator rejection, quarantine,
  /// stale round) over the client's lifetime.
  std::int64_t updates_rejected() const { return updates_rejected_; }
  /// Transport-level failures absorbed by the retry machinery (dropped or
  /// corrupted frames, reconnects) over the client's lifetime.
  std::int64_t transport_failures() const { return transport_failures_; }
  std::int64_t reconnects() const { return reconnects_; }
  std::int64_t reregistrations() const { return reregistrations_; }
  /// UnmaskRequests answered during mask-recovery phases.
  std::int64_t unmask_answers() const { return unmask_answers_; }
  const std::string& site_name() const { return credential_.name; }

 private:
  /// Rebuilds the frame for each attempt (a re-registration mid-retry can
  /// change the session id baked into it).
  using FrameBuilder = std::function<std::vector<std::uint8_t>()>;

  /// Resilient exchange: retries transport failures with backoff,
  /// re-registers on kUnknownSession, throws on fatal errors.
  std::vector<std::uint8_t> call(const FrameBuilder& build_frame);

  /// One authenticated round trip: seal, call, open, verify, classify
  /// errors into retryable (TransportError) vs fatal (ProtocolError).
  std::vector<std::uint8_t> call_once(const std::vector<std::uint8_t>& frame);

  void ensure_connection();
  void register_session();

  ClientConfig config_;
  Credential credential_;
  std::unique_ptr<Connection> connection_;
  ConnectionFactory factory_;
  std::shared_ptr<Learner> learner_;
  FilterChain outbound_filters_;
  UnmaskProvider unmask_provider_;
  SequenceSource seq_;
  SequenceTracker server_seq_;
  std::string session_id_;
  std::int64_t rounds_participated_ = 0;
  std::int64_t updates_rejected_ = 0;
  std::int64_t transport_failures_ = 0;
  std::int64_t reconnects_ = 0;
  std::int64_t reregistrations_ = 0;
  std::int64_t unmask_answers_ = 0;
  bool registering_ = false;
};

}  // namespace cppflare::flare
