// The federated client runtime.
//
// Owns a transport connection, the site credential, and a `Learner`. The
// `run()` loop is the client half of Fig. 3: register (token handshake),
// poll for tasks, run local training, pass the result through the outbound
// filter chain, submit, repeat until the server says stop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "flare/filters.h"
#include "flare/learner.h"
#include "flare/messages.h"
#include "flare/provision.h"
#include "flare/secure_channel.h"
#include "flare/transport.h"

namespace cppflare::flare {

struct ClientConfig {
  std::string job_id = "simulator_server";
  /// Sleep between polls when no task is available.
  std::int64_t poll_interval_ms = 5;
  /// Give up if the server stays silent this long (0 = never).
  std::int64_t max_idle_ms = 60000;
};

class FederatedClient {
 public:
  FederatedClient(ClientConfig config, Credential credential,
                  std::unique_ptr<Connection> connection,
                  std::shared_ptr<Learner> learner);

  /// Filters applied to every outbound contribution (privacy lives here).
  FilterChain& outbound_filters() { return outbound_filters_; }

  /// Blocking: registers and participates until the server stops the run.
  /// Throws ProtocolError/TransportError on unrecoverable failures.
  void run();

  std::int64_t rounds_participated() const { return rounds_participated_; }
  const std::string& site_name() const { return credential_.name; }

 private:
  /// One authenticated round trip: seal, call, open, verify, unwrap errors.
  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& frame);

  ClientConfig config_;
  Credential credential_;
  std::unique_ptr<Connection> connection_;
  std::shared_ptr<Learner> learner_;
  FilterChain outbound_filters_;
  SequenceSource seq_;
  SequenceTracker server_seq_;
  std::string session_id_;
  std::int64_t rounds_participated_ = 0;
};

}  // namespace cppflare::flare
