// Wire protocol between federated clients and the server.
//
// Clients drive the protocol (as in NVFlare): they register, then poll for
// tasks and submit results. Every message is a tagged body; the secure
// channel (secure_channel.h) wraps the tagged bytes with sender identity and
// an HMAC before they reach a transport.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/bytes.h"
#include "flare/dxo.h"

namespace cppflare::flare {

enum class MsgType : std::uint8_t {
  kRegister = 1,
  kRegisterAck = 2,
  kGetTask = 3,
  kTask = 4,
  kSubmitUpdate = 5,
  kSubmitAck = 6,
  kError = 7,
  kUnmaskRequest = 8,
  kUnmaskResponse = 9,
};

/// What the server asks a polling client to do.
enum class TaskKind : std::uint8_t {
  kNone = 0,   // nothing right now; poll again
  kTrain = 1,  // run local training on the attached global model
  kStop = 2,   // the run is over; shut down
};

struct RegisterRequest {
  std::string site_name;
  std::string token;
};

struct RegisterAck {
  bool accepted = false;
  std::string session_id;
  std::string message;
};

struct GetTaskRequest {
  std::string session_id;
  /// Long-poll budget: the server may park this call for up to `wait_ms`
  /// before answering kNone (0 = answer immediately; the pre-long-poll wire
  /// shape). Servers clamp it (kMaxGetTaskWaitMs) and only park on the
  /// async dispatch path. Decoded leniently so old frames without the
  /// trailing field still parse as wait_ms = 0.
  std::int64_t wait_ms = 0;
};

/// Server-side ceiling on GetTaskRequest::wait_ms — a client asking for an
/// hour parks for at most this long, then gets kNone and re-polls (which
/// also refreshes liveness).
inline constexpr std::int64_t kMaxGetTaskWaitMs = 30000;

struct TaskMessage {
  TaskKind task = TaskKind::kNone;
  std::int64_t round = 0;
  std::int64_t total_rounds = 0;
  Dxo payload;  // global model for kTrain; empty otherwise
};

struct SubmitUpdateRequest {
  std::string session_id;
  std::int64_t round = 0;
  Dxo payload;
};

/// Why the server refused a contribution — the typed verdict of the
/// update-validation pipeline (validator.h), carried on the SubmitAck so a
/// site learns *why* it was turned away and telemetry can attribute
/// rejections per round.
enum class RejectReason : std::uint8_t {
  kNone = 0,               // accepted (or a legacy untyped rejection)
  kSchemaMismatch = 1,     // keys/shapes incongruent with the global model
  kNonFinite = 2,          // NaN or Inf in the payload
  kNormOutlier = 3,        // update norm flagged by the robust z-score
  kStaleRound = 4,         // contribution for a round that already closed
  kBadSampleCount = 5,     // implausible num_samples claim
  kQuarantined = 6,        // site is quarantined; update scored, not used
  kDuplicate = 7,          // the round already holds this site's update
  kNotSampled = 8,         // site not in this round's participant sample
  kAggregatorRefused = 9,  // passed validation, aggregator still said no
  kRunOver = 10,           // run finished or aborted
  kRecoveryInProgress = 11,  // masked round is frozen in mask recovery
};

const char* reject_reason_name(RejectReason reason);

struct SubmitAck {
  bool accepted = false;
  std::string message;
  RejectReason reason = RejectReason::kNone;
};

/// How a client should react to a server-reported error (the retryable vs
/// fatal taxonomy — see DESIGN.md §9).
enum class ErrorCode : std::uint8_t {
  /// Application-level protocol violation (bad token, unexpected message):
  /// retrying cannot help, the client must abort.
  kFatal = 0,
  /// The frame was damaged or replayed in flight (MAC mismatch, malformed
  /// envelope, sequence violation): re-seal and resend.
  kRetryable = 1,
  /// The server does not know the client's session (restart or eviction):
  /// re-register, then resend.
  kUnknownSession = 2,
  /// The frame's envelope is bound to a different job than the one it
  /// reached (multi-job coordinator, DESIGN.md §16). Fatal: the client is
  /// misconfigured or the frame was replayed across jobs; retrying the same
  /// frame can never succeed.
  kWrongJob = 3,
};

struct ErrorMessage {
  std::string message;
  ErrorCode code = ErrorCode::kFatal;
};

/// Mask-recovery request, delivered on the long-poll channel in place of a
/// TaskMessage when a masked round closed with sites missing. The survivor
/// must answer with the *sum* of its pairwise mask streams against the
/// dropped set for `round` — never an individual pairwise mask, so the
/// server learns nothing about any single link (see DESIGN.md §14).
struct UnmaskRequest {
  std::int64_t round = 0;
  /// Recovery wave: increments when a survivor is demoted mid-recovery and
  /// the remaining survivors must answer again against the enlarged set.
  std::int64_t wave = 0;
  std::vector<std::string> dropped;
  /// Zeros template of the expected share (the global model's skeleton —
  /// nothing the honest-but-curious server doesn't already publish). A
  /// survivor restarted after a coordinator crash lost the skeleton its
  /// mask filter recorded at upload time; this field lets it answer anyway
  /// (DESIGN.md §15). Absent in pre-durability frames (lenient decode).
  Dxo skeleton;
};

/// Survivor's answer: `share` holds the summed mask stream (same skeleton as
/// the round's update payload) the server subtracts from the aggregate.
struct UnmaskResponse {
  std::string session_id;
  std::int64_t round = 0;
  std::int64_t wave = 0;
  Dxo share;
};

/// SubmitAck message for a contribution the server already holds. A client
/// that retried a submit whose response was lost treats this as success
/// (at-least-once delivery with server-side dedup).
inline constexpr const char* kDuplicateContribution = "duplicate contribution";

// ---- encoding -----------------------------------------------------------
// pack_* produce a full tagged frame; `peek_type` reads the tag; decode_*
// expect the matching tag and throw ProtocolError otherwise.

std::vector<std::uint8_t> pack(const RegisterRequest& m);
std::vector<std::uint8_t> pack(const RegisterAck& m);
std::vector<std::uint8_t> pack(const GetTaskRequest& m);
std::vector<std::uint8_t> pack(const TaskMessage& m);
std::vector<std::uint8_t> pack(const SubmitUpdateRequest& m);
std::vector<std::uint8_t> pack(const SubmitAck& m);
std::vector<std::uint8_t> pack(const ErrorMessage& m);
std::vector<std::uint8_t> pack(const UnmaskRequest& m);
std::vector<std::uint8_t> pack(const UnmaskResponse& m);

MsgType peek_type(const std::vector<std::uint8_t>& frame);

RegisterRequest decode_register(const std::vector<std::uint8_t>& frame);
RegisterAck decode_register_ack(const std::vector<std::uint8_t>& frame);
GetTaskRequest decode_get_task(const std::vector<std::uint8_t>& frame);
TaskMessage decode_task(const std::vector<std::uint8_t>& frame);
SubmitUpdateRequest decode_submit(const std::vector<std::uint8_t>& frame);
SubmitAck decode_submit_ack(const std::vector<std::uint8_t>& frame);
ErrorMessage decode_error(const std::vector<std::uint8_t>& frame);
UnmaskRequest decode_unmask_request(const std::vector<std::uint8_t>& frame);
UnmaskResponse decode_unmask_response(const std::vector<std::uint8_t>& frame);

}  // namespace cppflare::flare
