#include "flare/aggregator.h"

#include <vector>

#include "core/error.h"
#include "core/logging.h"
#include "flare/hierarchy.h"

#define CPPFLARE_LOG_COMPONENT "DXOAggregator"

namespace cppflare::flare {

void FedAvgAggregator::reset(const nn::StateDict& global, std::int64_t round) {
  global_ = global;
  round_kind_.reset();
  pending_.clear();
  metrics_ = RoundMetrics{};
  metrics_.round = round;
}

bool FedAvgAggregator::accept(const std::string& site, const Dxo& contribution) {
  if (contribution.kind() == DxoKind::kMetrics) {
    LOG(warn).msg("Rejecting metrics-only contribution from " + site);
    return false;
  }
  if (pending_.count(site) != 0) {
    LOG(warn).msg("Duplicate contribution from " + site + " ignored");
    return false;
  }
  if (round_kind_.has_value() && *round_kind_ != contribution.kind()) {
    LOG(warn).msg("Mixed DXO kinds in one round; rejecting " + site);
    return false;
  }
  if (!contribution.data().congruent_with(global_)) {
    LOG(warn).msg("Incongruent model from " + site + " rejected");
    return false;
  }

  const auto samples = contribution.meta_int(Dxo::kMetaNumSamples, 1);
  const double w = weighted_ ? static_cast<double>(samples) : 1.0;
  if (w <= 0.0) {
    LOG(warn).msg("Non-positive weight from " + site + " rejected");
    return false;
  }

  round_kind_ = contribution.kind();
  pending_.emplace(site, Pending{contribution, w});

  metrics_.num_contributions += 1;
  metrics_.total_samples += samples;
  LOG(info).msg("Contribution from " + site + " ACCEPTED by the aggregator at round " +
                std::to_string(metrics_.round) + ".");
  return true;
}

bool FedAvgAggregator::revoke(const std::string& site) {
  auto it = pending_.find(site);
  if (it == pending_.end()) return false;
  metrics_.num_contributions -= 1;
  metrics_.total_samples -= it->second.dxo.meta_int(Dxo::kMetaNumSamples, 1);
  pending_.erase(it);
  if (pending_.empty()) round_kind_.reset();
  LOG(info).msg("Contribution from " + site + " REVOKED at round " +
                std::to_string(metrics_.round) + ".");
  return true;
}

nn::StateDict FedAvgAggregator::reduce_pending() const {
  // Reduce in site-name order (std::map iteration), never arrival order:
  // floating-point sums then come out bit-for-bit identical no matter how
  // retries or stragglers shuffled the submissions.
  std::vector<WeightedRef> refs;
  refs.reserve(pending_.size());
  for (const auto& [site, p] : pending_) {
    refs.push_back(WeightedRef{static_cast<float>(p.weight), &p.dxo.data()});
  }
  return weighted_tree_sum(refs.data(), refs.size());
}

nn::StateDict FedAvgAggregator::aggregate() {
  if (pending_.empty() || !round_kind_.has_value()) {
    throw Error("FedAvgAggregator: no contributions to aggregate");
  }
  LOG(info).msg("aggregating " + std::to_string(metrics_.num_contributions) +
                " update(s) at round " + std::to_string(metrics_.round));
  nn::StateDict accum = reduce_pending();
  // Scalar sums stay sequential (doubles, site-name order) in every
  // reduction mode, so the 1/weight_sum scale matches bitwise between flat
  // and hierarchical aggregation.
  double weight_sum = 0.0;
  double loss_weight_sum = 0.0;
  for (const auto& [site, p] : pending_) {
    weight_sum += p.weight;
    if (p.dxo.has_meta(Dxo::kMetaTrainLoss)) {
      metrics_.train_loss += p.weight * p.dxo.meta_double(Dxo::kMetaTrainLoss);
      metrics_.valid_acc += p.weight * p.dxo.meta_double(Dxo::kMetaValidAcc);
      metrics_.valid_loss += p.weight * p.dxo.meta_double(Dxo::kMetaValidLoss);
      loss_weight_sum += p.weight;
    }
  }
  accum.scale(static_cast<float>(1.0 / weight_sum));
  if (loss_weight_sum > 0.0) {
    metrics_.train_loss /= loss_weight_sum;
    metrics_.valid_acc /= loss_weight_sum;
    metrics_.valid_loss /= loss_weight_sum;
  }
  if (*round_kind_ == DxoKind::kWeightDiff) {
    nn::StateDict next = global_;
    next.axpy(1.0f, accum);
    return next;
  }
  return accum;
}

std::int64_t FedAvgAggregator::accepted_count() const {
  return metrics_.num_contributions;
}

RoundMetrics FedAvgAggregator::metrics() const { return metrics_; }

}  // namespace cppflare::flare
