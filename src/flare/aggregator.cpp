#include "flare/aggregator.h"

#include "core/error.h"
#include "core/logging.h"

namespace cppflare::flare {

namespace {
const core::Logger& logger() {
  static core::Logger log("DXOAggregator");
  return log;
}
}  // namespace

void FedAvgAggregator::reset(const nn::StateDict& global, std::int64_t round) {
  global_ = global;
  round_kind_.reset();
  accum_ = nn::StateDict{};
  weight_sum_ = 0.0;
  loss_weight_sum_ = 0.0;
  contributors_.clear();
  metrics_ = RoundMetrics{};
  metrics_.round = round;
}

bool FedAvgAggregator::accept(const std::string& site, const Dxo& contribution) {
  if (contribution.kind() == DxoKind::kMetrics) {
    logger().warn("Rejecting metrics-only contribution from " + site);
    return false;
  }
  if (contributors_.count(site) != 0) {
    logger().warn("Duplicate contribution from " + site + " ignored");
    return false;
  }
  if (round_kind_.has_value() && *round_kind_ != contribution.kind()) {
    logger().warn("Mixed DXO kinds in one round; rejecting " + site);
    return false;
  }
  if (!contribution.data().congruent_with(global_)) {
    logger().warn("Incongruent model from " + site + " rejected");
    return false;
  }

  const auto samples = contribution.meta_int(Dxo::kMetaNumSamples, 1);
  const double w = weighted_ ? static_cast<double>(samples) : 1.0;
  if (w <= 0.0) {
    logger().warn("Non-positive weight from " + site + " rejected");
    return false;
  }

  round_kind_ = contribution.kind();
  if (accum_.empty()) accum_ = contribution.data().zeros_like();
  accum_.axpy(static_cast<float>(w), contribution.data());
  weight_sum_ += w;
  contributors_.emplace(site, w);

  metrics_.num_contributions += 1;
  metrics_.total_samples += samples;
  if (contribution.has_meta(Dxo::kMetaTrainLoss)) {
    metrics_.train_loss += w * contribution.meta_double(Dxo::kMetaTrainLoss);
    metrics_.valid_acc += w * contribution.meta_double(Dxo::kMetaValidAcc);
    metrics_.valid_loss += w * contribution.meta_double(Dxo::kMetaValidLoss);
    loss_weight_sum_ += w;
  }
  logger().info("Contribution from " + site + " ACCEPTED by the aggregator at round " +
                std::to_string(metrics_.round) + ".");
  return true;
}

nn::StateDict FedAvgAggregator::aggregate() {
  if (weight_sum_ <= 0.0 || !round_kind_.has_value()) {
    throw Error("FedAvgAggregator: no contributions to aggregate");
  }
  logger().info("aggregating " + std::to_string(metrics_.num_contributions) +
                " update(s) at round " + std::to_string(metrics_.round));
  accum_.scale(static_cast<float>(1.0 / weight_sum_));
  if (loss_weight_sum_ > 0.0) {
    metrics_.train_loss /= loss_weight_sum_;
    metrics_.valid_acc /= loss_weight_sum_;
    metrics_.valid_loss /= loss_weight_sum_;
  }
  if (*round_kind_ == DxoKind::kWeightDiff) {
    nn::StateDict next = global_;
    next.axpy(1.0f, accum_);
    return next;
  }
  return accum_;
}

std::int64_t FedAvgAggregator::accepted_count() const {
  return metrics_.num_contributions;
}

RoundMetrics FedAvgAggregator::metrics() const { return metrics_; }

}  // namespace cppflare::flare
