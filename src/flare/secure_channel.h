// Authenticated message envelopes.
//
// Every protocol frame is wrapped in an envelope carrying the sender name, a
// strictly increasing sequence number, the payload, and an HMAC-SHA256 over
// all of it keyed by the sender's provisioned secret. The receiver verifies
// the MAC (constant time) and enforces sequence monotonicity per sender,
// which defeats tampering and replay on an untrusted transport — the role
// TLS plays in a production NVFlare deployment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "flare/provision.h"

namespace cppflare::flare {

struct Envelope {
  std::string sender;
  /// Job binding (multi-job coordinator, DESIGN.md §16): the job this frame
  /// belongs to, covered by the MAC so cross-job replays fail closed. Empty
  /// means "unbound" — accepted by a single-job endpoint, rejected by the
  /// job router whenever more than one job is live.
  std::string job_id;
  std::uint64_t sequence = 0;
  std::vector<std::uint8_t> payload;
};

/// Wraps `payload` in a MAC'd envelope as `sender` with `sequence`, bound
/// to `job_id` (empty = unbound, the single-job wire shape).
std::vector<std::uint8_t> seal(const std::string& sender,
                               const std::vector<std::uint8_t>& secret,
                               std::uint64_t sequence,
                               const std::vector<std::uint8_t>& payload,
                               const std::string& job_id = {});

/// Parses and verifies an envelope against `secret`. Throws ProtocolError on
/// malformed input or MAC mismatch. Does NOT check the sequence; callers
/// with per-sender state use `SequenceTracker`.
Envelope open(const std::vector<std::uint8_t>& sealed,
              const std::vector<std::uint8_t>& secret);

/// Parses only the sender name (needed to look up the right secret before
/// verification).
std::string peek_sender(const std::vector<std::uint8_t>& sealed);

/// Parses only the job binding — the router's routing key. Unverified until
/// `open` succeeds; a forged job id at worst routes the frame to a job whose
/// MAC check then rejects it.
std::string peek_job(const std::vector<std::uint8_t>& sealed);

/// Enforces strictly increasing sequence numbers per sender. Thread-safe.
class SequenceTracker {
 public:
  /// Throws ProtocolError if `sequence` is not strictly greater than the
  /// last accepted value for `sender`.
  void check_and_advance(const std::string& sender, std::uint64_t sequence);

 private:
  core::Mutex mu_;
  std::map<std::string, std::uint64_t> last_ CF_GUARDED_BY(mu_);
};

/// Client-side sequence source.
class SequenceSource {
 public:
  std::uint64_t next() { return ++value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Per-sender outbound sequence counters, shareable across sealers.
/// Thread-safe. A multi-job coordinator seals as "server" from the job
/// router *and* from every hosted FederatedServer; handing them one pool
/// keeps the sequences a given client observes strictly increasing no
/// matter which component answered (SequenceTracker on the client side
/// rejects anything else as a replay).
class SequencePool {
 public:
  std::uint64_t next(const std::string& sender) {
    core::MutexLock lock(mu_);
    return ++last_[sender];
  }

 private:
  core::Mutex mu_;
  std::map<std::string, std::uint64_t> last_ CF_GUARDED_BY(mu_);
};

}  // namespace cppflare::flare
