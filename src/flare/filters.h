// DXO filters — the privacy/robustness pipeline applied to contributions.
//
// NVFlare passes every task result through a configurable filter chain
// before it reaches the aggregator; this module reproduces the three
// standard ones the paper's privacy claims rest on: Gaussian perturbation
// (differential-privacy style noise), update-norm clipping, and variable
// exclusion. Filters mutate the DXO in place and are composable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "flare/dxo.h"
#include "flare/fl_context.h"

namespace cppflare::flare {

class Filter {
 public:
  virtual ~Filter() = default;
  virtual void process(Dxo& dxo, const FLContext& ctx) = 0;
  virtual std::string name() const = 0;
};

/// Applies all filters in order.
class FilterChain {
 public:
  void add(std::shared_ptr<Filter> filter) { filters_.push_back(std::move(filter)); }
  void process(Dxo& dxo, const FLContext& ctx) const;
  std::size_t size() const { return filters_.size(); }

 private:
  std::vector<std::shared_ptr<Filter>> filters_;
};

/// Adds i.i.d. N(0, sigma^2) noise to every weight value.
class GaussianPrivacyFilter : public Filter {
 public:
  GaussianPrivacyFilter(double sigma, std::uint64_t seed)
      : sigma_(sigma), rng_(seed) {}
  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "GaussianPrivacy"; }
  double sigma() const { return sigma_; }

 private:
  double sigma_;
  core::Rng rng_;
};

/// Rescales the payload so its global L2 norm is at most `max_norm`
/// (typically used on kWeightDiff contributions).
class NormClipFilter : public Filter {
 public:
  explicit NormClipFilter(double max_norm) : max_norm_(max_norm) {}
  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "NormClip"; }

 private:
  double max_norm_;
};

/// Drops parameters whose dotted name starts with `prefix` (NVFlare's
/// ExcludeVars): e.g. keep a site-specific head local by excluding "head.".
class ExcludeVarsFilter : public Filter {
 public:
  explicit ExcludeVarsFilter(std::string prefix) : prefix_(std::move(prefix)) {}
  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "ExcludeVars(" + prefix_ + ")"; }

 private:
  std::string prefix_;
};

}  // namespace cppflare::flare
