// DXO filters — the privacy/robustness pipeline applied to contributions.
//
// NVFlare passes every task result through a configurable filter chain
// before it reaches the aggregator; this module reproduces the three
// standard ones the paper's privacy claims rest on: Gaussian perturbation
// (differential-privacy style noise), update-norm clipping, and variable
// exclusion. Filters mutate the DXO in place and are composable.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "flare/dxo.h"
#include "flare/fl_context.h"

namespace cppflare::flare {

class Filter {
 public:
  virtual ~Filter() = default;
  virtual void process(Dxo& dxo, const FLContext& ctx) = 0;
  virtual std::string name() const = 0;
};

/// Applies all filters in order.
class FilterChain {
 public:
  void add(std::shared_ptr<Filter> filter) { filters_.push_back(std::move(filter)); }
  void process(Dxo& dxo, const FLContext& ctx) const;
  std::size_t size() const { return filters_.size(); }

 private:
  std::vector<std::shared_ptr<Filter>> filters_;
};

/// Adds i.i.d. N(0, sigma^2) noise to every weight value.
class GaussianPrivacyFilter : public Filter {
 public:
  GaussianPrivacyFilter(double sigma, std::uint64_t seed)
      : sigma_(sigma), rng_(seed) {}
  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "GaussianPrivacy"; }
  double sigma() const { return sigma_; }

 private:
  double sigma_;
  core::Rng rng_;
};

/// Rescales the payload so its global L2 norm is at most `max_norm`
/// (typically used on kWeightDiff contributions).
class NormClipFilter : public Filter {
 public:
  explicit NormClipFilter(double max_norm) : max_norm_(max_norm) {}
  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "NormClip"; }

 private:
  double max_norm_;
};

/// Differential-privacy Gaussian mechanism: clip the update's global L2
/// norm to `clip_norm`, then add i.i.d. N(0, (noise_multiplier*clip_norm)^2)
/// noise — the calibrated form whose per-release (epsilon, delta) cost
/// DpAccountant tracks. Composes the two classic filters in the one order
/// that makes the sensitivity bound (and therefore the accounting) valid:
/// clip first, then noise.
class DpGaussianFilter : public Filter {
 public:
  DpGaussianFilter(double clip_norm, double noise_multiplier, std::uint64_t seed);
  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "DpGaussian"; }
  double clip_norm() const { return clip_norm_; }
  double noise_multiplier() const { return noise_multiplier_; }

 private:
  double clip_norm_;
  double noise_multiplier_;
  NormClipFilter clip_;
  GaussianPrivacyFilter noise_;
};

/// Simple (epsilon, delta) accountant for the Gaussian mechanism under
/// basic composition: each release with noise multiplier z >= the classic
/// calibration bound costs epsilon_round = sqrt(2 ln(1.25/delta)) / z, and
/// R rounds spend R * epsilon_round at the same delta. Deliberately
/// conservative — an RDP/moments accountant is a drop-in refinement.
class DpAccountant {
 public:
  DpAccountant(double noise_multiplier, double delta);

  /// Privacy cost of one release.
  double epsilon_per_round() const { return epsilon_per_round_; }
  /// Total spend after `rounds` releases (basic composition).
  double epsilon_after(std::int64_t rounds) const {
    return epsilon_per_round_ * static_cast<double>(rounds);
  }
  double delta() const { return delta_; }

 private:
  double epsilon_per_round_;
  double delta_;
};

/// Client-side pre-scaling for *weighted* aggregation under secure
/// masking: masks only cancel through an unweighted sum, so instead of the
/// server weighting by num_samples, each site scales its own update by
/// (num_samples * num_sites / total_samples) before masking. The server's
/// uniform mean of the scaled updates then equals the weighted FedAvg
/// mean. `total_samples` is the federation-wide sample count, known at
/// provisioning time in the clinical setting.
class PreScaleFilter : public Filter {
 public:
  PreScaleFilter(std::int64_t num_sites, std::int64_t total_samples);
  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "PreScale"; }

 private:
  std::int64_t num_sites_;
  std::int64_t total_samples_;
};

/// Drops parameters whose dotted name starts with `prefix` (NVFlare's
/// ExcludeVars): e.g. keep a site-specific head local by excluding "head.".
class ExcludeVarsFilter : public Filter {
 public:
  explicit ExcludeVarsFilter(std::string prefix) : prefix_(std::move(prefix)) {}
  void process(Dxo& dxo, const FLContext& ctx) override;
  std::string name() const override { return "ExcludeVars(" + prefix_ + ")"; }

 private:
  std::string prefix_;
};

}  // namespace cppflare::flare
