#include "flare/model_selector.h"

#include "core/error.h"
#include "core/logging.h"

#define CPPFLARE_LOG_COMPONENT "IntimeModelSelector"

namespace cppflare::flare {

double BestModelSelector::score_of(const RoundMetrics& metrics) const {
  switch (criterion_) {
    case Criterion::kMaxValidAccuracy:
      return metrics.valid_acc;
    case Criterion::kMinValidLoss:
      return -metrics.valid_loss;
  }
  return 0.0;
}

void BestModelSelector::observe(std::int64_t round, const nn::StateDict& model,
                                const RoundMetrics& metrics) {
  const double score = score_of(metrics);
  core::MutexLock lock(mu_);
  if (!best_.has_value() || score > best_score_) {
    best_ = model;
    best_round_ = round;
    best_metrics_ = metrics;
    best_score_ = score;
    LOG(info).msg("New best global model at round " + std::to_string(round) +
                  " (valid_acc=" + std::to_string(metrics.valid_acc) +
                  ", valid_loss=" + std::to_string(metrics.valid_loss) + ")");
  }
}

bool BestModelSelector::has_best() const {
  core::MutexLock lock(mu_);
  return best_.has_value();
}

nn::StateDict BestModelSelector::best_model() const {
  core::MutexLock lock(mu_);
  if (!best_.has_value()) throw Error("BestModelSelector: no rounds observed");
  return *best_;
}

std::int64_t BestModelSelector::best_round() const {
  core::MutexLock lock(mu_);
  return best_round_;
}

RoundMetrics BestModelSelector::best_metrics() const {
  core::MutexLock lock(mu_);
  return best_metrics_;
}

}  // namespace cppflare::flare
