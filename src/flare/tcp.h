// TCP transport: length-prefixed frames over POSIX sockets.
//
// This is the "two Linux machines" path of the paper's Table I setup — the
// same sealed protocol bytes as the in-process simulator, but carried over
// real sockets so server and sites can run in separate processes or hosts.
// Framing: u32 little-endian payload length, then the payload. A frame is
// one sealed envelope; the server responds with exactly one frame per
// request.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"
#include "flare/transport.h"

namespace cppflare::flare {

/// Maximum accepted frame size (64 MiB) — a sanity bound against corrupt
/// length prefixes.
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Server-side hardening knobs against misbehaving or hostile clients.
struct TcpServerOptions {
  /// SO_RCVTIMEO/SO_SNDTIMEO on every accepted socket: a client that
  /// connects and then goes silent mid-frame releases its handler thread
  /// after this long instead of pinning it forever (0 = block forever).
  /// Generous by default — a slow site mid-training must not be cut off.
  std::int64_t io_timeout_ms = 300000;
  /// Per-connection cap on the announced frame length; frames above it are
  /// refused before a single payload byte is read. Never above the global
  /// kMaxFrameBytes sanity bound.
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
};

/// Serves a Dispatcher on a TCP port. Each accepted connection gets a
/// handler thread; connections are persistent (many request/response
/// exchanges). Destruction stops the listener and joins every thread.
class TcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port; see port()).
  TcpServer(std::uint16_t port, Dispatcher dispatcher,
            TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return port_; }
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  Dispatcher dispatcher_;
  TcpServerOptions options_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;  // R5-exempt: blocks in accept(), not pool work
  /// Serializes stop() (destructor vs. explicit stop vs. concurrent stops).
  core::Mutex stop_mu_;
  /// Guards conn_fds_ and conn_threads_. Connection fds are closed only by
  /// their serve_connection thread; stop() only shutdown(2)s them.
  core::Mutex mu_;
  std::vector<int> conn_fds_ CF_GUARDED_BY(mu_);
  // R5-exempt: connection threads block in recv(); see class comment.
  std::vector<std::thread> conn_threads_ CF_GUARDED_BY(mu_);
};

/// Client connection to a TcpServer. `call` is blocking and NOT
/// thread-safe; use one connection per client thread.
class TcpConnection : public Connection {
 public:
  TcpConnection(const std::string& host, std::uint16_t port);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& request) override;

 private:
  int fd_ = -1;
};

/// Frame helpers shared by both ends (exposed for tests). `max_frame_bytes`
/// bounds what read_frame will accept (and write_frame will announce); a
/// recv/send that trips an SO_RCVTIMEO/SO_SNDTIMEO deadline surfaces as a
/// TransportError naming the timeout.
void write_frame(int fd, const std::vector<std::uint8_t>& payload,
                 std::uint32_t max_frame_bytes = kMaxFrameBytes);
std::vector<std::uint8_t> read_frame(int fd,
                                     std::uint32_t max_frame_bytes = kMaxFrameBytes);

}  // namespace cppflare::flare
