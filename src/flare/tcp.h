// TCP transport: length-prefixed frames over POSIX sockets.
//
// This is the "two Linux machines" path of the paper's Table I setup — the
// same sealed protocol bytes as the in-process simulator, but carried over
// real sockets so server and sites can run in separate processes or hosts.
// Framing: u32 little-endian payload length, then the payload. A frame is
// one sealed envelope; the server responds with exactly one frame per
// request.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "flare/transport.h"

namespace cppflare::flare {

class EpollReactor;

/// Maximum accepted frame size (64 MiB) — a sanity bound against corrupt
/// length prefixes.
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Server-side hardening knobs against misbehaving or hostile clients.
struct TcpServerOptions {
  /// Idle-connection deadline: a client that connects and then goes silent
  /// with no request in flight (half a header, or nothing at all) is closed
  /// by the reactor's sweep after this long (0 = never). A parked long-poll
  /// counts as in flight and is never swept. Generous by default — a slow
  /// site mid-training must not be cut off.
  std::int64_t io_timeout_ms = 300000;
  /// Per-connection cap on the announced frame length; frames above it are
  /// refused before a single payload byte is read. Never above the global
  /// kMaxFrameBytes sanity bound.
  std::uint32_t max_frame_bytes = kMaxFrameBytes;
  /// Request-handling worker threads for the reactor's bounded pool
  /// (0 = min(8, hardware/2, at least 2)).
  std::size_t worker_threads = 0;
};

/// Serves a Dispatcher (or AsyncDispatcher) on a TCP port. Since the
/// scalable-coordinator PR every connection is multiplexed over one epoll
/// reactor thread plus a bounded worker pool (reactor.h) instead of a
/// handler thread per connection: N idle sites cost N parked fds, not N
/// threads. Connections are persistent (many request/response exchanges).
/// Destruction stops the listener, closes every connection, and joins the
/// reactor thread and worker pool.
class TcpServer {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port; see port()).
  /// The synchronous-Dispatcher overload answers every request inline on a
  /// worker; the AsyncDispatcher overload additionally lets the server park
  /// requests (long-poll) and complete them later from any thread.
  TcpServer(std::uint16_t port, Dispatcher dispatcher,
            TcpServerOptions options = {});
  TcpServer(std::uint16_t port, AsyncDispatcher dispatcher,
            TcpServerOptions options = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  std::uint16_t port() const { return port_; }
  void stop();

  /// High-water mark of concurrently open accepted connections (bench
  /// telemetry; also exported as the tcp.peak_connections gauge).
  std::int64_t peak_connections() const;

 private:
  std::uint16_t port_ = 0;
  std::unique_ptr<EpollReactor> reactor_;
};

/// Client connection to a TcpServer. `call` is blocking and NOT
/// thread-safe; use one connection per client thread.
class TcpConnection : public Connection {
 public:
  TcpConnection(const std::string& host, std::uint16_t port);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& request) override;

 private:
  int fd_ = -1;
};

/// Frame helpers shared by both ends (exposed for tests). `max_frame_bytes`
/// bounds what read_frame will accept (and write_frame will announce); a
/// recv/send that trips an SO_RCVTIMEO/SO_SNDTIMEO deadline surfaces as a
/// TransportError naming the timeout.
void write_frame(int fd, const std::vector<std::uint8_t>& payload,
                 std::uint32_t max_frame_bytes = kMaxFrameBytes);
std::vector<std::uint8_t> read_frame(int fd,
                                     std::uint32_t max_frame_bytes = kMaxFrameBytes);

}  // namespace cppflare::flare
