// Byzantine-robust aggregation.
//
// FedAvg is a single faulty or malicious clinic away from a corrupted
// global model. These aggregators bound that influence with classic
// coordinate-wise robust statistics (Yin et al., ICML'18):
//
//  * MedianAggregator      — coordinate-wise median of contributions;
//  * TrimmedMeanAggregator — drop the k largest and k smallest values per
//    coordinate, average the rest.
//
// Both ignore sample weights (robustness and weighting conflict: a
// malicious client could claim a huge sample count). Contributions are
// buffered per round, so memory is O(clients * model size).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "flare/aggregator.h"

namespace cppflare::flare {

/// Shared buffering logic for aggregate-at-end robust rules.
class BufferingAggregator : public Aggregator {
 public:
  void reset(const nn::StateDict& global, std::int64_t round) override;
  bool accept(const std::string& site, const Dxo& contribution) override;
  bool revoke(const std::string& site) override;
  nn::StateDict aggregate() override;
  std::int64_t accepted_count() const override;
  RoundMetrics metrics() const override;

 protected:
  /// Combines one coordinate's sorted values into the aggregate value.
  virtual float combine(std::vector<float>& values) const = 0;

 private:
  /// One buffered contribution plus the metric sums it added, so revoke()
  /// can reverse the accounting exactly.
  struct Entry {
    nn::StateDict data;
    std::int64_t samples = 0;
    bool has_loss = false;
    double train_loss = 0.0;
    double valid_acc = 0.0;
    double valid_loss = 0.0;
  };

  nn::StateDict global_;
  std::optional<DxoKind> round_kind_;
  std::map<std::string, Entry> contributions_;
  RoundMetrics metrics_{};
  double loss_weight_sum_ = 0.0;
};

class MedianAggregator : public BufferingAggregator {
 public:
  std::string name() const override { return "CoordinateMedian"; }

 protected:
  float combine(std::vector<float>& values) const override;
};

class TrimmedMeanAggregator : public BufferingAggregator {
 public:
  /// Trims `trim` values from each tail per coordinate. Requires
  /// contributions > 2*trim at aggregate time.
  explicit TrimmedMeanAggregator(std::int64_t trim) : trim_(trim) {}
  std::string name() const override {
    return "TrimmedMean(k=" + std::to_string(trim_) + ")";
  }

 protected:
  float combine(std::vector<float>& values) const override;

 private:
  std::int64_t trim_;
};

}  // namespace cppflare::flare
