// The client-side executor interface.
//
// A `Learner` is what a site plugs into the federated client: given the
// round's global model it runs local training and returns a contribution
// DXO (weights or diff + sample count + local metrics). This is the C++
// analogue of the paper's `CiBertLearner` running under NVFlare's executor.
#pragma once

#include <string>

#include "flare/dxo.h"
#include "flare/fl_context.h"

namespace cppflare::flare {

class Learner {
 public:
  virtual ~Learner() = default;

  /// Runs local training from `global_model` (kind kWeights) and returns
  /// the contribution. Implementations set kMetaNumSamples and metric meta.
  virtual Dxo train(const Dxo& global_model, const FLContext& ctx) = 0;

  /// Site name for logs.
  virtual std::string site_name() const = 0;
};

}  // namespace cppflare::flare
