// Write-ahead round journal for the federated coordinator (DESIGN.md §15).
//
// The CPK3 checkpoint persists completed rounds; everything inside a round
// — accepted contributions (their sealed DXO bytes), typed rejections,
// quarantine scores, evictions, the secure-agg recovery state machine —
// lives only in server memory. The journal records each of those mutations
// as a typed WAL frame *before* the in-memory state changes, all under the
// server's round lock, so a restarted coordinator replays the journal and
// resumes mid-round: already-accepted sites are not re-trained, reputation
// strikes survive, and a frozen masked round picks recovery back up at the
// exact wave it froze in.
//
// Lifecycle of the log: a job header frame, then per round a kRoundOpen,
// the round's events, and a kCommit barrier appended after the CPK3
// checkpoint for that round is durably saved — at which point the journal
// is compacted back to the header alone (the checkpoint now owns the
// round's outcome). A crash between checkpoint save and compaction is
// detected at replay time by comparing the journal's open round against
// the checkpoint's resume round, and the stale journal is discarded.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/wal.h"
#include "flare/dxo.h"

namespace cppflare::flare {

enum class JournalEventType : std::uint8_t {
  kJobHeader = 1,
  kRoundOpen = 2,         // round + sampled cohort
  kAccepted = 3,          // site + post-filter DXO bytes
  kRejected = 4,          // site + reject reason + ack message
  kQuarantineScored = 5,  // site + verdict reason/detail + update norm
  kEviction = 6,          // site
  kRecoveryBegin = 7,     // round + dropped sites + deadline_fired
  kUnmaskShare = 8,       // site + share DXO bytes
  kRecoveryWave = 9,      // wave index + demoted laggards
  kCommit = 10,           // round
};

const char* journal_event_name(JournalEventType type);

/// One journal frame, decoded. Only the fields relevant to `type` are
/// meaningful; the rest keep their defaults.
struct JournalEvent {
  JournalEventType type = JournalEventType::kJobHeader;
  std::string job_id;               // kJobHeader
  std::int64_t round = 0;           // kRoundOpen / kRecoveryBegin / kCommit
  std::string site;                 // per-site events
  std::vector<std::string> names;   // cohort / dropped / demoted
  std::optional<Dxo> payload;       // kAccepted / kUnmaskShare
  std::uint8_t reason = 0;          // kRejected / kQuarantineScored
  std::string detail;               // ack message / verdict detail
  double norm = 0.0;                // kQuarantineScored
  bool deadline_fired = false;      // kRecoveryBegin
  std::int64_t wave = 0;            // kRecoveryWave

  std::vector<std::uint8_t> encode() const;
  static JournalEvent decode(const std::vector<std::uint8_t>& bytes);
};

/// What replay found: the open (uncommitted) round and its events in append
/// order, or open_round == -1 when the journal holds no mid-round state.
struct [[nodiscard]] JournalReplay {
  std::int64_t open_round = -1;
  std::int64_t committed_round = -1;  // last kCommit seen, -1 if none
  std::uint64_t torn_bytes = 0;       // torn tail dropped by the WAL layer
  std::vector<JournalEvent> events;   // open round's events, incl. kRoundOpen
};

/// Typed facade over a core::Wal. Single-writer; the FederatedServer calls
/// every method under its round mutex. Appends are WAL-first: the server
/// journals a mutation before applying it, so a crash at any point leaves
/// either a journaled-and-replayable record or no trace — never half-applied
/// in-memory state that the journal missed.
class RoundJournal {
 public:
  RoundJournal(std::string path, core::WalSyncPolicy policy);

  /// Opens and replays the journal. A fresh/empty log gets a job header
  /// written. Throws cppflare::ConfigError if the log belongs to a
  /// different job, core::WalCorruptionError on bit-rot.
  JournalReplay open(const std::string& job_id);

  void round_open(std::int64_t round, const std::vector<std::string>& cohort);
  void accepted(const std::string& site, const Dxo& update);
  void rejected(const std::string& site, std::uint8_t reason,
                const std::string& message);
  void quarantine_scored(const std::string& site, std::uint8_t reason,
                         const std::string& detail, double norm);
  void evicted(const std::string& site);
  void recovery_begin(std::int64_t round,
                      const std::vector<std::string>& dropped,
                      bool deadline_fired);
  void unmask_share(const std::string& site, const Dxo& share);
  void recovery_wave(std::int64_t wave,
                     const std::vector<std::string>& demoted);

  /// Round-commit barrier: appends kCommit, syncs, then compacts the log
  /// back to the job header. Called after the round's CPK3 checkpoint is
  /// durably saved — the checkpoint owns the outcome from here on.
  void commit(std::int64_t round);

  /// Drops all round state (stale journal detected at replay), keeping the
  /// job header.
  void discard();

  /// Round-boundary fsync for WalSyncPolicy::kEveryRound.
  void sync();

  const std::string& path() const { return wal_.path(); }

  /// Decodes every event in a journal file read-only — for the death-test
  /// harness and post-mortem tooling. Tolerates a torn tail.
  static std::vector<JournalEvent> read(const std::string& path);

 private:
  void append(const JournalEvent& event);

  core::Wal wal_;
  std::string job_id_;
  /// Byte offset just past the job-header frame — the in-place compaction
  /// point discard() truncates back to. Set by open().
  std::uint64_t header_end_ = 0;
};

}  // namespace cppflare::flare
