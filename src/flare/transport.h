// Client->server request/response transports.
//
// The protocol layer only needs one primitive: a blocking `call` that
// delivers sealed request bytes and returns sealed response bytes. Two
// implementations exist:
//  * InProcTransport — function call into the server's dispatcher, used by
//    the simulator (NVFlare SimulatorRunner equivalent);
//  * TcpConnection/TcpServer (tcp.h) — real sockets for multi-process runs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace cppflare::flare {

/// Server-side entry point: sealed request bytes -> sealed response bytes.
/// Must be thread-safe; multiple client connections call concurrently.
using Dispatcher =
    std::function<std::vector<std::uint8_t>(const std::vector<std::uint8_t>&)>;

class Connection {
 public:
  virtual ~Connection() = default;
  virtual std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& request) = 0;
};

/// Zero-copy in-process connection: `call` invokes the dispatcher directly
/// on the caller's thread.
class InProcConnection : public Connection {
 public:
  explicit InProcConnection(Dispatcher dispatcher)
      : dispatcher_(std::move(dispatcher)) {}

  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& request) override {
    return dispatcher_(request);
  }

 private:
  Dispatcher dispatcher_;
};

}  // namespace cppflare::flare
