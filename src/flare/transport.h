// Client->server request/response transports.
//
// The protocol layer only needs one primitive: a blocking `call` that
// delivers sealed request bytes and returns sealed response bytes. Two
// implementations exist:
//  * InProcTransport — function call into the server's dispatcher, used by
//    the simulator (NVFlare SimulatorRunner equivalent);
//  * TcpConnection/TcpServer (tcp.h) — real sockets for multi-process runs.
//
// Since the scalable-coordinator PR the server side also has an *async*
// shape: `AsyncDispatcher` hands the request to the server together with a
// `RespondFn` completion, and the server may answer immediately or hold the
// completion (a parked long-poll) and invoke it much later from a different
// thread. The epoll reactor (reactor.h) and the long-poll protocol are built
// on this; the synchronous `Dispatcher` remains for tests and simple
// in-process callers, with adapters in both directions below.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "core/error.h"

namespace cppflare::flare {

/// Server-side entry point: sealed request bytes -> sealed response bytes.
/// Must be thread-safe; multiple client connections call concurrently.
using Dispatcher =
    std::function<std::vector<std::uint8_t>(const std::vector<std::uint8_t>&)>;

/// Completion for one async request. Invoke exactly once with the sealed
/// response bytes; safe to call from any thread, including long after the
/// dispatching call returned (that is what a parked long-poll does). The
/// transport behind it drops the response if the originating connection has
/// died in the meantime.
using RespondFn = std::function<void(std::vector<std::uint8_t>)>;

/// Asynchronous server-side entry point: sealed request bytes plus the
/// completion to deliver the sealed response through. Must be thread-safe.
/// The implementation may call `respond` synchronously before returning
/// (the common case) or retain it and complete later (long-poll parking).
using AsyncDispatcher = std::function<void(const std::vector<std::uint8_t>&,
                                           RespondFn)>;

/// Adapts a synchronous Dispatcher to the async shape: every request is
/// answered inline on the calling thread. Such a dispatcher can never park,
/// so long-poll requests through it degrade to immediate answers.
inline AsyncDispatcher make_async(Dispatcher dispatcher) {
  return [dispatcher = std::move(dispatcher)](
             const std::vector<std::uint8_t>& request, RespondFn respond) {
    respond(dispatcher(request));
  };
}


class Connection {
 public:
  virtual ~Connection() = default;
  virtual std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& request) = 0;
};

/// Zero-copy in-process connection: `call` invokes the dispatcher directly
/// on the caller's thread.
class InProcConnection : public Connection {
 public:
  explicit InProcConnection(Dispatcher dispatcher)
      : dispatcher_(std::move(dispatcher)) {}

  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& request) override {
    return dispatcher_(request);
  }

 private:
  Dispatcher dispatcher_;
};

/// In-process connection over an AsyncDispatcher: `call` blocks the calling
/// thread until the server completes the request, so a parked long-poll
/// costs a blocked caller thread (exactly like a socket client) instead of a
/// retry loop. The completion may run on another thread (whichever server
/// thread drains the park); the promise/future pair carries it back here.
class AsyncInProcConnection : public Connection {
 public:
  explicit AsyncInProcConnection(AsyncDispatcher dispatcher)
      : dispatcher_(std::move(dispatcher)) {}

  std::vector<std::uint8_t> call(const std::vector<std::uint8_t>& request) override {
    auto reply = std::make_shared<std::promise<std::vector<std::uint8_t>>>();
    std::future<std::vector<std::uint8_t>> got = reply->get_future();
    dispatcher_(request, [reply](std::vector<std::uint8_t> response) {
      reply->set_value(std::move(response));
    });
    try {
      return got.get();
    } catch (const std::future_error&) {
      // The server dropped the completion without answering (teardown with
      // the request still parked) — to the caller that is a dead channel.
      throw TransportError("in-process channel closed with request pending");
    }
  }

 private:
  AsyncDispatcher dispatcher_;
};

}  // namespace cppflare::flare
