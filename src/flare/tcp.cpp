#include "flare/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/error.h"
#include "core/logging.h"
#include "core/trace.h"
#include "flare/observability.h"
#include "flare/reactor.h"

#define CPPFLARE_LOG_COMPONENT "TcpTransport"

namespace cppflare::flare {

namespace {

/// Process-wide frame/byte accounting. Looked up once: registry references
/// are stable for its lifetime, so the per-frame cost is two relaxed adds.
struct TcpMetrics {
  core::Counter& bytes_sent;
  core::Counter& bytes_recv;
  core::Counter& frames_sent;
  core::Counter& frames_recv;
  static const TcpMetrics& get() {
    static TcpMetrics m{
        core::MetricRegistry::instance().counter(metric_names::kTcpBytesSent),
        core::MetricRegistry::instance().counter(metric_names::kTcpBytesRecv),
        core::MetricRegistry::instance().counter(metric_names::kTcpFramesSent),
        core::MetricRegistry::instance().counter(metric_names::kTcpFramesRecv)};
    return m;
  }
};

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t written = ::send(fd, data, n, MSG_NOSIGNAL);
    if (written <= 0) {
      if (written < 0 && errno == EINTR) continue;
      throw TransportError("send failed: " + std::string(std::strerror(errno)));
    }
    data += written;
    n -= static_cast<std::size_t>(written);
  }
}

void read_all(int fd, std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t got = ::recv(fd, data, n, 0);
    if (got == 0) throw TransportError("peer closed connection");
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the peer connected and went silent (or is
        // trickling bytes slower than the deadline).
        throw TransportError("socket receive timed out (silent peer)");
      }
      throw TransportError("recv failed: " + std::string(std::strerror(errno)));
    }
    data += got;
    n -= static_cast<std::size_t>(got);
  }
}

}  // namespace

void write_frame(int fd, const std::vector<std::uint8_t>& payload,
                 std::uint32_t max_frame_bytes) {
  if (payload.size() > std::min(max_frame_bytes, kMaxFrameBytes)) {
    throw TransportError("frame too large");
  }
  std::uint8_t header[4];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  write_all(fd, header, 4);
  write_all(fd, payload.data(), payload.size());
  TcpMetrics::get().bytes_sent.add(4 + static_cast<std::int64_t>(payload.size()));
  TcpMetrics::get().frames_sent.add(1);
}

std::vector<std::uint8_t> read_frame(int fd, std::uint32_t max_frame_bytes) {
  std::uint8_t header[4];
  read_all(fd, header, 4);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (len > std::min(max_frame_bytes, kMaxFrameBytes)) {
    throw TransportError("oversized frame announced (" + std::to_string(len) +
                         " bytes, cap " +
                         std::to_string(std::min(max_frame_bytes, kMaxFrameBytes)) +
                         ")");
  }
  std::vector<std::uint8_t> payload(len);
  read_all(fd, payload.data(), len);
  TcpMetrics::get().bytes_recv.add(4 + static_cast<std::int64_t>(len));
  TcpMetrics::get().frames_recv.add(1);
  return payload;
}

namespace {

/// Creates the bound, listening socket TcpServer hands to its reactor.
/// Errors close the fd before throwing, so ownership never leaks.
int make_listener(std::uint16_t port, std::uint16_t* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw TransportError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw TransportError("bind failed: " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(fd);
    throw TransportError("getsockname failed");
  }
  *bound_port = ntohs(addr.sin_port);
  if (::listen(fd, 256) != 0) {
    ::close(fd);
    throw TransportError("listen failed");
  }
  return fd;
}

ReactorOptions to_reactor_options(const TcpServerOptions& options) {
  ReactorOptions out;
  out.io_timeout_ms = options.io_timeout_ms;
  out.max_frame_bytes = std::min(options.max_frame_bytes, kMaxFrameBytes);
  out.worker_threads = options.worker_threads;
  return out;
}

}  // namespace

TcpServer::TcpServer(std::uint16_t port, Dispatcher dispatcher,
                     TcpServerOptions options)
    : TcpServer(port, make_async(std::move(dispatcher)), options) {}

TcpServer::TcpServer(std::uint16_t port, AsyncDispatcher dispatcher,
                     TcpServerOptions options) {
  const int listen_fd = make_listener(port, &port_);
  // The reactor takes ownership of the listener; from here on every fd —
  // including this one — is created and closed by the reactor thread only
  // (see the ownership model in reactor.h).
  reactor_ = std::make_unique<EpollReactor>(listen_fd, std::move(dispatcher),
                                            to_reactor_options(options));
}

TcpServer::~TcpServer() { stop(); }

void TcpServer::stop() {
  // Idempotent and safe to race: EpollReactor::stop serializes concurrent
  // callers (including the destructor racing an explicit stop()).
  if (reactor_) reactor_->stop();
}

std::int64_t TcpServer::peak_connections() const {
  return reactor_ ? reactor_->peak_connections() : 0;
}

TcpConnection::TcpConnection(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw TransportError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw TransportError("bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw TransportError("connect to " + host + ":" + std::to_string(port) +
                         " failed: " + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::uint8_t> TcpConnection::call(
    const std::vector<std::uint8_t>& request) {
  CF_TRACE_SPAN("tcp.call");
  write_frame(fd_, request);
  return read_frame(fd_);
}

}  // namespace cppflare::flare
