#include "flare/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "core/error.h"
#include "core/logging.h"
#include "core/trace.h"
#include "flare/observability.h"

#define CPPFLARE_LOG_COMPONENT "TcpTransport"

namespace cppflare::flare {

namespace {

/// Process-wide frame/byte accounting. Looked up once: registry references
/// are stable for its lifetime, so the per-frame cost is two relaxed adds.
struct TcpMetrics {
  core::Counter& bytes_sent;
  core::Counter& bytes_recv;
  core::Counter& frames_sent;
  core::Counter& frames_recv;
  static const TcpMetrics& get() {
    static TcpMetrics m{
        core::MetricRegistry::instance().counter(metric_names::kTcpBytesSent),
        core::MetricRegistry::instance().counter(metric_names::kTcpBytesRecv),
        core::MetricRegistry::instance().counter(metric_names::kTcpFramesSent),
        core::MetricRegistry::instance().counter(metric_names::kTcpFramesRecv)};
    return m;
  }
};

void write_all(int fd, const std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t written = ::send(fd, data, n, MSG_NOSIGNAL);
    if (written <= 0) {
      if (written < 0 && errno == EINTR) continue;
      throw TransportError("send failed: " + std::string(std::strerror(errno)));
    }
    data += written;
    n -= static_cast<std::size_t>(written);
  }
}

void read_all(int fd, std::uint8_t* data, std::size_t n) {
  while (n > 0) {
    const ssize_t got = ::recv(fd, data, n, 0);
    if (got == 0) throw TransportError("peer closed connection");
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // SO_RCVTIMEO expired: the peer connected and went silent (or is
        // trickling bytes slower than the deadline).
        throw TransportError("socket receive timed out (silent peer)");
      }
      throw TransportError("recv failed: " + std::string(std::strerror(errno)));
    }
    data += got;
    n -= static_cast<std::size_t>(got);
  }
}

void set_io_timeouts(int fd, std::int64_t timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout_ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout_ms % 1000) * 1000);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

void write_frame(int fd, const std::vector<std::uint8_t>& payload,
                 std::uint32_t max_frame_bytes) {
  if (payload.size() > std::min(max_frame_bytes, kMaxFrameBytes)) {
    throw TransportError("frame too large");
  }
  std::uint8_t header[4];
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) header[i] = static_cast<std::uint8_t>(len >> (8 * i));
  write_all(fd, header, 4);
  write_all(fd, payload.data(), payload.size());
  TcpMetrics::get().bytes_sent.add(4 + static_cast<std::int64_t>(payload.size()));
  TcpMetrics::get().frames_sent.add(1);
}

std::vector<std::uint8_t> read_frame(int fd, std::uint32_t max_frame_bytes) {
  std::uint8_t header[4];
  read_all(fd, header, 4);
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(header[i]) << (8 * i);
  if (len > std::min(max_frame_bytes, kMaxFrameBytes)) {
    throw TransportError("oversized frame announced (" + std::to_string(len) +
                         " bytes, cap " +
                         std::to_string(std::min(max_frame_bytes, kMaxFrameBytes)) +
                         ")");
  }
  std::vector<std::uint8_t> payload(len);
  read_all(fd, payload.data(), len);
  TcpMetrics::get().bytes_recv.add(4 + static_cast<std::int64_t>(len));
  TcpMetrics::get().frames_recv.add(1);
  return payload;
}

TcpServer::TcpServer(std::uint16_t port, Dispatcher dispatcher,
                     TcpServerOptions options)
    : dispatcher_(std::move(dispatcher)), options_(options) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw TransportError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw TransportError("bind failed: " + std::string(std::strerror(errno)));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    ::close(listen_fd_);
    throw TransportError("getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    throw TransportError("listen failed");
  }
  // The transport owns its accept thread: it blocks in accept(), which the
  // compute pool must never do.
  accept_thread_ = std::thread([this] { accept_loop(); });  // R5-exempt: blocking accept loop
}

TcpServer::~TcpServer() { stop(); }

// fd ownership protocol (the invariant every lock below guards):
//  * listen_fd_ is closed only here, and only after the accept thread has
//    been joined — closing an fd another thread is blocked in accept(2) on
//    lets the kernel recycle the number for a concurrent connection.
//  * Each connection fd is closed only by its serve_connection thread.
//    stop() merely shutdown(2)s connection fds to unblock recv/send; the
//    owning thread then exits and closes. This makes close/IO races and
//    double-closes structurally impossible.
//  * stop_mu_ serializes concurrent stop() calls (including the destructor
//    racing an explicit stop()): std::thread::join from two threads at once
//    is undefined behavior.
void TcpServer::stop() {
  core::MutexLock stop_lock(stop_mu_);
  stopping_.store(true);
  if (listen_fd_ >= 0) {
    // shutdown(2) on the listening socket wakes the blocked accept(2) with
    // EINVAL on Linux; the accept loop sees stopping_ and exits.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    core::MutexLock lock(mu_);
    // Wake every connection handler blocked in recv(2). Do NOT close: the
    // handler thread owns the fd and closes it on exit.
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> to_join;  // R5-exempt: joining I/O threads
  {
    core::MutexLock lock(mu_);
    to_join.swap(conn_threads_);
  }
  for (std::thread& t : to_join) t.join();  // R5-exempt: joining I/O threads
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_) return;
      if (errno == EINTR) continue;
      LOG(warn).msg("accept failed:").msg(std::strerror(errno));
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // A silent or stalled client must not pin this connection's handler
    // thread forever: recv/send deadlines turn it into a TransportError the
    // handler treats as teardown.
    set_io_timeouts(fd, options_.io_timeout_ms);
    core::MutexLock lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void TcpServer::serve_connection(int fd) {
  try {
    for (;;) {
      const std::vector<std::uint8_t> request =
          read_frame(fd, options_.max_frame_bytes);
      const std::vector<std::uint8_t> response = dispatcher_(request);
      write_frame(fd, response);
    }
  } catch (const TransportError&) {
    // Normal teardown path: peer closed, went silent past the deadline,
    // announced an oversized frame, or the server is stopping.
  } catch (const std::exception& e) {
    LOG(warn).msg("connection handler error:").msg(e.what());
  }
  // This thread is the sole closer of fd (see the ownership protocol above
  // stop()); deregister first so stop() never shutdown(2)s a closed fd.
  {
    core::MutexLock lock(mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::close(fd);
}

TcpConnection::TcpConnection(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw TransportError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw TransportError("bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    throw TransportError("connect to " + host + ":" + std::to_string(port) +
                         " failed: " + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpConnection::~TcpConnection() {
  if (fd_ >= 0) ::close(fd_);
}

std::vector<std::uint8_t> TcpConnection::call(
    const std::vector<std::uint8_t>& request) {
  CF_TRACE_SPAN("tcp.call");
  write_frame(fd_, request);
  return read_frame(fd_);
}

}  // namespace cppflare::flare
