#include "flare/secure_channel.h"

#include <algorithm>

#include "core/bytes.h"
#include "core/error.h"

namespace cppflare::flare {

namespace {
constexpr std::uint32_t kEnvelopeMagic = 0x46454e56;  // "FENV"

core::Digest compute_mac(const std::vector<std::uint8_t>& secret,
                         const std::string& sender, const std::string& job_id,
                         std::uint64_t sequence,
                         const std::vector<std::uint8_t>& payload) {
  core::ByteWriter macd;
  macd.write_string(sender);
  macd.write_string(job_id);
  macd.write_u64(sequence);
  macd.write_u64(payload.size());
  macd.write_raw(payload.data(), payload.size());
  return core::hmac_sha256(secret, macd.bytes());
}

}  // namespace

std::vector<std::uint8_t> seal(const std::string& sender,
                               const std::vector<std::uint8_t>& secret,
                               std::uint64_t sequence,
                               const std::vector<std::uint8_t>& payload,
                               const std::string& job_id) {
  const core::Digest mac =
      compute_mac(secret, sender, job_id, sequence, payload);
  core::ByteWriter w;
  w.write_u32(kEnvelopeMagic);
  w.write_string(sender);
  w.write_string(job_id);
  w.write_u64(sequence);
  w.write_u64(payload.size());
  w.write_raw(payload.data(), payload.size());
  w.write_raw(mac.data(), mac.size());
  return w.take();
}

namespace {

Envelope parse(const std::vector<std::uint8_t>& sealed, core::Digest* mac_out) {
  core::ByteReader r(sealed);
  if (r.read_u32() != kEnvelopeMagic) throw ProtocolError("envelope: bad magic");
  Envelope env;
  env.sender = r.read_string();
  env.job_id = r.read_string();
  env.sequence = r.read_u64();
  const std::uint64_t n = r.read_u64();
  // Written as a subtraction: `n + 32` wraps for a hostile length near
  // 2^64 and would pass the check.
  if (r.remaining() < 32 || r.remaining() - 32 < n) {
    throw ProtocolError("envelope: truncated");
  }
  env.payload = r.read_raw(static_cast<std::size_t>(n));
  const std::vector<std::uint8_t> mac_bytes = r.read_raw(mac_out->size());
  std::copy(mac_bytes.begin(), mac_bytes.end(), mac_out->begin());
  if (!r.exhausted()) throw ProtocolError("envelope: trailing bytes");
  return env;
}

}  // namespace

Envelope open(const std::vector<std::uint8_t>& sealed,
              const std::vector<std::uint8_t>& secret) {
  core::Digest mac;
  Envelope env = parse(sealed, &mac);
  const core::Digest expect =
      compute_mac(secret, env.sender, env.job_id, env.sequence, env.payload);
  if (!core::digests_equal(mac, expect)) {
    throw ProtocolError("envelope: MAC verification failed for sender '" +
                        env.sender + "'");
  }
  return env;
}

std::string peek_sender(const std::vector<std::uint8_t>& sealed) {
  core::ByteReader r(sealed);
  if (r.read_u32() != kEnvelopeMagic) throw ProtocolError("envelope: bad magic");
  return r.read_string();
}

std::string peek_job(const std::vector<std::uint8_t>& sealed) {
  core::ByteReader r(sealed);
  if (r.read_u32() != kEnvelopeMagic) throw ProtocolError("envelope: bad magic");
  (void)r.read_string();  // sender
  return r.read_string();
}

void SequenceTracker::check_and_advance(const std::string& sender,
                                        std::uint64_t sequence) {
  core::MutexLock lock(mu_);
  auto it = last_.try_emplace(sender, 0).first;
  // Fresh senders start at 0, so any valid sequence is >= 1.
  if (sequence <= it->second) {
    throw ProtocolError("envelope: replayed or stale sequence from '" + sender +
                        "'");
  }
  it->second = sequence;
}

}  // namespace cppflare::flare
