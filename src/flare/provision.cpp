#include "flare/provision.h"

#include <cstdio>

#include "core/trace.h"

namespace cppflare::flare {

Provisioner::Provisioner(std::string project_name, std::uint64_t seed)
    : project_name_(std::move(project_name)), seed_(seed) {}

Credential Provisioner::provision(const std::string& participant_name) const {
  // Both artifacts are domain-separated digests of (project, seed, name).
  const std::string base =
      project_name_ + "\x1f" + std::to_string(seed_) + "\x1f" + participant_name;
  const core::Digest token_digest = core::Sha256::hash("token:" + base);
  const core::Digest secret_digest = core::Sha256::hash("secret:" + base);

  Credential cred;
  cred.name = participant_name;
  cred.token = format_uuid(token_digest.data());
  cred.secret.assign(secret_digest.begin(), secret_digest.end());
  return cred;
}

std::map<std::string, Credential> Provisioner::provision_sites(
    std::int64_t num_sites) const {
  CF_TRACE_SPAN("provision.sites");
  std::map<std::string, Credential> registry;
  for (std::int64_t i = 1; i <= num_sites; ++i) {
    const std::string name = "site-" + std::to_string(i);
    registry.emplace(name, provision(name));
  }
  registry.emplace("server", provision("server"));
  return registry;
}

std::string format_uuid(const std::uint8_t* b) {
  char buf[37];
  std::snprintf(buf, sizeof(buf),
                "%02x%02x%02x%02x-%02x%02x-%02x%02x-%02x%02x-%02x%02x%02x%02x%02x%02x",
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10],
                b[11], b[12], b[13], b[14], b[15]);
  return buf;
}

}  // namespace cppflare::flare
