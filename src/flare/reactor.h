// Epoll reactor: the server side of the TCP transport since the
// scalable-coordinator PR.
//
// One reactor thread owns every fd (the listener, an eventfd wakeup, and
// all accepted connections) and multiplexes them through a single
// epoll_wait loop: nonblocking accept, nonblocking reads with per-connection
// frame reassembly, nonblocking writes with per-connection output queues.
// Complete frames are handed to a bounded worker pool (core/thread_pool.h)
// through an AsyncDispatcher; responses come back over a mutex-guarded
// completion queue plus an eventfd kick. Compared to the old
// thread-per-connection design, N idle sites cost N parked fds and zero
// threads instead of N blocked handler threads — the difference between
// tens of sites and hundreds on one coordinator box.
//
// Ownership model (DESIGN.md §13):
//  * Every fd is created, registered, and closed by the reactor thread
//    only. stop() never touches an fd; it sets the stop flag and kicks the
//    eventfd, and the reactor thread tears everything down on its way out.
//    Close/IO races and double-closes are structurally impossible.
//  * Workers (and long-poll parks held by the server) never see an fd.
//    They hold a RespondFn that captures the connection's *id* and a
//    shared CompletionSink. A response for a connection that has since
//    died — or for a reactor that has since stopped — looks up a dead id
//    (or a stopped sink) and is dropped. Late completions are therefore
//    always safe, never use-after-free.
//  * The reactor thread performs ::send/::recv with no lock held (the sink
//    mutex guards only the completion queue and the stop flag). cflint
//    R5/R10 sanction exactly this file for the reactor thread and its
//    nonblocking socket syscalls; sleeping or issuing blocking RPCs under
//    the sink lock is still flagged.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"
#include "core/thread_pool.h"
#include "flare/transport.h"

namespace cppflare::flare {

struct ReactorOptions {
  /// Idle-connection sweep deadline: a connection with no traffic and no
  /// in-flight (or parked) request for this long is closed (0 = never).
  /// The sweep granularity is io_timeout_ms/4 clamped to [10, 1000] ms.
  std::int64_t io_timeout_ms = 300000;
  /// Per-connection cap on the announced frame length; an oversized
  /// announcement closes the connection before any payload byte is read.
  std::uint32_t max_frame_bytes = 64u << 20;
  /// Request-handling worker threads (0 = min(8, hardware/2, >=2)).
  std::size_t worker_threads = 0;
};

/// The reactor behind TcpServer. Takes ownership of a bound+listening fd at
/// construction, serves it until stop() (idempotent, thread-safe), and joins
/// the reactor thread and worker pool before stop() returns.
class EpollReactor {
 public:
  EpollReactor(int listen_fd, AsyncDispatcher dispatcher,
               ReactorOptions options);
  ~EpollReactor();

  EpollReactor(const EpollReactor&) = delete;
  EpollReactor& operator=(const EpollReactor&) = delete;

  void stop();

  /// High-water mark of concurrently open accepted connections.
  std::int64_t peak_connections() const;

 private:
  /// Response (or teardown order) travelling from a worker/parked RespondFn
  /// back to the reactor thread.
  struct Completion {
    std::uint64_t conn_id = 0;
    std::vector<std::uint8_t> payload;
    bool close = false;  // tear the connection down instead of replying
  };

  /// Shared between the reactor and every outstanding RespondFn. RespondFns
  /// keep it alive (shared_ptr) arbitrarily long after the reactor died;
  /// `stopped` makes their sends no-ops from then on. wake_fd is owned by
  /// the reactor and only written under `mu` while !stopped, so a send can
  /// never race the eventfd's close.
  struct CompletionSink {
    core::Mutex mu;
    bool stopped CF_GUARDED_BY(mu) = false;
    std::vector<Completion> queue CF_GUARDED_BY(mu);
    int wake_fd CF_GUARDED_BY(mu) = -1;

    void push(Completion c);
  };

  /// Per-connection state. Owned and touched by the reactor thread only.
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::vector<std::uint8_t> inbuf;       // unparsed inbound bytes
    std::deque<std::vector<std::uint8_t>> outq;  // framed, unsent responses
    std::size_t out_offset = 0;            // sent prefix of outq.front()
    std::int64_t in_flight = 0;            // dispatched, not yet completed
    bool wants_write = false;              // EPOLLOUT currently armed
    std::chrono::steady_clock::time_point last_activity;
  };

  void reactor_loop();
  void accept_ready();
  void conn_readable(Conn& conn);
  bool flush_writes(Conn& conn);  // false = connection broken
  void update_interest(Conn& conn);
  void dispatch_frame(Conn& conn, std::vector<std::uint8_t> frame);
  void drain_completions();
  void sweep_idle();
  void close_conn(std::uint64_t id);
  void close_all();

  AsyncDispatcher dispatcher_;
  ReactorOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int event_fd_ = -1;
  std::shared_ptr<CompletionSink> sink_;
  /// Request handlers. Declared before the reactor thread so it outlives
  /// dispatch posts, and destroyed (joined) by stop() before the thread
  /// members are torn down.
  std::unique_ptr<core::ThreadPool> workers_;
  // Reactor-thread-only state (no lock: single writer, single reader).
  std::map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = eventfd
  /// Written by the reactor thread, read by peak_connections() callers
  /// (bench samplers) while the loop runs — hence atomic.
  std::atomic<std::int64_t> peak_conns_{0};
  /// Serializes stop() (destructor vs explicit stop vs concurrent stops):
  /// joining a std::thread from two threads at once is undefined behavior.
  core::Mutex stop_mu_;
  bool stopped_ CF_GUARDED_BY(stop_mu_) = false;
  std::thread reactor_thread_;  // R5-exempt: the reactor's epoll_wait thread
};

}  // namespace cppflare::flare
