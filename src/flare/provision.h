// Provisioning: participant identities and credentials.
//
// NVFlare's provisioning step mints a startup kit per participant
// (certificates + tokens) before any training happens; Fig. 3 of the paper
// shows the resulting "Token & SSH Protocols" lines. This module reproduces
// the shape: a `Provisioner` derives, for every named participant, a
// UUID-formatted registration token and a 32-byte channel secret, both
// deterministic in the project seed. The server keeps the full registry;
// each client only receives its own credential.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/sha256.h"

namespace cppflare::flare {

struct Credential {
  std::string name;                  // e.g. "site-1"
  std::string token;                 // uuid-formatted registration token
  std::vector<std::uint8_t> secret;  // 32-byte HMAC key for the channel
};

class Provisioner {
 public:
  Provisioner(std::string project_name, std::uint64_t seed);

  /// Derives a credential for `participant_name`; stable across calls.
  Credential provision(const std::string& participant_name) const;

  /// Provisions "site-1".."site-N" plus the "server" participant and
  /// returns the full registry keyed by name.
  std::map<std::string, Credential> provision_sites(std::int64_t num_sites) const;

  const std::string& project_name() const { return project_name_; }

 private:
  std::string project_name_;
  std::uint64_t seed_;
};

/// Formats 16 bytes as a canonical lowercase UUID string.
std::string format_uuid(const std::uint8_t* bytes16);

}  // namespace cppflare::flare
