#include "flare/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "core/error.h"
#include "core/logging.h"
#include "flare/observability.h"

#define CPPFLARE_LOG_COMPONENT "EpollReactor"

namespace cppflare::flare {

namespace {

/// Same process-wide counters the frame helpers in tcp.cpp feed: the
/// registry hands back the identical Counter objects by name, so reactor
/// traffic and blocking-client traffic land in one tally.
struct ReactorMetrics {
  core::Counter& bytes_sent;
  core::Counter& bytes_recv;
  core::Counter& frames_sent;
  core::Counter& frames_recv;
  core::Gauge& peak_connections;
  static const ReactorMetrics& get() {
    static ReactorMetrics m{
        core::MetricRegistry::instance().counter(metric_names::kTcpBytesSent),
        core::MetricRegistry::instance().counter(metric_names::kTcpBytesRecv),
        core::MetricRegistry::instance().counter(metric_names::kTcpFramesSent),
        core::MetricRegistry::instance().counter(metric_names::kTcpFramesRecv),
        core::MetricRegistry::instance().gauge(
            metric_names::kTcpPeakConnections)};
    return m;
  }
};

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

std::size_t default_workers() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::clamp<std::size_t>(hw / 2, 2, 8);
}

constexpr std::uint64_t kListenerId = 0;
constexpr std::uint64_t kEventId = 1;

}  // namespace

void EpollReactor::CompletionSink::push(Completion c) {
  core::MutexLock lock(mu);
  if (stopped) return;  // late response to a stopped reactor: drop
  queue.push_back(std::move(c));
  const std::uint64_t one = 1;
  // Nonblocking eventfd kick under the sink lock (never a socket, never
  // blocking: the counter simply saturates if the reactor is behind).
  [[maybe_unused]] const ssize_t n = ::write(wake_fd, &one, sizeof(one));
}

EpollReactor::EpollReactor(int listen_fd, AsyncDispatcher dispatcher,
                           ReactorOptions options)
    : dispatcher_(std::move(dispatcher)),
      options_(options),
      listen_fd_(listen_fd) {
  if (!dispatcher_) throw TransportError("EpollReactor: dispatcher required");
  set_nonblocking(listen_fd_);
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    throw TransportError("epoll_create1 failed: " +
                         std::string(std::strerror(errno)));
  }
  event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (event_fd_ < 0) {
    ::close(epoll_fd_);
    throw TransportError("eventfd failed: " +
                         std::string(std::strerror(errno)));
  }
  sink_ = std::make_shared<CompletionSink>();
  {
    core::MutexLock lock(sink_->mu);
    sink_->wake_fd = event_fd_;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kEventId;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, event_fd_, &ev);

  const std::size_t n_workers =
      options_.worker_threads > 0 ? options_.worker_threads : default_workers();
  workers_ = std::make_unique<core::ThreadPool>(n_workers);
  // The reactor owns its own thread: it blocks in epoll_wait, which the
  // bounded worker pool must never do.
  reactor_thread_ = std::thread([this] { reactor_loop(); });  // R5-exempt: reactor epoll_wait thread
}

EpollReactor::~EpollReactor() { stop(); }

void EpollReactor::stop() {
  core::MutexLock stop_lock(stop_mu_);
  if (stopped_) return;
  stopped_ = true;
  {
    core::MutexLock lock(sink_->mu);
    sink_->stopped = true;
    sink_->queue.clear();
    const std::uint64_t one = 1;
    [[maybe_unused]] const ssize_t n = ::write(event_fd_, &one, sizeof(one));
  }
  if (reactor_thread_.joinable()) reactor_thread_.join();  // R5-exempt: joining the reactor thread
  // Workers may still be running dispatches whose RespondFns now drop into
  // the stopped sink; joining them here bounds stop() to the slowest
  // in-flight handler, exactly like the old per-connection join.
  workers_.reset();
  // The reactor thread closed every conn fd and the listener on its way
  // out; the epoll and event fds are closed here, after nothing can touch
  // them (wake_fd writes are gated by sink_->stopped above).
  if (event_fd_ >= 0) {
    ::close(event_fd_);
    event_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
}

std::int64_t EpollReactor::peak_connections() const {
  return peak_conns_.load(std::memory_order_relaxed);
}

void EpollReactor::reactor_loop() {
  // Sweep granularity: fine enough that a silent peer is torn down within
  // ~1.25x its io timeout, coarse enough to stay negligible when idle.
  std::int64_t tick_ms = 1000;
  if (options_.io_timeout_ms > 0) {
    tick_ms = std::clamp<std::int64_t>(options_.io_timeout_ms / 4, 10, 1000);
  }
  std::vector<epoll_event> events(128);
  for (;;) {
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()),
                               static_cast<int>(tick_ms));
    if (n < 0) {
      if (errno == EINTR) continue;
      LOG(warn).msg("epoll_wait failed:").msg(std::strerror(errno));
      break;
    }
    {
      core::MutexLock lock(sink_->mu);
      if (sink_->stopped) break;
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t id = events[i].data.u64;
      if (id == kListenerId) {
        accept_ready();
        continue;
      }
      if (id == kEventId) {
        std::uint64_t drained = 0;
        while (::read(event_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;  // completions are drained below, every iteration
      }
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // closed earlier this batch
      Conn& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_conn(id);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!flush_writes(conn)) {
          close_conn(id);
          continue;
        }
        update_interest(conn);
      }
      if ((events[i].events & EPOLLIN) != 0) {
        conn_readable(conn);  // may close the conn internally
      }
    }
    drain_completions();
    sweep_idle();
  }
  close_all();
}

void EpollReactor::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained; anything else: wait for the next event
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_activity = std::chrono::steady_clock::now();
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(conn->id, std::move(conn));
    const auto open_now = static_cast<std::int64_t>(conns_.size());
    if (open_now > peak_conns_.load(std::memory_order_relaxed)) {
      peak_conns_.store(open_now, std::memory_order_relaxed);
      ReactorMetrics::get().peak_connections.set(static_cast<double>(open_now));
    }
  }
}

void EpollReactor::conn_readable(Conn& conn) {
  const std::uint64_t id = conn.id;
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (got == 0) {
      close_conn(id);
      return;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(id);
      return;
    }
    conn.inbuf.insert(conn.inbuf.end(), chunk, chunk + got);
    conn.last_activity = std::chrono::steady_clock::now();
    ReactorMetrics::get().bytes_recv.add(got);
  }
  // Frame reassembly: u32 little-endian length prefix, then the payload.
  // Consume every complete frame, keep the tail for the next readable event.
  std::size_t consumed = 0;
  const std::uint32_t cap = std::min(options_.max_frame_bytes, 64u << 20);
  while (conn.inbuf.size() - consumed >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(conn.inbuf[consumed + i]) << (8 * i);
    }
    if (len > cap) {
      LOG(warn)
          .msg("oversized frame announced; closing connection")
          .kv("bytes", static_cast<std::int64_t>(len))
          .kv("cap", static_cast<std::int64_t>(cap));
      close_conn(id);
      return;
    }
    if (conn.inbuf.size() - consumed < 4 + static_cast<std::size_t>(len)) break;
    std::vector<std::uint8_t> frame(
        conn.inbuf.begin() + static_cast<std::ptrdiff_t>(consumed + 4),
        conn.inbuf.begin() + static_cast<std::ptrdiff_t>(consumed + 4 + len));
    consumed += 4 + len;
    ReactorMetrics::get().frames_recv.add(1);
    dispatch_frame(conn, std::move(frame));
  }
  if (consumed > 0) {
    conn.inbuf.erase(conn.inbuf.begin(),
                     conn.inbuf.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
}

void EpollReactor::dispatch_frame(Conn& conn, std::vector<std::uint8_t> frame) {
  conn.in_flight += 1;
  const std::uint64_t id = conn.id;
  std::shared_ptr<CompletionSink> sink = sink_;
  // The worker runs the dispatcher; the RespondFn it gets may be invoked
  // synchronously, or retained by the server and invoked from a completely
  // different thread later (a parked long-poll). Either way the response
  // funnels through the sink back to the reactor thread, which is the only
  // place fds are touched.
  workers_->post([this, id, sink, frame = std::move(frame)]() {
    RespondFn respond = [id, sink](std::vector<std::uint8_t> response) {
      sink->push(Completion{id, std::move(response), false});
    };
    try {
      dispatcher_(frame, std::move(respond));
    } catch (const std::exception& e) {
      LOG(warn).msg("dispatcher error; closing connection").msg(e.what());
      sink->push(Completion{id, {}, true});
    }
  });
}

void EpollReactor::drain_completions() {
  std::vector<Completion> batch;
  {
    core::MutexLock lock(sink_->mu);
    batch.swap(sink_->queue);
  }
  for (Completion& c : batch) {
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // connection died while parked
    Conn& conn = *it->second;
    conn.in_flight = std::max<std::int64_t>(0, conn.in_flight - 1);
    if (c.close) {
      close_conn(c.conn_id);
      continue;
    }
    // Frame the response: header + payload as one contiguous buffer so a
    // partial send never splits mid-header bookkeeping across buffers.
    std::vector<std::uint8_t> framed;
    framed.reserve(4 + c.payload.size());
    const std::uint32_t len = static_cast<std::uint32_t>(c.payload.size());
    for (int i = 0; i < 4; ++i) {
      framed.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
    }
    framed.insert(framed.end(), c.payload.begin(), c.payload.end());
    conn.outq.push_back(std::move(framed));
    ReactorMetrics::get().frames_sent.add(1);
    if (!flush_writes(conn)) {
      close_conn(c.conn_id);
      continue;
    }
    update_interest(conn);
  }
}

bool EpollReactor::flush_writes(Conn& conn) {
  while (!conn.outq.empty()) {
    const std::vector<std::uint8_t>& buf = conn.outq.front();
    while (conn.out_offset < buf.size()) {
      const ssize_t sent = ::send(conn.fd, buf.data() + conn.out_offset,
                                  buf.size() - conn.out_offset, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // backpressure
        return false;
      }
      conn.out_offset += static_cast<std::size_t>(sent);
      conn.last_activity = std::chrono::steady_clock::now();
      ReactorMetrics::get().bytes_sent.add(sent);
    }
    conn.outq.pop_front();
    conn.out_offset = 0;
  }
  return true;
}

void EpollReactor::update_interest(Conn& conn) {
  const bool needs_write = !conn.outq.empty();
  if (needs_write == conn.wants_write) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (needs_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.wants_write = needs_write;
}

void EpollReactor::sweep_idle() {
  if (options_.io_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint64_t> doomed;
  for (const auto& [id, conn] : conns_) {
    // A connection with a request in flight — including one parked in a
    // long-poll — is alive by definition; the sweep only reaps peers that
    // went silent with nothing pending (e.g. connected and sent half a
    // header, or nothing at all).
    if (conn->in_flight > 0 || !conn->outq.empty()) continue;
    const auto silent_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                               now - conn->last_activity)
                               .count();
    if (silent_ms >= options_.io_timeout_ms) doomed.push_back(id);
  }
  for (const std::uint64_t id : doomed) {
    LOG(info).msg("closing idle connection (silent peer)");
    close_conn(id);
  }
}

void EpollReactor::close_conn(std::uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns_.erase(it);
}

void EpollReactor::close_all() {
  for (auto& [id, conn] : conns_) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace cppflare::flare
