// SimulatorRunner — run a whole federation in one process.
//
// The C++ analogue of NVFlare's SimulatorRunner used throughout the paper's
// demonstration (Fig. 3): provisions N sites, builds the server with a
// ScatterAndGather workflow, spins one thread per client, runs E rounds and
// returns the final global model plus per-round aggregated metrics. The
// transport is in-process by default or loopback TCP (`use_tcp`) to exercise
// the real wire path. A `FaultPlanner` can wrap any site's connections in
// the fault-injection decorator (flare/faults.h), a `PoisonPlanner` can make
// any site adversarial at the model level (flare/poison.h), and `resume`
// restarts a killed run from its persisted checkpoint.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/backoff.h"
#include "core/trace.h"
#include "core/wal.h"
#include "flare/aggregator.h"
#include "flare/client.h"
#include "flare/faults.h"
#include "flare/jobs.h"
#include "flare/learner.h"
#include "flare/persistor.h"
#include "flare/poison.h"
#include "flare/server.h"

namespace cppflare::flare {

/// Secure aggregation for the simulated federation (DESIGN.md §14): every
/// site's contribution is quantized and pairwise-masked before it leaves
/// the client, the server aggregates blind, and masked rounds that lose
/// sites detour into the bounded unmask-recovery phase instead of
/// publishing a corrupted model.
struct SimSecureAggConfig {
  bool enabled = false;
  /// Root seed the pairwise mask keys derive from; every site derives the
  /// same pair keys from it, standing in for the provisioning ceremony.
  std::uint64_t dealer_seed = 0x5ec5eed;
  /// Fixed-point quantization precision (fractional bits) for the masked
  /// modular arithmetic. Valid range [1, 30].
  std::int64_t frac_bits = 16;
  /// Per-wave budget for the server's mask-recovery phase.
  std::int64_t recovery_deadline_ms = 5000;
  /// Demotion-cascade bound before the server aborts recovery.
  std::int64_t max_recovery_waves = 4;
  /// Weighted FedAvg under masking: masks only cancel through an unweighted
  /// sum, so server-side sample weighting is rejected (ConfigError). With
  /// pre_scale each site instead scales its own update by
  /// num_samples * num_sites / total_samples before masking, making the
  /// server's uniform masked mean equal the weighted mean.
  bool pre_scale = false;
  /// Federation-wide sample count (required > 0 when pre_scale is set;
  /// known at provisioning time in the clinical setting).
  std::int64_t total_samples = 0;
};

/// Client-side differential privacy: every outbound update is norm-clipped
/// to clip_norm and perturbed with N(0, (noise_multiplier*clip_norm)^2)
/// noise; the runner accounts the cumulative (epsilon, delta) spend (see
/// DpAccountant) into SimulationResult and the server's metric registry.
struct SimDpConfig {
  bool enabled = false;
  double clip_norm = 1.0;
  /// Noise-to-sensitivity ratio z; 0 disables noise (infinite epsilon).
  double noise_multiplier = 0.0;
  double delta = 1e-5;
  std::uint64_t seed = 0xd9;
};

struct SimulatorConfig {
  std::string job_id = "simulator_server";
  std::int64_t num_clients = 8;
  std::int64_t num_rounds = 10;
  bool use_tcp = false;
  /// Provisioning seed (tokens/secrets derive from it).
  std::uint64_t seed = 7;
  /// When non-empty, the global model is persisted here every round.
  std::string persist_path;
  /// Resume a killed run: load the checkpoint at persist_path (when one
  /// exists) and continue from the round after the last completed one.
  bool resume = false;
  /// Intra-round durability (DESIGN.md §15): journal every round mutation
  /// to a write-ahead log so a killed coordinator resumes *within* the
  /// round instead of replaying it. On start the journal is replayed and
  /// reconciled against the checkpoint (combine with `resume`).
  bool journal = false;
  /// Journal location; empty derives `persist_path + ".journal"`.
  std::string journal_path;
  /// When the journal fsyncs (see core/wal.h): every record, once per
  /// round (default), or never.
  core::WalSyncPolicy journal_sync = core::WalSyncPolicy::kEveryRound;
  /// Partial participation: sample this many clients per round (0 = all).
  std::int64_t clients_per_round = 0;
  /// Graceful degradation (0 = require every client): rounds that hit
  /// round_deadline_ms close with at least this many contributions.
  std::int64_t min_clients = 0;
  std::int64_t round_deadline_ms = 0;
  /// Evict sites unseen for this long from the round quorum (0 = never).
  std::int64_t liveness_timeout_ms = 0;
  /// Client-side retry schedule for transport failures (first retry of an
  /// exchange is immediate; repeats back off exponentially).
  core::BackoffPolicy client_retry = {10, 2000, 2.0, 5, 0.2, true};
  /// Long-poll budget each client sends with get_task: the server parks the
  /// poll until a task is ready or this much time passed.
  std::int64_t long_poll_ms = 10000;
  /// Single-box scaling knob. 0 (default): one dedicated worker thread per
  /// site — fine up to tens of sites. > 0: multiplex all sites over a pool
  /// of this many workers using an event-driven per-site state machine on
  /// the server's async dispatcher (a 256-site federation runs on 8
  /// workers). The multiplexed mode is in-process only and excludes the
  /// per-connection decorators: it throws ConfigError when combined with
  /// use_tcp, a fault planner, a poison planner, or a client customizer.
  std::int64_t site_workers = 0;
  /// Abort if the run has not finished after this long.
  std::int64_t timeout_ms = 30 * 60 * 1000;
  /// Server-side update validation (see flare/validator.h). Defaults keep
  /// screening on with the norm-outlier pass off.
  ValidatorConfig validator;
  /// Cross-round quarantine/parole policy (off by default).
  ReputationConfig reputation;
  /// Secure aggregation with dropout recovery (off by default). When
  /// enabled the runner substitutes a MaskedFedAvgAggregator (unless the
  /// provided aggregator already supports mask recovery), masks every
  /// site's outbound updates, and installs the unmask provider the server's
  /// recovery phase queries. Incompatible with clients_per_round sampling.
  SimSecureAggConfig secure_agg;
  /// Client-side differential privacy (off by default). Composes with
  /// secure_agg: clip + noise run before the mask filter.
  SimDpConfig dp;
  /// Per-site compute-thread budget for the shared kernel pool
  /// (core/parallel.h). > 0 forces that budget; 0 divides the machine between
  /// site workers and kernels (max(1, hw_threads - num_clients + 1)), unless
  /// the budget was already pinned by CPPFLARE_COMPUTE_THREADS or an explicit
  /// set_compute_threads call; < 0 leaves the budget completely untouched.
  std::int64_t compute_threads = -1;
  /// Observability: start the process-wide span tracer for this run. The
  /// trace never perturbs training (a traced run is memcmp-equal to an
  /// untraced one); budget is ≤5% of clean-round throughput (BENCH_obs.json).
  bool trace = false;
  /// When tracing, export the timeline here as Chrome `about:tracing` JSON
  /// when the run ends (open in chrome://tracing or ui.perfetto.dev).
  std::string trace_json_path;
  /// Ring-buffer capacity in events while tracing (oldest overwritten).
  std::size_t trace_capacity = 1 << 16;
};

/// `metrics` — the server's MetricRegistry snapshot — is the telemetry
/// source of truth; new telemetry is read from it (names in
/// flare/observability.h metric_names), not grown as fields here.
/// `history` remains as the per-round view (it is also what CPK3
/// checkpoints persist); the legacy duplicated accessors were removed in
/// the multi-job coordinator PR.
struct [[nodiscard]] SimulationResult {
  nn::StateDict final_model;
  std::vector<RoundMetrics> history;
  double wall_seconds = 0.0;
  /// Snapshot of the server's metric registry when the run ended — taken on
  /// success *and* abort, so mid-round detail survives an aborted run.
  core::MetricSnapshot metrics;
  /// The "site.<name>.<metric>" gauges from `metrics`: the last state each
  /// site reported before the run ended (recorded before validation, so an
  /// abort caused by mass rejection still shows what every site sent).
  /// Derived from `metrics` on demand — replaces the stored duplicate field
  /// the observability PR deprecated.
  std::map<std::string, double> site_metrics() const;
  /// True when the server aborted the run (deadline below min_clients or an
  /// explicit abort); final_model/history reflect the last completed round.
  bool aborted = false;
  std::string abort_reason;
  /// Machine-checkable abort classification (kNone unless aborted).
  AbortCode abort_code = AbortCode::kNone;
  /// Cumulative differential-privacy spend over the published rounds when
  /// dp.enabled (0 otherwise). epsilon is +inf when noise_multiplier == 0:
  /// clipping alone offers no DP guarantee.
  double dp_epsilon_spent = 0.0;
  double dp_delta = 0.0;
  /// Sites whose client threads failed (e.g. retry budget exhausted) while
  /// the run still completed without them.
  std::vector<std::string> failed_sites;
  /// Round the server resumed from (-1 for a fresh run).
  std::int64_t resumed_from_round = -1;
  /// Sites still quarantined when the run ended.
  std::vector<std::string> quarantined_sites;
};

class SimulatorRunner {
 public:
  /// Builds the learner for a site; index is 0-based, name is "site-<i+1>".
  using LearnerFactory = std::function<std::shared_ptr<Learner>(
      std::int64_t site_index, const std::string& site_name)>;
  /// Optional hook to customize each client (e.g. add privacy filters).
  using ClientCustomizer = std::function<void(FederatedClient&)>;
  /// Decides the fault plan for one connection attempt: `incarnation` is
  /// 0 for a site's first connection and increments on every reconnect.
  /// Return std::nullopt for a clean connection.
  using FaultPlanner = std::function<std::optional<FaultPlan>(
      std::int64_t site_index, const std::string& site_name,
      std::int64_t incarnation)>;
  /// Decides whether a site is adversarial: return a PoisonPlan to append a
  /// PoisonFilter (flare/poison.h) to that site's outbound filter chain,
  /// std::nullopt for an honest site.
  using PoisonPlanner = std::function<std::optional<PoisonPlan>(
      std::int64_t site_index, const std::string& site_name)>;

  SimulatorRunner(SimulatorConfig config, nn::StateDict initial_model,
                  std::unique_ptr<Aggregator> aggregator, LearnerFactory factory);

  void set_client_customizer(ClientCustomizer customizer) {
    customizer_ = std::move(customizer);
  }
  void set_fault_planner(FaultPlanner planner) {
    fault_planner_ = std::move(planner);
  }
  void set_poison_planner(PoisonPlanner planner) {
    poison_planner_ = std::move(planner);
  }

  /// Access the server before run() to add inbound filters or subscribe to
  /// events. Valid for the runner's lifetime.
  FederatedServer& server() { return *server_; }

  /// The job registry hosting this run (exactly one job, named
  /// SimulatorConfig::job_id). Exposed so harnesses can drive the admin
  /// console against a simulated federation.
  JobRunner& jobs() { return *job_runner_; }

  /// Runs the federation to completion (or abort — see
  /// SimulationResult::aborted). Throws only when the run can make no
  /// progress at all: every client failed, or the timeout expired without
  /// the server finishing or aborting.
  SimulationResult run();

 private:
  /// The site_workers > 0 path: event-driven sites multiplexed on a pool.
  SimulationResult run_multiplexed(std::chrono::steady_clock::time_point start,
                                   std::int64_t trace_t0);
  /// Shared tail of both paths: snapshot server state into the result,
  /// close out tracing, log the outcome.
  SimulationResult finalize(std::chrono::steady_clock::time_point start,
                            std::int64_t trace_t0,
                            std::vector<std::string> failed_sites);

  SimulatorConfig config_;
  LearnerFactory factory_;
  ClientCustomizer customizer_;
  FaultPlanner fault_planner_;
  PoisonPlanner poison_planner_;
  std::map<std::string, Credential> registry_;
  /// Hosts the run's single job (DESIGN.md §16) — the simulator goes
  /// through the same job registry and frame router as a multi-job
  /// deployment, so every simulator test also exercises the routed path.
  std::unique_ptr<JobRunner> job_runner_;
  /// The job's server, owned by job_runner_ (jobs are never erased, so the
  /// pointer is stable for the runner's lifetime).
  FederatedServer* server_ = nullptr;
  std::int64_t resumed_from_round_ = -1;
};

}  // namespace cppflare::flare
