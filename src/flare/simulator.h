// SimulatorRunner — run a whole federation in one process.
//
// The C++ analogue of NVFlare's SimulatorRunner used throughout the paper's
// demonstration (Fig. 3): provisions N sites, builds the server with a
// ScatterAndGather workflow, spins one thread per client, runs E rounds and
// returns the final global model plus per-round aggregated metrics. The
// transport is in-process by default or loopback TCP (`use_tcp`) to exercise
// the real wire path.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "flare/aggregator.h"
#include "flare/client.h"
#include "flare/learner.h"
#include "flare/persistor.h"
#include "flare/server.h"

namespace cppflare::flare {

struct SimulatorConfig {
  std::string job_id = "simulator_server";
  std::int64_t num_clients = 8;
  std::int64_t num_rounds = 10;
  bool use_tcp = false;
  /// Provisioning seed (tokens/secrets derive from it).
  std::uint64_t seed = 7;
  /// When non-empty, the global model is persisted here every round.
  std::string persist_path;
  /// Partial participation: sample this many clients per round (0 = all).
  std::int64_t clients_per_round = 0;
  /// Abort if the run has not finished after this long.
  std::int64_t timeout_ms = 30 * 60 * 1000;
  /// Per-site compute-thread budget for the shared kernel pool
  /// (core/parallel.h). > 0 forces that budget; 0 divides the machine between
  /// site workers and kernels (max(1, hw_threads - num_clients + 1)), unless
  /// the budget was already pinned by CPPFLARE_COMPUTE_THREADS or an explicit
  /// set_compute_threads call; < 0 leaves the budget completely untouched.
  std::int64_t compute_threads = -1;
};

struct SimulationResult {
  nn::StateDict final_model;
  std::vector<RoundMetrics> history;
  double wall_seconds = 0.0;
};

class SimulatorRunner {
 public:
  /// Builds the learner for a site; index is 0-based, name is "site-<i+1>".
  using LearnerFactory = std::function<std::shared_ptr<Learner>(
      std::int64_t site_index, const std::string& site_name)>;
  /// Optional hook to customize each client (e.g. add privacy filters).
  using ClientCustomizer = std::function<void(FederatedClient&)>;

  SimulatorRunner(SimulatorConfig config, nn::StateDict initial_model,
                  std::unique_ptr<Aggregator> aggregator, LearnerFactory factory);

  void set_client_customizer(ClientCustomizer customizer) {
    customizer_ = std::move(customizer);
  }

  /// Access the server before run() to add inbound filters or subscribe to
  /// events. Valid for the runner's lifetime.
  FederatedServer& server() { return *server_; }

  /// Runs the federation to completion. Throws if any client fails or the
  /// run times out.
  SimulationResult run();

 private:
  SimulatorConfig config_;
  LearnerFactory factory_;
  ClientCustomizer customizer_;
  std::map<std::string, Credential> registry_;
  std::shared_ptr<ModelPersistor> persistor_;
  std::unique_ptr<FederatedServer> server_;
};

}  // namespace cppflare::flare
