#include "flare/persistor.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/bytes.h"
#include "core/error.h"

namespace cppflare::flare {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x43504b31;  // "CPK1"
}

void ModelPersistor::save(const Checkpoint& checkpoint) const {
  core::ByteWriter w;
  w.write_u32(kCheckpointMagic);
  w.write_string(checkpoint.job_id);
  w.write_i64(checkpoint.round);
  checkpoint.model.serialize(w);

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("ModelPersistor: cannot open '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.size()));
    if (!out) throw Error("ModelPersistor: write failed for '" + tmp + "'");
  }
  std::filesystem::rename(tmp, path_);
}

std::optional<Checkpoint> ModelPersistor::load() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  core::ByteReader r(bytes);
  if (r.read_u32() != kCheckpointMagic) {
    throw SerializationError("ModelPersistor: bad checkpoint magic in '" + path_ +
                             "'");
  }
  Checkpoint cp;
  cp.job_id = r.read_string();
  cp.round = r.read_i64();
  cp.model = nn::StateDict::deserialize(r);
  return cp;
}

}  // namespace cppflare::flare
