#include "flare/persistor.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/bytes.h"
#include "core/error.h"

namespace cppflare::flare {

namespace {
constexpr std::uint32_t kCheckpointMagicV1 = 0x43504b31;  // "CPK1"
constexpr std::uint32_t kCheckpointMagicV2 = 0x43504b32;  // "CPK2"

void write_metrics(core::ByteWriter& w, const RoundMetrics& m) {
  w.write_i64(m.round);
  w.write_i64(m.num_contributions);
  w.write_i64(m.total_samples);
  w.write_f64(m.train_loss);
  w.write_f64(m.valid_acc);
  w.write_f64(m.valid_loss);
  w.write_i64(m.late_contributions);
  w.write_i64(m.evicted_sites);
  w.write_bool(m.deadline_fired);
}

RoundMetrics read_metrics(core::ByteReader& r) {
  RoundMetrics m;
  m.round = r.read_i64();
  m.num_contributions = r.read_i64();
  m.total_samples = r.read_i64();
  m.train_loss = r.read_f64();
  m.valid_acc = r.read_f64();
  m.valid_loss = r.read_f64();
  m.late_contributions = r.read_i64();
  m.evicted_sites = r.read_i64();
  m.deadline_fired = r.read_bool();
  return m;
}
}  // namespace

void ModelPersistor::save(const Checkpoint& checkpoint) const {
  core::ByteWriter w;
  w.write_u32(kCheckpointMagicV2);
  w.write_string(checkpoint.job_id);
  w.write_i64(checkpoint.round);
  checkpoint.model.serialize(w);
  w.write_u32(static_cast<std::uint32_t>(checkpoint.history.size()));
  for (const RoundMetrics& m : checkpoint.history) write_metrics(w, m);

  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("ModelPersistor: cannot open '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(w.bytes().data()),
              static_cast<std::streamsize>(w.size()));
    if (!out) throw Error("ModelPersistor: write failed for '" + tmp + "'");
  }
  std::filesystem::rename(tmp, path_);
}

std::optional<Checkpoint> ModelPersistor::load() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  core::ByteReader r(bytes);
  const std::uint32_t magic = r.read_u32();
  if (magic != kCheckpointMagicV1 && magic != kCheckpointMagicV2) {
    throw SerializationError("ModelPersistor: bad checkpoint magic in '" + path_ +
                             "'");
  }
  Checkpoint cp;
  cp.job_id = r.read_string();
  cp.round = r.read_i64();
  cp.model = nn::StateDict::deserialize(r);
  if (magic == kCheckpointMagicV2) {
    const std::uint32_t count = r.read_u32();
    cp.history.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) cp.history.push_back(read_metrics(r));
  }
  return cp;
}

}  // namespace cppflare::flare
