#include "flare/persistor.h"

#include <fstream>

#include "core/bytes.h"
#include "core/durable.h"
#include "core/error.h"
#include "core/sha256.h"

namespace cppflare::flare {

namespace {
constexpr std::uint32_t kCheckpointMagicV1 = 0x43504b31;  // "CPK1"
constexpr std::uint32_t kCheckpointMagicV2 = 0x43504b32;  // "CPK2"
constexpr std::uint32_t kCheckpointMagicV3 = 0x43504b33;  // "CPK3"

void write_metrics(core::ByteWriter& w, const RoundMetrics& m) {
  w.write_i64(m.round);
  w.write_i64(m.num_contributions);
  w.write_i64(m.total_samples);
  w.write_f64(m.train_loss);
  w.write_f64(m.valid_acc);
  w.write_f64(m.valid_loss);
  w.write_i64(m.late_contributions);
  w.write_i64(m.evicted_sites);
  w.write_bool(m.deadline_fired);
}

/// v3 appends the defense telemetry after the v2 fields.
void write_metrics_v3(core::ByteWriter& w, const RoundMetrics& m) {
  write_metrics(w, m);
  w.write_i64(m.rejected_updates);
  w.write_i64(m.quarantined_sites);
  w.write_u32(static_cast<std::uint32_t>(m.rejections_by_reason.size()));
  for (const auto& [reason, count] : m.rejections_by_reason) {
    w.write_string(reason);
    w.write_i64(count);
  }
}

RoundMetrics read_metrics(core::ByteReader& r, bool v3) {
  RoundMetrics m;
  m.round = r.read_i64();
  m.num_contributions = r.read_i64();
  m.total_samples = r.read_i64();
  m.train_loss = r.read_f64();
  m.valid_acc = r.read_f64();
  m.valid_loss = r.read_f64();
  m.late_contributions = r.read_i64();
  m.evicted_sites = r.read_i64();
  m.deadline_fired = r.read_bool();
  if (v3) {
    m.rejected_updates = r.read_i64();
    m.quarantined_sites = r.read_i64();
    const std::uint32_t reasons = r.read_u32();
    for (std::uint32_t i = 0; i < reasons; ++i) {
      const std::string reason = r.read_string();
      m.rejections_by_reason[reason] = r.read_i64();
    }
  }
  return m;
}

void write_standing(core::ByteWriter& w, const SiteStanding& st) {
  w.write_i64(st.strikes);
  w.write_i64(st.clean_streak);
  w.write_bool(st.quarantined);
  w.write_i64(st.total_rejections);
  w.write_i64(st.times_quarantined);
}

SiteStanding read_standing(core::ByteReader& r) {
  SiteStanding st;
  st.strikes = r.read_i64();
  st.clean_streak = r.read_i64();
  st.quarantined = r.read_bool();
  st.total_rejections = r.read_i64();
  st.times_quarantined = r.read_i64();
  return st;
}
}  // namespace

void ModelPersistor::save(const Checkpoint& checkpoint) const {
  core::ByteWriter w;
  w.write_u32(kCheckpointMagicV3);
  w.write_string(checkpoint.job_id);
  w.write_i64(checkpoint.round);
  checkpoint.model.serialize(w);
  w.write_u32(static_cast<std::uint32_t>(checkpoint.history.size()));
  for (const RoundMetrics& m : checkpoint.history) write_metrics_v3(w, m);
  w.write_u32(static_cast<std::uint32_t>(checkpoint.reputation.size()));
  for (const auto& [site, standing] : checkpoint.reputation) {
    w.write_string(site);
    write_standing(w, standing);
  }
  // Integrity footer: SHA-256 over everything above. tmp+rename already
  // rules out torn files from our own crashes; the footer catches the rest
  // (bit rot, truncation by another process, partial copies).
  const core::Digest digest =
      core::Sha256::hash(w.bytes().data(), w.size());
  w.write_raw(digest.data(), digest.size());

  // tmp + fsync + rename + parent-dir fsync: survives process death AND
  // power loss, and embeds the persist.* crash points (DESIGN.md §15).
  core::durable_write(path_, w.bytes().data(), w.size());
}

std::optional<Checkpoint> ModelPersistor::load() const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return std::nullopt;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  core::ByteReader probe(bytes);
  const std::uint32_t magic = probe.read_u32();
  if (magic != kCheckpointMagicV1 && magic != kCheckpointMagicV2 &&
      magic != kCheckpointMagicV3) {
    throw SerializationError("ModelPersistor: bad checkpoint magic in '" + path_ +
                             "'");
  }
  if (magic == kCheckpointMagicV3) {
    constexpr std::size_t kFooter = 32;
    if (bytes.size() < kFooter + 4) {
      throw SerializationError("ModelPersistor: checkpoint '" + path_ +
                               "' is truncated (no integrity footer)");
    }
    const std::size_t body = bytes.size() - kFooter;
    const core::Digest computed = core::Sha256::hash(bytes.data(), body);
    core::Digest stored{};
    for (std::size_t i = 0; i < kFooter; ++i) stored[i] = bytes[body + i];
    if (!core::digests_equal(computed, stored)) {
      throw SerializationError(
          "ModelPersistor: integrity check failed for '" + path_ +
          "' — checkpoint is truncated or corrupted");
    }
    bytes.resize(body);
  }
  core::ByteReader r(bytes);
  (void)r.read_u32();  // magic, validated above
  Checkpoint cp;
  cp.job_id = r.read_string();
  cp.round = r.read_i64();
  cp.model = nn::StateDict::deserialize(r);
  if (magic != kCheckpointMagicV1) {
    const bool v3 = magic == kCheckpointMagicV3;
    const std::uint32_t count = r.read_u32();
    cp.history.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      cp.history.push_back(read_metrics(r, v3));
    }
    if (v3) {
      const std::uint32_t sites = r.read_u32();
      for (std::uint32_t i = 0; i < sites; ++i) {
        const std::string site = r.read_string();
        cp.reputation[site] = read_standing(r);
      }
    }
  }
  return cp;
}

}  // namespace cppflare::flare
