#include "flare/observability.h"

#include <algorithm>
#include <vector>

#include "core/logging.h"

#define CPPFLARE_LOG_COMPONENT "Observability"

namespace cppflare::flare {

std::string site_metric_name(const std::string& site,
                             const std::string& metric) {
  std::string name = metric_names::kSitePrefix;
  name += site;
  name += '.';
  name += metric;
  return name;
}

// ---------------------------------------------------------------------------
// ChromeTraceSink
// ---------------------------------------------------------------------------

namespace {

/// Escapes into a stack buffer; span names/sites come from capped char
/// arrays so the worst case (every char escaped) still fits.
void write_json_string(std::FILE* out, const char* s) {
  std::fputc('"', out);
  for (; *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    if (c == '"' || c == '\\') {
      std::fputc('\\', out);
      std::fputc(c, out);
    } else if (c < 0x20) {
      std::fprintf(out, "\\u%04x", c);
    } else {
      std::fputc(c, out);
    }
  }
  std::fputc('"', out);
}

}  // namespace

void ChromeTraceSink::begin(std::int64_t dropped) {
  std::fputs("[\n", out_);
  first_ = true;
  if (dropped > 0) {
    std::fprintf(out_,
                 "{\"name\":\"trace_dropped_events\",\"ph\":\"M\",\"pid\":1,"
                 "\"args\":{\"dropped\":%lld}}",
                 static_cast<long long>(dropped));
    first_ = false;
  }
}

void ChromeTraceSink::event(const core::TraceEvent& e) {
  if (!first_) std::fputs(",\n", out_);
  first_ = false;
  std::fputs("{\"name\":", out_);
  write_json_string(out_, e.name);
  // Chrome's trace format wants microsecond floats; keep ns precision.
  std::fprintf(out_,
               ",\"cat\":\"cppflare\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
               "\"pid\":1,\"tid\":%llu,\"args\":{",
               static_cast<double>(e.ts_ns) / 1000.0,
               static_cast<double>(e.dur_ns) / 1000.0,
               static_cast<unsigned long long>(e.tid));
  std::fputs("\"site\":", out_);
  write_json_string(out_, e.site);
  std::fprintf(out_,
               ",\"round\":%lld,\"cpu_us\":%.3f,\"id\":%llu,\"parent\":%llu}}",
               static_cast<long long>(e.round),
               static_cast<double>(e.cpu_ns) / 1000.0,
               static_cast<unsigned long long>(e.id),
               static_cast<unsigned long long>(e.parent));
}

void ChromeTraceSink::end() { std::fputs("\n]\n", out_); }

// ---------------------------------------------------------------------------
// TraceSummarySink
// ---------------------------------------------------------------------------

void TraceSummarySink::event(const core::TraceEvent& e) {
  SpanSummary& row = rows_[e.name];
  row.count += 1;
  row.wall_ns += e.dur_ns;
  row.cpu_ns += e.cpu_ns;
  row.max_wall_ns = std::max(row.max_wall_ns, e.dur_ns);
}

std::string TraceSummarySink::format() const {
  std::vector<std::pair<std::string, SpanSummary>> sorted(rows_.begin(),
                                                          rows_.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.wall_ns > b.second.wall_ns;
                   });
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %8s %12s %12s %12s %12s\n", "span",
                "count", "total_ms", "mean_ms", "max_ms", "cpu_ms");
  out += line;
  for (const auto& [name, row] : sorted) {
    const double total_ms = static_cast<double>(row.wall_ns) / 1e6;
    const double mean_ms =
        row.count > 0 ? total_ms / static_cast<double>(row.count) : 0.0;
    std::snprintf(line, sizeof(line), "%-32s %8lld %12.3f %12.3f %12.3f %12.3f\n",
                  name.c_str(), static_cast<long long>(row.count), total_ms,
                  mean_ms, static_cast<double>(row.max_wall_ns) / 1e6,
                  static_cast<double>(row.cpu_ns) / 1e6);
    out += line;
  }
  if (dropped_ > 0) {
    std::snprintf(line, sizeof(line), "(+%lld events dropped by ring wrap)\n",
                  static_cast<long long>(dropped_));
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// One-call exports
// ---------------------------------------------------------------------------

bool write_chrome_trace(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    LOG(error).msg("cannot open trace output").kv("path", path);
    return false;
  }
  ChromeTraceSink sink(out);
  core::Tracer::instance().drain(sink);
  std::fclose(out);
  LOG(info)
      .msg("wrote chrome trace")
      .kv("path", path)
      .kv("events", static_cast<long long>(core::Tracer::instance().size()));
  return true;
}

std::string write_trace_summary() {
  TraceSummarySink sink;
  core::Tracer::instance().drain(sink);
  return sink.format();
}

}  // namespace cppflare::flare
