// Server-side aggregation of client contributions.
//
// Mirrors NVFlare's DXOAggregator/InTimeAccumulateWeightedAggregator:
// contributions arrive one at a time during a round, are validated and
// accumulated in-place, and `aggregate()` closes the round by producing the
// new global weights. Both full-weight (kWeights) and delta (kWeightDiff)
// contributions are supported; kinds cannot be mixed within a round.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "flare/dxo.h"
#include "flare/fl_context.h"

namespace cppflare::flare {

/// Aggregated per-round client metrics (sample-weighted means) plus the
/// round's fault-tolerance telemetry, filled in by the server when the
/// round closes and exposed through round observers.
///
/// Deprecation note (observability PR; duplicated accessors deleted in the
/// multi-job coordinator PR): this struct is now a *view* rebuilt from the
/// server's MetricRegistry when a round closes — the registry
/// (FederatedServer::metrics_registry(), names in flare/observability.h
/// metric_names, per-job over the admin `metrics <job>` command) is the
/// source of truth, and new telemetry should be added there rather than as
/// fields here. The fields below stay only because CPK3 checkpoints
/// persist the per-round history.
struct RoundMetrics {
  std::int64_t round = 0;
  std::int64_t num_contributions = 0;
  std::int64_t total_samples = 0;
  double train_loss = 0.0;
  double valid_acc = 0.0;
  double valid_loss = 0.0;
  /// Contributions that arrived after their round had already closed.
  std::int64_t late_contributions = 0;
  /// Sites evicted (unseen past the liveness timeout) when the round closed.
  std::int64_t evicted_sites = 0;
  /// True when the round closed on its deadline with a reduced quorum.
  bool deadline_fired = false;
  /// Contributions refused by the update validator this round (immediate
  /// verdicts plus round-close norm-outlier revocations).
  std::int64_t rejected_updates = 0;
  /// Sites quarantined by the reputation tracker when the round closed.
  std::int64_t quarantined_sites = 0;
  /// Rejections this round keyed by reject_reason_name(); quarantined
  /// sites' discarded-but-scored uploads count under "quarantined".
  std::map<std::string, std::int64_t> rejections_by_reason;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Starts a round with the current global model (needed to apply diffs).
  virtual void reset(const nn::StateDict& global, std::int64_t round) = 0;

  /// Validates and accumulates one contribution. Returns false (and ignores
  /// the data) for duplicates or incongruent payloads.
  virtual bool accept(const std::string& site, const Dxo& contribution) = 0;

  /// Withdraws a previously accepted contribution before aggregation — the
  /// hook the update validator uses to strip round-close norm outliers.
  /// Returns false when the site has no buffered contribution or the
  /// aggregator cannot un-accumulate (in-time accumulators); the caller
  /// must then treat the contribution as irrevocably counted.
  virtual bool revoke(const std::string& site) {
    (void)site;
    return false;
  }

  /// Closes the round: returns the new global model. Throws if no
  /// contribution was accepted.
  virtual nn::StateDict aggregate() = 0;

  virtual std::int64_t accepted_count() const = 0;
  virtual RoundMetrics metrics() const = 0;
  virtual std::string name() const = 0;
};

/// Side-interface an aggregator implements when its buffered contributions
/// carry pairwise masks that need dropout recovery (secure aggregation,
/// DESIGN.md §14). The server discovers it by dynamic_cast — server code
/// never names the masking machinery itself (lint R12), it only drives this
/// protocol: compute the dropped set, collect one summed mask share per
/// surviving contributor, then aggregate.
class MaskRecoveryCapable {
 public:
  virtual ~MaskRecoveryCapable() = default;

  /// Sites whose contribution is currently buffered — the survivors whose
  /// masks against any dropped site must be recovered before aggregate().
  virtual std::vector<std::string> accepted_sites() const = 0;

  /// Records `survivor`'s revealed sum-of-masks against the dropped set.
  /// Returns false (share ignored) when it is incongruent with the model
  /// skeleton or the survivor has no buffered contribution.
  virtual bool set_unmask_share(const std::string& survivor, const Dxo& share) = 0;

  /// Discards all recorded shares — called when a survivor is demoted
  /// mid-recovery and the remaining ones must answer again against the
  /// enlarged dropped set.
  virtual void clear_unmask_shares() = 0;

  /// Shares recorded so far this wave.
  virtual std::int64_t unmask_share_count() const = 0;
};

/// Federated averaging. With `weighted` the average is weighted by each
/// contribution's num_samples meta (plain FedAvg); otherwise uniform —
/// the ablation knob for the imbalanced-split experiment.
///
/// Contributions are buffered per site and reduced in site-name order when
/// the round closes, so the result is independent of arrival order — a
/// fault-injected run (retries, reconnects, delays) aggregates bit-for-bit
/// identically to a clean one. Costs one buffered model per contributor,
/// which is the price of reproducibility over NVFlare's in-time accumulate.
///
/// The weighted sum is computed as a *canonical pairwise tree* over the
/// site-name-sorted contributions (flare/hierarchy.h): a fixed
/// count-determined split shape, not a left fold. This is what lets the
/// hierarchical tree-of-aggregators mode reproduce flat results bitwise —
/// each leaf shard is an aligned subtree of the same canonical tree.
class FedAvgAggregator : public Aggregator {
 public:
  explicit FedAvgAggregator(bool weighted = true) : weighted_(weighted) {}

  void reset(const nn::StateDict& global, std::int64_t round) override;
  bool accept(const std::string& site, const Dxo& contribution) override;
  bool revoke(const std::string& site) override;
  nn::StateDict aggregate() override;
  std::int64_t accepted_count() const override;
  RoundMetrics metrics() const override;
  std::string name() const override {
    return weighted_ ? "FedAvg(weighted)" : "FedAvg(uniform)";
  }
  bool weighted() const { return weighted_; }

 protected:
  struct Pending {
    Dxo dxo;
    double weight = 0.0;
  };

  /// Reduction hook: returns the weighted *sum* of pending_ (unscaled).
  /// The base implementation is one canonical pairwise tree over all
  /// contributions in site-name order; HierarchicalFedAvgAggregator
  /// overrides it with a leaf/root split that reduces to the same bits.
  /// Scalar bookkeeping (weight sum, metric means) stays in aggregate(),
  /// sequential over the same order in every mode.
  virtual nn::StateDict reduce_pending() const;

  bool weighted_;
  nn::StateDict global_;
  std::optional<DxoKind> round_kind_;
  std::map<std::string, Pending> pending_;  // site -> buffered contribution
  RoundMetrics metrics_{};
};

}  // namespace cppflare::flare
