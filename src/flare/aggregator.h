// Server-side aggregation of client contributions.
//
// Mirrors NVFlare's DXOAggregator/InTimeAccumulateWeightedAggregator:
// contributions arrive one at a time during a round, are validated and
// accumulated in-place, and `aggregate()` closes the round by producing the
// new global weights. Both full-weight (kWeights) and delta (kWeightDiff)
// contributions are supported; kinds cannot be mixed within a round.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "flare/dxo.h"
#include "flare/fl_context.h"

namespace cppflare::flare {

/// Aggregated per-round client metrics (sample-weighted means).
struct RoundMetrics {
  std::int64_t round = 0;
  std::int64_t num_contributions = 0;
  std::int64_t total_samples = 0;
  double train_loss = 0.0;
  double valid_acc = 0.0;
  double valid_loss = 0.0;
};

class Aggregator {
 public:
  virtual ~Aggregator() = default;

  /// Starts a round with the current global model (needed to apply diffs).
  virtual void reset(const nn::StateDict& global, std::int64_t round) = 0;

  /// Validates and accumulates one contribution. Returns false (and ignores
  /// the data) for duplicates or incongruent payloads.
  virtual bool accept(const std::string& site, const Dxo& contribution) = 0;

  /// Closes the round: returns the new global model. Throws if no
  /// contribution was accepted.
  virtual nn::StateDict aggregate() = 0;

  virtual std::int64_t accepted_count() const = 0;
  virtual RoundMetrics metrics() const = 0;
  virtual std::string name() const = 0;
};

/// Federated averaging. With `weighted` the average is weighted by each
/// contribution's num_samples meta (plain FedAvg); otherwise uniform —
/// the ablation knob for the imbalanced-split experiment.
class FedAvgAggregator : public Aggregator {
 public:
  explicit FedAvgAggregator(bool weighted = true) : weighted_(weighted) {}

  void reset(const nn::StateDict& global, std::int64_t round) override;
  bool accept(const std::string& site, const Dxo& contribution) override;
  nn::StateDict aggregate() override;
  std::int64_t accepted_count() const override;
  RoundMetrics metrics() const override;
  std::string name() const override {
    return weighted_ ? "FedAvg(weighted)" : "FedAvg(uniform)";
  }

 private:
  bool weighted_;
  nn::StateDict global_;
  std::optional<DxoKind> round_kind_;
  nn::StateDict accum_;       // running weighted sum
  double weight_sum_ = 0.0;
  std::map<std::string, double> contributors_;  // site -> weight
  RoundMetrics metrics_{};
  double loss_weight_sum_ = 0.0;
};

}  // namespace cppflare::flare
