// Masked-language-model sample preparation (BERT pretraining objective).
//
// Following the paper (Sec. III-B) and Devlin et al.: each non-special
// token is selected with probability p = 0.15; of the selected tokens 80%
// are replaced by [MASK], 10% by a random regular token, and 10% are left
// unchanged but still included in the loss. Targets carry the original id
// at selected positions and `kIgnore` elsewhere.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "data/vocab.h"

namespace cppflare::data {

struct MlmExample {
  std::vector<std::int64_t> input_ids;  // [T], corrupted
  std::vector<std::int64_t> targets;    // [T], original id or kIgnore
};

class MlmMasker {
 public:
  static constexpr std::int64_t kIgnore = -100;

  struct Options {
    double mask_prob = 0.15;     // selection probability
    double replace_mask = 0.80;  // of selected: -> [MASK]
    double replace_random = 0.10;  // of selected: -> random token
    // remaining 0.10: keep original token, still in the loss
  };

  explicit MlmMasker(std::int64_t vocab_size) : MlmMasker(vocab_size, Options{}) {}
  MlmMasker(std::int64_t vocab_size, Options options);

  /// Masks one padded sample. Only positions in [0, length) that hold
  /// non-special tokens are candidates; padding is never selected.
  MlmExample mask(const Sample& sample, core::Rng& rng) const;

  /// Collates masked examples for a model step: flattened [B*T] inputs and
  /// targets plus per-row lengths.
  struct MaskedBatch {
    std::vector<std::int64_t> input_ids;
    std::vector<std::int64_t> targets;
    std::vector<std::int64_t> lengths;
    std::int64_t batch_size = 0;
    std::int64_t seq_len = 0;
  };
  MaskedBatch mask_batch(const Batch& batch, core::Rng& rng) const;

  const Options& options() const { return options_; }

 private:
  std::int64_t vocab_size_;
  Options options_;
};

}  // namespace cppflare::data
