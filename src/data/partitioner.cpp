#include "data/partitioner.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/error.h"

namespace cppflare::data {

const std::vector<double>& paper_imbalanced_ratios() {
  static const std::vector<double> kRatios = {0.29, 0.22, 0.17, 0.14,
                                              0.09, 0.04, 0.03, 0.02};
  return kRatios;
}

namespace {

std::vector<std::int64_t> shard_sizes(std::int64_t total,
                                      const std::vector<double>& ratios) {
  std::vector<std::int64_t> sizes(ratios.size());
  std::int64_t assigned = 0;
  for (std::size_t i = 0; i < ratios.size(); ++i) {
    sizes[i] = static_cast<std::int64_t>(
        std::floor(ratios[i] * static_cast<double>(total)));
    assigned += sizes[i];
  }
  // Distribute the rounding remainder to the largest shards first.
  std::vector<std::size_t> order(ratios.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return ratios[a] > ratios[b]; });
  for (std::size_t i = 0; assigned < total; ++i, ++assigned) {
    sizes[order[i % order.size()]] += 1;
  }
  return sizes;
}

double sample_beta(core::Rng& rng, double alpha) {
  std::gamma_distribution<double> gamma(alpha, 1.0);
  const double a = gamma(rng.engine());
  const double b = gamma(rng.engine());
  if (a + b == 0.0) return 0.5;
  return a / (a + b);
}

}  // namespace

std::vector<Dataset> partition(const Dataset& dataset, const PartitionOptions& opts) {
  if (opts.num_clients <= 0) throw Error("partition: num_clients must be positive");
  std::vector<double> ratios = opts.size_ratios;
  if (ratios.empty()) {
    ratios.assign(static_cast<std::size_t>(opts.num_clients),
                  1.0 / static_cast<double>(opts.num_clients));
  }
  if (static_cast<std::int64_t>(ratios.size()) != opts.num_clients) {
    throw Error("partition: ratios size " + std::to_string(ratios.size()) +
                " vs num_clients " + std::to_string(opts.num_clients));
  }
  const double sum = std::accumulate(ratios.begin(), ratios.end(), 0.0);
  if (std::abs(sum - 1.0) > 1e-6) {
    throw Error("partition: size ratios sum to " + std::to_string(sum));
  }
  if (dataset.size() < opts.num_clients) {
    throw Error("partition: fewer samples than clients");
  }

  core::Rng rng(opts.seed);
  const std::vector<std::int64_t> sizes = shard_sizes(dataset.size(), ratios);

  if (opts.label_skew_alpha <= 0.0) {
    // IID assignment: one global shuffle, contiguous shards.
    std::vector<std::int64_t> order(static_cast<std::size_t>(dataset.size()));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    std::vector<Dataset> shards;
    std::int64_t offset = 0;
    for (std::int64_t size : sizes) {
      std::vector<std::int64_t> idx(order.begin() + offset,
                                    order.begin() + offset + size);
      shards.push_back(dataset.subset(idx));
      offset += size;
    }
    return shards;
  }

  // Label-skewed assignment: per-client positive fraction ~ Beta(alpha,
  // alpha), greedily drawn from per-label pools; when a pool runs dry the
  // other label fills the remainder, so every sample is assigned.
  std::vector<std::int64_t> pos_pool, neg_pool;
  for (std::int64_t i = 0; i < dataset.size(); ++i) {
    (dataset[i].label == 1 ? pos_pool : neg_pool).push_back(i);
  }
  rng.shuffle(pos_pool);
  rng.shuffle(neg_pool);

  std::vector<Dataset> shards;
  std::size_t pos_next = 0, neg_next = 0;
  for (std::int64_t c = 0; c < opts.num_clients; ++c) {
    const std::int64_t size = sizes[static_cast<std::size_t>(c)];
    const double want_pos_frac = sample_beta(rng, opts.label_skew_alpha);
    std::int64_t want_pos = static_cast<std::int64_t>(
        std::llround(want_pos_frac * static_cast<double>(size)));
    want_pos = std::min<std::int64_t>(
        want_pos, static_cast<std::int64_t>(pos_pool.size() - pos_next));
    std::int64_t want_neg = size - want_pos;
    const auto neg_avail = static_cast<std::int64_t>(neg_pool.size() - neg_next);
    if (want_neg > neg_avail) {
      want_pos += want_neg - neg_avail;
      want_neg = neg_avail;
      want_pos = std::min<std::int64_t>(
          want_pos, static_cast<std::int64_t>(pos_pool.size() - pos_next));
    }
    std::vector<std::int64_t> idx;
    idx.reserve(static_cast<std::size_t>(size));
    for (std::int64_t i = 0; i < want_pos; ++i) idx.push_back(pos_pool[pos_next++]);
    for (std::int64_t i = 0; i < want_neg; ++i) idx.push_back(neg_pool[neg_next++]);
    rng.shuffle(idx);
    shards.push_back(dataset.subset(idx));
  }
  // Any stragglers from rounding go to the last shard.
  std::vector<std::int64_t> rest;
  while (pos_next < pos_pool.size()) rest.push_back(pos_pool[pos_next++]);
  while (neg_next < neg_pool.size()) rest.push_back(neg_pool[neg_next++]);
  if (!rest.empty()) {
    Dataset& last = shards.back();
    for (std::int64_t i : rest) last.add(dataset[i]);
  }
  return shards;
}

std::vector<ShardStats> shard_stats(const std::vector<Dataset>& shards) {
  std::vector<ShardStats> stats;
  stats.reserve(shards.size());
  for (const Dataset& d : shards) {
    stats.push_back({d.size(), d.positive_rate()});
  }
  return stats;
}

}  // namespace cppflare::data
