// Tokenized datasets and batching.
//
// A `Sample` is one patient record tokenized to fixed length: a [CLS]
// prefix, the event codes, then [PAD] to max_seq_len. `Batch` flattens B
// samples for the models: ids are row-major [B * T].
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "data/clinical_gen.h"
#include "data/vocab.h"

namespace cppflare::data {

struct Sample {
  std::vector<std::int64_t> ids;  // length == max_seq_len, padded
  std::int64_t length = 0;        // valid prefix length (incl. [CLS])
  std::int64_t label = 0;
};

struct Batch {
  std::vector<std::int64_t> ids;      // [B * T]
  std::vector<std::int64_t> lengths;  // [B]
  std::vector<std::int64_t> labels;   // [B]
  std::int64_t batch_size = 0;
  std::int64_t seq_len = 0;
};

/// Encodes event codes to a fixed-length id sequence.
class ClinicalTokenizer {
 public:
  ClinicalTokenizer(Vocabulary vocab, std::int64_t max_seq_len);

  /// Tokenizes one record; truncates to max_seq_len (keeping the prefix).
  Sample encode(const std::vector<std::string>& codes, std::int64_t label = 0) const;

  std::vector<Sample> encode_all(const std::vector<PatientRecord>& records) const;
  std::vector<Sample> encode_all(
      const std::vector<std::vector<std::string>>& sequences) const;

  const Vocabulary& vocab() const { return vocab_; }
  std::int64_t max_seq_len() const { return max_seq_len_; }

 private:
  Vocabulary vocab_;
  std::int64_t max_seq_len_;
};

/// In-memory dataset with shuffled mini-batch iteration.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Sample> samples) : samples_(std::move(samples)) {}

  std::int64_t size() const { return static_cast<std::int64_t>(samples_.size()); }
  bool empty() const { return samples_.empty(); }
  const Sample& operator[](std::int64_t i) const {
    return samples_[static_cast<std::size_t>(i)];
  }
  const std::vector<Sample>& samples() const { return samples_; }

  void add(Sample s) { samples_.push_back(std::move(s)); }

  /// Fraction of label-1 samples.
  double positive_rate() const;

  /// Subset by indices (bounds-checked).
  Dataset subset(const std::vector<std::int64_t>& indices) const;

  /// Deterministic split into [0, n) and [n, size) after a seeded shuffle.
  std::pair<Dataset, Dataset> split(std::int64_t first_size, core::Rng& rng) const;

 private:
  std::vector<Sample> samples_;
};

/// Assembles shuffled mini-batches. The final short batch is kept.
class DataLoader {
 public:
  DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle,
             core::Rng rng);

  /// Batches for one epoch (reshuffled every call when shuffle is on).
  std::vector<Batch> epoch();

  std::int64_t batches_per_epoch() const;

 private:
  const Dataset& dataset_;
  std::int64_t batch_size_;
  bool shuffle_;
  core::Rng rng_;
};

/// Collates samples [begin, end) into one Batch.
Batch collate(const std::vector<Sample>& samples,
              const std::vector<std::int64_t>& order, std::int64_t begin,
              std::int64_t end);

}  // namespace cppflare::data
