#include "data/vocab.h"

#include "core/error.h"

namespace cppflare::data {

Vocabulary::Vocabulary() {
  for (const char* s : {"[PAD]", "[UNK]", "[CLS]", "[SEP]", "[MASK]"}) {
    add(s);
  }
}

std::int64_t Vocabulary::add(const std::string& token) {
  auto it = index_.find(token);
  if (it != index_.end()) return it->second;
  const std::int64_t id = size();
  tokens_.push_back(token);
  index_.emplace(token, id);
  return id;
}

std::int64_t Vocabulary::id_of(const std::string& token) const {
  auto it = index_.find(token);
  return it == index_.end() ? kUnk : it->second;
}

const std::string& Vocabulary::token_of(std::int64_t id) const {
  if (id < 0 || id >= size()) {
    throw Error("Vocabulary: id " + std::to_string(id) + " out of range");
  }
  return tokens_[static_cast<std::size_t>(id)];
}

bool Vocabulary::contains(const std::string& token) const {
  return index_.count(token) != 0;
}

void Vocabulary::serialize(core::ByteWriter& writer) const {
  writer.write_u32(static_cast<std::uint32_t>(tokens_.size()));
  for (const std::string& t : tokens_) writer.write_string(t);
}

Vocabulary Vocabulary::deserialize(core::ByteReader& reader) {
  const std::uint32_t n = reader.read_u32();
  if (n < kNumSpecial) throw SerializationError("Vocabulary: too few tokens");
  Vocabulary v;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string t = reader.read_string();
    if (i < kNumSpecial) {
      if (t != v.token_of(static_cast<std::int64_t>(i))) {
        throw SerializationError("Vocabulary: special token mismatch");
      }
    } else {
      v.add(t);
    }
  }
  return v;
}

}  // namespace cppflare::data
