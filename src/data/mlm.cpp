#include "data/mlm.h"

#include "core/error.h"

namespace cppflare::data {

MlmMasker::MlmMasker(std::int64_t vocab_size, Options options)
    : vocab_size_(vocab_size), options_(options) {
  if (vocab_size_ <= Vocabulary::kNumSpecial) {
    throw Error("MlmMasker: vocabulary has no regular tokens");
  }
  if (options_.mask_prob <= 0.0 || options_.mask_prob >= 1.0) {
    throw Error("MlmMasker: mask_prob must be in (0,1)");
  }
  if (options_.replace_mask + options_.replace_random > 1.0) {
    throw Error("MlmMasker: replace fractions exceed 1");
  }
}

MlmExample MlmMasker::mask(const Sample& sample, core::Rng& rng) const {
  MlmExample ex;
  ex.input_ids = sample.ids;
  ex.targets.assign(sample.ids.size(), kIgnore);
  for (std::int64_t i = 0; i < sample.length; ++i) {
    const std::int64_t id = sample.ids[static_cast<std::size_t>(i)];
    if (Vocabulary::is_special(id)) continue;
    if (!rng.bernoulli(options_.mask_prob)) continue;
    ex.targets[static_cast<std::size_t>(i)] = id;
    const double u = rng.uniform();
    if (u < options_.replace_mask) {
      ex.input_ids[static_cast<std::size_t>(i)] = Vocabulary::kMask;
    } else if (u < options_.replace_mask + options_.replace_random) {
      ex.input_ids[static_cast<std::size_t>(i)] =
          rng.uniform_int(Vocabulary::first_regular_id(), vocab_size_ - 1);
    }
    // else: token kept, target still set (regularizing per the paper).
  }
  return ex;
}

MlmMasker::MaskedBatch MlmMasker::mask_batch(const Batch& batch,
                                             core::Rng& rng) const {
  MaskedBatch out;
  out.batch_size = batch.batch_size;
  out.seq_len = batch.seq_len;
  out.lengths = batch.lengths;
  out.input_ids.reserve(batch.ids.size());
  out.targets.reserve(batch.ids.size());
  for (std::int64_t b = 0; b < batch.batch_size; ++b) {
    Sample view;
    view.ids.assign(batch.ids.begin() + b * batch.seq_len,
                    batch.ids.begin() + (b + 1) * batch.seq_len);
    view.length = batch.lengths[static_cast<std::size_t>(b)];
    MlmExample ex = mask(view, rng);
    out.input_ids.insert(out.input_ids.end(), ex.input_ids.begin(),
                         ex.input_ids.end());
    out.targets.insert(out.targets.end(), ex.targets.begin(), ex.targets.end());
  }
  return out;
}

}  // namespace cppflare::data
