// Synthetic clopidogrel-cohort generator.
//
// The paper trains on a proprietary EHR corpus: 8,638 patients with
// clopidogrel prescriptions, 1,824 (21.1%) labeled as treatment failure /
// adverse drug reaction (ADR) [Lee et al., MLHC 2022]. That data cannot be
// shipped, so this module synthesizes a cohort with the same *learning
// problem*:
//
//  * each patient is an ordered sequence of clinical event codes
//    (prescriptions RX:*, diagnoses DX:*, procedures PX:*, genotype GX:*),
//    always containing a clopidogrel prescription;
//  * the ADR label is driven by clinically inspired *ordered* risk motifs
//    (e.g. a proton-pump inhibitor dispensed AFTER clopidogrel raises risk,
//    the reverse order does not; a CYP2C19 loss-of-function marker raises
//    risk unconditionally) plus mild unordered signals and noise;
//  * the positive rate is calibrated to the paper's 21.1%.
//
// Order-sensitivity is the property that lets the paper's headline shape
// (the recursive LSTM out-performing small-data BERT) emerge for the same
// stated reasons. See DESIGN.md §2.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rng.h"
#include "data/vocab.h"

namespace cppflare::data {

struct PatientRecord {
  std::vector<std::string> codes;  // chronologically ordered events
  int label = 0;                   // 1 = treatment failure (ADR)
};

/// One risk rule: if `first` occurs strictly before `second` in a record,
/// `weight` is added to the patient's risk logit. Rules with an empty
/// `first` fire on mere presence of `second` (unordered signal).
struct RiskRule {
  std::string first;
  std::string second;
  double weight = 0.0;
};

struct ClinicalGenConfig {
  std::int64_t num_drugs = 300;
  std::int64_t num_diagnoses = 500;
  std::int64_t num_procedures = 200;
  std::int64_t num_profiles = 4;   // latent phenotypes mixing code usage
  std::int64_t min_events = 10;
  std::int64_t max_events = 46;
  double positive_rate = 0.2111;   // 1824 / 8638
  /// Multiplier on every rule weight: larger values make labels more
  /// deterministic given the record (higher Bayes ceiling).
  double risk_scale = 2.0;
  double label_noise_std = 0.35;   // N(0, std) added to the risk logit
  std::uint64_t seed = 17;
};

class ClinicalCohortGenerator {
 public:
  explicit ClinicalCohortGenerator(ClinicalGenConfig config = {});

  /// Labeled cohort of `n` patients. Reproducible: the same generator and
  /// seed produce the same cohort.
  std::vector<PatientRecord> generate_labeled(std::int64_t n, std::uint64_t seed) const;

  /// Unlabeled event sequences for MLM pretraining (same event model).
  std::vector<std::vector<std::string>> generate_unlabeled(std::int64_t n,
                                                           std::uint64_t seed) const;

  /// The full closed code universe; federation participants build their
  /// shared vocabulary from this, not from local data.
  const std::vector<std::string>& code_universe() const { return universe_; }

  /// Vocabulary over the whole universe (special tokens + all codes).
  Vocabulary build_vocabulary() const;

  const std::vector<RiskRule>& rules() const { return rules_; }
  const ClinicalGenConfig& config() const { return config_; }

  /// Risk logit of a record under the rule set (before noise/bias); exposed
  /// for tests and for measuring the Bayes-optimal ceiling.
  double risk_score(const std::vector<std::string>& codes) const;

 private:
  std::vector<std::string> sample_sequence(core::Rng& rng) const;

  ClinicalGenConfig config_;
  std::vector<std::string> universe_;
  std::vector<RiskRule> rules_;
  // profile -> categorical weights over universe_ indices
  std::vector<std::vector<double>> profile_weights_;
  double bias_ = 0.0;  // calibrated so the positive rate matches config
};

}  // namespace cppflare::data
