#include "data/dataset.h"

#include <numeric>

#include "core/error.h"

namespace cppflare::data {

ClinicalTokenizer::ClinicalTokenizer(Vocabulary vocab, std::int64_t max_seq_len)
    : vocab_(std::move(vocab)), max_seq_len_(max_seq_len) {
  if (max_seq_len_ < 2) throw Error("ClinicalTokenizer: max_seq_len too small");
}

Sample ClinicalTokenizer::encode(const std::vector<std::string>& codes,
                                 std::int64_t label) const {
  Sample s;
  s.ids.reserve(static_cast<std::size_t>(max_seq_len_));
  s.ids.push_back(Vocabulary::kCls);
  for (const std::string& code : codes) {
    if (static_cast<std::int64_t>(s.ids.size()) >= max_seq_len_) break;
    s.ids.push_back(vocab_.id_of(code));
  }
  s.length = static_cast<std::int64_t>(s.ids.size());
  s.ids.resize(static_cast<std::size_t>(max_seq_len_), Vocabulary::kPad);
  s.label = label;
  return s;
}

std::vector<Sample> ClinicalTokenizer::encode_all(
    const std::vector<PatientRecord>& records) const {
  std::vector<Sample> out;
  out.reserve(records.size());
  for (const PatientRecord& r : records) out.push_back(encode(r.codes, r.label));
  return out;
}

std::vector<Sample> ClinicalTokenizer::encode_all(
    const std::vector<std::vector<std::string>>& sequences) const {
  std::vector<Sample> out;
  out.reserve(sequences.size());
  for (const auto& seq : sequences) out.push_back(encode(seq, 0));
  return out;
}

double Dataset::positive_rate() const {
  if (samples_.empty()) return 0.0;
  std::int64_t pos = 0;
  for (const Sample& s : samples_) pos += s.label;
  return static_cast<double>(pos) / static_cast<double>(samples_.size());
}

Dataset Dataset::subset(const std::vector<std::int64_t>& indices) const {
  std::vector<Sample> out;
  out.reserve(indices.size());
  for (std::int64_t i : indices) {
    if (i < 0 || i >= size()) {
      throw Error("Dataset::subset: index " + std::to_string(i) + " out of range");
    }
    out.push_back(samples_[static_cast<std::size_t>(i)]);
  }
  return Dataset(std::move(out));
}

std::pair<Dataset, Dataset> Dataset::split(std::int64_t first_size,
                                           core::Rng& rng) const {
  if (first_size < 0 || first_size > size()) {
    throw Error("Dataset::split: bad first_size " + std::to_string(first_size));
  }
  std::vector<std::int64_t> order(static_cast<std::size_t>(size()));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<std::int64_t> a(order.begin(), order.begin() + first_size);
  std::vector<std::int64_t> b(order.begin() + first_size, order.end());
  return {subset(a), subset(b)};
}

DataLoader::DataLoader(const Dataset& dataset, std::int64_t batch_size, bool shuffle,
                       core::Rng rng)
    : dataset_(dataset), batch_size_(batch_size), shuffle_(shuffle), rng_(rng) {
  if (batch_size_ <= 0) throw Error("DataLoader: batch_size must be positive");
}

std::vector<Batch> DataLoader::epoch() {
  std::vector<std::int64_t> order(static_cast<std::size_t>(dataset_.size()));
  std::iota(order.begin(), order.end(), 0);
  if (shuffle_) rng_.shuffle(order);

  std::vector<Batch> batches;
  for (std::int64_t begin = 0; begin < dataset_.size(); begin += batch_size_) {
    const std::int64_t end = std::min(begin + batch_size_, dataset_.size());
    batches.push_back(collate(dataset_.samples(), order, begin, end));
  }
  return batches;
}

std::int64_t DataLoader::batches_per_epoch() const {
  return (dataset_.size() + batch_size_ - 1) / batch_size_;
}

Batch collate(const std::vector<Sample>& samples,
              const std::vector<std::int64_t>& order, std::int64_t begin,
              std::int64_t end) {
  if (begin >= end) throw Error("collate: empty range");
  Batch batch;
  batch.batch_size = end - begin;
  batch.seq_len = static_cast<std::int64_t>(
      samples[static_cast<std::size_t>(order[static_cast<std::size_t>(begin)])]
          .ids.size());
  batch.ids.reserve(static_cast<std::size_t>(batch.batch_size * batch.seq_len));
  for (std::int64_t i = begin; i < end; ++i) {
    const Sample& s = samples[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    if (static_cast<std::int64_t>(s.ids.size()) != batch.seq_len) {
      throw Error("collate: ragged sample lengths");
    }
    batch.ids.insert(batch.ids.end(), s.ids.begin(), s.ids.end());
    batch.lengths.push_back(s.length);
    batch.labels.push_back(s.label);
  }
  return batch;
}

}  // namespace cppflare::data
