// Federated data partitioning.
//
// Reproduces the paper's client splits:
//  * imbalanced: sizes proportional to {0.29, 0.22, 0.17, 0.14, 0.09, 0.04,
//    0.03, 0.02} over 8 clients (Sec. IV-B1);
//  * balanced: equal sizes;
// and adds a label-skew knob (Dirichlet over label proportions) modeling the
// "varying data distribution and labeling practices across clinics" the
// paper's introduction motivates. Skew is what makes standalone training
// collapse on the global validation set, as in Table III.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "data/dataset.h"

namespace cppflare::data {

/// The size ratios used in the paper's imbalanced-data experiment.
const std::vector<double>& paper_imbalanced_ratios();

struct PartitionOptions {
  /// Per-client size fractions; must sum to ~1. Empty = balanced.
  std::vector<double> size_ratios;
  std::int64_t num_clients = 8;
  /// Dirichlet concentration for per-client label mix. <= 0 disables skew
  /// (clients draw i.i.d. from the global pool). Smaller = more skew.
  double label_skew_alpha = 0.0;
  std::uint64_t seed = 99;
};

/// Splits `dataset` into per-client shards. Every sample is assigned to
/// exactly one client; shard sizes follow `size_ratios` (up to rounding,
/// with remainders given to the largest clients first).
std::vector<Dataset> partition(const Dataset& dataset, const PartitionOptions& opts);

/// Summary used by logs and tests.
struct ShardStats {
  std::int64_t size = 0;
  double positive_rate = 0.0;
};
std::vector<ShardStats> shard_stats(const std::vector<Dataset>& shards);

}  // namespace cppflare::data
