#include "data/clinical_gen.h"

#include <algorithm>
#include <cmath>

#include "core/error.h"

namespace cppflare::data {

namespace {

// Clinically named codes; the rest of the universe is synthetic filler so
// the MLM vocabulary has realistic size.
const char* kNamedDrugs[] = {
    "RX:clopidogrel", "RX:omeprazole", "RX:esomeprazole", "RX:pantoprazole",
    "RX:aspirin",     "RX:atorvastatin", "RX:warfarin",   "RX:ibuprofen",
    "RX:metformin",   "RX:insulin"};
const char* kNamedDiagnoses[] = {
    "DX:mi",  "DX:stroke", "DX:diabetes", "DX:ckd", "DX:hypertension",
    "DX:afib", "DX:stent_thrombosis", "DX:hyperlipidemia"};
const char* kNamedProcedures[] = {"PX:pci", "PX:cabg", "PX:angiography"};
const char* kGenotypeLof = "GX:cyp2c19_lof";
const char* kGenotypeNormal = "GX:cyp2c19_normal";

constexpr const char* kClopidogrel = "RX:clopidogrel";

double sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

}  // namespace

ClinicalCohortGenerator::ClinicalCohortGenerator(ClinicalGenConfig config)
    : config_(config) {
  // ---- code universe -----------------------------------------------------
  for (const char* c : kNamedDrugs) universe_.emplace_back(c);
  for (std::int64_t i = static_cast<std::int64_t>(std::size(kNamedDrugs));
       i < config_.num_drugs; ++i) {
    universe_.push_back("RX:drug" + std::to_string(i));
  }
  for (const char* c : kNamedDiagnoses) universe_.emplace_back(c);
  for (std::int64_t i = static_cast<std::int64_t>(std::size(kNamedDiagnoses));
       i < config_.num_diagnoses; ++i) {
    universe_.push_back("DX:code" + std::to_string(i));
  }
  for (const char* c : kNamedProcedures) universe_.emplace_back(c);
  for (std::int64_t i = static_cast<std::int64_t>(std::size(kNamedProcedures));
       i < config_.num_procedures; ++i) {
    universe_.push_back("PX:proc" + std::to_string(i));
  }
  universe_.emplace_back(kGenotypeLof);
  universe_.emplace_back(kGenotypeNormal);

  // ---- risk rules ----------------------------------------------------------
  // Ordered motifs (the signal a recurrent reader exploits): a
  // proton-pump inhibitor or interacting drug dispensed after clopidogrel
  // raises failure risk; protective co-therapy after clopidogrel lowers it.
  rules_ = {
      {kClopidogrel, "RX:omeprazole", +1.8},
      {kClopidogrel, "RX:esomeprazole", +1.6},
      {kClopidogrel, "RX:pantoprazole", +1.2},
      {kClopidogrel, "RX:ibuprofen", +1.0},
      {kClopidogrel, "RX:warfarin", +1.2},
      {"DX:diabetes", kClopidogrel, +0.7},
      {"DX:ckd", kClopidogrel, +0.9},
      {kClopidogrel, "RX:atorvastatin", -0.8},
      {kClopidogrel, "RX:aspirin", -0.5},
      // Unordered presence signals (bag-of-words learnable).
      {"", kGenotypeLof, +2.0},
      {"", "DX:afib", +0.4},
      {"", "PX:cabg", +0.3},
      {"", "DX:stent_thrombosis", +0.8},
  };
  for (RiskRule& rule : rules_) rule.weight *= config_.risk_scale;

  // ---- latent phenotype profiles -------------------------------------------
  // Each profile is a categorical distribution over the universe. Named
  // codes get a strong boost (they must occur often enough for the motifs
  // to fire); filler codes get log-normal weights for a long-tailed,
  // Zipf-like usage pattern.
  core::Rng rng(config_.seed);
  const std::size_t named_count = std::size(kNamedDrugs) + std::size(kNamedDiagnoses) +
                                  std::size(kNamedProcedures);
  profile_weights_.resize(static_cast<std::size_t>(config_.num_profiles));
  for (auto& weights : profile_weights_) {
    weights.resize(universe_.size());
    for (std::size_t i = 0; i < universe_.size(); ++i) {
      const double base = std::exp(rng.normal(0.0, 1.0));
      const bool named = i < named_count;
      const bool genotype = universe_[i][0] == 'G';
      // Genotype codes are injected explicitly in sample_sequence, never
      // drawn from the profile mixture. Named codes are heavily boosted:
      // the cohort is selected around clopidogrel therapy, so interacting
      // drugs and cardiovascular diagnoses dominate real records too, and
      // the risk motifs must fire often enough to be learnable.
      weights[i] = genotype ? 0.0 : base * (named ? 14.0 : 1.0);
    }
  }

  // ---- calibrate the label bias --------------------------------------------
  // Choose bias_ so that E[sigmoid(score + bias + eps)] over a calibration
  // sample matches the paper's positive rate (21.1%).
  core::Rng cal_rng(config_.seed ^ 0x9e3779b97f4a7c15ull);
  constexpr std::int64_t kCalSamples = 4000;
  std::vector<double> scores;
  scores.reserve(kCalSamples);
  for (std::int64_t i = 0; i < kCalSamples; ++i) {
    core::Rng r = cal_rng.fork();
    scores.push_back(risk_score(sample_sequence(r)) +
                     cal_rng.normal(0.0, config_.label_noise_std));
  }
  double lo = -12.0, hi = 12.0;
  for (int iter = 0; iter < 60; ++iter) {
    const double mid = 0.5 * (lo + hi);
    double mean = 0.0;
    for (double s : scores) mean += sigmoid(s + mid);
    mean /= static_cast<double>(scores.size());
    if (mean < config_.positive_rate) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  bias_ = 0.5 * (lo + hi);
}

std::vector<std::string> ClinicalCohortGenerator::sample_sequence(
    core::Rng& rng) const {
  const std::int64_t len = rng.uniform_int(config_.min_events, config_.max_events);
  const auto& weights =
      profile_weights_[static_cast<std::size_t>(rng.uniform_int(
          0, config_.num_profiles - 1))];

  std::vector<std::string> codes;
  codes.reserve(static_cast<std::size_t>(len) + 2);
  for (std::int64_t i = 0; i < len; ++i) {
    codes.push_back(universe_[rng.categorical(weights)]);
  }

  // Every patient in the cohort has a clopidogrel prescription; place it
  // somewhere in the first two thirds so "after clopidogrel" motifs can
  // plausibly fire.
  const auto clop_pos = static_cast<std::size_t>(
      rng.uniform_int(len / 5, std::max<std::int64_t>(len * 2 / 3, len / 5)));
  codes.insert(codes.begin() + static_cast<std::ptrdiff_t>(clop_pos), kClopidogrel);

  // 30% of patients have a pharmacogenomic test on file; of those, 25%
  // carry the CYP2C19 loss-of-function marker. Genotype is known up front,
  // so it heads the record.
  if (rng.bernoulli(0.30)) {
    codes.insert(codes.begin(),
                 rng.bernoulli(0.25) ? kGenotypeLof : kGenotypeNormal);
  }
  return codes;
}

double ClinicalCohortGenerator::risk_score(
    const std::vector<std::string>& codes) const {
  double score = 0.0;
  for (const RiskRule& rule : rules_) {
    if (rule.first.empty()) {
      if (std::find(codes.begin(), codes.end(), rule.second) != codes.end()) {
        score += rule.weight;
      }
      continue;
    }
    const auto first_it = std::find(codes.begin(), codes.end(), rule.first);
    if (first_it == codes.end()) continue;
    if (std::find(first_it + 1, codes.end(), rule.second) != codes.end()) {
      score += rule.weight;
    }
  }
  return score;
}

std::vector<PatientRecord> ClinicalCohortGenerator::generate_labeled(
    std::int64_t n, std::uint64_t seed) const {
  core::Rng rng(seed);
  std::vector<PatientRecord> records;
  records.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    PatientRecord rec;
    rec.codes = sample_sequence(rng);
    const double logit = risk_score(rec.codes) + bias_ +
                         rng.normal(0.0, config_.label_noise_std);
    rec.label = rng.bernoulli(sigmoid(logit)) ? 1 : 0;
    records.push_back(std::move(rec));
  }
  return records;
}

std::vector<std::vector<std::string>> ClinicalCohortGenerator::generate_unlabeled(
    std::int64_t n, std::uint64_t seed) const {
  core::Rng rng(seed);
  std::vector<std::vector<std::string>> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) out.push_back(sample_sequence(rng));
  return out;
}

Vocabulary ClinicalCohortGenerator::build_vocabulary() const {
  Vocabulary v;
  for (const std::string& code : universe_) v.add(code);
  return v;
}

}  // namespace cppflare::data
