// Token vocabulary over clinical event codes.
//
// Tokens are strings such as "RX:clopidogrel" (prescription) or "DX:I21.4"
// (diagnosis code). Ids 0..4 are reserved for the special tokens BERT-style
// models need; everything else is assigned in insertion order so a vocabulary
// built from the same corpus is deterministic.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bytes.h"

namespace cppflare::data {

class Vocabulary {
 public:
  // Reserved ids.
  static constexpr std::int64_t kPad = 0;
  static constexpr std::int64_t kUnk = 1;
  static constexpr std::int64_t kCls = 2;
  static constexpr std::int64_t kSep = 3;
  static constexpr std::int64_t kMask = 4;
  static constexpr std::int64_t kNumSpecial = 5;

  Vocabulary();

  /// Adds `token` if absent; returns its id either way.
  std::int64_t add(const std::string& token);

  /// Id for `token`, or kUnk if unknown.
  std::int64_t id_of(const std::string& token) const;

  /// Token string for `id`; throws on out-of-range.
  const std::string& token_of(std::int64_t id) const;

  bool contains(const std::string& token) const;

  std::int64_t size() const { return static_cast<std::int64_t>(tokens_.size()); }

  /// True for ids that must never be masked or predicted by MLM.
  static bool is_special(std::int64_t id) { return id < kNumSpecial; }

  /// First non-special id; the MLM random-replacement draw uses
  /// [first_regular_id, size).
  static std::int64_t first_regular_id() { return kNumSpecial; }

  void serialize(core::ByteWriter& writer) const;
  static Vocabulary deserialize(core::ByteReader& reader);

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::string, std::int64_t> index_;
};

}  // namespace cppflare::data
