#include <cmath>
#include <memory>

#include "tensor/ops.h"
#include "tensor/ops_common.h"

namespace cppflare::tensor {

using detail::make_result;

Tensor softmax_lastdim(const Tensor& a) {
  if (a.dim() < 1) throw ShapeError("softmax_lastdim: rank-0 input");
  const std::int64_t n = a.size(-1);
  const std::int64_t rows = a.numel() / n;
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()},
                           [pa, rows, n](const TensorImpl& self) {
                             // dx = y * (dy - sum(dy * y)) per row.
                             for (std::int64_t r = 0; r < rows; ++r) {
                               const float* y = self.data.data() + r * n;
                               const float* dy = self.grad.data() + r * n;
                               float dot = 0.0f;
                               for (std::int64_t j = 0; j < n; ++j) dot += dy[j] * y[j];
                               float* dx = pa->grad.data() + r * n;
                               for (std::int64_t j = 0; j < n; ++j) {
                                 dx[j] += y[j] * (dy[j] - dot);
                               }
                             }
                           });
  const float* src = a.data();
  float* dst = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* x = src + r * n;
    float* y = dst + r * n;
    float mx = x[0];
    for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, x[j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      y[j] = std::exp(x[j] - mx);
      sum += y[j];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t j = 0; j < n; ++j) y[j] *= inv;
  }
  return out;
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  if (x.dim() < 1) throw ShapeError("layer_norm: rank-0 input");
  const std::int64_t h = x.size(-1);
  if (gamma.dim() != 1 || gamma.size(0) != h || beta.dim() != 1 || beta.size(0) != h) {
    throw ShapeError("layer_norm: gamma/beta must be [" + std::to_string(h) + "]");
  }
  const std::int64_t rows = x.numel() / h;

  // Save per-row mean and reciprocal stddev for the backward pass.
  auto mean = std::make_shared<std::vector<float>>(rows);
  auto rstd = std::make_shared<std::vector<float>>(rows);

  TensorImpl* px = x.impl().get();
  TensorImpl* pg = gamma.impl().get();
  TensorImpl* pb = beta.impl().get();
  Tensor out = make_result(
      x.shape(), {x.impl(), gamma.impl(), beta.impl()},
      [px, pg, pb, mean, rstd, rows, h](const TensorImpl& self) {
        for (std::int64_t r = 0; r < rows; ++r) {
          const float* xr = px->data.data() + r * h;
          const float* dy = self.grad.data() + r * h;
          const float mu = (*mean)[r];
          const float rs = (*rstd)[r];
          // xhat = (x - mu) * rs ;  y = xhat * gamma + beta
          float sum_dyg = 0.0f;
          float sum_dyg_xhat = 0.0f;
          for (std::int64_t j = 0; j < h; ++j) {
            const float xhat = (xr[j] - mu) * rs;
            const float dyg = dy[j] * pg->data[j];
            sum_dyg += dyg;
            sum_dyg_xhat += dyg * xhat;
            pg->grad[j] += dy[j] * xhat;
            pb->grad[j] += dy[j];
          }
          const float inv_h = 1.0f / static_cast<float>(h);
          float* dx = px->grad.data() + r * h;
          for (std::int64_t j = 0; j < h; ++j) {
            const float xhat = (xr[j] - mu) * rs;
            const float dyg = dy[j] * pg->data[j];
            dx[j] += rs * (dyg - inv_h * sum_dyg - xhat * inv_h * sum_dyg_xhat);
          }
        }
      });

  const float* src = x.data();
  const float* g = gamma.data();
  const float* b = beta.data();
  float* dst = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* xr = src + r * h;
    float mu = 0.0f;
    for (std::int64_t j = 0; j < h; ++j) mu += xr[j];
    mu /= static_cast<float>(h);
    float var = 0.0f;
    for (std::int64_t j = 0; j < h; ++j) {
      const float d = xr[j] - mu;
      var += d * d;
    }
    var /= static_cast<float>(h);
    const float rs = 1.0f / std::sqrt(var + eps);
    (*mean)[r] = mu;
    (*rstd)[r] = rs;
    float* y = dst + r * h;
    for (std::int64_t j = 0; j < h; ++j) y[j] = (xr[j] - mu) * rs * g[j] + b[j];
  }
  return out;
}

Tensor embedding(const Tensor& weight, const std::vector<std::int64_t>& ids) {
  if (weight.dim() != 2) {
    throw ShapeError("embedding: weight must be 2D, got " +
                     shape_to_string(weight.shape()));
  }
  const std::int64_t v = weight.size(0), h = weight.size(1);
  const std::int64_t n = static_cast<std::int64_t>(ids.size());
  for (std::int64_t id : ids) {
    if (id < 0 || id >= v) {
      throw ShapeError("embedding: id " + std::to_string(id) + " out of vocab " +
                       std::to_string(v));
    }
  }
  TensorImpl* pw = weight.impl().get();
  auto ids_copy = std::make_shared<std::vector<std::int64_t>>(ids);
  Tensor out = make_result({n, h}, {weight.impl()},
                           [pw, ids_copy, h](const TensorImpl& self) {
                             for (std::size_t i = 0; i < ids_copy->size(); ++i) {
                               const float* g = self.grad.data() + i * h;
                               float* wg = pw->grad.data() + (*ids_copy)[i] * h;
                               for (std::int64_t j = 0; j < h; ++j) wg[j] += g[j];
                             }
                           });
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = weight.data() + ids[i] * h;
    std::copy(row, row + h, out.data() + i * h);
  }
  return out;
}

Tensor cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& targets,
                     std::int64_t ignore_index) {
  if (logits.dim() != 2) {
    throw ShapeError("cross_entropy: logits must be 2D, got " +
                     shape_to_string(logits.shape()));
  }
  const std::int64_t n = logits.size(0), c = logits.size(1);
  if (static_cast<std::int64_t>(targets.size()) != n) {
    throw ShapeError("cross_entropy: " + std::to_string(targets.size()) +
                     " targets for " + std::to_string(n) + " rows");
  }
  std::int64_t active = 0;
  for (std::int64_t t : targets) {
    if (t == ignore_index) continue;
    if (t < 0 || t >= c) {
      throw ShapeError("cross_entropy: target " + std::to_string(t) +
                       " out of range [0," + std::to_string(c) + ")");
    }
    ++active;
  }
  if (active == 0) throw Error("cross_entropy: all targets ignored");

  // Cache the row-wise softmax for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(c));
  auto tgt = std::make_shared<std::vector<std::int64_t>>(targets);

  const float* x = logits.data();
  double loss_acc = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = x + i * c;
    float* p = probs->data() + i * c;
    float mx = row[0];
    for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < c; ++j) {
      p[j] = std::exp(row[j] - mx);
      sum += p[j];
    }
    const float inv = 1.0f / sum;
    for (std::int64_t j = 0; j < c; ++j) p[j] *= inv;
    if ((*tgt)[i] != ignore_index) {
      const float pt = std::max(p[(*tgt)[i]], 1e-12f);
      loss_acc -= std::log(pt);
    }
  }

  TensorImpl* pl = logits.impl().get();
  const float inv_active = 1.0f / static_cast<float>(active);
  Tensor out = make_result(
      {}, {logits.impl()},
      [pl, probs, tgt, n, c, ignore_index, inv_active](const TensorImpl& self) {
        const float g = self.grad[0] * inv_active;
        for (std::int64_t i = 0; i < n; ++i) {
          if ((*tgt)[i] == ignore_index) continue;
          const float* p = probs->data() + i * c;
          float* dl = pl->grad.data() + i * c;
          for (std::int64_t j = 0; j < c; ++j) dl[j] += g * p[j];
          dl[(*tgt)[i]] -= g;
        }
      });
  out.data()[0] = static_cast<float>(loss_acc) * inv_active;
  return out;
}

}  // namespace cppflare::tensor
