#include <cmath>
#include <memory>

#include "tensor/backend.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"

namespace cppflare::tensor {

using detail::make_result;

Tensor softmax_lastdim(const Tensor& a) {
  if (a.dim() < 1) throw ShapeError("softmax_lastdim: rank-0 input");
  const std::int64_t n = a.size(-1);
  const std::int64_t rows = a.numel() / n;
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(
      a.shape(), {a.impl()}, [pa, rows, n](const TensorImpl& self) {
        // dx = y * (dy - sum(dy * y)) per row.
        const float* yall = self.data.data();
        const float* dyall = self.grad.data();
        float* dxall = pa->grad.data();
        backend::parallel_rows(rows, 4 * n, [=](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* y = yall + r * n;
            const float* dy = dyall + r * n;
            float dot = 0.0f;
            for (std::int64_t j = 0; j < n; ++j) dot += dy[j] * y[j];
            float* dx = dxall + r * n;
            for (std::int64_t j = 0; j < n; ++j) {
              dx[j] += y[j] * (dy[j] - dot);
            }
          }
        });
      });
  const float* src = a.data();
  float* dst = out.data();
  backend::parallel_rows(rows, 8 * n, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* x = src + r * n;
      float* y = dst + r * n;
      float mx = x[0];
      for (std::int64_t j = 1; j < n; ++j) mx = std::max(mx, x[j]);
      float sum = 0.0f;
      for (std::int64_t j = 0; j < n; ++j) {
        y[j] = std::exp(x[j] - mx);
        sum += y[j];
      }
      const float inv = 1.0f / sum;
      for (std::int64_t j = 0; j < n; ++j) y[j] *= inv;
    }
  });
  return out;
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  if (x.dim() < 1) throw ShapeError("layer_norm: rank-0 input");
  const std::int64_t h = x.size(-1);
  if (gamma.dim() != 1 || gamma.size(0) != h || beta.dim() != 1 || beta.size(0) != h) {
    throw ShapeError("layer_norm: gamma/beta must be [" + std::to_string(h) + "]");
  }
  const std::int64_t rows = x.numel() / h;

  // Save per-row mean and reciprocal stddev for the backward pass.
  auto mean = std::make_shared<std::vector<float>>(rows);
  auto rstd = std::make_shared<std::vector<float>>(rows);

  TensorImpl* px = x.impl().get();
  TensorImpl* pg = gamma.impl().get();
  TensorImpl* pb = beta.impl().get();
  Tensor out = make_result(
      x.shape(), {x.impl(), gamma.impl(), beta.impl()},
      [px, pg, pb, mean, rstd, rows, h](const TensorImpl& self) {
        // Two passes with different parallel axes: dx writes are disjoint per
        // row, while dgamma/dbeta sum over all rows — those go column-parallel
        // with rows consumed in ascending order per column.
        const float* xall = px->data.data();
        const float* dyall = self.grad.data();
        const float* gam = pg->data.data();
        float* dxall = px->grad.data();
        const float* mu_v = mean->data();
        const float* rs_v = rstd->data();
        backend::parallel_rows(rows, 6 * h, [=](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* xr = xall + r * h;
            const float* dy = dyall + r * h;
            const float mu = mu_v[r];
            const float rs = rs_v[r];
            // xhat = (x - mu) * rs ;  y = xhat * gamma + beta
            float sum_dyg = 0.0f;
            float sum_dyg_xhat = 0.0f;
            for (std::int64_t j = 0; j < h; ++j) {
              const float xhat = (xr[j] - mu) * rs;
              const float dyg = dy[j] * gam[j];
              sum_dyg += dyg;
              sum_dyg_xhat += dyg * xhat;
            }
            const float inv_h = 1.0f / static_cast<float>(h);
            float* dx = dxall + r * h;
            for (std::int64_t j = 0; j < h; ++j) {
              const float xhat = (xr[j] - mu) * rs;
              const float dyg = dy[j] * gam[j];
              dx[j] += rs * (dyg - inv_h * sum_dyg - xhat * inv_h * sum_dyg_xhat);
            }
          }
        });
        float* dg = pg->grad.data();
        float* db = pb->grad.data();
        backend::parallel_rows(h, 4 * rows, [=](std::int64_t j0, std::int64_t j1) {
          for (std::int64_t r = 0; r < rows; ++r) {
            const float* xr = xall + r * h;
            const float* dy = dyall + r * h;
            const float mu = mu_v[r];
            const float rs = rs_v[r];
            for (std::int64_t j = j0; j < j1; ++j) {
              dg[j] += dy[j] * (xr[j] - mu) * rs;
              db[j] += dy[j];
            }
          }
        });
      });

  const float* src = x.data();
  const float* g = gamma.data();
  const float* b = beta.data();
  float* dst = out.data();
  float* mu_out = mean->data();
  float* rs_out = rstd->data();
  backend::parallel_rows(rows, 4 * h, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      const float* xr = src + r * h;
      float mu = 0.0f;
      for (std::int64_t j = 0; j < h; ++j) mu += xr[j];
      mu /= static_cast<float>(h);
      float var = 0.0f;
      for (std::int64_t j = 0; j < h; ++j) {
        const float d = xr[j] - mu;
        var += d * d;
      }
      var /= static_cast<float>(h);
      const float rs = 1.0f / std::sqrt(var + eps);
      mu_out[r] = mu;
      rs_out[r] = rs;
      float* y = dst + r * h;
      for (std::int64_t j = 0; j < h; ++j) y[j] = (xr[j] - mu) * rs * g[j] + b[j];
    }
  });
  return out;
}

Tensor embedding(const Tensor& weight, const std::vector<std::int64_t>& ids) {
  if (weight.dim() != 2) {
    throw ShapeError("embedding: weight must be 2D, got " +
                     shape_to_string(weight.shape()));
  }
  const std::int64_t v = weight.size(0), h = weight.size(1);
  const std::int64_t n = static_cast<std::int64_t>(ids.size());
  for (std::int64_t id : ids) {
    if (id < 0 || id >= v) {
      throw ShapeError("embedding: id " + std::to_string(id) + " out of vocab " +
                       std::to_string(v));
    }
  }
  TensorImpl* pw = weight.impl().get();
  auto ids_copy = std::make_shared<std::vector<std::int64_t>>(ids);
  Tensor out = make_result(
      {n, h}, {weight.impl()}, [pw, ids_copy, h, n](const TensorImpl& self) {
        // Repeated ids make the scatter-add race over rows, so parallelize
        // over the h columns instead: every chunk walks all ids in order and
        // touches only its own column range of each weight row.
        const float* gall = self.grad.data();
        float* wgall = pw->grad.data();
        const std::int64_t* idp = ids_copy->data();
        backend::parallel_rows(h, 2 * n, [=](std::int64_t j0, std::int64_t j1) {
          for (std::int64_t i = 0; i < n; ++i) {
            const float* g = gall + i * h;
            float* wg = wgall + idp[i] * h;
            for (std::int64_t j = j0; j < j1; ++j) wg[j] += g[j];
          }
        });
      });
  const float* w = weight.data();
  float* dst = out.data();
  const std::int64_t* idp = ids_copy->data();
  backend::parallel_rows(n, h, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* row = w + idp[i] * h;
      std::copy(row, row + h, dst + i * h);
    }
  });
  return out;
}

Tensor cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& targets,
                     std::int64_t ignore_index) {
  if (logits.dim() != 2) {
    throw ShapeError("cross_entropy: logits must be 2D, got " +
                     shape_to_string(logits.shape()));
  }
  const std::int64_t n = logits.size(0), c = logits.size(1);
  if (static_cast<std::int64_t>(targets.size()) != n) {
    throw ShapeError("cross_entropy: " + std::to_string(targets.size()) +
                     " targets for " + std::to_string(n) + " rows");
  }
  std::int64_t active = 0;
  for (std::int64_t t : targets) {
    if (t == ignore_index) continue;
    if (t < 0 || t >= c) {
      throw ShapeError("cross_entropy: target " + std::to_string(t) +
                       " out of range [0," + std::to_string(c) + ")");
    }
    ++active;
  }
  if (active == 0) throw Error("cross_entropy: all targets ignored");

  // Cache the row-wise softmax for the backward pass.
  auto probs = std::make_shared<std::vector<float>>(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(c));
  auto tgt = std::make_shared<std::vector<std::int64_t>>(targets);

  // The loss is a reduction over rows: each chunk keeps a private double
  // partial, and the partials are combined in chunk order afterwards — the
  // summation tree depends only on the problem size, never on the budget.
  const float* x = logits.data();
  const std::int64_t work = 8 * c;
  std::vector<double> partials(backend::chunk_count(n, work), 0.0);
  {
    float* pall = probs->data();
    const std::int64_t* tp = tgt->data();
    double* parts = partials.data();
    backend::parallel_rows(n, work, [=](std::int64_t i0, std::int64_t i1) {
      double local = 0.0;
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* row = x + i * c;
        float* p = pall + i * c;
        float mx = row[0];
        for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
        float sum = 0.0f;
        for (std::int64_t j = 0; j < c; ++j) {
          p[j] = std::exp(row[j] - mx);
          sum += p[j];
        }
        const float inv = 1.0f / sum;
        for (std::int64_t j = 0; j < c; ++j) p[j] *= inv;
        if (tp[i] != ignore_index) {
          const float pt = std::max(p[tp[i]], 1e-12f);
          local -= std::log(pt);
        }
      }
      parts[backend::chunk_index(n, work, i0)] = local;
    });
  }
  double loss_acc = 0.0;
  for (double p : partials) loss_acc += p;

  TensorImpl* pl = logits.impl().get();
  const float inv_active = 1.0f / static_cast<float>(active);
  Tensor out = make_result(
      {}, {logits.impl()},
      [pl, probs, tgt, n, c, ignore_index, inv_active](const TensorImpl& self) {
        const float g = self.grad[0] * inv_active;
        const float* pall = probs->data();
        const std::int64_t* tp = tgt->data();
        float* dlall = pl->grad.data();
        backend::parallel_rows(n, 2 * c, [=](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            if (tp[i] == ignore_index) continue;
            const float* p = pall + i * c;
            float* dl = dlall + i * c;
            for (std::int64_t j = 0; j < c; ++j) dl[j] += g * p[j];
            dl[tp[i]] -= g;
          }
        });
      });
  out.data()[0] = static_cast<float>(loss_acc) * inv_active;
  return out;
}

}  // namespace cppflare::tensor
