// Raw GEMM kernels on contiguous row-major float buffers.
//
// All kernels *accumulate* into C (C += op(A) * op(B)); callers zero C when
// they want a plain product. Accumulating form is what autograd needs when
// several edges contribute to one gradient buffer. Loop orders are chosen so
// the innermost loop walks contiguous memory and vectorizes under -O3.
//
// The kernels are cache-blocked and dispatch their output-row panels through
// the compute backend (tensor/backend.h): panels run concurrently on the
// process-wide pool, each output row is produced by exactly one panel, and
// the per-row accumulation order is fixed independent of blocking and thread
// budget — results are bitwise identical for 1 vs N compute threads.
#pragma once

#include <cstdint>

namespace cppflare::tensor {

/// C[M,N] += A[M,K] * B[K,N]
void gemm_nn(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n);

/// C[M,N] += A[M,K] * B[N,K]^T   (i.e. C[i,j] += dot(A row i, B row j))
void gemm_nt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n);

/// C[K,N] += A[M,K]^T * B[M,N]
void gemm_tn(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n);

}  // namespace cppflare::tensor
