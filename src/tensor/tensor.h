// Dense float32 tensors with reverse-mode automatic differentiation.
//
// Design:
//  * `Tensor` is a cheap value handle over a shared `TensorImpl` holding a
//    contiguous row-major buffer plus (optionally) a gradient buffer and the
//    autograd edge that produced it.
//  * Ops (see ops.h) are free functions that compute the forward result and,
//    when gradients are enabled and any input requires them, record a
//    backward closure on the result node.
//  * `Tensor::backward()` runs a topological sweep from the calling node and
//    accumulates gradients into every reachable node with requires_grad.
//
// The engine is CPU-only and single-precision; this is the substitute for
// the PyTorch+CUDA substrate the paper runs on (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/error.h"
#include "core/rng.h"

namespace cppflare::tensor {

using Shape = std::vector<std::int64_t>;

/// Number of elements implied by a shape (product of dims; empty shape = 1,
/// representing a scalar).
std::int64_t numel_of(const Shape& shape);

/// Human-readable "[2, 3, 4]".
std::string shape_to_string(const Shape& shape);

struct TensorImpl;
using ImplPtr = std::shared_ptr<TensorImpl>;

/// Backward closure: reads `self.grad`, accumulates into parents' grads.
using BackwardFn = std::function<void(const TensorImpl& self)>;

struct TensorImpl {
  std::vector<float> data;
  Shape shape;
  bool requires_grad = false;

  // Autograd state. `grad` is lazily allocated by ensure_grad(). Parents
  // are kept alive by the child so a loss value retains its whole graph.
  std::vector<float> grad;
  BackwardFn backward_fn;
  std::vector<ImplPtr> parents;

  std::int64_t numel() const { return numel_of(shape); }
  void ensure_grad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

/// RAII guard disabling gradient recording on this thread (evaluation mode).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// True if this thread currently records autograd edges.
bool grad_enabled();

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(ImplPtr impl) : impl_(std::move(impl)) {}

  // ---- factories -------------------------------------------------------
  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float value, bool requires_grad = false);
  static Tensor from_data(Shape shape, std::vector<float> values,
                          bool requires_grad = false);
  static Tensor scalar(float value, bool requires_grad = false);
  /// i.i.d. normal entries; used by weight initializers.
  static Tensor randn(Shape shape, core::Rng& rng, float mean = 0.0f,
                      float stddev = 1.0f, bool requires_grad = false);

  // ---- introspection ---------------------------------------------------
  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const { return impl_->shape; }
  std::int64_t dim() const { return static_cast<std::int64_t>(impl_->shape.size()); }
  std::int64_t size(std::int64_t axis) const;
  std::int64_t numel() const { return impl_->numel(); }
  bool requires_grad() const { return impl_->requires_grad; }

  float* data() { return impl_->data.data(); }
  const float* data() const { return impl_->data.data(); }
  std::vector<float>& vec() { return impl_->data; }
  const std::vector<float>& vec() const { return impl_->data; }

  /// Gradient buffer; throws if backward has not populated it.
  const std::vector<float>& grad() const;
  std::vector<float>& mutable_grad();

  /// Scalar accessors (tensor must have exactly one element).
  float item() const;

  const ImplPtr& impl() const { return impl_; }

  // ---- autograd --------------------------------------------------------
  /// Runs reverse-mode differentiation seeded with d(self)/d(self) = 1.
  /// `self` must be a scalar (numel == 1).
  void backward();

  /// Clears this node's gradient buffer (used on parameters between steps).
  void zero_grad();

 private:
  ImplPtr impl_;
};

/// Creates a detached constant node sharing no autograd history but copying
/// the data buffer of `t`.
Tensor detach_copy(const Tensor& t);

/// Asserts two shapes are identical; throws ShapeError naming `op`.
void check_same_shape(const char* op, const Tensor& a, const Tensor& b);

}  // namespace cppflare::tensor
