#include <numeric>

#include "tensor/backend.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"

namespace cppflare::tensor {

using detail::make_result;

Tensor reshape(const Tensor& a, Shape shape) {
  if (numel_of(shape) != a.numel()) {
    throw ShapeError("reshape: cannot view " + shape_to_string(a.shape()) + " as " +
                     shape_to_string(shape));
  }
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(
      std::move(shape), {a.impl()}, [pa](const TensorImpl& self) {
        const float* g = self.grad.data();
        float* ga = pa->grad.data();
        const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
        backend::parallel_rows(n, 1, [=](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) ga[i] += g[i];
        });
      });
  out.vec() = a.vec();
  return out;
}

namespace {

/// Row-major strides for a shape.
std::vector<std::int64_t> strides_of(const Shape& shape) {
  std::vector<std::int64_t> strides(shape.size(), 1);
  for (std::size_t i = shape.size(); i-- > 1;) {
    strides[i - 1] = strides[i] * shape[i];
  }
  return strides;
}

/// Copies `src` (laid out as `src_shape`) into `dst` permuted by `perm`:
/// dst index (i_perm[0], ..., i_perm[r-1]) = src index (i_0, ..., i_{r-1}).
/// When `transpose_direction` is true the roles are swapped, which realizes
/// the inverse permutation without computing it explicitly.
void permute_copy(const float* src, float* dst, const Shape& src_shape,
                  const std::vector<std::int64_t>& perm, bool inverse) {
  const std::size_t rank = src_shape.size();
  Shape dst_shape(rank);
  for (std::size_t i = 0; i < rank; ++i) dst_shape[i] = src_shape[perm[i]];
  const auto dst_strides = strides_of(dst_shape);

  const std::int64_t total = numel_of(src_shape);
  // dst position of source axis k is perm^{-1}(k); precompute the stride the
  // destination offset moves by when source index k increments.
  std::vector<std::int64_t> dst_stride_for_src_axis(rank, 0);
  for (std::size_t d = 0; d < rank; ++d) {
    dst_stride_for_src_axis[perm[d]] = dst_strides[d];
  }
  const auto src_strides = strides_of(src_shape);

  // Walk the source linearly per chunk; the destination offset is seeded from
  // the chunk's first multi-index and then maintained incrementally. Forward
  // writes dst[dst_off] (a bijection of linear), inverse writes dst[linear] —
  // either way chunk outputs are disjoint.
  backend::parallel_rows(total, 2, [&](std::int64_t l0, std::int64_t l1) {
    std::vector<std::int64_t> idx(rank, 0);
    std::int64_t dst_off = 0;
    std::int64_t rem = l0;
    for (std::size_t k = 0; k < rank; ++k) {
      idx[k] = rem / src_strides[k];
      rem %= src_strides[k];
      dst_off += idx[k] * dst_stride_for_src_axis[k];
    }
    for (std::int64_t linear = l0; linear < l1; ++linear) {
      if (inverse) {
        dst[linear] += src[dst_off];
      } else {
        dst[dst_off] = src[linear];
      }
      // Increment the multi-index (row-major, last axis fastest).
      for (std::size_t k = rank; k-- > 0;) {
        idx[k] += 1;
        dst_off += dst_stride_for_src_axis[k];
        if (idx[k] < src_shape[k]) break;
        dst_off -= dst_stride_for_src_axis[k] * src_shape[k];
        idx[k] = 0;
      }
    }
  });
}

}  // namespace

Tensor permute(const Tensor& a, const std::vector<std::int64_t>& perm) {
  const std::size_t rank = a.shape().size();
  if (perm.size() != rank) {
    throw ShapeError("permute: perm size " + std::to_string(perm.size()) +
                     " vs rank " + std::to_string(rank));
  }
  std::vector<bool> seen(rank, false);
  Shape out_shape(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    const std::int64_t p = perm[i];
    if (p < 0 || p >= static_cast<std::int64_t>(rank) || seen[p]) {
      throw ShapeError("permute: invalid permutation");
    }
    seen[p] = true;
    out_shape[i] = a.shape()[p];
  }
  TensorImpl* pa = a.impl().get();
  const Shape src_shape = a.shape();
  Tensor out = make_result(out_shape, {a.impl()},
                           [pa, src_shape, perm](const TensorImpl& self) {
                             permute_copy(self.grad.data(), pa->grad.data(),
                                          src_shape, perm, /*inverse=*/true);
                           });
  permute_copy(a.data(), out.data(), src_shape, perm, /*inverse=*/false);
  return out;
}

Tensor select_dim1(const Tensor& x, std::int64_t index) {
  if (x.dim() != 3) {
    throw ShapeError("select_dim1: expected 3D, got " + shape_to_string(x.shape()));
  }
  const std::int64_t b = x.size(0), t = x.size(1), h = x.size(2);
  if (index < 0 || index >= t) {
    throw ShapeError("select_dim1: index " + std::to_string(index) + " out of [0," +
                     std::to_string(t) + ")");
  }
  TensorImpl* px = x.impl().get();
  Tensor out = make_result({b, h}, {x.impl()},
                           [px, b, t, h, index](const TensorImpl& self) {
                             for (std::int64_t i = 0; i < b; ++i) {
                               float* g = px->grad.data() + (i * t + index) * h;
                               const float* s = self.grad.data() + i * h;
                               for (std::int64_t j = 0; j < h; ++j) g[j] += s[j];
                             }
                           });
  for (std::int64_t i = 0; i < b; ++i) {
    const float* src = x.data() + (i * t + index) * h;
    float* dst = out.data() + i * h;
    std::copy(src, src + h, dst);
  }
  return out;
}

Tensor slice_cols(const Tensor& x, std::int64_t start, std::int64_t len) {
  if (x.dim() != 2) {
    throw ShapeError("slice_cols: expected 2D, got " + shape_to_string(x.shape()));
  }
  const std::int64_t m = x.size(0), n = x.size(1);
  if (start < 0 || len <= 0 || start + len > n) {
    throw ShapeError("slice_cols: range [" + std::to_string(start) + ", " +
                     std::to_string(start + len) + ") out of " + std::to_string(n));
  }
  TensorImpl* px = x.impl().get();
  Tensor out = make_result({m, len}, {x.impl()},
                           [px, m, n, start, len](const TensorImpl& self) {
                             for (std::int64_t i = 0; i < m; ++i) {
                               float* g = px->grad.data() + i * n + start;
                               const float* s = self.grad.data() + i * len;
                               for (std::int64_t j = 0; j < len; ++j) g[j] += s[j];
                             }
                           });
  for (std::int64_t i = 0; i < m; ++i) {
    const float* src = x.data() + i * n + start;
    std::copy(src, src + len, out.data() + i * len);
  }
  return out;
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  if (parts.empty()) throw ShapeError("concat_cols: no inputs");
  const std::int64_t m = parts[0].size(0);
  std::int64_t total = 0;
  std::vector<ImplPtr> parents;
  parents.reserve(parts.size());
  for (const Tensor& p : parts) {
    if (p.dim() != 2 || p.size(0) != m) {
      throw ShapeError("concat_cols: inconsistent shapes");
    }
    total += p.size(1);
    parents.push_back(p.impl());
  }
  std::vector<TensorImpl*> raw;
  std::vector<std::int64_t> widths;
  raw.reserve(parts.size());
  for (const Tensor& p : parts) {
    raw.push_back(p.impl().get());
    widths.push_back(p.size(1));
  }
  Tensor out = make_result({m, total}, std::move(parents),
                           [raw, widths, m, total](const TensorImpl& self) {
                             std::int64_t off = 0;
                             for (std::size_t pi = 0; pi < raw.size(); ++pi) {
                               const std::int64_t w = widths[pi];
                               for (std::int64_t i = 0; i < m; ++i) {
                                 const float* s = self.grad.data() + i * total + off;
                                 float* g = raw[pi]->grad.data() + i * w;
                                 for (std::int64_t j = 0; j < w; ++j) g[j] += s[j];
                               }
                               off += w;
                             }
                           });
  std::int64_t off = 0;
  for (const Tensor& p : parts) {
    const std::int64_t w = p.size(1);
    for (std::int64_t i = 0; i < m; ++i) {
      std::copy(p.data() + i * w, p.data() + (i + 1) * w,
                out.data() + i * total + off);
    }
    off += w;
  }
  return out;
}

Tensor stack_dim1(const std::vector<Tensor>& steps) {
  if (steps.empty()) throw ShapeError("stack_dim1: no inputs");
  const std::int64_t b = steps[0].size(0), h = steps[0].size(1);
  const std::int64_t t = static_cast<std::int64_t>(steps.size());
  std::vector<ImplPtr> parents;
  std::vector<TensorImpl*> raw;
  parents.reserve(steps.size());
  raw.reserve(steps.size());
  for (const Tensor& s : steps) {
    if (s.dim() != 2 || s.size(0) != b || s.size(1) != h) {
      throw ShapeError("stack_dim1: inconsistent step shapes");
    }
    parents.push_back(s.impl());
    raw.push_back(s.impl().get());
  }
  Tensor out = make_result(
      {b, t, h}, std::move(parents), [raw, b, t, h](const TensorImpl& self) {
        // Steps are independent: step ti owns both its grad buffer and the
        // t-slice it reads, so parallelize over ti.
        const float* gall = self.grad.data();
        backend::parallel_rows(t, 2 * b * h, [&, gall](std::int64_t t0,
                                                       std::int64_t t1) {
          for (std::int64_t ti = t0; ti < t1; ++ti) {
            for (std::int64_t bi = 0; bi < b; ++bi) {
              const float* g = gall + (bi * t + ti) * h;
              float* pg = raw[ti]->grad.data() + bi * h;
              for (std::int64_t j = 0; j < h; ++j) pg[j] += g[j];
            }
          }
        });
      });
  {
    float* dst = out.data();
    backend::parallel_rows(t, 2 * b * h, [&, dst](std::int64_t t0,
                                                  std::int64_t t1) {
      for (std::int64_t ti = t0; ti < t1; ++ti) {
        for (std::int64_t bi = 0; bi < b; ++bi) {
          const float* src = steps[ti].data() + bi * h;
          std::copy(src, src + h, dst + (bi * t + ti) * h);
        }
      }
    });
  }
  return out;
}

Tensor gather_dim1(const Tensor& x, const std::vector<std::int64_t>& idx) {
  if (x.dim() != 3) {
    throw ShapeError("gather_dim1: expected 3D, got " + shape_to_string(x.shape()));
  }
  const std::int64_t b = x.size(0), t = x.size(1), h = x.size(2);
  if (static_cast<std::int64_t>(idx.size()) != b) {
    throw ShapeError("gather_dim1: " + std::to_string(idx.size()) +
                     " indices for batch " + std::to_string(b));
  }
  for (std::int64_t i : idx) {
    if (i < 0 || i >= t) {
      throw ShapeError("gather_dim1: index " + std::to_string(i) + " out of [0," +
                       std::to_string(t) + ")");
    }
  }
  TensorImpl* px = x.impl().get();
  auto idx_copy = std::make_shared<std::vector<std::int64_t>>(idx);
  Tensor out = make_result({b, h}, {x.impl()},
                           [px, idx_copy, t, h](const TensorImpl& self) {
                             for (std::size_t bi = 0; bi < idx_copy->size(); ++bi) {
                               const float* g = self.grad.data() + bi * h;
                               float* pg = px->grad.data() +
                                           (static_cast<std::int64_t>(bi) * t +
                                            (*idx_copy)[bi]) *
                                               h;
                               for (std::int64_t j = 0; j < h; ++j) pg[j] += g[j];
                             }
                           });
  for (std::int64_t bi = 0; bi < b; ++bi) {
    const float* src = x.data() + (bi * t + idx[bi]) * h;
    std::copy(src, src + h, out.data() + bi * h);
  }
  return out;
}

}  // namespace cppflare::tensor
