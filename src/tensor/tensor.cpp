#include "tensor/tensor.h"

#include <sstream>
#include <unordered_set>

namespace cppflare::tensor {

namespace {
thread_local bool g_grad_enabled = true;
}  // namespace

std::int64_t numel_of(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) { g_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool grad_enabled() { return g_grad_enabled; }

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<std::size_t>(numel_of(impl->shape)), 0.0f);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  Tensor t = zeros(std::move(shape), requires_grad);
  for (float& x : t.vec()) x = value;
  return t;
}

Tensor Tensor::from_data(Shape shape, std::vector<float> values, bool requires_grad) {
  if (numel_of(shape) != static_cast<std::int64_t>(values.size())) {
    throw ShapeError("from_data: shape " + shape_to_string(shape) + " needs " +
                     std::to_string(numel_of(shape)) + " values, got " +
                     std::to_string(values.size()));
  }
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::scalar(float value, bool requires_grad) {
  return from_data({}, {value}, requires_grad);
}

Tensor Tensor::randn(Shape shape, core::Rng& rng, float mean, float stddev,
                     bool requires_grad) {
  Tensor t = zeros(std::move(shape), requires_grad);
  for (float& x : t.vec()) x = static_cast<float>(rng.normal(mean, stddev));
  return t;
}

std::int64_t Tensor::size(std::int64_t axis) const {
  const auto& s = impl_->shape;
  if (axis < 0) axis += static_cast<std::int64_t>(s.size());
  if (axis < 0 || axis >= static_cast<std::int64_t>(s.size())) {
    throw ShapeError("size(): axis " + std::to_string(axis) + " out of range for " +
                     shape_to_string(s));
  }
  return s[static_cast<std::size_t>(axis)];
}

const std::vector<float>& Tensor::grad() const {
  if (impl_->grad.size() != impl_->data.size()) {
    throw Error("grad accessed before backward populated it");
  }
  return impl_->grad;
}

std::vector<float>& Tensor::mutable_grad() {
  impl_->ensure_grad();
  return impl_->grad;
}

float Tensor::item() const {
  if (numel() != 1) {
    throw ShapeError("item() on tensor with " + std::to_string(numel()) + " elements");
  }
  return impl_->data[0];
}

void Tensor::backward() {
  if (numel() != 1) {
    throw ShapeError("backward() requires a scalar loss, got shape " +
                     shape_to_string(shape()));
  }
  // Topological order via iterative post-order DFS over parent edges.
  std::vector<TensorImpl*> order;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    std::size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_parent < frame.node->parents.size()) {
      TensorImpl* parent = frame.node->parents[frame.next_parent++].get();
      if (visited.insert(parent).second) stack.push_back({parent, 0});
    } else {
      order.push_back(frame.node);
      stack.pop_back();
    }
  }

  impl_->ensure_grad();
  impl_->grad[0] = 1.0f;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* node = *it;
    if (node->backward_fn) {
      for (const ImplPtr& parent : node->parents) parent->ensure_grad();
      node->backward_fn(*node);
    }
  }
}

void Tensor::zero_grad() {
  if (!impl_->grad.empty()) {
    std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
  }
}

Tensor detach_copy(const Tensor& t) {
  return Tensor::from_data(t.shape(), t.vec(), false);
}

void check_same_shape(const char* op, const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) {
    throw ShapeError(std::string(op) + ": shapes differ, " +
                     shape_to_string(a.shape()) + " vs " + shape_to_string(b.shape()));
  }
}

}  // namespace cppflare::tensor
