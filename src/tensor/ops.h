// Differentiable operations over `Tensor`.
//
// Every function computes its result eagerly and, when gradient recording is
// active (see NoGradGuard) and at least one input participates in autograd,
// attaches a backward closure to the result. Shapes are validated up front;
// all errors are `ShapeError`.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace cppflare::tensor {

// ---- elementwise binary (equal shapes) -----------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

// ---- scalar ----------------------------------------------------------------
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);
Tensor neg(const Tensor& a);

/// x[..., N] + bias[N] broadcast over all leading dims.
Tensor add_bias(const Tensor& x, const Tensor& bias);

// ---- activations ------------------------------------------------------------
Tensor relu(const Tensor& a);
Tensor tanh_op(const Tensor& a);
Tensor sigmoid(const Tensor& a);
/// GELU, tanh approximation (as used by BERT).
Tensor gelu(const Tensor& a);

/// Inverted dropout: keeps values with probability 1-p and rescales by
/// 1/(1-p). Identity when p == 0. Callers pass p = 0 in evaluation mode.
Tensor dropout(const Tensor& a, float p, core::Rng& rng);

// ---- matrix products ---------------------------------------------------------
/// [M,K] x [K,N] -> [M,N]
Tensor matmul(const Tensor& a, const Tensor& b);
/// Affine map with PyTorch weight layout: x[M,K], w[N,K], optional b[N].
/// Returns x * w^T + b, shape [M,N]. Pass an undefined Tensor for no bias.
Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b);
/// Batched [B,M,K] x [B,K,N] -> [B,M,N]
Tensor bmm(const Tensor& a, const Tensor& b);
/// Batched with transposed RHS: [B,M,K] x [B,N,K] -> [B,M,N]
/// (attention scores: Q x K^T without materializing the transpose).
Tensor bmm_nt(const Tensor& a, const Tensor& b);

// ---- shape ---------------------------------------------------------------
/// Copies into a new contiguous tensor of `shape` (same numel).
Tensor reshape(const Tensor& a, Shape shape);
/// General axis permutation, e.g. {0,2,1,3} to split attention heads.
Tensor permute(const Tensor& a, const std::vector<std::int64_t>& perm);
/// x[B,T,H] -> x[:, index, :] of shape [B,H].
Tensor select_dim1(const Tensor& x, std::int64_t index);
/// x[M,N] -> x[:, start:start+len] of shape [M,len].
Tensor slice_cols(const Tensor& x, std::int64_t start, std::int64_t len);
/// Concatenates 2D tensors [M,Ni] along columns.
Tensor concat_cols(const std::vector<Tensor>& parts);
/// Stacks T tensors of shape [B,H] into [B,T,H] (time-major assembly of
/// recurrent outputs).
Tensor stack_dim1(const std::vector<Tensor>& steps);
/// Per-row time gather: x[B,T,H], idx (length B, values in [0,T)) ->
/// out[b,:] = x[b, idx[b], :]. Used to read each sequence's last valid
/// hidden state under padding.
Tensor gather_dim1(const Tensor& x, const std::vector<std::int64_t>& idx);

// ---- reductions ------------------------------------------------------------
Tensor sum_all(const Tensor& a);
Tensor mean_all(const Tensor& a);

// ---- fused NN ops -----------------------------------------------------------
/// Softmax over the last axis.
Tensor softmax_lastdim(const Tensor& a);

/// Layer normalization over the last axis with affine parameters.
/// gamma/beta have shape [H] where H is the last dim of x.
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);

/// Token embedding lookup: weight[V,H], ids (len N, values in [0,V)) ->
/// [N,H]. Gradient scatters rows back into the weight matrix.
Tensor embedding(const Tensor& weight, const std::vector<std::int64_t>& ids);

/// Mean cross-entropy over rows of logits[N,C] against integer targets
/// (length N). Rows whose target equals `ignore_index` contribute neither
/// to the loss nor to the gradient. Returns a scalar; throws if every
/// target is ignored.
Tensor cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& targets,
                     std::int64_t ignore_index = -100);

}  // namespace cppflare::tensor
