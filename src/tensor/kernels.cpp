#include "tensor/kernels.h"

#include <algorithm>

#include "core/trace.h"
#include "tensor/backend.h"

namespace cppflare::tensor {

namespace {

// Cache-block sizes, in elements. kKc K-rows of B (kKc * N floats for the
// shapes in this codebase, N <= 1024) fit comfortably in L2 and are reused
// across every row of a panel; kJc/kMc bound the B panel footprint for the
// dot-product and transposed variants the same way. Block order is fixed
// and never depends on the thread budget, so the per-output accumulation
// order — and therefore the float result — is identical at any thread
// count (see backend.h).
constexpr std::int64_t kKc = 128;
constexpr std::int64_t kJc = 64;
constexpr std::int64_t kMc = 128;

}  // namespace

void gemm_nn(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  CF_TRACE_SPAN("tensor.gemm_nn");
  // Row panels of C are independent; within a panel, k is consumed in
  // ascending kKc blocks so each B block is streamed once per row while C
  // rows stay hot. Inner j loop is a branchless axpy: dense (post-init)
  // weights make a zero-skip test a guaranteed mispredict, and an
  // input-dependent branch would make runtime data-dependent.
  backend::parallel_rows(m, 2 * k * n, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t k0 = 0; k0 < k; k0 += kKc) {
      const std::int64_t k1 = std::min(k, k0 + kKc);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* crow = c + i * n;
        const float* arow = a + i * k;
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const float aik = arow[kk];
          const float* brow = b + kk * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  });
}

void gemm_nt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  CF_TRACE_SPAN("tensor.gemm_nt");
  // Dot products of contiguous rows. Four B rows are consumed per pass so
  // each load of the A row feeds four independent accumulator chains —
  // without this the loop is latency-bound on one serial reduction. A j
  // block of B rows (kJc * k floats) is reused across the whole row panel.
  // Each C element is one dot product, so blocking cannot change its
  // accumulation order.
  backend::parallel_rows(m, 2 * k * n, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t j0 = 0; j0 < n; j0 += kJc) {
      const std::int64_t j1 = std::min(n, j0 + kJc);
      for (std::int64_t i = i0; i < i1; ++i) {
        const float* arow = a + i * k;
        float* crow = c + i * n;
        std::int64_t j = j0;
        for (; j + 4 <= j1; j += 4) {
          const float* b0 = b + j * k;
          const float* b1 = b0 + k;
          const float* b2 = b1 + k;
          const float* b3 = b2 + k;
          float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            acc0 += av * b0[kk];
            acc1 += av * b1[kk];
            acc2 += av * b2[kk];
            acc3 += av * b3[kk];
          }
          crow[j] += acc0;
          crow[j + 1] += acc1;
          crow[j + 2] += acc2;
          crow[j + 3] += acc3;
        }
        for (; j < j1; ++j) {
          const float* brow = b + j * k;
          float acc = 0.0f;
          for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
          crow[j] += acc;
        }
      }
    }
  });
}

void gemm_tn(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  CF_TRACE_SPAN("tensor.gemm_tn");
  // C rows are indexed by kk here, so the parallel dimension is k. Within a
  // panel, m is consumed in ascending kMc blocks: B row i is streamed once
  // per panel row while the A slice a[i*k + kk0..kk1) stays contiguous.
  // Accumulation into each C row runs over i ascending regardless of
  // blocking or panel split.
  backend::parallel_rows(k, 2 * m * n, [=](std::int64_t kk0, std::int64_t kk1) {
    for (std::int64_t m0 = 0; m0 < m; m0 += kMc) {
      const std::int64_t m1 = std::min(m, m0 + kMc);
      for (std::int64_t i = m0; i < m1; ++i) {
        const float* arow = a + i * k;
        const float* brow = b + i * n;
        for (std::int64_t kk = kk0; kk < kk1; ++kk) {
          const float aik = arow[kk];
          float* crow = c + kk * n;
          for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
        }
      }
    }
  });
}

}  // namespace cppflare::tensor
