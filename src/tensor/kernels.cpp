#include "tensor/kernels.h"

namespace cppflare::tensor {

void gemm_nn(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  // i-k-j order: for fixed (i,k) the inner loop streams B row k and C row i.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    const float* arow = a + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = b + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemm_nt(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  // Dot products of contiguous rows. Four B rows are consumed per pass so
  // each load of the A row feeds four independent accumulator chains —
  // without this the loop is latency-bound on one serial reduction.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * n;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const float* b0 = b + j * k;
      const float* b1 = b0 + k;
      const float* b2 = b1 + k;
      const float* b3 = b2 + k;
      float acc0 = 0.0f, acc1 = 0.0f, acc2 = 0.0f, acc3 = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = arow[kk];
        acc0 += av * b0[kk];
        acc1 += av * b1[kk];
        acc2 += av * b2[kk];
        acc3 += av * b3[kk];
      }
      crow[j] += acc0;
      crow[j + 1] += acc1;
      crow[j + 2] += acc2;
      crow[j + 3] += acc3;
    }
    for (; j < n; ++j) {
      const float* brow = b + j * k;
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += arow[kk] * brow[kk];
      crow[j] += acc;
    }
  }
}

void gemm_tn(const float* a, const float* b, float* c, std::int64_t m,
             std::int64_t k, std::int64_t n) {
  // m-k-j order: inner loop streams B row i and C row kk.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * k;
    const float* brow = b + i * n;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      float* crow = c + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

}  // namespace cppflare::tensor
