// Internal helpers shared by the op implementation files. Not installed as
// public API.
#pragma once

#include <utility>

#include "tensor/tensor.h"

namespace cppflare::tensor::detail {

/// A node participates in autograd if it is a leaf that requires grad or an
/// interior node that recorded edges.
inline bool tracked(const ImplPtr& p) {
  return p->requires_grad || !p->parents.empty();
}

/// Allocates the result node for an op. If gradient recording is active and
/// any parent is tracked, attaches the parents and the backward closure;
/// otherwise the result is a plain constant.
///
/// Backward closures must reference parents through raw pointers captured at
/// construction; the recorded `parents` vector keeps them alive for as long
/// as the result exists, and untracked results never invoke the closure.
inline Tensor make_result(Shape shape, std::vector<ImplPtr> parents, BackwardFn fn) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data.assign(static_cast<std::size_t>(numel_of(impl->shape)), 0.0f);
  bool record = grad_enabled();
  if (record) {
    bool any = false;
    for (const ImplPtr& p : parents) any = any || tracked(p);
    record = any;
  }
  if (record) {
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(fn);
  }
  return Tensor(std::move(impl));
}

}  // namespace cppflare::tensor::detail
