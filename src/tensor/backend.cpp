#include "tensor/backend.h"

#include "core/parallel.h"
#include "core/trace.h"

namespace cppflare::tensor::backend {

namespace {

inline std::int64_t clamp_work(std::int64_t work_per_item) {
  return work_per_item < 1 ? 1 : work_per_item;
}

inline bool below_threshold(std::int64_t items, std::int64_t work_per_item) {
  // items and work are both bounded by tensor sizes (< 2^40 in practice),
  // so the product cannot overflow int64.
  return items * clamp_work(work_per_item) < kSerialWorkThreshold;
}

}  // namespace

std::int64_t grain_for(std::int64_t items, std::int64_t work_per_item) {
  std::int64_t grain = kGrainWork / clamp_work(work_per_item);
  if (grain < 1) grain = 1;
  if (grain > items) grain = items;
  return grain;
}

void parallel_rows(std::int64_t items, std::int64_t work_per_item,
                   const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (items <= 0) return;
  if (below_threshold(items, work_per_item)) {
    fn(0, items);
    return;
  }
  // Only the parallel branch is traced: the serial-inline path handles tiny
  // ops far too frequent to record usefully.
  CF_TRACE_SPAN("tensor.parallel_rows");
  core::parallel_for(0, items, grain_for(items, work_per_item), fn);
}

std::int64_t chunk_count(std::int64_t items, std::int64_t work_per_item) {
  if (items <= 0) return 0;
  if (below_threshold(items, work_per_item)) return 1;
  const std::int64_t grain = grain_for(items, work_per_item);
  return (items + grain - 1) / grain;
}

std::int64_t chunk_index(std::int64_t items, std::int64_t work_per_item,
                         std::int64_t begin) {
  if (below_threshold(items, work_per_item)) return 0;
  return begin / grain_for(items, work_per_item);
}

}  // namespace cppflare::tensor::backend
