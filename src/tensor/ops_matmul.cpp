#include "tensor/backend.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"

namespace cppflare::tensor {

using detail::make_result;

namespace {

void check_2d(const char* op, const Tensor& t) {
  if (t.dim() != 2) {
    throw ShapeError(std::string(op) + ": expected 2D, got " +
                     shape_to_string(t.shape()));
  }
}

void check_3d(const char* op, const Tensor& t) {
  if (t.dim() != 3) {
    throw ShapeError(std::string(op) + ": expected 3D, got " +
                     shape_to_string(t.shape()));
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_2d("matmul", a);
  check_2d("matmul", b);
  const std::int64_t m = a.size(0), k = a.size(1), n = b.size(1);
  if (b.size(0) != k) {
    throw ShapeError("matmul: " + shape_to_string(a.shape()) + " x " +
                     shape_to_string(b.shape()));
  }
  TensorImpl* pa = a.impl().get();
  TensorImpl* pb = b.impl().get();
  Tensor out = make_result({m, n}, {a.impl(), b.impl()},
                           [pa, pb, m, k, n](const TensorImpl& self) {
                             // dA = dC * B^T ; dB = A^T * dC
                             gemm_nt(self.grad.data(), pb->data.data(),
                                     pa->grad.data(), m, n, k);
                             gemm_tn(pa->data.data(), self.grad.data(),
                                     pb->grad.data(), m, k, n);
                           });
  gemm_nn(a.data(), b.data(), out.data(), m, k, n);
  return out;
}

Tensor linear(const Tensor& x, const Tensor& w, const Tensor& b) {
  check_2d("linear", x);
  check_2d("linear", w);
  const std::int64_t m = x.size(0), k = x.size(1), n = w.size(0);
  if (w.size(1) != k) {
    throw ShapeError("linear: x " + shape_to_string(x.shape()) + " vs w " +
                     shape_to_string(w.shape()));
  }
  const bool has_bias = b.defined();
  if (has_bias && (b.dim() != 1 || b.size(0) != n)) {
    throw ShapeError("linear: bias " + shape_to_string(b.shape()) + " vs out dim " +
                     std::to_string(n));
  }

  TensorImpl* px = x.impl().get();
  TensorImpl* pw = w.impl().get();
  TensorImpl* pbias = has_bias ? b.impl().get() : nullptr;
  std::vector<ImplPtr> parents = {x.impl(), w.impl()};
  if (has_bias) parents.push_back(b.impl());

  Tensor out = make_result(
      {m, n}, std::move(parents), [px, pw, pbias, m, k, n](const TensorImpl& self) {
        // y = x w^T + b:  dx = dy * w ; dw = dy^T * x ; db = column sums of dy
        gemm_nn(self.grad.data(), pw->data.data(), px->grad.data(), m, n, k);
        gemm_tn(self.grad.data(), px->data.data(), pw->grad.data(), m, n, k);
        if (pbias != nullptr) {
          // Rows all touch every bias column, so parallelize over columns:
          // each column sums its dy entries over i ascending, independent of
          // the chunking.
          const float* g = self.grad.data();
          float* db = pbias->grad.data();
          backend::parallel_rows(n, 2 * m, [=](std::int64_t j0, std::int64_t j1) {
            for (std::int64_t i = 0; i < m; ++i) {
              const float* grow = g + i * n;
              for (std::int64_t j = j0; j < j1; ++j) db[j] += grow[j];
            }
          });
        }
      });
  gemm_nt(x.data(), w.data(), out.data(), m, k, n);
  if (has_bias) {
    float* dst = out.data();
    const float* bias = b.data();
    backend::parallel_rows(m, n, [=](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        for (std::int64_t j = 0; j < n; ++j) dst[i * n + j] += bias[j];
      }
    });
  }
  return out;
}

Tensor bmm(const Tensor& a, const Tensor& b) {
  check_3d("bmm", a);
  check_3d("bmm", b);
  const std::int64_t batch = a.size(0), m = a.size(1), k = a.size(2), n = b.size(2);
  if (b.size(0) != batch || b.size(1) != k) {
    throw ShapeError("bmm: " + shape_to_string(a.shape()) + " x " +
                     shape_to_string(b.shape()));
  }
  TensorImpl* pa = a.impl().get();
  TensorImpl* pb = b.impl().get();
  Tensor out = make_result(
      {batch, m, n}, {a.impl(), b.impl()},
      [pa, pb, batch, m, k, n](const TensorImpl& self) {
        // Batch entries are independent; the nested GEMMs run serial-inline
        // inside the batch-parallel region (core/parallel.h), which is
        // covered by their determinism contract.
        const float* gall = self.grad.data();
        backend::parallel_rows(
            batch, 4 * m * k * n, [&, gall](std::int64_t b0, std::int64_t b1) {
              for (std::int64_t bi = b0; bi < b1; ++bi) {
                const float* g = gall + bi * m * n;
                gemm_nt(g, pb->data.data() + bi * k * n,
                        pa->grad.data() + bi * m * k, m, n, k);
                gemm_tn(pa->data.data() + bi * m * k, g,
                        pb->grad.data() + bi * k * n, m, k, n);
              }
            });
      });
  {
    const float* pad = a.data();
    const float* pbd = b.data();
    float* pod = out.data();
    backend::parallel_rows(
        batch, 2 * m * k * n, [=](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t bi = b0; bi < b1; ++bi) {
            gemm_nn(pad + bi * m * k, pbd + bi * k * n, pod + bi * m * n, m, k,
                    n);
          }
        });
  }
  return out;
}

Tensor bmm_nt(const Tensor& a, const Tensor& b) {
  check_3d("bmm_nt", a);
  check_3d("bmm_nt", b);
  const std::int64_t batch = a.size(0), m = a.size(1), k = a.size(2), n = b.size(1);
  if (b.size(0) != batch || b.size(2) != k) {
    throw ShapeError("bmm_nt: " + shape_to_string(a.shape()) + " x " +
                     shape_to_string(b.shape()));
  }
  TensorImpl* pa = a.impl().get();
  TensorImpl* pb = b.impl().get();
  Tensor out = make_result(
      {batch, m, n}, {a.impl(), b.impl()},
      [pa, pb, batch, m, k, n](const TensorImpl& self) {
        // C = A * B^T:  dA = dC * B ; dB = dC^T * A
        const float* gall = self.grad.data();
        backend::parallel_rows(
            batch, 4 * m * k * n, [&, gall](std::int64_t b0, std::int64_t b1) {
              for (std::int64_t bi = b0; bi < b1; ++bi) {
                const float* g = gall + bi * m * n;
                gemm_nn(g, pb->data.data() + bi * n * k,
                        pa->grad.data() + bi * m * k, m, n, k);
                gemm_tn(g, pa->data.data() + bi * m * k,
                        pb->grad.data() + bi * n * k, m, n, k);
              }
            });
      });
  {
    const float* pad = a.data();
    const float* pbd = b.data();
    float* pod = out.data();
    backend::parallel_rows(
        batch, 2 * m * k * n, [=](std::int64_t b0, std::int64_t b1) {
          for (std::int64_t bi = b0; bi < b1; ++bi) {
            gemm_nt(pad + bi * m * k, pbd + bi * n * k, pod + bi * m * n, m, k,
                    n);
          }
        });
  }
  return out;
}

}  // namespace cppflare::tensor
