// Tensor-level dispatch onto the core compute backend.
//
// Every data-parallel loop in the tensor/NN stack goes through this facade
// instead of calling core::parallel_for directly. The facade owns the
// policy: a serial threshold (tiny ops never pay dispatch overhead) and a
// grain heuristic (target scalar-ops per chunk), both functions of the
// problem size only — never of the thread budget — so the chunk
// decomposition is deterministic and results are bitwise identical for
// 1 vs N compute threads (see core/parallel.h for the full contract).
//
// Adding a new kernel: express it as independent "items" (output rows,
// batch entries, column blocks), estimate the scalar work per item, and
// wrap the loop body in `parallel_rows(items, work_per_item, fn)`. If the
// kernel reduces across items (e.g. a scalar loss), keep one partial per
// chunk — `chunk_count`/`chunk_index` expose the exact decomposition — and
// combine the partials in chunk order afterwards.
#pragma once

#include <cstdint>
#include <functional>

namespace cppflare::tensor::backend {

/// Loops whose total scalar work is below this run serially inline;
/// dispatch overhead (task enqueue + wakeup) costs more than it saves.
inline constexpr std::int64_t kSerialWorkThreshold = 16 * 1024;

/// Target scalar ops per chunk once a loop does parallelize.
inline constexpr std::int64_t kGrainWork = 32 * 1024;

/// Chunk size (in items) for a loop of `items` iterations each costing
/// ~`work_per_item` scalar ops. Depends only on the problem size.
std::int64_t grain_for(std::int64_t items, std::int64_t work_per_item);

/// Dispatches fn(begin, end) over [0, items), parallel when the total work
/// clears kSerialWorkThreshold. Chunks must write disjoint outputs.
void parallel_rows(std::int64_t items, std::int64_t work_per_item,
                   const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Number of chunks `parallel_rows(items, work_per_item, ...)` produces;
/// size per-chunk partial buffers with this.
std::int64_t chunk_count(std::int64_t items, std::int64_t work_per_item);

/// Index of the chunk whose range starts at `begin` (as passed to fn).
std::int64_t chunk_index(std::int64_t items, std::int64_t work_per_item,
                         std::int64_t begin);

}  // namespace cppflare::tensor::backend
