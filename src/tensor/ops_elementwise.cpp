#include <cmath>

#include "tensor/ops.h"
#include "tensor/ops_common.h"

namespace cppflare::tensor {

using detail::make_result;

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape("add", a, b);
  TensorImpl* pa = a.impl().get();
  TensorImpl* pb = b.impl().get();
  Tensor out = make_result(a.shape(), {a.impl(), b.impl()},
                           [pa, pb](const TensorImpl& self) {
                             for (std::size_t i = 0; i < self.grad.size(); ++i) {
                               pa->grad[i] += self.grad[i];
                               pb->grad[i] += self.grad[i];
                             }
                           });
  const float* da = a.data();
  const float* db = b.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) dst[i] = da[i] + db[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape("sub", a, b);
  TensorImpl* pa = a.impl().get();
  TensorImpl* pb = b.impl().get();
  Tensor out = make_result(a.shape(), {a.impl(), b.impl()},
                           [pa, pb](const TensorImpl& self) {
                             for (std::size_t i = 0; i < self.grad.size(); ++i) {
                               pa->grad[i] += self.grad[i];
                               pb->grad[i] -= self.grad[i];
                             }
                           });
  const float* da = a.data();
  const float* db = b.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) dst[i] = da[i] - db[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape("mul", a, b);
  TensorImpl* pa = a.impl().get();
  TensorImpl* pb = b.impl().get();
  Tensor out = make_result(a.shape(), {a.impl(), b.impl()},
                           [pa, pb](const TensorImpl& self) {
                             for (std::size_t i = 0; i < self.grad.size(); ++i) {
                               pa->grad[i] += self.grad[i] * pb->data[i];
                               pb->grad[i] += self.grad[i] * pa->data[i];
                             }
                           });
  const float* da = a.data();
  const float* db = b.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) dst[i] = da[i] * db[i];
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()}, [pa](const TensorImpl& self) {
    for (std::size_t i = 0; i < self.grad.size(); ++i) pa->grad[i] += self.grad[i];
  });
  const float* da = a.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) dst[i] = da[i] + s;
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()}, [pa, s](const TensorImpl& self) {
    for (std::size_t i = 0; i < self.grad.size(); ++i) pa->grad[i] += self.grad[i] * s;
  });
  const float* da = a.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) dst[i] = da[i] * s;
  return out;
}

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  if (bias.dim() != 1 || x.dim() < 1 || x.size(-1) != bias.size(0)) {
    throw ShapeError("add_bias: x " + shape_to_string(x.shape()) + " vs bias " +
                     shape_to_string(bias.shape()));
  }
  const std::int64_t n = bias.size(0);
  const std::int64_t rows = x.numel() / n;
  TensorImpl* px = x.impl().get();
  TensorImpl* pb = bias.impl().get();
  Tensor out = make_result(x.shape(), {x.impl(), bias.impl()},
                           [px, pb, rows, n](const TensorImpl& self) {
                             for (std::int64_t r = 0; r < rows; ++r) {
                               const float* g = self.grad.data() + r * n;
                               for (std::int64_t j = 0; j < n; ++j) {
                                 px->grad[r * n + j] += g[j];
                                 pb->grad[j] += g[j];
                               }
                             }
                           });
  const float* dx = x.data();
  const float* db = bias.data();
  float* dst = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    for (std::int64_t j = 0; j < n; ++j) dst[r * n + j] = dx[r * n + j] + db[j];
  }
  return out;
}

Tensor relu(const Tensor& a) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()}, [pa](const TensorImpl& self) {
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      if (pa->data[i] > 0.0f) pa->grad[i] += self.grad[i];
    }
  });
  const float* da = a.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) dst[i] = da[i] > 0.0f ? da[i] : 0.0f;
  return out;
}

Tensor tanh_op(const Tensor& a) {
  Tensor out = make_result(a.shape(), {a.impl()}, nullptr);
  const float* da = a.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) dst[i] = std::tanh(da[i]);
  // dtanh = 1 - y^2; uses the result values, available through `self`.
  TensorImpl* pa = a.impl().get();
  if (out.impl()->parents.size() == 1) {
    out.impl()->backward_fn = [pa](const TensorImpl& self) {
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        const float y = self.data[i];
        pa->grad[i] += self.grad[i] * (1.0f - y * y);
      }
    };
  }
  return out;
}

Tensor sigmoid(const Tensor& a) {
  Tensor out = make_result(a.shape(), {a.impl()}, nullptr);
  const float* da = a.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    dst[i] = 1.0f / (1.0f + std::exp(-da[i]));
  }
  TensorImpl* pa = a.impl().get();
  if (out.impl()->parents.size() == 1) {
    out.impl()->backward_fn = [pa](const TensorImpl& self) {
      for (std::size_t i = 0; i < self.grad.size(); ++i) {
        const float y = self.data[i];
        pa->grad[i] += self.grad[i] * y * (1.0f - y);
      }
    };
  }
  return out;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

Tensor gelu(const Tensor& a) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()}, [pa](const TensorImpl& self) {
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      const float x = pa->data[i];
      const float u = kGeluC * (x + kGeluA * x * x * x);
      const float t = std::tanh(u);
      const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
      const float dy = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
      pa->grad[i] += self.grad[i] * dy;
    }
  });
  const float* da = a.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) {
    const float x = da[i];
    dst[i] = 0.5f * x * (1.0f + std::tanh(kGeluC * (x + kGeluA * x * x * x)));
  }
  return out;
}

Tensor dropout(const Tensor& a, float p, core::Rng& rng) {
  if (p <= 0.0f) return mul_scalar(a, 1.0f);  // keeps graph shape uniform
  if (p >= 1.0f) throw Error("dropout: p must be < 1");
  auto mask = std::make_shared<std::vector<float>>(a.numel());
  const float keep_scale = 1.0f / (1.0f - p);
  for (float& m : *mask) m = rng.bernoulli(p) ? 0.0f : keep_scale;
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()}, [pa, mask](const TensorImpl& self) {
    for (std::size_t i = 0; i < self.grad.size(); ++i) {
      pa->grad[i] += self.grad[i] * (*mask)[i];
    }
  });
  const float* da = a.data();
  float* dst = out.data();
  for (std::int64_t i = 0; i < out.numel(); ++i) dst[i] = da[i] * (*mask)[i];
  return out;
}

Tensor sum_all(const Tensor& a) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result({}, {a.impl()}, [pa](const TensorImpl& self) {
    const float g = self.grad[0];
    for (float& gi : pa->grad) gi += g;
  });
  double acc = 0.0;
  const float* da = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += da[i];
  out.data()[0] = static_cast<float>(acc);
  return out;
}

Tensor mean_all(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result({}, {a.impl()}, [pa, inv](const TensorImpl& self) {
    const float g = self.grad[0] * inv;
    for (float& gi : pa->grad) gi += g;
  });
  double acc = 0.0;
  const float* da = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += da[i];
  out.data()[0] = static_cast<float>(acc) * inv;
  return out;
}

}  // namespace cppflare::tensor
