#include <cmath>

#include "tensor/backend.h"
#include "tensor/ops.h"
#include "tensor/ops_common.h"

namespace cppflare::tensor {

using detail::make_result;

namespace {

// Rough scalar cost of one transcendental-bearing element; tuned only well
// enough that small activations stay serial and large ones chunk sensibly.
constexpr std::int64_t kTranscendentalWork = 8;

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape("add", a, b);
  TensorImpl* pa = a.impl().get();
  TensorImpl* pb = b.impl().get();
  Tensor out = make_result(
      a.shape(), {a.impl(), b.impl()}, [pa, pb](const TensorImpl& self) {
        const float* g = self.grad.data();
        float* ga = pa->grad.data();
        float* gb = pb->grad.data();
        const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
        backend::parallel_rows(n, 2, [=](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            ga[i] += g[i];
            gb[i] += g[i];
          }
        });
      });
  const float* da = a.data();
  const float* db = b.data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), 1, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) dst[i] = da[i] + db[i];
  });
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape("sub", a, b);
  TensorImpl* pa = a.impl().get();
  TensorImpl* pb = b.impl().get();
  Tensor out = make_result(
      a.shape(), {a.impl(), b.impl()}, [pa, pb](const TensorImpl& self) {
        const float* g = self.grad.data();
        float* ga = pa->grad.data();
        float* gb = pb->grad.data();
        const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
        backend::parallel_rows(n, 2, [=](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            ga[i] += g[i];
            gb[i] -= g[i];
          }
        });
      });
  const float* da = a.data();
  const float* db = b.data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), 1, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) dst[i] = da[i] - db[i];
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape("mul", a, b);
  TensorImpl* pa = a.impl().get();
  TensorImpl* pb = b.impl().get();
  Tensor out = make_result(
      a.shape(), {a.impl(), b.impl()}, [pa, pb](const TensorImpl& self) {
        const float* g = self.grad.data();
        const float* xa = pa->data.data();
        const float* xb = pb->data.data();
        float* ga = pa->grad.data();
        float* gb = pb->grad.data();
        const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
        backend::parallel_rows(n, 4, [=](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            ga[i] += g[i] * xb[i];
            gb[i] += g[i] * xa[i];
          }
        });
      });
  const float* da = a.data();
  const float* db = b.data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), 1, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) dst[i] = da[i] * db[i];
  });
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()}, [pa](const TensorImpl& self) {
    const float* g = self.grad.data();
    float* ga = pa->grad.data();
    const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
    backend::parallel_rows(n, 1, [=](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) ga[i] += g[i];
    });
  });
  const float* da = a.data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), 1, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) dst[i] = da[i] + s;
  });
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()}, [pa, s](const TensorImpl& self) {
    const float* g = self.grad.data();
    float* ga = pa->grad.data();
    const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
    backend::parallel_rows(n, 1, [=](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) ga[i] += g[i] * s;
    });
  });
  const float* da = a.data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), 1, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) dst[i] = da[i] * s;
  });
  return out;
}

Tensor neg(const Tensor& a) { return mul_scalar(a, -1.0f); }

Tensor add_bias(const Tensor& x, const Tensor& bias) {
  if (bias.dim() != 1 || x.dim() < 1 || x.size(-1) != bias.size(0)) {
    throw ShapeError("add_bias: x " + shape_to_string(x.shape()) + " vs bias " +
                     shape_to_string(bias.shape()));
  }
  const std::int64_t n = bias.size(0);
  const std::int64_t rows = x.numel() / n;
  TensorImpl* px = x.impl().get();
  TensorImpl* pb = bias.impl().get();
  Tensor out = make_result(
      x.shape(), {x.impl(), bias.impl()},
      [px, pb, rows, n](const TensorImpl& self) {
        // dx is row-disjoint; db sums over rows, so it goes column-parallel
        // with rows consumed in ascending order per column.
        const float* g = self.grad.data();
        float* gx = px->grad.data();
        float* gb = pb->grad.data();
        backend::parallel_rows(rows, n, [=](std::int64_t r0, std::int64_t r1) {
          for (std::int64_t r = r0; r < r1; ++r) {
            const float* grow = g + r * n;
            float* gxrow = gx + r * n;
            for (std::int64_t j = 0; j < n; ++j) gxrow[j] += grow[j];
          }
        });
        backend::parallel_rows(n, rows, [=](std::int64_t j0, std::int64_t j1) {
          for (std::int64_t r = 0; r < rows; ++r) {
            const float* grow = g + r * n;
            for (std::int64_t j = j0; j < j1; ++j) gb[j] += grow[j];
          }
        });
      });
  const float* dx = x.data();
  const float* db = bias.data();
  float* dst = out.data();
  backend::parallel_rows(rows, n, [=](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r) {
      for (std::int64_t j = 0; j < n; ++j) dst[r * n + j] = dx[r * n + j] + db[j];
    }
  });
  return out;
}

Tensor relu(const Tensor& a) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()}, [pa](const TensorImpl& self) {
    const float* g = self.grad.data();
    const float* xa = pa->data.data();
    float* ga = pa->grad.data();
    const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
    backend::parallel_rows(n, 2, [=](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) {
        if (xa[i] > 0.0f) ga[i] += g[i];
      }
    });
  });
  const float* da = a.data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), 1, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) dst[i] = da[i] > 0.0f ? da[i] : 0.0f;
  });
  return out;
}

Tensor tanh_op(const Tensor& a) {
  Tensor out = make_result(a.shape(), {a.impl()}, nullptr);
  const float* da = a.data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), kTranscendentalWork,
                         [=](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) {
                             dst[i] = std::tanh(da[i]);
                           }
                         });
  // dtanh = 1 - y^2; uses the result values, available through `self`.
  TensorImpl* pa = a.impl().get();
  if (out.impl()->parents.size() == 1) {
    out.impl()->backward_fn = [pa](const TensorImpl& self) {
      const float* y = self.data.data();
      const float* g = self.grad.data();
      float* ga = pa->grad.data();
      const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
      backend::parallel_rows(n, 4, [=](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          ga[i] += g[i] * (1.0f - y[i] * y[i]);
        }
      });
    };
  }
  return out;
}

Tensor sigmoid(const Tensor& a) {
  Tensor out = make_result(a.shape(), {a.impl()}, nullptr);
  const float* da = a.data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), kTranscendentalWork,
                         [=](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) {
                             dst[i] = 1.0f / (1.0f + std::exp(-da[i]));
                           }
                         });
  TensorImpl* pa = a.impl().get();
  if (out.impl()->parents.size() == 1) {
    out.impl()->backward_fn = [pa](const TensorImpl& self) {
      const float* y = self.data.data();
      const float* g = self.grad.data();
      float* ga = pa->grad.data();
      const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
      backend::parallel_rows(n, 4, [=](std::int64_t i0, std::int64_t i1) {
        for (std::int64_t i = i0; i < i1; ++i) {
          ga[i] += g[i] * y[i] * (1.0f - y[i]);
        }
      });
    };
  }
  return out;
}

namespace {
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;
}  // namespace

Tensor gelu(const Tensor& a) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(a.shape(), {a.impl()}, [pa](const TensorImpl& self) {
    const float* xa = pa->data.data();
    const float* g = self.grad.data();
    float* ga = pa->grad.data();
    const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
    backend::parallel_rows(
        n, 2 * kTranscendentalWork, [=](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) {
            const float x = xa[i];
            const float u = kGeluC * (x + kGeluA * x * x * x);
            const float t = std::tanh(u);
            const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
            const float dy = 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
            ga[i] += g[i] * dy;
          }
        });
  });
  const float* da = a.data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), kTranscendentalWork,
                         [=](std::int64_t i0, std::int64_t i1) {
                           for (std::int64_t i = i0; i < i1; ++i) {
                             const float x = da[i];
                             dst[i] = 0.5f * x *
                                      (1.0f + std::tanh(kGeluC *
                                                        (x + kGeluA * x * x * x)));
                           }
                         });
  return out;
}

Tensor dropout(const Tensor& a, float p, core::Rng& rng) {
  if (p <= 0.0f) return mul_scalar(a, 1.0f);  // keeps graph shape uniform
  if (p >= 1.0f) throw Error("dropout: p must be < 1");
  auto mask = std::make_shared<std::vector<float>>(a.numel());
  const float keep_scale = 1.0f / (1.0f - p);
  // Mask generation stays serial: the rng stream must be consumed in element
  // order or training ceases to be reproducible across thread budgets.
  for (float& m : *mask) m = rng.bernoulli(p) ? 0.0f : keep_scale;
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result(
      a.shape(), {a.impl()}, [pa, mask](const TensorImpl& self) {
        const float* g = self.grad.data();
        const float* mk = mask->data();
        float* ga = pa->grad.data();
        const std::int64_t n = static_cast<std::int64_t>(self.grad.size());
        backend::parallel_rows(n, 2, [=](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i) ga[i] += g[i] * mk[i];
        });
      });
  const float* da = a.data();
  const float* mk = mask->data();
  float* dst = out.data();
  backend::parallel_rows(out.numel(), 1, [=](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) dst[i] = da[i] * mk[i];
  });
  return out;
}

Tensor sum_all(const Tensor& a) {
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result({}, {a.impl()}, [pa](const TensorImpl& self) {
    const float g = self.grad[0];
    float* ga = pa->grad.data();
    const std::int64_t n = static_cast<std::int64_t>(pa->grad.size());
    backend::parallel_rows(n, 1, [=](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) ga[i] += g;
    });
  });
  // Reduction: per-chunk double partials combined in chunk order (the
  // summation tree depends only on the size — see backend.h).
  const float* da = a.data();
  const std::int64_t n = a.numel();
  std::vector<double> partials(backend::chunk_count(n, 1), 0.0);
  double* parts = partials.data();
  backend::parallel_rows(n, 1, [=](std::int64_t i0, std::int64_t i1) {
    double local = 0.0;
    for (std::int64_t i = i0; i < i1; ++i) local += da[i];
    parts[backend::chunk_index(n, 1, i0)] = local;
  });
  double acc = 0.0;
  for (double p : partials) acc += p;
  out.data()[0] = static_cast<float>(acc);
  return out;
}

Tensor mean_all(const Tensor& a) {
  const float inv = 1.0f / static_cast<float>(a.numel());
  TensorImpl* pa = a.impl().get();
  Tensor out = make_result({}, {a.impl()}, [pa, inv](const TensorImpl& self) {
    const float g = self.grad[0] * inv;
    float* ga = pa->grad.data();
    const std::int64_t n = static_cast<std::int64_t>(pa->grad.size());
    backend::parallel_rows(n, 1, [=](std::int64_t i0, std::int64_t i1) {
      for (std::int64_t i = i0; i < i1; ++i) ga[i] += g;
    });
  });
  const float* da = a.data();
  const std::int64_t n = a.numel();
  std::vector<double> partials(backend::chunk_count(n, 1), 0.0);
  double* parts = partials.data();
  backend::parallel_rows(n, 1, [=](std::int64_t i0, std::int64_t i1) {
    double local = 0.0;
    for (std::int64_t i = i0; i < i1; ++i) local += da[i];
    parts[backend::chunk_index(n, 1, i0)] = local;
  });
  double acc = 0.0;
  for (double p : partials) acc += p;
  out.data()[0] = static_cast<float>(acc) * inv;
  return out;
}

}  // namespace cppflare::tensor
