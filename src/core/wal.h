// Generic append-only write-ahead log.
//
// On-disk format: a sequence of frames, each
//
//   [u32 payload_len (LE)] [u32 crc32(payload) (LE)] [payload bytes]
//
// Replay walks frames from the start and distinguishes two failure shapes:
//
//   * torn tail — the file ends mid-frame (truncated header, or a promised
//     length running past EOF). This is the expected result of a crash
//     between write and durability; replay keeps the intact prefix,
//     truncates the file back to the last valid frame boundary, and
//     continues. It never throws on a torn tail.
//   * bit-rot — a complete frame whose CRC does not match its payload, or a
//     length field promising more than kMaxRecordBytes. The prefix cannot
//     be trusted; replay throws WalCorruptionError naming the path.
//
// Sync policy decides when appended frames are fsynced: kEveryRecord after
// each append (safest, slowest), kEveryRound only when the owner calls
// sync() at its own barrier, kOff never (page cache survives process death,
// not power loss — fine for tests and throwaway runs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/error.h"

namespace cppflare::core {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the framing checksum.
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/// A complete-but-wrong frame: checksum mismatch or an absurd length field.
/// Distinct from SerializationError so callers can tell storage rot from
/// protocol bugs.
class WalCorruptionError : public Error {
 public:
  explicit WalCorruptionError(const std::string& what)
      : Error("wal corruption: " + what) {}
};

enum class WalSyncPolicy { kOff, kEveryRound, kEveryRecord };

const char* wal_sync_policy_name(WalSyncPolicy policy);

/// What replay recovered. `truncated_bytes` counts the torn tail dropped
/// from the file (0 on a clean log).
struct [[nodiscard]] WalReplayResult {
  std::vector<std::vector<std::uint8_t>> records;
  std::uint64_t truncated_bytes = 0;
};

/// Single-writer append-only log. Not internally synchronized: the owner
/// serializes access (the FederatedServer journals under its round lock).
class Wal {
 public:
  /// Largest payload a frame may promise; anything larger is treated as a
  /// corrupt length field rather than an allocation request.
  static constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

  Wal(std::string path, WalSyncPolicy policy);
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Opens (creating if absent) and replays the log, truncating any torn
  /// tail, then positions the write cursor after the last valid frame.
  /// Throws WalCorruptionError on bit-rot, Error on I/O failure.
  WalReplayResult open_and_replay();

  /// Appends one framed record; fsyncs it under kEveryRecord.
  void append(const std::uint8_t* data, std::size_t size);
  void append(const std::vector<std::uint8_t>& record);

  /// Owner-driven barrier: fsyncs pending appends unless the policy is kOff.
  void sync();

  /// Compacts the log to exactly `records`, via a durable temp-file-and-
  /// rename rewrite (crash-atomic: replay sees either the old log or the
  /// new one, never a mix).
  void reset(const std::vector<std::vector<std::uint8_t>>& records);

  /// Drops every frame past byte offset `size`, in place (ftruncate +
  /// fsync). Crash-atomic on frame boundaries: the file either still holds
  /// the dropped frames or holds exactly the prefix — never a torn middle.
  /// Far cheaper than reset() because the inode, fd and prefix bytes are
  /// all left untouched. The caller owns picking a frame boundary.
  void truncate(std::uint64_t size);

  /// Bytes in the log up to the last valid frame: maintained across
  /// open_and_replay/append/reset/truncate without re-stat()ing the file.
  std::uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }
  WalSyncPolicy policy() const { return policy_; }

  /// Read-only replay of a log file nobody holds open — for tools and test
  /// assertions. Tolerates a torn tail without modifying the file.
  static WalReplayResult read(const std::string& path);

 private:
  void open_fd();

  std::string path_;
  WalSyncPolicy policy_;
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

}  // namespace cppflare::core
