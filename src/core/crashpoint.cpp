#include "core/crashpoint.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include <signal.h>
#include <unistd.h>

namespace cppflare::core {
namespace {

/// The armed state. `enabled` is the fast-path gate: crashpoint_hit loads it
/// with relaxed ordering and bails before touching the mutex, so unarmed
/// production runs pay one atomic load per marker. The armed name lives in a
/// fixed buffer (not std::string) so the kill path never allocates.
struct Armed {
  std::mutex mu;
  std::atomic<bool> enabled{false};
  std::atomic<bool> env_checked{false};
  char name[128] = {0};
  int target_hit = 1;
  std::atomic<int> count{0};
};

Armed& armed() {
  static Armed a;
  return a;
}

void arm_locked(Armed& a, const std::string& name, int hit) {
  std::snprintf(a.name, sizeof(a.name), "%s", name.c_str());
  a.target_hit = hit < 1 ? 1 : hit;
  a.count.store(0, std::memory_order_relaxed);
  a.enabled.store(true, std::memory_order_release);
}

/// Parses CPPFLARE_CRASHPOINT=<name>[@<hit>] once, lazily, on the first
/// marker execution — so a forked+exec'd child armed via its environment
/// needs no explicit setup call.
void check_env_locked(Armed& a) {
  if (a.env_checked.load(std::memory_order_relaxed)) return;
  a.env_checked.store(true, std::memory_order_relaxed);
  const char* spec = std::getenv("CPPFLARE_CRASHPOINT");
  if (spec == nullptr || spec[0] == '\0') return;
  std::string name(spec);
  int hit = 1;
  const auto at = name.find('@');
  if (at != std::string::npos) {
    hit = std::atoi(name.c_str() + at + 1);
    name.resize(at);
  }
  arm_locked(a, name, hit);
}

}  // namespace

void crashpoint_hit(const char* name) {
  Armed& a = armed();
  if (!a.env_checked.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(a.mu);
    check_env_locked(a);
  }
  if (!a.enabled.load(std::memory_order_acquire)) return;
  {
    std::lock_guard<std::mutex> lock(a.mu);
    if (!a.enabled.load(std::memory_order_relaxed)) return;
    if (std::strcmp(a.name, name) != 0) return;
    if (a.count.fetch_add(1, std::memory_order_relaxed) + 1 < a.target_hit) {
      return;
    }
  }
  // Die like a power cut: no exit handlers, no stream flushes, no unwinding.
  ::kill(::getpid(), SIGKILL);
  // SIGKILL cannot be handled; pause until delivery rather than return into
  // code that assumes the crash happened.
  for (;;) ::pause();
}

void arm_crashpoint(const std::string& name, int hit) {
  Armed& a = armed();
  std::lock_guard<std::mutex> lock(a.mu);
  a.env_checked.store(true, std::memory_order_relaxed);
  arm_locked(a, name, hit);
}

void disarm_crashpoints() {
  Armed& a = armed();
  std::lock_guard<std::mutex> lock(a.mu);
  a.env_checked.store(true, std::memory_order_relaxed);
  a.enabled.store(false, std::memory_order_release);
  a.name[0] = '\0';
}

const std::vector<std::string>& crashpoint_catalog() {
  static const std::vector<std::string> kCatalog = {
      "persist.write.after",    "persist.rename.before", "persist.rename.after",
      "journal.open.after",     "journal.append.after",  "journal.commit.before",
      "journal.commit.after",   "journal.compact.before", "recovery.begin.after",
      "recovery.share.after",   "recovery.wave.mid",     "replay.mid",
  };
  return kCatalog;
}

}  // namespace cppflare::core
