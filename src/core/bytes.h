// Binary serialization primitives.
//
// All wire formats in cppflare (DXO payloads, model state dicts, transport
// frames) are built on these two types. Encoding is explicit little-endian
// so payloads are portable across hosts, matching what a real federated
// deployment needs when server and clients run on different machines.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/error.h"

namespace cppflare::core {

/// Append-only binary encoder.
class ByteWriter {
 public:
  void write_u8(std::uint8_t v) { buf_.push_back(v); }
  void write_u16(std::uint16_t v);
  void write_u32(std::uint32_t v);
  void write_u64(std::uint64_t v);
  void write_i64(std::int64_t v) { write_u64(static_cast<std::uint64_t>(v)); }
  void write_f32(float v);
  void write_f64(double v);
  void write_bool(bool v) { write_u8(v ? 1 : 0); }

  /// Length-prefixed (u32) UTF-8 string.
  void write_string(const std::string& s);

  /// Length-prefixed (u64) float payload; the hot path for model weights.
  void write_f32_vector(const std::vector<float>& v);
  void write_i64_vector(const std::vector<std::int64_t>& v);

  /// Raw bytes, no length prefix.
  void write_raw(const std::uint8_t* data, std::size_t n);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential binary decoder over a borrowed byte range. Throws
/// `SerializationError` on truncated input; never reads past the end.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint8_t read_u8();
  std::uint16_t read_u16();
  std::uint32_t read_u32();
  std::uint64_t read_u64();
  std::int64_t read_i64() { return static_cast<std::int64_t>(read_u64()); }
  float read_f32();
  double read_f64();
  bool read_bool() { return read_u8() != 0; }
  std::string read_string();
  std::vector<float> read_f32_vector();
  std::vector<std::int64_t> read_i64_vector();
  /// Copies out `n` raw bytes.
  std::vector<std::uint8_t> read_raw(std::size_t n);

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }
  std::size_t position() const { return pos_; }

 private:
  void require(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw SerializationError("truncated input: need " + std::to_string(n) +
                               " bytes, have " + std::to_string(size_ - pos_));
    }
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace cppflare::core
