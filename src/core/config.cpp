#include "core/config.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace cppflare::core {

Config Config::from_args(const std::vector<std::string>& args) {
  Config c;
  for (const std::string& arg : args) {
    const std::size_t eq = arg.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ConfigError("expected key=value, got '" + arg + "'");
    }
    c.set(arg.substr(0, eq), arg.substr(eq + 1));
  }
  return c;
}

void Config::set(const std::string& key, const std::string& value) {
  kv_[key] = value;
}

void Config::set_int(const std::string& key, std::int64_t value) {
  kv_[key] = std::to_string(value);
}

void Config::set_double(const std::string& key, double value) {
  std::ostringstream os;
  os << value;
  kv_[key] = os.str();
}

void Config::set_bool(const std::string& key, bool value) {
  kv_[key] = value ? "true" : "false";
}

bool Config::has(const std::string& key) const { return kv_.count(key) != 0; }

std::string Config::get(const std::string& key, const std::string& fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

namespace {

std::int64_t parse_int(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const std::int64_t v = std::stoll(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("key '" + key + "' is not an integer: '" + value + "'");
  }
}

double parse_double(const std::string& key, const std::string& value) {
  try {
    std::size_t consumed = 0;
    const double v = std::stod(value, &consumed);
    if (consumed != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw ConfigError("key '" + key + "' is not a number: '" + value + "'");
  }
}

}  // namespace

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : parse_int(key, it->second);
}

double Config::get_double(const std::string& key, double fallback) const {
  auto it = kv_.find(key);
  return it == kv_.end() ? fallback : parse_double(key, it->second);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw ConfigError("key '" + key + "' is not a boolean: '" + v + "'");
}

std::string Config::require(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) throw ConfigError("missing required key '" + key + "'");
  return it->second;
}

std::int64_t Config::require_int(const std::string& key) const {
  return parse_int(key, require(key));
}

double Config::require_double(const std::string& key) const {
  return parse_double(key, require(key));
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.kv_) kv_[k] = v;
}

void Config::apply_env_overrides(const std::string& prefix) {
  for (auto& [key, value] : kv_) {
    std::string env_name = prefix;
    for (char c : key) {
      env_name.push_back(c == '.' ? '_' : static_cast<char>(std::toupper(c)));
    }
    if (const char* env = std::getenv(env_name.c_str()); env != nullptr) {
      value = env;
    }
  }
}

std::string Config::to_string() const {
  std::ostringstream os;
  for (const auto& [k, v] : kv_) os << k << '=' << v << '\n';
  return os.str();
}

}  // namespace cppflare::core
