// Error types used across the cppflare library.
//
// Conventions (see C++ Core Guidelines E.14): throw a type specific to the
// failing subsystem, derived from `cppflare::Error`, so callers can catch
// either the broad family or the precise condition.
#pragma once

#include <stdexcept>
#include <string>

namespace cppflare {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Shape mismatch, bad axis, out-of-range index in the tensor engine.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error("shape error: " + what) {}
};

/// Malformed or truncated serialized payloads.
class SerializationError : public Error {
 public:
  explicit SerializationError(const std::string& what)
      : Error("serialization error: " + what) {}
};

/// Configuration errors: missing keys, unparsable values.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Federated-protocol violations: bad tokens, unknown clients, signature
/// mismatches, out-of-order rounds.
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error("protocol error: " + what) {}
};

/// Transport-level failures (socket errors, closed channels).
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what) : Error("transport error: " + what) {}
};

}  // namespace cppflare
