// Crash-safe file replacement.
//
// `std::ofstream` + `std::filesystem::rename` is atomic against concurrent
// readers but NOT against power loss: neither the temp file's bytes nor the
// directory entry created by the rename are guaranteed on stable storage
// when the call returns. `durable_write` does the full dance — write temp,
// fsync temp, rename over the target, fsync the parent directory — and is
// the only sanctioned way to persist coordinator state (lint rule R13 bans
// raw stream writes from the persistor and journal). The persist.* crash
// points live inside it, so every caller is automatically death-testable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace cppflare::core {

/// Atomically and durably replaces `path` with `size` bytes from `data`:
/// writes `path + ".tmp"`, fsyncs it, renames it over `path`, then fsyncs
/// the parent directory so the rename itself survives power loss. Throws
/// cppflare::Error naming the path on any I/O failure.
void durable_write(const std::string& path, const std::uint8_t* data,
                   std::size_t size);

void durable_write(const std::string& path,
                   const std::vector<std::uint8_t>& data);

/// fsyncs the directory containing `path` (or `path` itself if it is a
/// directory), making previously renamed/created entries durable.
void fsync_parent_dir(const std::string& path);

}  // namespace cppflare::core
