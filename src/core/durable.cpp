#include "core/durable.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/crashpoint.h"
#include "core/error.h"

namespace cppflare::core {
namespace {

[[noreturn]] void fail(const std::string& op, const std::string& path) {
  throw Error("durable write: " + op + " failed for '" + path +
              "': " + std::strerror(errno));
}

/// write(2) until every byte is down, retrying EINTR and short writes.
void write_all(int fd, const std::uint8_t* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", path);
    }
    done += static_cast<std::size_t>(n);
  }
}

std::string parent_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void durable_write(const std::string& path, const std::uint8_t* data,
                   std::size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) fail("open", tmp);
  write_all(fd, data, size, tmp);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync", tmp);
  }
  if (::close(fd) != 0) fail("close", tmp);
  CF_CRASHPOINT("persist.write.after");
  CF_CRASHPOINT("persist.rename.before");
  if (::rename(tmp.c_str(), path.c_str()) != 0) fail("rename", path);
  CF_CRASHPOINT("persist.rename.after");
  fsync_parent_dir(path);
}

void durable_write(const std::string& path,
                   const std::vector<std::uint8_t>& data) {
  durable_write(path, data.data(), data.size());
}

void fsync_parent_dir(const std::string& path) {
  std::string dir = path;
  struct stat st {};
  if (::stat(dir.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    dir = parent_of(path);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) fail("open dir", dir);
  if (::fsync(fd) != 0) {
    ::close(fd);
    fail("fsync dir", dir);
  }
  ::close(fd);
}

}  // namespace cppflare::core
