// Self-contained SHA-256 and HMAC-SHA256.
//
// NVFlare provisions participants with certificates and authenticates
// traffic over TLS. Our reproduction keeps the same *shape* — every frame a
// client sends carries a MAC keyed by a per-participant secret issued at
// provisioning time — using HMAC-SHA256 implemented here from the FIPS
// 180-4 specification (no external crypto dependency is available offline).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace cppflare::core {

using Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  Sha256();

  void update(const std::uint8_t* data, std::size_t len);
  void update(const std::string& s);
  void update(const std::vector<std::uint8_t>& v);

  /// Finalizes and returns the digest. The object must not be reused after.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(const std::uint8_t* data, std::size_t len);
  static Digest hash(const std::string& s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// HMAC-SHA256 per RFC 2104.
Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                   const std::uint8_t* message, std::size_t len);
Digest hmac_sha256(const std::vector<std::uint8_t>& key,
                   const std::vector<std::uint8_t>& message);

/// Lowercase hex encoding of a digest.
std::string to_hex(const Digest& digest);

/// Constant-time digest comparison (avoids MAC timing side channels).
bool digests_equal(const Digest& a, const Digest& b);

}  // namespace cppflare::core
