#include "core/logging.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

namespace cppflare::core {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogConfig& LogConfig::instance() {
  static LogConfig config;
  return config;
}

void LogConfig::set_threshold(LogLevel level) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_ = level;
}

LogLevel LogConfig::threshold() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_;
}

void LogConfig::set_sink(std::ostream* sink) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = sink;
}

void LogConfig::write_line(const std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
  out << line << '\n';
  out.flush();
}

void Logger::log(LogLevel level, const std::string& message) const {
  if (level < LogConfig::instance().threshold()) return;
  std::string line = timestamp_now();
  line += " - ";
  line += name_;
  line += " - ";
  line += log_level_name(level);
  line += ": ";
  line += message;
  LogConfig::instance().write_line(line);
}

std::string timestamp_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto ms = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  const std::time_t t = system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d,%03d",
                tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<int>(ms.count()));
  return buf;
}

}  // namespace cppflare::core
