#include "core/logging.h"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>

namespace cppflare::core {

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

LogConfig& LogConfig::instance() {
  static LogConfig config;
  return config;
}

void LogConfig::set_threshold(LogLevel level) {
  MutexLock lock(mu_);
  threshold_ = level;
}

LogLevel LogConfig::threshold() const {
  MutexLock lock(mu_);
  return threshold_;
}

void LogConfig::set_sink(std::ostream* sink) {
  MutexLock lock(mu_);
  sink_ = sink;
}

void LogConfig::write_line(const std::string& line) {
  MutexLock lock(mu_);
  std::ostream& out = sink_ != nullptr ? *sink_ : std::clog;
  out << line << '\n';
  out.flush();
}

// ---------------------------------------------------------------------------
// LogEvent
// ---------------------------------------------------------------------------

LogEvent::LogEvent(std::string_view component, LogLevel level)
    : active_(level >= LogConfig::instance().threshold() &&
              level != LogLevel::kOff),
      level_(level) {
  if (active_) component_.assign(component);
}

LogEvent::~LogEvent() {
  if (!active_) return;
  std::string line = timestamp_now();
  line += " - ";
  line += component_;
  line += " - ";
  line += log_level_name(level_);
  line += ": ";
  line += body_;
  LogConfig::instance().write_line(line);
}

LogEvent& LogEvent::msg(std::string_view message) {
  if (!active_) return *this;
  if (!body_.empty()) body_ += ' ';
  body_.append(message);
  return *this;
}

void LogEvent::append_key(std::string_view key) {
  if (!body_.empty()) body_ += ' ';
  body_.append(key);
  body_ += '=';
}

LogEvent& LogEvent::kv(std::string_view key, std::string_view value) {
  if (!active_) return *this;
  append_key(key);
  const bool quote =
      value.empty() || value.find_first_of(" \t\"=") != std::string_view::npos;
  if (quote) {
    body_ += '"';
    for (char c : value) {
      if (c == '"' || c == '\\') body_ += '\\';
      body_ += c;
    }
    body_ += '"';
  } else {
    body_.append(value);
  }
  return *this;
}

LogEvent& LogEvent::kv(std::string_view key, double value) {
  if (!active_) return *this;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", value);
  append_key(key);
  body_ += buf;
  return *this;
}

LogEvent& LogEvent::kv_int(std::string_view key, long long value) {
  if (!active_) return *this;
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", value);
  append_key(key);
  body_ += buf;
  return *this;
}

void Logger::log(LogLevel level, const std::string& message) const {
  LogEvent(name_, level).msg(message);
}

std::string timestamp_now() {
  using namespace std::chrono;
  const auto now = system_clock::now();
  const auto ms = duration_cast<milliseconds>(now.time_since_epoch()) % 1000;
  const std::time_t t = system_clock::to_time_t(now);
  std::tm tm_buf{};
  localtime_r(&t, &tm_buf);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d,%03d",
                tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
                tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec,
                static_cast<int>(ms.count()));
  return buf;
}

}  // namespace cppflare::core
