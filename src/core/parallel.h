// Process-wide compute backend: a budgeted thread pool plus a deterministic
// `parallel_for` primitive.
//
// Two kinds of threads exist in this system: *site workers* (the simulator's
// one-task-per-client federation threads, which spend their life blocked on
// the transport) and *compute threads* (the pool below, which execute kernel
// chunks and never block). The compute budget says how many threads may chew
// on tensor kernels at once, process-wide: a budget of N means the calling
// thread plus N-1 shared helper workers. Every layer above core — tensor
// kernels, NN ops, models — dispatches through `parallel_for`; nothing above
// `src/core/` spawns raw std::thread (lint rule R5).
//
// Determinism contract: `parallel_for` decomposes [begin, end) into
// fixed-size chunks of `grain` iterations, in ascending order, *independent
// of the thread budget*. Callers must ensure each chunk writes disjoint
// outputs; under that contract results are bitwise identical for 1 vs N
// threads, because every output element is produced by the same code over
// the same inputs in the same order, merely on a different thread.
#pragma once

#include <cstdint>
#include <functional>

namespace cppflare::core {

/// Resolved compute-thread budget (>= 1). Resolution order: explicit
/// `set_compute_threads`, else the `CPPFLARE_COMPUTE_THREADS` environment
/// variable, else std::thread::hardware_concurrency().
std::size_t compute_threads();

/// Replaces the process-wide budget (and the helper pool behind it).
/// Typically called once at startup; may be called again between runs —
/// e.g. by benches sweeping thread counts — but only while no parallel
/// region is in flight. Marks the budget as explicitly chosen, which
/// `set_compute_threads_if_default` respects. Throws ConfigError on 0.
void set_compute_threads(std::size_t n);

/// Sets the budget only when neither `set_compute_threads` nor the
/// environment variable has pinned it. Used by SimulatorRunner to divide
/// hardware cores between site workers and kernel helpers without
/// overriding an operator's explicit choice. Returns the effective budget.
std::size_t set_compute_threads_if_default(std::size_t n);

/// True while the calling thread is executing a parallel_for chunk. Nested
/// parallel_for calls detect this and run serially inline, so kernels can be
/// composed (e.g. a batched op parallel over the batch whose per-item GEMMs
/// are themselves parallel ops) without deadlock or thread explosion.
bool in_parallel_region();

/// Runs fn over [begin, end) in chunks of `grain` iterations:
/// fn(chunk_begin, chunk_end) for each chunk, ascending. Chunks may execute
/// concurrently on the compute pool; the calling thread participates, so
/// progress is guaranteed even when the pool is saturated by other callers.
/// The first exception thrown by any chunk is rethrown on the caller after
/// remaining chunks are cancelled (claimed-but-unstarted chunks are skipped).
/// With a budget of 1, inside another region, or for a single chunk, runs
/// serially inline over the identical chunk decomposition.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn);

}  // namespace cppflare::core
