// Deterministic random number generation.
//
// Every stochastic component (data synthesis, weight init, dropout, MLM
// masking, client sampling) draws from an explicitly seeded `Rng` so that
// experiments are reproducible run-to-run. There is no hidden global state:
// callers own their generators and pass them down (Core Guidelines I.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace cppflare::core {

/// A seeded PRNG with the handful of draw helpers the library needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Standard normal scaled to `stddev` around `mean`.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// True with probability p.
  bool bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  std::size_t categorical(const std::vector<double>& weights) {
    std::discrete_distribution<std::size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  template <typename T>
  void shuffle(std::vector<T>& values) {
    std::shuffle(values.begin(), values.end(), engine_);
  }

  /// Derives an independent child generator; useful for giving each client
  /// or worker its own stream while remaining reproducible from one seed.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace cppflare::core
