#include "core/trace.h"

#include <time.h>

#include <algorithm>
#include <chrono>

namespace cppflare::core {

namespace {

std::int64_t steady_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t thread_cpu_ns() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void copy_capped(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(src.size(), cap - 1);
  // A default string_view (e.g. a site-less span) has a null data(), which
  // memcpy's nonnull contract forbids even for n == 0.
  if (n > 0) std::memcpy(dst, src.data(), n);
  dst[n] = '\0';
}

std::atomic<std::uint64_t> g_tid_counter{0};
thread_local std::uint64_t tls_tid = 0;
thread_local std::uint64_t tls_parent = 0;

}  // namespace

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::this_thread_id() {
  if (tls_tid == 0) tls_tid = g_tid_counter.fetch_add(1) + 1;
  return tls_tid;
}

std::uint64_t Tracer::current_parent() { return tls_parent; }
void Tracer::set_current_parent(std::uint64_t id) { tls_parent = id; }

void Tracer::start(std::size_t capacity) {
  MutexLock lock(mu_);
  if (capacity == 0) capacity = 1;
  ring_.clear();
  ring_.reserve(capacity);
  capacity_ = capacity;
  head_ = 0;
  dropped_ = 0;
  epoch_ns_.store(steady_ns(), std::memory_order_release);
  enabled_.store(true, std::memory_order_release);
}

void Tracer::stop() { enabled_.store(false, std::memory_order_release); }

void Tracer::clear() {
  MutexLock lock(mu_);
  ring_.clear();
  head_ = 0;
  dropped_ = 0;
}

std::int64_t Tracer::now_ns() const {
  const std::int64_t epoch = epoch_ns_.load(std::memory_order_acquire);
  if (epoch == 0) return 0;
  return steady_ns() - epoch;
}

void Tracer::record(const TraceEvent& e) {
  if (!enabled()) return;
  MutexLock lock(mu_);
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    // Ring full: overwrite the oldest slot and count the loss so exporters
    // can say the timeline is truncated instead of silently lying.
    ring_[head_] = e;
    head_ = (head_ + 1) % capacity_;
    dropped_ += 1;
  }
}

void Tracer::record_complete(const char* name, std::string_view site,
                             std::int64_t round, std::int64_t start_ns,
                             std::int64_t end_ns, std::int64_t cpu_ns) {
  if (!enabled()) return;
  TraceEvent e;
  copy_capped(e.name, TraceEvent::kNameCap, name);
  copy_capped(e.site, TraceEvent::kSiteCap, site);
  e.round = round;
  e.ts_ns = start_ns;
  e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  e.cpu_ns = cpu_ns;
  e.tid = this_thread_id();
  e.id = next_span_id();
  e.parent = current_parent();
  record(e);
}

std::vector<TraceEvent> Tracer::events() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(mu_);
    out.reserve(ring_.size());
    // head_..end is the older half once the ring has wrapped.
    for (std::size_t i = head_; i < ring_.size(); ++i) out.push_back(ring_[i]);
    for (std::size_t i = 0; i < head_; ++i) out.push_back(ring_[i]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return out;
}

std::size_t Tracer::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

std::int64_t Tracer::dropped() const {
  MutexLock lock(mu_);
  return dropped_;
}

void Tracer::drain(TraceSink& sink) const {
  const std::vector<TraceEvent> snapshot = events();
  sink.begin(dropped());
  for (const TraceEvent& e : snapshot) sink.event(e);
  sink.end();
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name, std::string_view site,
                       std::int64_t round)
    : name_(name), round_(round) {
  Tracer& tracer = Tracer::instance();
  if (!tracer.enabled()) return;  // id_ stays 0: the span never existed
  copy_capped(site_, TraceEvent::kSiteCap, site);
  id_ = tracer.next_span_id();
  parent_ = Tracer::current_parent();
  Tracer::set_current_parent(id_);
  start_ns_ = tracer.now_ns();
  cpu_start_ns_ = thread_cpu_ns();
}

ScopedSpan::~ScopedSpan() {
  if (id_ == 0) return;
  Tracer::set_current_parent(parent_);
  Tracer& tracer = Tracer::instance();
  TraceEvent e;
  copy_capped(e.name, TraceEvent::kNameCap, name_);
  std::memcpy(e.site, site_, TraceEvent::kSiteCap);
  e.round = round_;
  e.ts_ns = start_ns_;
  e.dur_ns = tracer.now_ns() - start_ns_;
  e.cpu_ns = thread_cpu_ns() - cpu_start_ns_;
  e.tid = Tracer::this_thread_id();
  e.id = id_;
  e.parent = parent_;
  tracer.record(e);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

namespace {

/// Bucket index: floor(log2(v)) + 1, clamped; bucket 0 holds v <= 0.
std::size_t bucket_of(std::int64_t v) {
  if (v <= 0) return 0;
  std::size_t b = 0;
  std::uint64_t u = static_cast<std::uint64_t>(v);
  while (u >>= 1) ++b;
  return std::min<std::size_t>(b + 1, 63);
}

/// Representative value for a bucket (geometric midpoint of its bounds).
double bucket_mid(std::size_t b) {
  if (b == 0) return 0.0;
  const double lo = static_cast<double>(1ull << (b - 1));
  return lo * 1.5;
}

void atomic_min(std::atomic<std::int64_t>& target, std::int64_t v) {
  std::int64_t cur = target.load(std::memory_order_relaxed);
  while (v < cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::int64_t>& target, std::int64_t v) {
  std::int64_t cur = target.load(std::memory_order_relaxed);
  while (v > cur &&
         !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

void Histogram::record(std::int64_t v) {
  buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

HistogramStats Histogram::stats() const {
  HistogramStats s;
  s.count = count_.load(std::memory_order_relaxed);
  if (s.count == 0) return s;
  s.sum = static_cast<double>(sum_.load(std::memory_order_relaxed));
  s.mean = s.sum / static_cast<double>(s.count);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  std::array<std::int64_t, 64> counts{};
  for (std::size_t i = 0; i < counts.size(); ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  const auto percentile = [&](double q) {
    const std::int64_t rank =
        static_cast<std::int64_t>(q * static_cast<double>(s.count - 1));
    std::int64_t seen = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      seen += counts[i];
      if (seen > rank) return bucket_mid(i);
    }
    return bucket_mid(63);
  };
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(INT64_MAX, std::memory_order_relaxed);
  max_.store(INT64_MIN, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry registry;
  return registry;
}

Counter& MetricRegistry::counter(std::string_view name) {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  MutexLock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

MetricSnapshot MetricRegistry::snapshot() const {
  MutexLock lock(mu_);
  MetricSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) snap.histograms[name] = h->stats();
  return snap;
}

void MetricRegistry::reset() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::map<std::string, double> MetricSnapshot::gauges_with_prefix(
    const std::string& prefix) const {
  std::map<std::string, double> out;
  for (const auto& [name, v] : gauges) {
    if (name.rfind(prefix, 0) == 0) out[name] = v;
  }
  return out;
}

std::map<std::string, std::int64_t> MetricSnapshot::counters_with_prefix(
    const std::string& prefix) const {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, v] : counters) {
    if (name.rfind(prefix, 0) == 0) out[name] = v;
  }
  return out;
}

}  // namespace cppflare::core
