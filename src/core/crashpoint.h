// Named crash points for deterministic death testing.
//
// Production code marks crash-consistency-critical spots with
// `CF_CRASHPOINT("persist.rename.before")`. In normal runs the marker is a
// single relaxed atomic load. A death test arms exactly one point — via the
// environment (`CPPFLARE_CRASHPOINT=<name>[@<hit>]`) before the process
// starts, or programmatically with `arm_crashpoint` — and the Nth time
// execution reaches that point the process SIGKILLs itself: no destructors,
// no flushes, exactly what a power cut or OOM kill looks like to the files
// on disk. The harness in tests/crash_recovery_test.cpp walks
// `crashpoint_catalog()` so adding a point without covering it fails a test.
#pragma once

#include <string>
#include <vector>

namespace cppflare::core {

/// Marks one named crash point. Cheap no-op unless that exact name is armed;
/// when armed, the `hit`-th call raises SIGKILL against the calling process
/// and never returns. Called via CF_CRASHPOINT so the names are grep-able.
void crashpoint_hit(const char* name);

/// Arms `name` so its `hit`-th execution (1-based) kills the process.
/// Overrides any previously armed point and any CPPFLARE_CRASHPOINT value.
void arm_crashpoint(const std::string& name, int hit = 1);

/// Disarms everything, including an environment-armed point.
void disarm_crashpoints();

/// Every crash point compiled into the binary. The death-test harness
/// iterates this list; keep it in sync with the CF_CRASHPOINT call sites.
const std::vector<std::string>& crashpoint_catalog();

}  // namespace cppflare::core

#define CF_CRASHPOINT(name) ::cppflare::core::crashpoint_hit(name)
