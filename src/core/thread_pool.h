// Fixed-size worker pool.
//
// The federated simulator runs each client site on its own worker, the way
// NVFlare's SimulatorRunner multiplexes clients over threads. Tasks are
// type-erased `std::function<void()>`; callers wanting results submit
// through `submit()` and receive a future.
#pragma once

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "core/thread_annotations.h"

namespace cppflare::core {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains nothing: pending tasks that have not started are discarded;
  /// running tasks are joined (threads are always joined, never detached).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Fire-and-forget enqueue: no future, no packaged_task allocation. Used
  /// by the parallel_for helpers, which report completion and exceptions
  /// through their own region state. Dropped silently if the pool is
  /// stopping. The task must not throw.
  void post(std::function<void()> fn);

  /// Enqueues a task and returns a future for its result. Exceptions thrown
  /// by the task are captured in the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      MutexLock lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  /// Guards queue_ and stopping_. Invariant: stopping_ transitions to true
  /// exactly once, under mu_, before the final notify_all — workers checking
  /// the predicate under the same mutex therefore cannot miss shutdown.
  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ CF_GUARDED_BY(mu_);
  bool stopping_ CF_GUARDED_BY(mu_) = false;
  /// Immutable after the constructor returns (size() reads it unlocked).
  std::vector<std::thread> workers_;
};

}  // namespace cppflare::core
