// Clang thread-safety-analysis macros and the annotated lock primitives the
// runtime builds on.
//
// Compiled with Clang and -Wthread-safety (the `clang-tsa` CMake preset,
// CPPFLARE_TSA=ON), every CF_GUARDED_BY / CF_REQUIRES relationship below is
// checked at compile time: reading a guarded member without its mutex, or
// calling a `*_locked` method without holding the capability it requires, is
// a hard error. Under GCC (which has no thread-safety attributes) the macros
// expand to nothing and the wrappers are zero-cost veneers over std::mutex /
// std::condition_variable_any, so behavior is identical in every build.
//
// Idiom:
//
//   class Account {
//    public:
//     void deposit(double amount) {
//       core::MutexLock lock(mu_);
//       balance_ += amount;          // OK: mu_ is held
//     }
//    private:
//     void audit_locked() CF_REQUIRES(mu_);
//     core::Mutex mu_;
//     double balance_ CF_GUARDED_BY(mu_) = 0.0;
//   };
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define CF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(CF_THREAD_ANNOTATION)
#define CF_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

/// Marks a type as a capability ("mutex") the analysis can track.
#define CF_CAPABILITY(x) CF_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define CF_SCOPED_CAPABILITY CF_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while `x` is held.
#define CF_GUARDED_BY(x) CF_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose *pointee* is protected by `x`.
#define CF_PT_GUARDED_BY(x) CF_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function acquires the capability (and must not already hold it).
#define CF_ACQUIRE(...) CF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (and must hold it on entry).
#define CF_RELEASE(...) CF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability when it returns `ret`.
#define CF_TRY_ACQUIRE(...) \
  CF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must hold the capability for the duration of the call — the
/// convention for every `*_locked()` private method in the runtime.
#define CF_REQUIRES(...) CF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Caller must NOT hold the capability (deadlock guard for re-entry).
#define CF_EXCLUDES(...) CF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function returns a reference to the named capability.
#define CF_RETURN_CAPABILITY(x) CF_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch for code the analysis cannot model; every use must carry a
/// comment justifying it (there are currently zero uses in the tree).
#define CF_NO_THREAD_SAFETY_ANALYSIS \
  CF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace cppflare::core {

class CondVar;

/// std::mutex with the `capability` attribute, so CF_GUARDED_BY(mu_) members
/// and CF_REQUIRES(mu_) methods are checkable. Same cost and semantics as
/// the std type it wraps.
class CF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() CF_ACQUIRE() { mu_.lock(); }
  void unlock() CF_RELEASE() { mu_.unlock(); }
  bool try_lock() CF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over `Mutex` (the std::lock_guard/std::unique_lock of this
/// codebase). Scoped-capability annotated: the analysis knows the capability
/// is held from construction to destruction, and tracks manual unlock()/
/// lock() pairs in between (used around callbacks that must run unlocked).
class CF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) CF_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() CF_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Drops the lock early (e.g. before invoking user callbacks).
  void unlock() CF_RELEASE() {
    mu_.unlock();
    held_ = false;
  }
  /// Re-acquires after an early unlock().
  void lock() CF_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  bool held() const { return held_; }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable paired with `Mutex`. Waits take the Mutex itself (absl
/// style) so the CF_REQUIRES relationship is expressible; callers hold the
/// mutex through a MutexLock in the enclosing scope:
///
///   core::MutexLock lock(mu_);
///   cv_.wait(mu_, [&] { return ready_; });
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void wait(Mutex& mu) CF_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Pred>
  void wait(Mutex& mu, Pred pred) CF_REQUIRES(mu) {
    cv_.wait(mu, std::move(pred));
  }

  /// Timed wait; returns pred() at wake-up (false = timed out with the
  /// predicate still unsatisfied).
  template <typename Pred>
  bool wait_for_ms(Mutex& mu, std::int64_t timeout_ms, Pred pred)
      CF_REQUIRES(mu) {
    return cv_.wait_for(mu, std::chrono::milliseconds(timeout_ms),
                        std::move(pred));
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // condition_variable_any works over any BasicLockable, which Mutex is;
  // wait() can therefore release/re-acquire the capability type directly.
  std::condition_variable_any cv_;
};

}  // namespace cppflare::core
