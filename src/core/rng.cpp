#include "core/rng.h"

// Rng is header-only today; this translation unit anchors the target and
// reserves a home for future out-of-line helpers.
