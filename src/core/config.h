// Flat key/value configuration.
//
// Experiments, jobs, and benches are parameterized through `Config`:
// string keys with typed accessors, populated from explicit `set` calls,
// "key=value" argument lists, or environment-variable overrides. This is
// the C++ analogue of NVFlare's JSON job configs, kept flat on purpose —
// every knob in this reproduction is a scalar.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/error.h"

namespace cppflare::core {

class Config {
 public:
  Config() = default;

  /// Parses tokens of the form "key=value"; throws ConfigError otherwise.
  static Config from_args(const std::vector<std::string>& args);

  void set(const std::string& key, const std::string& value);
  void set_int(const std::string& key, std::int64_t value);
  void set_double(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);

  bool has(const std::string& key) const;

  /// Typed getters with defaults. The throwing variants (`require_*`) are
  /// for keys that have no sensible fallback.
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  std::string require(const std::string& key) const;
  std::int64_t require_int(const std::string& key) const;
  double require_double(const std::string& key) const;

  /// Overlays `other` on top of *this (other wins on conflicts).
  void merge(const Config& other);

  /// For every existing key, if an environment variable named
  /// `prefix + UPPERCASED_KEY` (dots → underscores) is set, it overrides
  /// the stored value. Lets benches be rescaled without recompiling.
  void apply_env_overrides(const std::string& prefix);

  const std::map<std::string, std::string>& entries() const { return kv_; }

  /// Renders "key=value" lines sorted by key, for logging.
  std::string to_string() const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace cppflare::core
