#include "core/wal.h"

#include <array>
#include <cerrno>
#include <cstring>
#include <utility>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "core/durable.h"

namespace cppflare::core {
namespace {

constexpr std::size_t kFrameHeader = 8;  // u32 len + u32 crc

/// Slice-by-8 tables: table[0] is the classic byte-at-a-time table, and
/// table[k][b] equals table[0][b] advanced by k extra zero bytes, so eight
/// bytes fold into the running CRC with eight independent lookups per
/// iteration instead of a serial chain of eight dependent ones.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] =
          tables[0][tables[k - 1][i] & 0xFFu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void put_u32le(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

[[noreturn]] void fail(const std::string& op, const std::string& path) {
  throw Error("wal: " + op + " failed for '" + path +
              "': " + std::strerror(errno));
}

std::vector<std::uint8_t> read_file(int fd, const std::string& path) {
  struct stat st {};
  if (::fstat(fd, &st) != 0) fail("fstat", path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::read(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("read", path);
    }
    if (n == 0) {
      bytes.resize(done);  // shrunk under us; parse what we got
      break;
    }
    done += static_cast<std::size_t>(n);
  }
  return bytes;
}

/// Parses frames out of `bytes`. Returns the recovered records and sets
/// `valid_end` to the offset just past the last complete, checksummed
/// frame; bytes beyond it are a torn tail. Throws WalCorruptionError when
/// a complete frame fails its checksum or a length field is absurd.
WalReplayResult parse_frames(const std::vector<std::uint8_t>& bytes,
                             const std::string& path, std::size_t* valid_end) {
  WalReplayResult result;
  std::size_t off = 0;
  *valid_end = 0;
  while (bytes.size() - off >= kFrameHeader) {
    const std::uint32_t len = read_u32le(bytes.data() + off);
    const std::uint32_t crc = read_u32le(bytes.data() + off + 4);
    if (len > Wal::kMaxRecordBytes) {
      throw WalCorruptionError("frame at offset " + std::to_string(off) +
                               " of '" + path + "' promises " +
                               std::to_string(len) + " bytes");
    }
    if (bytes.size() - off - kFrameHeader < len) break;  // torn tail
    const std::uint8_t* payload = bytes.data() + off + kFrameHeader;
    if (crc32(payload, len) != crc) {
      throw WalCorruptionError("checksum mismatch in frame at offset " +
                               std::to_string(off) + " of '" + path + "'");
    }
    result.records.emplace_back(payload, payload + len);
    off += kFrameHeader + len;
    *valid_end = off;
  }
  result.truncated_bytes = bytes.size() - *valid_end;
  return result;
}

std::vector<std::uint8_t> frame_record(const std::uint8_t* data,
                                       std::size_t size) {
  std::vector<std::uint8_t> frame(kFrameHeader + size);
  put_u32le(frame.data(), static_cast<std::uint32_t>(size));
  put_u32le(frame.data() + 4, crc32(data, size));
  // Empty payloads are legal frames; memcpy's pointer args must be non-null
  // even for size 0, and an empty vector's data() is null.
  if (size != 0) std::memcpy(frame.data() + kFrameHeader, data, size);
  return frame;
}

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::array<std::uint32_t, 256>, 8> kTables =
      make_crc_tables();
  const auto& t = kTables;
  std::uint32_t c = 0xFFFFFFFFu;
  std::size_t i = 0;
  for (; size - i >= 8; i += 8) {
    const std::uint32_t lo = c ^ read_u32le(data + i);
    const std::uint32_t hi = read_u32le(data + i + 4);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
  }
  for (; i < size; ++i) {
    c = t[0][(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

const char* wal_sync_policy_name(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kOff: return "off";
    case WalSyncPolicy::kEveryRound: return "every_round";
    case WalSyncPolicy::kEveryRecord: return "every_record";
  }
  return "unknown";
}

Wal::Wal(std::string path, WalSyncPolicy policy)
    : path_(std::move(path)), policy_(policy) {}

Wal::~Wal() {
  if (fd_ >= 0) ::close(fd_);
}

void Wal::open_fd() {
  fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) fail("open", path_);
}

WalReplayResult Wal::open_and_replay() {
  if (fd_ < 0) open_fd();
  if (::lseek(fd_, 0, SEEK_SET) < 0) fail("lseek", path_);
  const std::vector<std::uint8_t> bytes = read_file(fd_, path_);
  std::size_t valid_end = 0;
  WalReplayResult result = parse_frames(bytes, path_, &valid_end);
  if (result.truncated_bytes > 0) {
    if (::ftruncate(fd_, static_cast<off_t>(valid_end)) != 0) {
      fail("ftruncate", path_);
    }
    if (::fsync(fd_) != 0) fail("fsync", path_);
  }
  if (::lseek(fd_, static_cast<off_t>(valid_end), SEEK_SET) < 0) {
    fail("lseek", path_);
  }
  size_ = valid_end;
  return result;
}

void Wal::append(const std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) open_fd();
  const std::vector<std::uint8_t> frame = frame_record(data, size);
  std::size_t done = 0;
  while (done < frame.size()) {
    const ssize_t n = ::write(fd_, frame.data() + done, frame.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write", path_);
    }
    done += static_cast<std::size_t>(n);
  }
  size_ += frame.size();
  if (policy_ == WalSyncPolicy::kEveryRecord) {
    if (::fsync(fd_) != 0) fail("fsync", path_);
  }
}

void Wal::append(const std::vector<std::uint8_t>& record) {
  append(record.data(), record.size());
}

void Wal::sync() {
  if (policy_ == WalSyncPolicy::kOff || fd_ < 0) return;
  if (::fsync(fd_) != 0) fail("fsync", path_);
}

void Wal::reset(const std::vector<std::vector<std::uint8_t>>& records) {
  std::vector<std::uint8_t> bytes;
  for (const auto& record : records) {
    const std::vector<std::uint8_t> frame =
        frame_record(record.data(), record.size());
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  // The rewrite replaces the inode; drop our handle to the old one first.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  durable_write(path_, bytes);
  open_fd();
  if (::lseek(fd_, 0, SEEK_END) < 0) fail("lseek", path_);
  size_ = bytes.size();
}

void Wal::truncate(std::uint64_t size) {
  if (fd_ < 0) open_fd();
  if (size > size_) {
    throw Error("wal: truncate(" + std::to_string(size) + ") past the " +
                std::to_string(size_) + "-byte end of '" + path_ + "'");
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) fail("ftruncate", path_);
  if (::lseek(fd_, static_cast<off_t>(size), SEEK_SET) < 0) fail("lseek", path_);
  // Compaction is its own barrier even under kEveryRound: an un-synced
  // truncate could resurrect dropped frames after power loss. kOff opts out
  // of power-loss durability wholesale, so it skips this fsync too.
  if (policy_ != WalSyncPolicy::kOff) {
    if (::fsync(fd_) != 0) fail("fsync", path_);
  }
  size_ = size;
}

WalReplayResult Wal::read(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) fail("open", path);
  std::vector<std::uint8_t> bytes;
  try {
    bytes = read_file(fd, path);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  std::size_t valid_end = 0;
  return parse_frames(bytes, path, &valid_end);
}

}  // namespace cppflare::core
