// Process-wide observability substrate: a span tracer and a metric registry.
//
// The tracer records scoped RAII spans (wall + thread-CPU time, parent/child
// nesting per thread) into a fixed-capacity thread-safe ring buffer; sinks
// (TraceSink) consume the buffer after a run — the Chrome `about:tracing`
// exporter and the summary table live in flare/observability.h. The
// MetricRegistry holds named counters, gauges and histograms whose hot-path
// recording is a single relaxed atomic op, cheap enough for per-frame and
// per-batch call sites.
//
// Cost contract: with the tracer disabled (the default) a CF_TRACE_SPAN is
// one relaxed atomic load and a branch — measured ≤1% on a clean 8-site
// round (bench/bench_trace, BENCH_obs.json). Compiling with
// -DCPPFLARE_DISABLE_TRACING removes the spans entirely
// (`kTracingCompiledIn` lets tests check which build they got). Recording
// never touches model data: a fully traced run is memcmp-equal to an
// untraced one (tests/trace_test.cpp holds this line).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/thread_annotations.h"

namespace cppflare::core {

// ---------------------------------------------------------------------------
// Span tracer
// ---------------------------------------------------------------------------

/// One completed span. Fixed-size buffers only: recording must not allocate.
struct TraceEvent {
  static constexpr std::size_t kNameCap = 40;
  static constexpr std::size_t kSiteCap = 24;

  char name[kNameCap];  // span name ("server.aggregate", ...), NUL-terminated
  char site[kSiteCap];  // site label or "" when not site-scoped
  std::int64_t round = -1;  // federation round or -1 when not round-scoped
  std::int64_t ts_ns = 0;   // start, monotonic ns since Tracer::start()
  std::int64_t dur_ns = 0;  // wall duration
  std::int64_t cpu_ns = 0;  // thread CPU time consumed inside the span
  std::uint64_t tid = 0;    // small stable per-thread id (1-based)
  std::uint64_t id = 0;     // span id (1-based, process-wide)
  std::uint64_t parent = 0; // enclosing span id on the same thread, 0 = root
};

/// Profiling hook: consumes a drained trace buffer event by event.
/// Implementations must not call back into the tracer.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Called once before the first event; `dropped` is the number of events
  /// lost to ring-buffer wrap-around.
  virtual void begin(std::int64_t dropped) { (void)dropped; }
  virtual void event(const TraceEvent& e) = 0;
  virtual void end() {}
};

/// The do-nothing sink — the runtime end of the zero-cost story (the
/// compile-time end is -DCPPFLARE_DISABLE_TRACING).
class NullTraceSink final : public TraceSink {
 public:
  void event(const TraceEvent&) override {}
};

/// Process-wide span recorder. Disabled by default; `start()` arms it and
/// (re)allocates the ring buffer, `stop()` disarms it but keeps the events
/// for export. All entry points are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  /// Enables recording into a fresh ring of `capacity` events. The epoch
  /// for `ts_ns` is reset to now.
  void start(std::size_t capacity = 1 << 16);
  /// Disables recording; buffered events stay readable until the next
  /// start() or clear().
  void stop();
  void clear();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Monotonic nanoseconds since start() (0 if never started).
  std::int64_t now_ns() const;

  /// Appends one completed event (no-op while disabled). Used by ScopedSpan
  /// and by callers whose span cannot be lexically scoped (e.g. a
  /// federation round that opens and closes on different dispatch calls).
  void record(const TraceEvent& e);

  /// Convenience for manual complete-events.
  void record_complete(const char* name, std::string_view site,
                       std::int64_t round, std::int64_t start_ns,
                       std::int64_t end_ns, std::int64_t cpu_ns = 0);

  /// Snapshot of the buffered events, sorted by start timestamp.
  std::vector<TraceEvent> events() const;
  std::size_t size() const;
  std::int64_t dropped() const;

  /// Streams the (chronological) buffer through a sink:
  /// begin(dropped), event()*, end().
  void drain(TraceSink& sink) const;

  // ---- internals for ScopedSpan (public: called from the RAII type) ----
  std::uint64_t next_span_id() { return id_counter_.fetch_add(1, std::memory_order_relaxed) + 1; }
  static std::uint64_t this_thread_id();
  static std::uint64_t current_parent();
  static void set_current_parent(std::uint64_t id);

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> id_counter_{0};
  mutable Mutex mu_;
  std::vector<TraceEvent> ring_ CF_GUARDED_BY(mu_);
  std::size_t capacity_ CF_GUARDED_BY(mu_) = 0;
  std::size_t head_ CF_GUARDED_BY(mu_) = 0;  // next overwrite once full
  std::int64_t dropped_ CF_GUARDED_BY(mu_) = 0;
  // steady_clock ns at start(); atomic so now_ns() — two calls per span —
  // stays off the ring mutex.
  std::atomic<std::int64_t> epoch_ns_{0};
};

/// RAII span: opens at construction, records at destruction. Inactive (and
/// nearly free) while the tracer is disabled. `name` must outlive the span
/// — pass string literals.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : ScopedSpan(name, {}, -1) {}
  ScopedSpan(const char* name, std::string_view site, std::int64_t round);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_;
  char site_[TraceEvent::kSiteCap];
  std::int64_t round_;
  std::int64_t start_ns_ = 0;
  std::int64_t cpu_start_ns_ = 0;
  std::uint64_t id_ = 0;  // 0 = inactive (tracer was disabled at entry)
  std::uint64_t parent_ = 0;
};

/// True when spans are compiled in (i.e. CPPFLARE_DISABLE_TRACING unset).
#if defined(CPPFLARE_DISABLE_TRACING)
inline constexpr bool kTracingCompiledIn = false;
#define CF_TRACE_CONCAT2(a, b) a##b
#define CF_TRACE_CONCAT(a, b) CF_TRACE_CONCAT2(a, b)
#define CF_TRACE_SPAN(name) \
  do {                      \
  } while (0)
#define CF_TRACE_SPAN_SITE(name, site, round) \
  do {                                        \
  } while (0)
#else
inline constexpr bool kTracingCompiledIn = true;
#define CF_TRACE_CONCAT2(a, b) a##b
#define CF_TRACE_CONCAT(a, b) CF_TRACE_CONCAT2(a, b)
/// Scoped span covering the rest of the enclosing block.
#define CF_TRACE_SPAN(name) \
  ::cppflare::core::ScopedSpan CF_TRACE_CONCAT(cf_span_, __LINE__)((name))
/// Scoped span tagged with a site label and a round index.
#define CF_TRACE_SPAN_SITE(name, site, round)                            \
  ::cppflare::core::ScopedSpan CF_TRACE_CONCAT(cf_span_, __LINE__)((name), \
                                                                   (site), (round))
#endif

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

/// Monotonic counter. Hot path: one relaxed fetch_add.
class Counter {
 public:
  void add(std::int64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-value gauge. Hot path: one relaxed store of the double's bits.
class Gauge {
 public:
  void set(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double value() const {
    const std::uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  void reset() { set(0.0); }

 private:
  std::atomic<std::uint64_t> bits_{0};  // IEEE-754 bits; 0 encodes 0.0
};

struct HistogramStats {
  std::int64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  /// Bucket-resolution (power-of-two) percentile estimates.
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Histogram of non-negative int64 samples (durations in ns, byte counts)
/// over 64 power-of-two buckets. Hot path: a handful of relaxed atomics.
class Histogram {
 public:
  Histogram();
  void record(std::int64_t v);
  HistogramStats stats() const;
  void reset();

 private:
  std::array<std::atomic<std::int64_t>, 64> buckets_;
  std::atomic<std::int64_t> count_{0};
  std::atomic<std::int64_t> sum_{0};
  std::atomic<std::int64_t> min_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Point-in-time copy of every metric in a registry.
struct MetricSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramStats> histograms;

  /// Gauges whose name starts with `prefix` (e.g. "site." for the per-site
  /// view the simulator attaches to SimulationResult).
  std::map<std::string, double> gauges_with_prefix(const std::string& prefix) const;
  std::map<std::string, std::int64_t> counters_with_prefix(
      const std::string& prefix) const;
};

/// Named metric store. Registration (first lookup of a name) takes a mutex;
/// the returned references stay valid for the registry's lifetime, so hot
/// paths look a metric up once and record through the reference.
///
/// Two usage patterns: per-run registries owned by a component (the
/// federated server owns one, exposed as FederatedServer::metrics()), and
/// the process-wide `instance()` for global counters (TCP frame bytes,
/// tensor/trainer counters) that have no per-run owner.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  static MetricRegistry& instance();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricSnapshot snapshot() const;
  /// Zeroes every registered metric (registrations survive).
  void reset();

 private:
  // mu_ guards the name->metric maps (registration and snapshot); the metric
  // objects themselves are internally atomic, which is why the returned
  // references are safe to record through without the lock.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      CF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      CF_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      CF_GUARDED_BY(mu_);
};

}  // namespace cppflare::core
