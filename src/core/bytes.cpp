#include "core/bytes.h"

namespace cppflare::core {

namespace {

// Sanity bound on decoded container lengths: rejects absurd sizes coming
// from corrupt or hostile payloads before we try to allocate them.
constexpr std::uint64_t kMaxContainerElems = 1ull << 32;

}  // namespace

void ByteWriter::write_u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::write_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::write_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::write_f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u32(bits);
}

void ByteWriter::write_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  write_u64(bits);
}

void ByteWriter::write_string(const std::string& s) {
  write_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::write_f32_vector(const std::vector<float>& v) {
  write_u64(v.size());
  if (v.empty()) return;  // empty vector: v.data() may be null, and memcpy
                          // arguments are declared nonnull even for n == 0
  const std::size_t off = buf_.size();
  buf_.resize(off + v.size() * sizeof(float));
  // Little-endian hosts can bulk-copy; the per-element path below is the
  // portable fallback and produces identical bytes on such hosts.
  std::memcpy(buf_.data() + off, v.data(), v.size() * sizeof(float));
}

void ByteWriter::write_i64_vector(const std::vector<std::int64_t>& v) {
  write_u64(v.size());
  for (std::int64_t x : v) write_i64(x);
}

void ByteWriter::write_raw(const std::uint8_t* data, std::size_t n) {
  buf_.insert(buf_.end(), data, data + n);
}

std::uint8_t ByteReader::read_u8() {
  require(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::read_u16() {
  require(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::read_u32() {
  require(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::read_u64() {
  require(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

float ByteReader::read_f32() {
  std::uint32_t bits = read_u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double ByteReader::read_f64() {
  std::uint64_t bits = read_u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string ByteReader::read_string() {
  std::uint32_t n = read_u32();
  require(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

std::vector<float> ByteReader::read_f32_vector() {
  std::uint64_t n = read_u64();
  if (n > kMaxContainerElems) throw SerializationError("f32 vector too large");
  require(n * sizeof(float));
  std::vector<float> v(n);
  if (n > 0) {  // empty: v.data() may be null (memcpy args are nonnull)
    std::memcpy(v.data(), data_ + pos_, n * sizeof(float));
  }
  pos_ += n * sizeof(float);
  return v;
}

std::vector<std::int64_t> ByteReader::read_i64_vector() {
  std::uint64_t n = read_u64();
  if (n > kMaxContainerElems) throw SerializationError("i64 vector too large");
  std::vector<std::int64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(read_i64());
  return v;
}

std::vector<std::uint8_t> ByteReader::read_raw(std::size_t n) {
  require(n);
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
  pos_ += n;
  return out;
}

}  // namespace cppflare::core
