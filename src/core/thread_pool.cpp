#include "core/thread_pool.h"

namespace cppflare::core {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

// Shutdown ordering invariant: stopping_ is set while holding mu_ — the same
// mutex every worker holds when evaluating its wait predicate — so a worker
// can never observe "not stopping" and then sleep through the notify (the
// classic lost-wakeup race). Only after the flag is published and all workers
// notified are the threads joined.
ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
    queue_.clear();  // discard tasks that have not started (see header)
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::post(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    if (stopping_) return;
    queue_.emplace_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      cv_.wait(mu_, [this]() CF_REQUIRES(mu_) {
        return stopping_ || !queue_.empty();
      });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace cppflare::core
