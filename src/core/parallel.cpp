#include "core/parallel.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <thread>

#include "core/error.h"
#include "core/thread_annotations.h"
#include "core/thread_pool.h"

namespace cppflare::core {

namespace {

thread_local bool tls_in_region = false;

std::size_t env_or_hardware_budget(bool& explicit_out) {
  if (const char* env = std::getenv("CPPFLARE_COMPUTE_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end == nullptr || *end != '\0' || v < 1) {
      throw ConfigError(std::string("CPPFLARE_COMPUTE_THREADS is not a "
                                    "positive integer: '") +
                        env + "'");
    }
    explicit_out = true;
    return static_cast<std::size_t>(v);
  }
  explicit_out = false;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Budget + helper pool. `mu` guards both; regions copy the pool shared_ptr
/// under the lock, so a concurrent set_compute_threads never destroys a pool
/// a region is still submitting to (the swap drops only the registry's ref).
struct ComputeState {
  Mutex mu;
  std::size_t budget CF_GUARDED_BY(mu) = 0;  // 0 = not yet resolved
  bool explicitly_set CF_GUARDED_BY(mu) = false;
  std::shared_ptr<ThreadPool> pool CF_GUARDED_BY(mu);
};

ComputeState& state() {
  static ComputeState s;
  return s;
}

/// Resolves the budget (lazily reading the environment the first time) and
/// returns the helper pool — null when the budget is 1 (pure serial).
std::shared_ptr<ThreadPool> acquire_pool(std::size_t& budget_out) {
  ComputeState& s = state();
  MutexLock lock(s.mu);
  if (s.budget == 0) s.budget = env_or_hardware_budget(s.explicitly_set);
  budget_out = s.budget;
  if (s.budget > 1 && s.pool == nullptr) {
    s.pool = std::make_shared<ThreadPool>(s.budget - 1);
  }
  return s.pool;
}

void replace_budget_locked(ComputeState& s, std::size_t n) CF_REQUIRES(s.mu) {
  s.budget = n;
  // Drop the old pool; it is destroyed (workers joined) once the last
  // in-flight region releases its reference. The new pool is created
  // lazily by the next parallel region.
  s.pool.reset();
}

/// Per-call shared state. Helpers hold it via shared_ptr, so a helper task
/// that starts after the caller already returned (nothing left to claim)
/// still touches valid memory.
struct Region {
  std::atomic<std::int64_t> next{0};  // next unclaimed chunk index
  std::atomic<bool> cancelled{false};
  // begin/end/grain/nchunks/fn are written once before the region is shared
  // with any helper and read-only afterwards — immutable-after-publication,
  // not lock-guarded.
  std::int64_t begin = 0;
  std::int64_t end = 0;
  std::int64_t grain = 1;
  std::int64_t nchunks = 0;
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;

  /// mu/cv pair the running-helper count with the caller's completion wait;
  /// the decrement happens under mu so the final notify cannot be lost.
  Mutex mu;
  CondVar cv;
  int running CF_GUARDED_BY(mu) = 0;
  std::exception_ptr error CF_GUARDED_BY(mu);  // first failure

  void record_error() {
    cancelled.store(true, std::memory_order_relaxed);
    MutexLock lock(mu);
    if (!error) error = std::current_exception();
  }

  /// Claims and runs chunks until the range is exhausted or cancelled.
  /// The caller contract (disjoint chunk outputs, fixed decomposition)
  /// makes which thread runs which chunk irrelevant to the result.
  void work() {
    std::int64_t c;
    while (!cancelled.load(std::memory_order_relaxed) &&
           (c = next.fetch_add(1, std::memory_order_relaxed)) < nchunks) {
      const std::int64_t b = begin + c * grain;
      const std::int64_t e = std::min(end, b + grain);
      try {
        (*fn)(b, e);
      } catch (...) {
        record_error();
      }
    }
  }
};

void helper_main(const std::shared_ptr<Region>& region) {
  {
    MutexLock lock(region->mu);
    ++region->running;
  }
  const bool prev = tls_in_region;
  tls_in_region = true;
  region->work();
  tls_in_region = prev;
  {
    MutexLock lock(region->mu);
    --region->running;
  }
  region->cv.notify_one();
}

}  // namespace

std::size_t compute_threads() {
  ComputeState& s = state();
  MutexLock lock(s.mu);
  if (s.budget == 0) s.budget = env_or_hardware_budget(s.explicitly_set);
  return s.budget;
}

void set_compute_threads(std::size_t n) {
  if (n == 0) throw ConfigError("set_compute_threads: budget must be >= 1");
  ComputeState& s = state();
  MutexLock lock(s.mu);
  s.explicitly_set = true;
  replace_budget_locked(s, n);
}

std::size_t set_compute_threads_if_default(std::size_t n) {
  if (n == 0) n = 1;
  ComputeState& s = state();
  MutexLock lock(s.mu);
  if (s.budget == 0) {
    // Resolve first so an explicit environment setting wins over auto.
    s.budget = env_or_hardware_budget(s.explicitly_set);
  }
  if (!s.explicitly_set && s.budget != n) replace_budget_locked(s, n);
  return s.budget;
}

bool in_parallel_region() { return tls_in_region; }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t nchunks = (end - begin + grain - 1) / grain;

  std::size_t budget = 1;
  std::shared_ptr<ThreadPool> pool;
  bool serial = tls_in_region || nchunks == 1;
  if (!serial) {
    pool = acquire_pool(budget);
    serial = budget <= 1 || pool == nullptr;
  }

  if (serial) {
    // Identical chunk decomposition as the parallel path, so callers that
    // keep per-chunk partials see the same chunks regardless of budget.
    const bool prev = tls_in_region;
    tls_in_region = true;
    try {
      for (std::int64_t c = 0; c < nchunks; ++c) {
        const std::int64_t b = begin + c * grain;
        fn(b, std::min(end, b + grain));
      }
    } catch (...) {
      tls_in_region = prev;
      throw;
    }
    tls_in_region = prev;
    return;
  }

  auto region = std::make_shared<Region>();
  region->begin = begin;
  region->end = end;
  region->grain = grain;
  region->nchunks = nchunks;
  region->fn = &fn;

  const std::size_t helpers =
      std::min(pool->size(), static_cast<std::size_t>(nchunks - 1));
  for (std::size_t h = 0; h < helpers; ++h) {
    pool->post([region] { helper_main(region); });
  }

  // The caller is a full participant: even if every posted helper is stuck
  // behind other callers' work (or discarded by a pool swap), this loop
  // drains the whole range by itself.
  const bool prev = tls_in_region;
  tls_in_region = true;
  region->work();
  tls_in_region = prev;

  {
    MutexLock lock(region->mu);
    Region& r = *region;
    r.cv.wait(r.mu, [&r]() CF_REQUIRES(r.mu) { return r.running == 0; });
    if (r.error) std::rethrow_exception(r.error);
  }
}

}  // namespace cppflare::core
