// Bounded exponential backoff with deterministic jitter.
//
// Every retry/sleep loop in the runtime goes through this helper (lint rule
// R6 bans naked sleep_for retry loops elsewhere) so that (a) retry behavior
// is capped and configurable in one place, and (b) jitter draws from the
// seeded core::Rng discipline instead of wall-clock entropy, keeping fault
// injection runs reproducible.
#pragma once

#include <cstdint>

#include "core/rng.h"

namespace cppflare::core {

struct BackoffPolicy {
  /// Delay before the first retry.
  std::int64_t initial_ms = 10;
  /// Cap applied after multiplicative growth.
  std::int64_t max_ms = 2000;
  /// Growth factor per retry.
  double multiplier = 2.0;
  /// Retries allowed after the first attempt (-1 = unbounded).
  std::int64_t max_retries = 5;
  /// Jitter fraction: each delay is scaled by uniform(1-jitter, 1+jitter).
  double jitter = 0.0;
  /// Retry immediately (0ms) the first time in an episode, then back off
  /// exponentially from initial_ms. The standard schedule for transient
  /// single-frame losses on fast links: the common case (one lost frame)
  /// costs one round trip instead of a WAN-scaled sleep, while repeated
  /// failures still back off. reset() rearms the free retry.
  bool fast_first_retry = false;
};

/// One retry episode: call `try_again()` after each failure; it sleeps the
/// next (jittered, capped) delay and returns false once retries are spent.
/// `reset()` rearms the episode after a success.
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy, std::uint64_t seed = 0x5eed);

  /// True when the retry budget is spent (never true for max_retries < 0).
  bool exhausted() const;

  /// Advances the schedule and returns the next delay in ms without
  /// sleeping. Exposed for tests and for callers with their own waiting
  /// primitive (e.g. a condition variable deadline).
  std::int64_t next_delay_ms();

  /// next_delay_ms() + sleep; returns the ms slept.
  std::int64_t sleep_next();

  /// False if exhausted; otherwise counts one retry, sleeps, returns true.
  bool try_again();

  /// Rearms the episode: delay back to initial_ms, retry count to zero.
  void reset();

  std::int64_t retries() const { return retries_; }

  /// The single blessed blocking sleep (see lint R6). No-op for ms <= 0.
  static void sleep_ms(std::int64_t ms);

 private:
  BackoffPolicy policy_;
  Rng rng_;
  std::int64_t current_ms_ = 0;
  std::int64_t retries_ = 0;
  bool fast_first_pending_ = false;
};

}  // namespace cppflare::core
