// Thread-safe leveled logging with NVFlare-style line format:
//
//   2023-04-07 06:33:33,911 - CiBertLearner - INFO: Local epoch site-7: 1/10
//
// Each subsystem obtains a named `Logger`; all loggers share one sink and a
// global threshold. The format intentionally mirrors the NVFlare log lines
// shown in Fig. 3 of the paper so the demonstration bench reads the same.
//
// Structured event API (the primary surface since the observability PR):
//
//   LOG(info).msg("Round started").kv("round", r);
//   LOG_AS("ClientManager", warn).msg("bad token").kv("site", name);
//
// `LOG(level)` logs under the file's component — define
// `CPPFLARE_LOG_COMPONENT` ("MyComponent") anywhere above the first use —
// while `LOG_AS` names the component inline. Key-value pairs are appended
// to the message as ` key=value` (values with spaces are quoted), keeping
// lines grep- and machine-parsable. The legacy string methods
// (`Logger::info(...)` et al.) remain as thin shims over `LogEvent`;
// lint rule R8 bans new call sites of that legacy form outside src/core/.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <type_traits>

#include "core/thread_annotations.h"

namespace cppflare::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Lowercase aliases so the LOG(level) macro reads naturally.
namespace log_levels {
inline constexpr LogLevel debug = LogLevel::kDebug;
inline constexpr LogLevel info = LogLevel::kInfo;
inline constexpr LogLevel warn = LogLevel::kWarn;
inline constexpr LogLevel error = LogLevel::kError;
}  // namespace log_levels

/// Returns the fixed uppercase name for a level ("INFO", ...).
const char* log_level_name(LogLevel level);

/// Global log configuration shared by all `Logger` instances.
class LogConfig {
 public:
  static LogConfig& instance();

  void set_threshold(LogLevel level);
  LogLevel threshold() const;

  /// Redirects output (default: std::clog). The stream must outlive all
  /// logging calls; passing nullptr restores the default sink.
  void set_sink(std::ostream* sink);

  /// Writes one formatted line; serialized by an internal mutex.
  void write_line(const std::string& line);

 private:
  LogConfig() = default;
  mutable Mutex mu_;
  LogLevel threshold_ CF_GUARDED_BY(mu_) = LogLevel::kInfo;
  // The pointer is guarded; the pointee (the stream) is serialized by the
  // same mutex because every write happens inside write_line's critical
  // section.
  std::ostream* sink_ CF_GUARDED_BY(mu_) CF_PT_GUARDED_BY(mu_) = nullptr;
};

/// One structured log line, built with chained calls and emitted when the
/// temporary dies at the end of the full expression:
///
///   LOG_AS("ScatterAndGather", info).msg("Round finished").kv("round", r);
///
/// Below the global threshold the event is inert: msg()/kv() are no-ops and
/// nothing is formatted or written.
class LogEvent {
 public:
  LogEvent(std::string_view component, LogLevel level);
  ~LogEvent();

  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  /// Sets the human-readable message (at most once; later calls append
  /// after a space so shims can compose).
  LogEvent& msg(std::string_view message);

  LogEvent& kv(std::string_view key, std::string_view value);
  LogEvent& kv(std::string_view key, const char* value) {
    return kv(key, std::string_view(value));
  }
  LogEvent& kv(std::string_view key, const std::string& value) {
    return kv(key, std::string_view(value));
  }
  LogEvent& kv(std::string_view key, double value);
  LogEvent& kv(std::string_view key, bool value) {
    return kv(key, value ? std::string_view("true") : std::string_view("false"));
  }
  template <typename T,
            std::enable_if_t<std::is_integral_v<T> && !std::is_same_v<T, bool>,
                             int> = 0>
  LogEvent& kv(std::string_view key, T value) {
    return kv_int(key, static_cast<long long>(value));
  }

 private:
  LogEvent& kv_int(std::string_view key, long long value);
  void append_key(std::string_view key);

  bool active_;
  LogLevel level_;
  std::string component_;
  std::string body_;  // message followed by " key=value" pairs
};

/// Structured logging entry points. LOG(level) uses the translation unit's
/// CPPFLARE_LOG_COMPONENT (a string literal; define it before first use);
/// LOG_AS(component, level) names the component at the call site.
#define LOG(level)                       \
  ::cppflare::core::LogEvent(            \
      CPPFLARE_LOG_COMPONENT, ::cppflare::core::log_levels::level)
#define LOG_AS(component, level) \
  ::cppflare::core::LogEvent((component), ::cppflare::core::log_levels::level)

/// A named logger. Cheap to construct; holds only its name.
///
/// The string convenience methods below are the *legacy* surface, kept as
/// shims over `LogEvent` for the NVFlare-style prose lines in src/core/ and
/// in tests; new library call sites use LOG/LOG_AS (lint rule R8).
class Logger {
 public:
  explicit Logger(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Structured event under this logger's name.
  LogEvent event(LogLevel level) const { return LogEvent(name_, level); }

  void log(LogLevel level, const std::string& message) const;

  void debug(const std::string& m) const { log(LogLevel::kDebug, m); }
  void info(const std::string& m) const { log(LogLevel::kInfo, m); }
  void warn(const std::string& m) const { log(LogLevel::kWarn, m); }
  void error(const std::string& m) const { log(LogLevel::kError, m); }

 private:
  std::string name_;
};

/// Formats the current wall-clock time as "YYYY-MM-DD HH:MM:SS,mmm".
std::string timestamp_now();

}  // namespace cppflare::core
