// Thread-safe leveled logging with NVFlare-style line format:
//
//   2023-04-07 06:33:33,911 - CiBertLearner - INFO: Local epoch site-7: 1/10
//
// Each subsystem obtains a named `Logger`; all loggers share one sink and a
// global threshold. The format intentionally mirrors the NVFlare log lines
// shown in Fig. 3 of the paper so the demonstration bench reads the same.
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string>

namespace cppflare::core {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the fixed uppercase name for a level ("INFO", ...).
const char* log_level_name(LogLevel level);

/// Global log configuration shared by all `Logger` instances.
class LogConfig {
 public:
  static LogConfig& instance();

  void set_threshold(LogLevel level);
  LogLevel threshold() const;

  /// Redirects output (default: std::clog). The stream must outlive all
  /// logging calls; passing nullptr restores the default sink.
  void set_sink(std::ostream* sink);

  /// Writes one formatted line; serialized by an internal mutex.
  void write_line(const std::string& line);

 private:
  LogConfig() = default;
  mutable std::mutex mu_;
  LogLevel threshold_ = LogLevel::kInfo;
  std::ostream* sink_ = nullptr;  // nullptr => std::clog
};

/// A named logger. Cheap to construct; holds only its name.
class Logger {
 public:
  explicit Logger(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void log(LogLevel level, const std::string& message) const;

  void debug(const std::string& m) const { log(LogLevel::kDebug, m); }
  void info(const std::string& m) const { log(LogLevel::kInfo, m); }
  void warn(const std::string& m) const { log(LogLevel::kWarn, m); }
  void error(const std::string& m) const { log(LogLevel::kError, m); }

 private:
  std::string name_;
};

/// Formats the current wall-clock time as "YYYY-MM-DD HH:MM:SS,mmm".
std::string timestamp_now();

}  // namespace cppflare::core
