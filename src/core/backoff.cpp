#include "core/backoff.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace cppflare::core {

Backoff::Backoff(BackoffPolicy policy, std::uint64_t seed)
    : policy_(policy), rng_(seed) {
  policy_.initial_ms = std::max<std::int64_t>(0, policy_.initial_ms);
  policy_.max_ms = std::max(policy_.initial_ms, policy_.max_ms);
  policy_.multiplier = std::max(1.0, policy_.multiplier);
  policy_.jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  fast_first_pending_ = policy_.fast_first_retry;
}

bool Backoff::exhausted() const {
  return policy_.max_retries >= 0 && retries_ >= policy_.max_retries;
}

std::int64_t Backoff::next_delay_ms() {
  if (fast_first_pending_) {
    fast_first_pending_ = false;
    return 0;
  }
  if (current_ms_ <= 0) {
    current_ms_ = policy_.initial_ms;
  } else {
    const double grown = static_cast<double>(current_ms_) * policy_.multiplier;
    current_ms_ = std::min(policy_.max_ms,
                           static_cast<std::int64_t>(grown));
  }
  std::int64_t delay = current_ms_;
  if (policy_.jitter > 0.0 && delay > 0) {
    const double scale = rng_.uniform(1.0 - policy_.jitter, 1.0 + policy_.jitter);
    delay = std::max<std::int64_t>(
        0, static_cast<std::int64_t>(static_cast<double>(delay) * scale));
  }
  return delay;
}

std::int64_t Backoff::sleep_next() {
  const std::int64_t delay = next_delay_ms();
  sleep_ms(delay);
  return delay;
}

bool Backoff::try_again() {
  if (exhausted()) return false;
  retries_ += 1;
  sleep_next();
  return true;
}

void Backoff::reset() {
  current_ms_ = 0;
  retries_ = 0;
  fast_first_pending_ = policy_.fast_first_retry;
}

void Backoff::sleep_ms(std::int64_t ms) {
  if (ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace cppflare::core
