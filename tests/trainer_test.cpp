#include "train/trainer.h"

#include "models/lstm_classifier.h"

#include <gtest/gtest.h>

#include "core/logging.h"
#include "train/metrics.h"

namespace cppflare::train {
namespace {

using tensor::Tensor;

/// A tiny order-sensitive synthetic task: label = 1 iff token A appears
/// before token B. Learnable by a small LSTM in a few epochs.
data::Dataset order_task(std::int64_t n, std::int64_t seq, std::uint64_t seed) {
  core::Rng rng(seed);
  const std::int64_t a = 5, b = 6;
  data::Dataset d;
  for (std::int64_t i = 0; i < n; ++i) {
    data::Sample s;
    s.ids.assign(static_cast<std::size_t>(seq), data::Vocabulary::kPad);
    s.ids[0] = data::Vocabulary::kCls;
    for (std::int64_t t = 1; t < seq; ++t) s.ids[t] = 7 + rng.uniform_int(0, 3);
    const std::int64_t p1 = rng.uniform_int(1, seq / 2);
    const std::int64_t p2 = rng.uniform_int(seq / 2 + 1, seq - 1);
    const bool a_first = rng.bernoulli(0.5);
    s.ids[p1] = a_first ? a : b;
    s.ids[p2] = a_first ? b : a;
    s.label = a_first ? 1 : 0;
    s.length = seq;
    d.add(s);
  }
  return d;
}

models::ModelConfig tiny_lstm(std::int64_t vocab, std::int64_t seq) {
  models::ModelConfig c = models::ModelConfig::lstm(vocab, seq);
  c.hidden = 24;
  c.layers = 1;
  c.dropout = 0.0f;
  return c;
}

TEST(Metrics, Top1Accuracy) {
  Tensor logits = Tensor::from_data({3, 2}, {2, 1, 0, 5, 1, 1});
  EXPECT_DOUBLE_EQ(top1_accuracy(logits, {0, 1, 0}), 1.0);
  EXPECT_NEAR(top1_accuracy(logits, {1, 1, 0}), 2.0 / 3.0, 1e-9);
  EXPECT_THROW(top1_accuracy(logits, {0}), Error);
}

TEST(Metrics, RunningMean) {
  RunningMean m;
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  m.add(1.0, 1);
  m.add(3.0, 3);
  EXPECT_DOUBLE_EQ(m.mean(), (1.0 + 9.0) / 4.0);
  EXPECT_EQ(m.count(), 4);
}

TEST(Metrics, EvaluateRejectsEmptyDataset) {
  core::Rng rng(1);
  auto model = models::make_classifier(tiny_lstm(16, 8), rng);
  EXPECT_THROW((void)evaluate(*model, data::Dataset{}, 4), Error);
}

TEST(Metrics, EvaluateRestoresTrainingMode) {
  core::Rng rng(2);
  auto model = models::make_classifier(tiny_lstm(16, 8), rng);
  model->set_training(true);
  const EvalResult r = evaluate(*model, order_task(8, 8, 3), 4);
  EXPECT_GT(r.count, 0);
  EXPECT_TRUE(model->training());
}

TEST(ClassifierTrainerTest, LearnsOrderTask) {
  core::Rng rng(4);
  auto model = models::make_classifier(tiny_lstm(16, 10), rng);
  const data::Dataset train = order_task(256, 10, 5);
  const data::Dataset valid = order_task(128, 10, 6);

  TrainOptions opts;
  opts.epochs = 6;
  opts.batch_size = 32;
  opts.lr = 5e-3;
  opts.seed = 7;
  ClassifierTrainer trainer(model, opts);
  const auto history = trainer.fit(train, valid);
  ASSERT_EQ(history.size(), 6u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
  EXPECT_GT(history.back().valid_acc, 0.9);
}

TEST(ClassifierTrainerTest, LossDecreasesMonotonicallyEnough) {
  core::Rng rng(8);
  auto model = models::make_classifier(tiny_lstm(16, 8), rng);
  const data::Dataset train = order_task(128, 8, 9);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 16;
  opts.lr = 5e-3;
  ClassifierTrainer trainer(model, opts);
  const double l1 = trainer.train_epoch(train);
  double last = l1;
  for (int e = 0; e < 4; ++e) last = trainer.train_epoch(train);
  EXPECT_LT(last, l1);
}

TEST(MlmTrainerTest, LossDropsOnTinyCorpus) {
  core::Rng rng(10);
  models::ModelConfig c = models::ModelConfig::bert(40, 12);
  c.hidden = 16;
  c.heads = 2;
  c.head_dim = 8;
  c.layers = 1;
  c.ffn_dim = 32;
  c.dropout = 0.0f;
  auto model = std::make_shared<models::BertForPretraining>(c, rng);

  // A highly regular corpus the model can memorize.
  data::Dataset corpus;
  for (int i = 0; i < 64; ++i) {
    data::Sample s;
    s.ids = {data::Vocabulary::kCls, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
    s.length = 12;
    corpus.add(s);
  }
  data::MlmMasker masker(40);
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 16;
  opts.lr = 1e-2;
  opts.seed = 11;
  MlmTrainer trainer(model, masker, opts);
  const double before = trainer.evaluate(corpus);
  for (int e = 0; e < 8; ++e) trainer.train_epoch(corpus);
  const double after = trainer.evaluate(corpus);
  EXPECT_LT(after, before * 0.6);
}

TEST(MlmTrainerTest, EvaluateIsDeterministic) {
  core::Rng rng(12);
  models::ModelConfig c = models::ModelConfig::bert(30, 8);
  c.hidden = 8;
  c.heads = 1;
  c.head_dim = 8;
  c.layers = 1;
  c.ffn_dim = 16;
  auto model = std::make_shared<models::BertForPretraining>(c, rng);
  data::Dataset corpus;
  for (int i = 0; i < 16; ++i) {
    data::Sample s;
    s.ids = {data::Vocabulary::kCls, 5, 6, 7, 8, 9, 10, 11};
    s.length = 8;
    corpus.add(s);
  }
  data::MlmMasker masker(30);
  TrainOptions opts;
  opts.batch_size = 8;
  opts.seed = 13;
  MlmTrainer trainer(model, masker, opts);
  EXPECT_DOUBLE_EQ(trainer.evaluate(corpus), trainer.evaluate(corpus));
}

}  // namespace
}  // namespace cppflare::train
