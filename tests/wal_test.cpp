#include "core/wal.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/error.h"

namespace cppflare::core {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("cppflare_wal_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

std::vector<std::uint8_t> rec(const std::string& s) {
  return std::vector<std::uint8_t>(s.begin(), s.end());
}

std::vector<char> slurp(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

void dump(const std::string& file, const std::vector<char>& bytes) {
  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST_F(WalTest, Crc32KnownVector) {
  // The canonical IEEE 802.3 check value: crc32("123456789") = 0xCBF43926.
  const std::string s = "123456789";
  EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()),
            0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST_F(WalTest, Crc32SliceAgreesWithBytewiseReference) {
  // The production crc32 folds eight bytes per step (slice-by-8); pin it to
  // a plain bytewise reference across every length that straddles the
  // fast-path/tail boundary.
  auto reference = [](const std::uint8_t* data, std::size_t size) {
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
      c ^= data[i];
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
    }
    return c ^ 0xFFFFFFFFu;
  };
  std::vector<std::uint8_t> buf(67);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    EXPECT_EQ(crc32(buf.data(), len), reference(buf.data(), len)) << len;
  }
}

TEST_F(WalTest, TruncateDropsSuffixFramesInPlace) {
  const std::string file = path("truncate.wal");
  Wal wal(file, WalSyncPolicy::kEveryRound);
  EXPECT_TRUE(wal.open_and_replay().records.empty());
  EXPECT_EQ(wal.size(), 0u);
  wal.append(rec("keep-1"));
  wal.append(rec("keep-2"));
  const std::uint64_t boundary = wal.size();
  EXPECT_EQ(boundary, 2u * (8 + 6));  // two frames of 8-byte header + 6 payload
  wal.append(rec("drop-me"));
  wal.sync();

  // Truncating past the end is a caller bug, not a silent no-op.
  EXPECT_THROW(wal.truncate(wal.size() + 1), Error);

  wal.truncate(boundary);
  EXPECT_EQ(wal.size(), boundary);
  EXPECT_EQ(std::filesystem::file_size(file), boundary);
  // The handle keeps working: appends land cleanly at the new end.
  wal.append(rec("after"));
  wal.sync();
  const WalReplayResult replay = Wal::read(file);
  ASSERT_EQ(replay.records.size(), 3u);
  EXPECT_EQ(replay.records[0], rec("keep-1"));
  EXPECT_EQ(replay.records[1], rec("keep-2"));
  EXPECT_EQ(replay.records[2], rec("after"));
  EXPECT_EQ(replay.truncated_bytes, 0u);
}

TEST_F(WalTest, SyncPolicyNames) {
  EXPECT_STREQ(wal_sync_policy_name(WalSyncPolicy::kOff), "off");
  EXPECT_STREQ(wal_sync_policy_name(WalSyncPolicy::kEveryRound), "every_round");
  EXPECT_STREQ(wal_sync_policy_name(WalSyncPolicy::kEveryRecord),
               "every_record");
}

TEST_F(WalTest, AppendReplayRoundTripAcrossPolicies) {
  for (const WalSyncPolicy policy :
       {WalSyncPolicy::kOff, WalSyncPolicy::kEveryRound,
        WalSyncPolicy::kEveryRecord}) {
    const std::string file =
        path(std::string("log_") + wal_sync_policy_name(policy));
    {
      Wal wal(file, policy);
      EXPECT_TRUE(wal.open_and_replay().records.empty());
      wal.append(rec("alpha"));
      wal.append(rec("beta"));
      wal.append(rec(""));  // empty payloads are legal frames
      wal.sync();
    }
    Wal wal(file, policy);
    const WalReplayResult replay = wal.open_and_replay();
    ASSERT_EQ(replay.records.size(), 3u);
    EXPECT_EQ(replay.records[0], rec("alpha"));
    EXPECT_EQ(replay.records[1], rec("beta"));
    EXPECT_TRUE(replay.records[2].empty());
    EXPECT_EQ(replay.truncated_bytes, 0u);
    // The cursor sits after the last frame: new appends extend, not clobber.
    wal.append(rec("gamma"));
    const WalReplayResult again = Wal::read(file);
    ASSERT_EQ(again.records.size(), 4u);
    EXPECT_EQ(again.records[3], rec("gamma"));
  }
}

TEST_F(WalTest, TornTailTruncatedAtEveryByteOffset) {
  // Build a reference log of three records, then for EVERY prefix length
  // that cuts into the final frame, replay must (a) never throw, (b) keep
  // exactly the two intact records, and (c) truncate the file back to the
  // last valid frame boundary.
  const std::string ref = path("ref.log");
  {
    Wal wal(ref, WalSyncPolicy::kOff);
    (void)wal.open_and_replay();
    wal.append(rec("first-record"));
    wal.append(rec("second-record"));
    wal.append(rec("the-final-record-that-gets-torn"));
  }
  const std::vector<char> bytes = slurp(ref);
  const std::size_t frame2_end = bytes.size() - (8 + 31);  // header + payload
  for (std::size_t cut = frame2_end + 1; cut < bytes.size(); ++cut) {
    const std::string file = path("torn.log");
    dump(file, std::vector<char>(bytes.begin(),
                                 bytes.begin() + static_cast<long>(cut)));
    Wal wal(file, WalSyncPolicy::kOff);
    WalReplayResult replay;
    ASSERT_NO_THROW(replay = wal.open_and_replay()) << "cut at " << cut;
    ASSERT_EQ(replay.records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(replay.records[0], rec("first-record"));
    EXPECT_EQ(replay.records[1], rec("second-record"));
    EXPECT_EQ(replay.truncated_bytes, cut - frame2_end) << "cut at " << cut;
    // Replay repaired the file in place.
    EXPECT_EQ(std::filesystem::file_size(file), frame2_end);
  }
}

TEST_F(WalTest, TornTailAppendAfterRepairExtendsCleanly) {
  const std::string file = path("repair.log");
  {
    Wal wal(file, WalSyncPolicy::kOff);
    (void)wal.open_and_replay();
    wal.append(rec("keep"));
    wal.append(rec("will-be-torn"));
  }
  std::vector<char> bytes = slurp(file);
  bytes.resize(bytes.size() - 5);
  dump(file, bytes);
  Wal wal(file, WalSyncPolicy::kOff);
  const WalReplayResult replay = wal.open_and_replay();
  ASSERT_EQ(replay.records.size(), 1u);
  wal.append(rec("appended-after-repair"));
  const WalReplayResult again = Wal::read(file);
  ASSERT_EQ(again.records.size(), 2u);
  EXPECT_EQ(again.records[1], rec("appended-after-repair"));
}

TEST_F(WalTest, BitRotThrowsTypedErrorNamingPath) {
  const std::string file = path("rot.log");
  {
    Wal wal(file, WalSyncPolicy::kOff);
    (void)wal.open_and_replay();
    wal.append(rec("record-one"));
    wal.append(rec("record-two"));
  }
  // Flip a payload byte of the FIRST (non-final) record: a complete frame
  // whose CRC no longer matches is bit-rot, not a torn tail.
  std::vector<char> bytes = slurp(file);
  bytes[8 + 2] ^= 0x40;
  dump(file, bytes);
  Wal wal(file, WalSyncPolicy::kOff);
  try {
    (void)wal.open_and_replay();
    FAIL() << "bit-rot must not replay";
  } catch (const WalCorruptionError& e) {
    EXPECT_NE(std::string(e.what()).find(file), std::string::npos)
        << "corruption error must name the offending file";
  }
  // Static read throws the same typed error.
  EXPECT_THROW((void)Wal::read(file), WalCorruptionError);
}

TEST_F(WalTest, OversizedLengthFieldIsCorruptionNotAllocation) {
  const std::string file = path("huge.log");
  {
    Wal wal(file, WalSyncPolicy::kOff);
    (void)wal.open_and_replay();
    wal.append(rec("ok"));
  }
  std::vector<char> bytes = slurp(file);
  // Forge a follow-up frame header promising ~4 GiB. The frame is
  // "complete" per the length-vs-kMaxRecordBytes check, so this is typed
  // corruption, never a 4 GiB allocation or a silent torn-tail truncation.
  for (int i = 0; i < 8; ++i) bytes.push_back(static_cast<char>(0xff));
  dump(file, bytes);
  Wal wal(file, WalSyncPolicy::kOff);
  EXPECT_THROW((void)wal.open_and_replay(), WalCorruptionError);
}

TEST_F(WalTest, ResetCompactsToExactlyGivenRecords) {
  const std::string file = path("compact.log");
  Wal wal(file, WalSyncPolicy::kEveryRound);
  (void)wal.open_and_replay();
  for (int i = 0; i < 50; ++i) wal.append(rec("bulk-" + std::to_string(i)));
  const auto size_before = std::filesystem::file_size(file);
  wal.reset({rec("header-only")});
  EXPECT_LT(std::filesystem::file_size(file), size_before);
  // The live handle keeps working after the rewrite...
  wal.append(rec("post-compact"));
  // ...and an independent reader sees exactly the compacted state.
  const WalReplayResult replay = Wal::read(file);
  ASSERT_EQ(replay.records.size(), 2u);
  EXPECT_EQ(replay.records[0], rec("header-only"));
  EXPECT_EQ(replay.records[1], rec("post-compact"));
  EXPECT_FALSE(std::filesystem::exists(file + ".tmp"));
}

TEST_F(WalTest, StaticReadToleratesTornTailWithoutRepairing) {
  const std::string file = path("ro.log");
  {
    Wal wal(file, WalSyncPolicy::kOff);
    (void)wal.open_and_replay();
    wal.append(rec("solid"));
    wal.append(rec("torn-away"));
  }
  std::vector<char> bytes = slurp(file);
  bytes.resize(bytes.size() - 3);
  dump(file, bytes);
  const auto size_before = std::filesystem::file_size(file);
  const WalReplayResult replay = Wal::read(file);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_GT(replay.truncated_bytes, 0u);
  // Read-only: the torn file was not modified.
  EXPECT_EQ(std::filesystem::file_size(file), size_before);
}

TEST_F(WalTest, ReadMissingFileThrows) {
  EXPECT_THROW((void)Wal::read(path("absent.log")), Error);
}

TEST_F(WalTest, UnwritableDirectoryThrows) {
  Wal wal("/nonexistent_dir_zzz/x.log", WalSyncPolicy::kOff);
  EXPECT_THROW((void)wal.open_and_replay(), Error);
}

TEST_F(WalTest, LargeRecordRoundTrip) {
  const std::string file = path("large.log");
  std::vector<std::uint8_t> big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 2654435761u >> 24);
  }
  {
    Wal wal(file, WalSyncPolicy::kEveryRecord);
    (void)wal.open_and_replay();
    wal.append(big);
  }
  const WalReplayResult replay = Wal::read(file);
  ASSERT_EQ(replay.records.size(), 1u);
  EXPECT_EQ(replay.records[0], big);
}

}  // namespace
}  // namespace cppflare::core
