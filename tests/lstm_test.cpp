#include "nn/lstm.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_util.h"

namespace cppflare::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(LstmLayer, StepShapes) {
  core::Rng rng(1);
  LstmLayer layer(3, 4, rng);
  Tensor x = Tensor::zeros({2, 3});
  Tensor h = Tensor::zeros({2, 4});
  Tensor c = Tensor::zeros({2, 4});
  auto [h2, c2] = layer.step(x, h, c);
  EXPECT_EQ(h2.shape(), (Shape{2, 4}));
  EXPECT_EQ(c2.shape(), (Shape{2, 4}));
}

TEST(LstmLayer, ParameterCountMatchesPytorchLayout) {
  core::Rng rng(2);
  LstmLayer layer(3, 4, rng);
  // w_ih [16,3] + w_hh [16,4] + b_ih [16] + b_hh [16]
  EXPECT_EQ(layer.num_parameters(), 16 * 3 + 16 * 4 + 16 + 16);
}

TEST(LstmLayer, ZeroWeightsGiveZeroHidden) {
  core::Rng rng(3);
  LstmLayer layer(2, 2, rng);
  // Zero all parameters: gates = 0 -> i=f=o=0.5, g=0 -> c=0, h=0.
  for (auto& p : layer.parameters()) std::fill(p.vec().begin(), p.vec().end(), 0.0f);
  Tensor x = Tensor::full({1, 2}, 5.0f);
  Tensor h = Tensor::zeros({1, 2});
  Tensor c = Tensor::zeros({1, 2});
  auto [h2, c2] = layer.step(x, h, c);
  for (std::int64_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(h2.data()[i], 0.0f, 1e-6f);
    EXPECT_NEAR(c2.data()[i], 0.0f, 1e-6f);
  }
}

TEST(LstmLayer, ForgetGateScalesCellState) {
  // Hand-computed single-unit case: all weights zero except a huge input
  // gate bias and cell candidate driven by x.
  core::Rng rng(4);
  LstmLayer layer(1, 1, rng);
  auto params = layer.named_parameters();
  // Layout rows: [i, f, g, o] in the 4H dimension.
  for (auto& [name, p] : params) std::fill(p.vec().begin(), p.vec().end(), 0.0f);
  // w_ih rows: i row 0, f row 1, g row 2, o row 3.
  params[0].second.vec()[2] = 1.0f;   // g = tanh(x)
  params[2].second.vec()[0] = 100.f;  // i ~= 1
  params[2].second.vec()[1] = -100.f; // f ~= 0
  params[2].second.vec()[3] = 100.f;  // o ~= 1
  Tensor x = Tensor::full({1, 1}, 0.5f);
  Tensor h = Tensor::zeros({1, 1});
  Tensor c = Tensor::full({1, 1}, 10.0f);  // should be forgotten
  auto [h2, c2] = layer.step(x, h, c);
  const float g = std::tanh(0.5f);
  EXPECT_NEAR(c2.data()[0], g, 1e-4f);               // f*c + i*g = g
  EXPECT_NEAR(h2.data()[0], std::tanh(g), 1e-4f);    // o*tanh(c)
}

TEST(Lstm, ForwardShapeAndLayering) {
  core::Rng rng(5);
  Lstm lstm(3, 4, 2, 0.0f, rng);
  EXPECT_EQ(lstm.num_layers(), 2);
  Tensor x = Tensor::zeros({2, 5, 3});
  core::Rng drop_rng(6);
  Tensor y = lstm.forward(x, drop_rng);
  EXPECT_EQ(y.shape(), (Shape{2, 5, 4}));
}

TEST(Lstm, RejectsZeroLayers) {
  core::Rng rng(7);
  EXPECT_THROW(Lstm(3, 4, 0, 0.0f, rng), Error);
}

TEST(Lstm, OutputDependsOnOrder) {
  // The recurrent model must distinguish [a,b] from [b,a] — the property
  // the paper's ADR task exploits.
  core::Rng rng(8);
  Lstm lstm(2, 3, 1, 0.0f, rng);
  core::Rng drop_rng(9);
  Tensor ab = Tensor::from_data({1, 2, 2}, {1, 0, 0, 1});
  Tensor ba = Tensor::from_data({1, 2, 2}, {0, 1, 1, 0});
  Tensor ya = lstm.forward(ab, drop_rng);
  Tensor yb = lstm.forward(ba, drop_rng);
  float diff = 0.0f;
  // Compare final timestep hidden states.
  for (std::int64_t j = 0; j < 3; ++j) {
    diff += std::fabs(ya.data()[1 * 3 + j] - yb.data()[1 * 3 + j]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(Lstm, BpttGradientsMatchNumerical) {
  core::Rng rng(10);
  Lstm lstm(2, 2, 1, 0.0f, rng);
  Tensor x = Tensor::randn({1, 3, 2}, rng, 0.0f, 1.0f, true);
  core::Rng drop_rng(11);
  std::vector<Tensor> inputs = {x};
  for (auto& p : lstm.parameters()) inputs.push_back(p);
  cppflare::testing::expect_gradients_close(
      [&] {
        Tensor y = lstm.forward(x, drop_rng);
        return tensor::sum_all(tensor::mul(y, y));
      },
      inputs, 1e-2f, 8e-2f, 1e-2f);
}

TEST(Lstm, DropoutOnlyBetweenLayersAndOnlyInTraining) {
  core::Rng rng(12);
  Lstm lstm(2, 4, 2, 0.5f, rng);
  Tensor x = Tensor::full({1, 3, 2}, 1.0f);
  lstm.set_training(false);
  core::Rng r1(13), r2(14);
  Tensor y1 = lstm.forward(x, r1);
  Tensor y2 = lstm.forward(x, r2);
  // Eval mode: deterministic regardless of rng.
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_EQ(y1.data()[i], y2.data()[i]);
  }
}

}  // namespace
}  // namespace cppflare::nn
