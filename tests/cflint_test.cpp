// Drives the cflint binary (tools/cflint) over the committed fixture trees:
// every rule R1-R14 must fire at its planted violation, the exempt-annotated
// clean tree must come back spotless, and the hermetic --self-test must
// pass. CFLINT_BINARY and CFLINT_FIXTURES are injected by the build (see
// tests/CMakeLists.txt), so the test exercises the exact binary a plain
// `ctest` builds.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;
};

RunResult run(const std::string& args) {
  const std::string cmd = std::string(CFLINT_BINARY) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  RunResult r;
  if (pipe == nullptr) return r;
  std::array<char, 4096> buf{};
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    r.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  r.exit_code = (status >= 0 && WIFEXITED(status)) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string fixtures(const char* tree) {
  return std::string(CFLINT_FIXTURES) + "/" + tree;
}

TEST(CflintTest, SelfTestPasses) {
  const RunResult r = run("--self-test");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("all"), std::string::npos) << r.output;
}

TEST(CflintTest, EveryRuleFiresOnViolationTree) {
  const RunResult r = run("--root " + fixtures("violations") + " -f json");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  const struct {
    const char* rule;
    const char* file;
  } expected[] = {
      {"\"R1\"", "rng_violation.cpp"},
      {"\"R2\"", "ownership_violation.cpp"},
      {"\"R3\"", "iostream_violation.cpp"},
      {"\"R4\"", "guard_violation.h"},
      {"\"R5\"", "thread_violation.cpp"},
      {"\"R6\"", "sleep_violation.cpp"},
      {"\"R7\"", "accept_violation.cpp"},
      {"\"R8\"", "logger_violation.cpp"},
      {"\"R9\"", "aggregator_iteration_violation.cpp"},
      {"\"R10\"", "lock_hold_violation.cpp"},
      // The reactor scope rule sanctions only nonblocking socket syscalls;
      // a sleep under the reactor lock must still fire.
      {"\"R10\"", "reactor.cpp"},
      {"\"R11\"", "status_violation.cpp"},
      {"\"R12\"", "dealer_escape_violation.cpp"},
      // R13 is scoped by path, so its fixture must literally be named
      // src/flare/journal.cpp inside the tree.
      {"\"R13\"", "journal.cpp"},
      {"\"R14\"", "server_construction_violation.cpp"},
  };
  for (const auto& e : expected) {
    // The finding's rule and file land in the same JSON object; with one
    // planted violation file per rule, coarse containment is exact enough.
    EXPECT_NE(r.output.find(e.rule), std::string::npos)
        << "rule " << e.rule << " never fired\n" << r.output;
    EXPECT_NE(r.output.find(e.file), std::string::npos)
        << "no finding in " << e.file << "\n" << r.output;
  }
}

TEST(CflintTest, GccFormatIsFileLineCol) {
  const RunResult r = run("--root " + fixtures("violations"));
  EXPECT_EQ(r.exit_code, 1);
  // file:line:col: error: [Rn] message
  EXPECT_NE(r.output.find(":1:1: error: [R4] header missing #pragma once"),
            std::string::npos)
      << r.output;
}

TEST(CflintTest, ExemptAnnotatedTreeIsClean) {
  const RunResult r = run("--root " + fixtures("clean"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(CflintTest, RepoIsClean) {
  const RunResult r = run("--root " + std::string(CFLINT_REPO_ROOT));
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

}  // namespace
