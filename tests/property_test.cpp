// Property-style invariants over random inputs (parameterized by seed):
// algebraic identities of the tensor ops and convexity/robustness bounds of
// the aggregators. These catch classes of bugs single-example tests miss.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/logging.h"
#include "flare/aggregator.h"
#include "flare/robust_aggregator.h"
#include "tensor/ops.h"

namespace cppflare {
namespace {

using tensor::Tensor;

class SeededProperty : public ::testing::TestWithParam<int> {
 protected:
  core::Rng rng() const { return core::Rng(static_cast<std::uint64_t>(GetParam())); }
};

using TensorProperties = SeededProperty;
using AggregatorProperties = SeededProperty;

TEST_P(TensorProperties, SoftmaxInvariantToConstantShift) {
  core::Rng r = rng();
  Tensor x = Tensor::randn({4, 7}, r);
  Tensor shifted = tensor::add_scalar(x, static_cast<float>(r.uniform(-5, 5)));
  Tensor a = tensor::softmax_lastdim(x);
  Tensor b = tensor::softmax_lastdim(shifted);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_NEAR(a.data()[i], b.data()[i], 1e-5f);
  }
}

TEST_P(TensorProperties, CrossEntropyInvariantToLogitShift) {
  core::Rng r = rng();
  Tensor logits = Tensor::randn({6, 4}, r);
  std::vector<std::int64_t> targets;
  for (int i = 0; i < 6; ++i) targets.push_back(r.uniform_int(0, 3));
  const float ce1 = tensor::cross_entropy(logits, targets).item();
  const float ce2 =
      tensor::cross_entropy(tensor::add_scalar(logits, 3.25f), targets).item();
  EXPECT_NEAR(ce1, ce2, 1e-4f);
}

TEST_P(TensorProperties, LayerNormInvariantToInputScaleAndShift) {
  // With unit gamma / zero beta, LN(a*x + b) == LN(x) for a > 0.
  core::Rng r = rng();
  Tensor x = Tensor::randn({3, 16}, r);
  const float a = static_cast<float>(r.uniform(0.5, 4.0));
  const float b = static_cast<float>(r.uniform(-2.0, 2.0));
  Tensor gamma = Tensor::full({16}, 1.0f);
  Tensor beta = Tensor::zeros({16});
  Tensor y1 = tensor::layer_norm(x, gamma, beta);
  Tensor y2 = tensor::layer_norm(
      tensor::add_scalar(tensor::mul_scalar(x, a), b), gamma, beta);
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    EXPECT_NEAR(y1.data()[i], y2.data()[i], 2e-3f);
  }
}

TEST_P(TensorProperties, MatmulIdentityIsNoop) {
  core::Rng r = rng();
  const std::int64_t n = 5 + GetParam() % 4;
  Tensor x = Tensor::randn({3, n}, r);
  Tensor eye = Tensor::zeros({n, n});
  for (std::int64_t i = 0; i < n; ++i) eye.data()[i * n + i] = 1.0f;
  Tensor y = tensor::matmul(x, eye);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_NEAR(x.data()[i], y.data()[i], 1e-5f);
  }
}

TEST_P(TensorProperties, PermuteInverseRoundTrips) {
  core::Rng r = rng();
  Tensor x = Tensor::randn({2, 3, 4, 5}, r);
  std::vector<std::int64_t> perm = {0, 1, 2, 3};
  r.shuffle(perm);
  std::vector<std::int64_t> inverse(4);
  for (std::int64_t i = 0; i < 4; ++i) inverse[perm[i]] = i;
  Tensor round_trip = tensor::permute(tensor::permute(x, perm), inverse);
  EXPECT_EQ(round_trip.shape(), x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(x.data()[i], round_trip.data()[i]);
  }
}

TEST_P(TensorProperties, BmmNtMatchesExplicitTranspose) {
  core::Rng r = rng();
  Tensor a = Tensor::randn({2, 3, 4}, r);
  Tensor b = Tensor::randn({2, 5, 4}, r);
  Tensor via_nt = tensor::bmm_nt(a, b);
  Tensor via_permute = tensor::bmm(a, tensor::permute(b, {0, 2, 1}));
  for (std::int64_t i = 0; i < via_nt.numel(); ++i) {
    EXPECT_NEAR(via_nt.data()[i], via_permute.data()[i], 1e-4f);
  }
}

TEST_P(TensorProperties, SoftmaxGradientRowsSumToZero) {
  // d/dx softmax composed with any probe has row-sum-zero gradients
  // (shift invariance implies it).
  core::Rng r = rng();
  Tensor x = Tensor::randn({3, 6}, r, 0.0f, 1.0f, /*requires_grad=*/true);
  Tensor probe = Tensor::randn({3, 6}, r);
  tensor::sum_all(tensor::mul(tensor::softmax_lastdim(x), probe)).backward();
  const auto& g = x.grad();
  for (int row = 0; row < 3; ++row) {
    float sum = 0;
    for (int col = 0; col < 6; ++col) sum += g[row * 6 + col];
    EXPECT_NEAR(sum, 0.0f, 1e-5f);
  }
}

TEST_P(AggregatorProperties, FedAvgIsConvexCombination) {
  core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  core::Rng r = rng();
  const std::int64_t dims = 12;
  nn::StateDict global;
  global.insert("w", {{dims}, std::vector<float>(dims, 0.0f)});
  flare::FedAvgAggregator agg(true);
  agg.reset(global, 0);

  std::vector<float> lo(dims, 1e9f), hi(dims, -1e9f);
  const int sites = 2 + GetParam() % 5;
  for (int s = 0; s < sites; ++s) {
    nn::StateDict d;
    std::vector<float> vals;
    for (std::int64_t i = 0; i < dims; ++i) {
      const float v = static_cast<float>(r.normal(0.0, 3.0));
      vals.push_back(v);
      lo[i] = std::min(lo[i], v);
      hi[i] = std::max(hi[i], v);
    }
    d.insert("w", {{dims}, vals});
    flare::Dxo dxo(flare::DxoKind::kWeights, d);
    dxo.set_meta_int(flare::Dxo::kMetaNumSamples, r.uniform_int(1, 500));
    ASSERT_TRUE(agg.accept("site-" + std::to_string(s), dxo));
  }
  const nn::StateDict out = agg.aggregate();
  for (std::int64_t i = 0; i < dims; ++i) {
    EXPECT_GE(out.at("w").values[i], lo[i] - 1e-4f);
    EXPECT_LE(out.at("w").values[i], hi[i] + 1e-4f);
  }
  core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
}

TEST_P(AggregatorProperties, MedianBoundedByHonestValuesUnderOneOutlier) {
  core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  core::Rng r = rng();
  const std::int64_t dims = 8;
  nn::StateDict global;
  global.insert("w", {{dims}, std::vector<float>(dims, 0.0f)});
  flare::MedianAggregator agg;
  agg.reset(global, 0);

  // 4 honest sites near zero + one adversary at +/-1e6.
  std::vector<float> honest_lo(dims, 1e9f), honest_hi(dims, -1e9f);
  for (int s = 0; s < 4; ++s) {
    std::vector<float> vals;
    for (std::int64_t i = 0; i < dims; ++i) {
      const float v = static_cast<float>(r.normal(0.0, 1.0));
      vals.push_back(v);
      honest_lo[i] = std::min(honest_lo[i], v);
      honest_hi[i] = std::max(honest_hi[i], v);
    }
    nn::StateDict d;
    d.insert("w", {{dims}, vals});
    flare::Dxo dxo(flare::DxoKind::kWeights, d);
    dxo.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    std::string honest_name = "h";
    honest_name += std::to_string(s);
    agg.accept(honest_name, dxo);
  }
  nn::StateDict evil;
  std::vector<float> evil_vals;
  for (std::int64_t i = 0; i < dims; ++i) {
    evil_vals.push_back(r.bernoulli(0.5) ? 1e6f : -1e6f);
  }
  evil.insert("w", {{dims}, evil_vals});
  flare::Dxo dxo(flare::DxoKind::kWeights, evil);
  dxo.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
  agg.accept("evil", dxo);

  const nn::StateDict out = agg.aggregate();
  for (std::int64_t i = 0; i < dims; ++i) {
    EXPECT_GE(out.at("w").values[i], honest_lo[i] - 1e-4f);
    EXPECT_LE(out.at("w").values[i], honest_hi[i] + 1e-4f);
  }
  core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TensorProperties, ::testing::Range(1, 9));
INSTANTIATE_TEST_SUITE_P(Seeds, AggregatorProperties, ::testing::Range(1, 9));

}  // namespace
}  // namespace cppflare
