#include "core/sha256.h"

#include <gtest/gtest.h>

namespace cppflare::core {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(Sha256::hash(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  Sha256 h;
  for (char c : msg) h.update(std::string(1, c));
  EXPECT_EQ(to_hex(h.finish()), to_hex(Sha256::hash(msg)));
}

TEST(Sha256, BoundaryLengths) {
  // Lengths around the 55/56/64-byte padding boundaries must all hash
  // without corruption; verify self-consistency of incremental paths.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
    const std::string msg(len, 'x');
    Sha256 split;
    split.update(msg.substr(0, len / 2));
    split.update(msg.substr(len / 2));
    EXPECT_EQ(to_hex(split.finish()), to_hex(Sha256::hash(msg))) << len;
  }
}

// RFC 4231 HMAC-SHA256 test vectors.
TEST(HmacSha256, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  const Digest mac = hmac_sha256(
      key, reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const std::string key_s = "Jefe";
  const std::vector<std::uint8_t> key(key_s.begin(), key_s.end());
  const std::string msg = "what do ya want for nothing?";
  const Digest mac = hmac_sha256(
      key, reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> msg(50, 0xdd);
  EXPECT_EQ(to_hex(hmac_sha256(key, msg)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest mac = hmac_sha256(
      key, reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, DifferentKeysDifferentMacs) {
  const std::vector<std::uint8_t> k1(32, 1), k2(32, 2);
  const std::vector<std::uint8_t> msg = {1, 2, 3};
  EXPECT_NE(to_hex(hmac_sha256(k1, msg)), to_hex(hmac_sha256(k2, msg)));
}

TEST(DigestCompare, EqualAndUnequal) {
  Digest a{}, b{};
  EXPECT_TRUE(digests_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digests_equal(a, b));
  b[31] = 0;
  b[0] = 1;
  EXPECT_FALSE(digests_equal(a, b));
}

TEST(ToHex, Formats) {
  Digest d{};
  d[0] = 0x0f;
  d[1] = 0xa0;
  const std::string hex = to_hex(d);
  EXPECT_EQ(hex.size(), 64u);
  EXPECT_EQ(hex.substr(0, 4), "0fa0");
}

}  // namespace
}  // namespace cppflare::core
