#include "train/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/logging.h"

namespace cppflare::train {
namespace {

ExperimentScale tiny_scale() {
  ExperimentScale s;
  s.num_patients = 240;
  s.pretrain_sequences = 64;
  s.pretrain_valid = 16;
  s.max_seq_len = 16;
  s.num_drugs = 30;
  s.num_diagnoses = 30;
  s.num_procedures = 15;
  s.num_clients = 8;
  s.fl_rounds = 1;
  s.batch_size = 16;
  s.epochs_centralized = 1;
  s.epochs_standalone = 1;
  s.mlm_epochs = 1;
  return s;
}

TEST(ExperimentScaleTest, EnvOverridesApply) {
  ::setenv("REPRO_NUM_PATIENTS", "777", 1);
  ::setenv("REPRO_FL_ROUNDS", "13", 1);
  const ExperimentScale s = ExperimentScale::from_env();
  EXPECT_EQ(s.num_patients, 777);
  EXPECT_EQ(s.fl_rounds, 13);
  ::unsetenv("REPRO_NUM_PATIENTS");
  ::unsetenv("REPRO_FL_ROUNDS");
  const ExperimentScale d = ExperimentScale::from_env();
  EXPECT_EQ(d.num_patients, ExperimentScale{}.num_patients);
}

TEST(ExperimentScaleTest, GeneratorConfigLeavesRoomForSpecials) {
  ExperimentScale s = tiny_scale();
  const data::ClinicalGenConfig g = s.generator_config();
  EXPECT_LE(g.max_events + 2, s.max_seq_len);  // [CLS] + genotype prefix fit
}

TEST(PrepareClassificationData, SplitsAndShardsAreConsistent) {
  const ExperimentScale s = tiny_scale();
  const ClassificationData data = prepare_classification_data(s);

  EXPECT_EQ(data.train.size() + data.valid.size(), s.num_patients);
  EXPECT_NEAR(static_cast<double>(data.valid.size()) / s.num_patients,
              s.valid_fraction, 0.01);

  ASSERT_EQ(static_cast<std::int64_t>(data.shards.size()), s.num_clients);
  std::int64_t shard_total = 0;
  for (const auto& shard : data.shards) shard_total += shard.size();
  EXPECT_EQ(shard_total, data.train.size());

  // Imbalanced ratios: the first shard dominates the last.
  EXPECT_GT(data.shards.front().size(), 5 * data.shards.back().size());

  // Global positive rate near the paper's 21.1%.
  const double rate =
      (data.train.positive_rate() * data.train.size() +
       data.valid.positive_rate() * data.valid.size()) /
      static_cast<double>(s.num_patients);
  EXPECT_GT(rate, 0.10);
  EXPECT_LT(rate, 0.35);
}

TEST(PrepareClassificationData, DeterministicForSameSeed) {
  const ExperimentScale s = tiny_scale();
  const ClassificationData a = prepare_classification_data(s);
  const ClassificationData b = prepare_classification_data(s);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (std::int64_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].ids, b.train[i].ids);
    EXPECT_EQ(a.train[i].label, b.train[i].label);
  }
}

TEST(PrepareClassificationData, SamplesFitMaxSeqLen) {
  const ExperimentScale s = tiny_scale();
  const ClassificationData data = prepare_classification_data(s);
  for (std::int64_t i = 0; i < data.train.size(); ++i) {
    EXPECT_EQ(static_cast<std::int64_t>(data.train[i].ids.size()), s.max_seq_len);
    EXPECT_LE(data.train[i].length, s.max_seq_len);
    EXPECT_GT(data.train[i].length, 1);
  }
}

TEST(MlmSchemeNames, AllDistinct) {
  EXPECT_STREQ(mlm_scheme_name(MlmScheme::kCentralized), "centralized");
  EXPECT_STREQ(mlm_scheme_name(MlmScheme::kSmallDataset), "small-dataset");
  EXPECT_STREQ(mlm_scheme_name(MlmScheme::kFlImbalanced), "fl-imbalanced");
  EXPECT_STREQ(mlm_scheme_name(MlmScheme::kFlBalanced), "fl-balanced");
}

TEST(SchemeRunners, StandaloneSmokeOnLstm) {
  core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  ExperimentScale s = tiny_scale();
  s.num_patients = 160;
  const ClassificationData data = prepare_classification_data(s);
  const SchemeResult r = run_standalone("lstm", data, s);
  core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  EXPECT_EQ(r.scheme, "standalone");
  EXPECT_EQ(r.model, "lstm");
  EXPECT_GE(r.accuracy, 0.0);
  EXPECT_LE(r.accuracy, 1.0);
  EXPECT_GT(r.seconds, 0.0);
}

}  // namespace
}  // namespace cppflare::train
