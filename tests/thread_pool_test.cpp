#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace cppflare::core {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ReturnsValues) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelTasksOverlap) {
  // With >= 2 workers, two sleeping tasks finish in about one sleep
  // duration, not two.
  ThreadPool pool(2);
  const auto start = std::chrono::steady_clock::now();
  auto f1 = pool.submit(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(100)); });
  auto f2 = pool.submit(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(100)); });
  f1.get();
  f2.get();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(elapsed, 190);
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        done.fetch_add(1);
      });
    }
    // Destructor may discard queued-but-unstarted tasks, but must join
    // running ones without crashing.
  }
  SUCCEED();
}

}  // namespace
}  // namespace cppflare::core
