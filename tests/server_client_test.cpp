// Server/client protocol tests over the in-process transport: registration,
// token validation, task issuance, aggregation round flow, and misbehaving
// peers.
#include <gtest/gtest.h>

#include <thread>

#include "core/logging.h"
#include "flare/client.h"
#include "flare/server.h"

namespace cppflare::flare {
namespace {

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

/// Learner that returns fixed weights regardless of the incoming model.
class ConstantLearner : public Learner {
 public:
  ConstantLearner(std::string site, std::vector<float> weights,
                  std::int64_t samples)
      : site_(std::move(site)), weights_(std::move(weights)), samples_(samples) {}

  Dxo train(const Dxo& global, const FLContext& ctx) override {
    EXPECT_EQ(global.kind(), DxoKind::kWeights);
    rounds_seen_.push_back(ctx.current_round);
    Dxo update(DxoKind::kWeights, dict_of(weights_));
    update.set_meta_int(Dxo::kMetaNumSamples, samples_);
    update.set_meta_double(Dxo::kMetaTrainLoss, 1.0);
    update.set_meta_double(Dxo::kMetaValidAcc, 0.5);
    return update;
  }
  std::string site_name() const override { return site_; }

  std::vector<std::int64_t> rounds_seen_;

 private:
  std::string site_;
  std::vector<float> weights_;
  std::int64_t samples_;
};

class ServerClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
    registry_ = Provisioner("test-project", 11).provision_sites(2);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }

  std::unique_ptr<FederatedServer> make_server(std::int64_t rounds) {
    ServerConfig config;
    config.job_id = "test-project";
    config.num_rounds = rounds;
    config.min_clients = 2;
    config.expected_clients = 2;
    return std::make_unique<FederatedServer>(
        config, registry_, dict_of({0.0f, 0.0f}),
        std::make_unique<FedAvgAggregator>(true));
  }

  std::unique_ptr<FederatedClient> make_client(
      FederatedServer& server, const std::string& name,
      std::shared_ptr<Learner> learner) {
    ClientConfig config;
    config.job_id = "test-project";
    config.max_idle_ms = 5000;
    return std::make_unique<FederatedClient>(
        config, registry_.at(name),
        std::make_unique<InProcConnection>(server.dispatcher()),
        std::move(learner));
  }

  std::map<std::string, Credential> registry_;
};

TEST_F(ServerClientTest, TwoClientsCompleteAllRounds) {
  auto server = make_server(3);
  auto l1 = std::make_shared<ConstantLearner>("site-1", std::vector<float>{1, 1},
                                              300);
  auto l2 = std::make_shared<ConstantLearner>("site-2", std::vector<float>{4, 0},
                                              100);
  auto c1 = make_client(*server, "site-1", l1);
  auto c2 = make_client(*server, "site-2", l2);

  std::thread t1([&] { c1->run(); });
  std::thread t2([&] { c2->run(); });
  t1.join();
  t2.join();

  EXPECT_TRUE(server->finished());
  EXPECT_EQ(c1->rounds_participated(), 3);
  EXPECT_EQ(c2->rounds_participated(), 3);
  EXPECT_EQ(l1->rounds_seen_, (std::vector<std::int64_t>{0, 1, 2}));

  // Weighted FedAvg fixed point: (300*1 + 100*4)/400 = 1.75, 0.75.
  const nn::StateDict global = server->global_model();
  EXPECT_NEAR(global.at("w").values[0], 1.75f, 1e-5f);
  EXPECT_NEAR(global.at("w").values[1], 0.75f, 1e-5f);

  const auto history = server->history();
  ASSERT_EQ(history.size(), 3u);
  EXPECT_EQ(history[0].num_contributions, 2);
  EXPECT_EQ(history[0].total_samples, 400);
}

TEST_F(ServerClientTest, BadTokenRejected) {
  auto server = make_server(1);
  Credential bad = registry_.at("site-1");
  bad.token = "00000000-0000-0000-0000-000000000000";
  ClientConfig config;
  config.job_id = "test-project";
  FederatedClient client(config, bad,
                         std::make_unique<InProcConnection>(server->dispatcher()),
                         std::make_shared<ConstantLearner>(
                             "site-1", std::vector<float>{0, 0}, 1));
  EXPECT_THROW(client.run(), ProtocolError);
}

TEST_F(ServerClientTest, UnknownSenderGetsUnverifiableResponse) {
  auto server = make_server(1);
  auto dispatcher = server->dispatcher();
  // Seal as an unprovisioned participant with a random key.
  const std::vector<std::uint8_t> rogue_key(32, 0x7);
  const auto sealed = seal("rogue", rogue_key, 1,
                           pack(RegisterRequest{"rogue", "tok"}));
  const auto response = dispatcher(sealed);
  // The response cannot be verified with the rogue key (empty-key seal).
  EXPECT_THROW(open(response, rogue_key), ProtocolError);
}

TEST_F(ServerClientTest, ForgedEnvelopeFromKnownSenderRejected) {
  auto server = make_server(1);
  auto dispatcher = server->dispatcher();
  const std::vector<std::uint8_t> wrong_key(32, 0x9);
  const auto sealed = seal("site-1", wrong_key, 1,
                           pack(RegisterRequest{"site-1", registry_.at("site-1").token}));
  const auto response = dispatcher(sealed);
  // Server answers with an error sealed under the legitimate site key.
  const Envelope env = open(response, registry_.at("site-1").secret);
  EXPECT_EQ(peek_type(env.payload), MsgType::kError);
}

TEST_F(ServerClientTest, GetTaskWithoutSessionFails) {
  auto server = make_server(1);
  auto dispatcher = server->dispatcher();
  const Credential& cred = registry_.at("site-1");
  const auto sealed = seal(cred.name, cred.secret, 1, pack(GetTaskRequest{"bogus"}));
  const Envelope env = open(dispatcher(sealed), cred.secret);
  EXPECT_EQ(peek_type(env.payload), MsgType::kError);
}

TEST_F(ServerClientTest, StaleRoundSubmissionRejected) {
  auto server = make_server(2);
  auto dispatcher = server->dispatcher();
  const Credential& c1 = registry_.at("site-1");
  const Credential& c2 = registry_.at("site-2");
  SequenceSource seq1, seq2;

  auto call = [&](const Credential& cred, SequenceSource& seq,
                  const std::vector<std::uint8_t>& frame) {
    const auto resp =
        dispatcher(seal(cred.name, cred.secret, seq.next(), frame));
    return open(resp, cred.secret).payload;
  };

  const RegisterAck a1 = decode_register_ack(
      call(c1, seq1, pack(RegisterRequest{c1.name, c1.token})));
  const RegisterAck a2 = decode_register_ack(
      call(c2, seq2, pack(RegisterRequest{c2.name, c2.token})));
  ASSERT_TRUE(a1.accepted);
  ASSERT_TRUE(a2.accepted);

  // Both fetch tasks for round 0.
  const TaskMessage t1 = decode_task(call(c1, seq1, pack(GetTaskRequest{a1.session_id})));
  ASSERT_EQ(t1.task, TaskKind::kTrain);
  ASSERT_EQ(t1.round, 0);

  // site-1 submits for a wrong (future) round.
  SubmitUpdateRequest submit;
  submit.session_id = a1.session_id;
  submit.round = 1;
  submit.payload = Dxo(DxoKind::kWeights, dict_of({1, 1}));
  submit.payload.set_meta_int(Dxo::kMetaNumSamples, 10);
  const SubmitAck ack = decode_submit_ack(call(c1, seq1, pack(submit)));
  EXPECT_FALSE(ack.accepted);
  EXPECT_EQ(ack.message, "stale round");
}

TEST_F(ServerClientTest, DuplicateSubmissionRejected) {
  auto server = make_server(2);
  auto dispatcher = server->dispatcher();
  const Credential& c1 = registry_.at("site-1");
  const Credential& c2 = registry_.at("site-2");
  SequenceSource seq1, seq2;
  auto call = [&](const Credential& cred, SequenceSource& seq,
                  const std::vector<std::uint8_t>& frame) {
    return open(dispatcher(seal(cred.name, cred.secret, seq.next(), frame)),
                cred.secret)
        .payload;
  };
  const RegisterAck a1 = decode_register_ack(
      call(c1, seq1, pack(RegisterRequest{c1.name, c1.token})));
  decode_register_ack(call(c2, seq2, pack(RegisterRequest{c2.name, c2.token})));

  SubmitUpdateRequest submit;
  submit.session_id = a1.session_id;
  submit.round = 0;
  submit.payload = Dxo(DxoKind::kWeights, dict_of({1, 1}));
  submit.payload.set_meta_int(Dxo::kMetaNumSamples, 10);
  EXPECT_TRUE(decode_submit_ack(call(c1, seq1, pack(submit))).accepted);
  EXPECT_FALSE(decode_submit_ack(call(c1, seq1, pack(submit))).accepted);
}

TEST_F(ServerClientTest, TaskNoneBeforeAllRegistered) {
  auto server = make_server(1);
  auto dispatcher = server->dispatcher();
  const Credential& c1 = registry_.at("site-1");
  SequenceSource seq1;
  auto call = [&](const std::vector<std::uint8_t>& frame) {
    return open(dispatcher(seal(c1.name, c1.secret, seq1.next(), frame)), c1.secret)
        .payload;
  };
  const RegisterAck ack = decode_register_ack(
      call(pack(RegisterRequest{c1.name, c1.token})));
  const TaskMessage task = decode_task(call(pack(GetTaskRequest{ack.session_id})));
  EXPECT_EQ(task.task, TaskKind::kNone);  // expected_clients = 2, only 1 joined
}

TEST_F(ServerClientTest, ReplayedEnvelopeRejected) {
  auto server = make_server(1);
  auto dispatcher = server->dispatcher();
  const Credential& c1 = registry_.at("site-1");
  const auto sealed = seal(c1.name, c1.secret, 1,
                           pack(RegisterRequest{c1.name, c1.token}));
  const Envelope first = open(dispatcher(sealed), c1.secret);
  EXPECT_EQ(peek_type(first.payload), MsgType::kRegisterAck);
  const Envelope replay = open(dispatcher(sealed), c1.secret);
  EXPECT_EQ(peek_type(replay.payload), MsgType::kError);
}

TEST_F(ServerClientTest, ServerEventsFireInOrder) {
  auto server = make_server(1);
  std::vector<EventType> seen;
  std::mutex mu;
  for (EventType type :
       {EventType::kStartRun, EventType::kRoundStarted, EventType::kBeforeAggregation,
        EventType::kAfterAggregation, EventType::kRoundDone, EventType::kEndRun}) {
    server->events().subscribe(type, [&seen, &mu, type](const FLContext&) {
      std::lock_guard<std::mutex> lock(mu);
      seen.push_back(type);
    });
  }
  auto c1 = make_client(*server, "site-1",
                        std::make_shared<ConstantLearner>(
                            "site-1", std::vector<float>{1, 1}, 5));
  auto c2 = make_client(*server, "site-2",
                        std::make_shared<ConstantLearner>(
                            "site-2", std::vector<float>{2, 2}, 5));
  std::thread t1([&] { c1->run(); });
  std::thread t2([&] { c2->run(); });
  t1.join();
  t2.join();
  ASSERT_EQ(seen.size(), 6u);
  EXPECT_EQ(seen[0], EventType::kStartRun);
  EXPECT_EQ(seen[1], EventType::kRoundStarted);
  EXPECT_EQ(seen[2], EventType::kBeforeAggregation);
  EXPECT_EQ(seen[3], EventType::kAfterAggregation);
  EXPECT_EQ(seen[4], EventType::kRoundDone);
  EXPECT_EQ(seen[5], EventType::kEndRun);
}

TEST_F(ServerClientTest, InboundFilterAppliedBeforeAggregation) {
  auto server = make_server(1);
  server->inbound_filters().add(std::make_shared<NormClipFilter>(0.5));
  auto c1 = make_client(*server, "site-1",
                        std::make_shared<ConstantLearner>(
                            "site-1", std::vector<float>{30, 40}, 5));
  auto c2 = make_client(*server, "site-2",
                        std::make_shared<ConstantLearner>(
                            "site-2", std::vector<float>{30, 40}, 5));
  std::thread t1([&] { c1->run(); });
  std::thread t2([&] { c2->run(); });
  t1.join();
  t2.join();
  const nn::StateDict global = server->global_model();
  const auto& w = global.at("w").values;
  EXPECT_NEAR(std::sqrt(w[0] * w[0] + w[1] * w[1]), 0.5, 1e-4);
}

}  // namespace
}  // namespace cppflare::flare
