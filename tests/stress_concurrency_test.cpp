// Concurrency stress suite.
//
// These tests exist to be run under ThreadSanitizer (the `tsan` preset):
// they hammer the threaded hot paths — ThreadPool submit/shutdown, the
// SimulatorRunner's one-thread-per-site federation, and TcpServer's
// accept/serve/stop lifecycle — with enough contention that unsynchronized
// state or fd-lifetime races become visible. Iteration counts are sized so
// the whole suite stays in the tens of seconds even with TSan's ~10x
// slowdown on a single core; raise them locally when chasing a flaky race.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/logging.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/trace.h"
#include "core/thread_pool.h"
#include "flare/simulator.h"
#include "flare/tcp.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace cppflare {
namespace {

class StressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

using ThreadPoolStress = StressTest;

TEST_F(ThreadPoolStress, ConstructDestroyTightLoop) {
  // Regression for shutdown ordering: the destructor must publish the stop
  // flag under the queue mutex before notifying, or a worker that checked
  // the predicate just before can sleep forever and the join hangs.
  for (int i = 0; i < 200; ++i) {
    core::ThreadPool pool(2);
  }
  SUCCEED();
}

TEST_F(ThreadPoolStress, ConstructSubmitDestroyLoopDiscardsCleanly) {
  // Destroy with work still queued: pending tasks are discarded, running
  // ones joined. No leak (ASan) and no race on the queue (TSan).
  std::atomic<int> ran{0};
  for (int i = 0; i < 50; ++i) {
    core::ThreadPool pool(2);
    for (int j = 0; j < 16; ++j) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }
  // Some tasks ran, none crashed; the exact count is scheduling-dependent.
  EXPECT_GE(ran.load(), 0);
}

TEST_F(ThreadPoolStress, ConcurrentSubmittersAllTasksComplete) {
  core::ThreadPool pool(4);
  constexpr int kSubmitters = 8;
  constexpr int kTasksEach = 50;
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  std::vector<std::vector<std::future<void>>> futures(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kTasksEach; ++i) {
        futures[t].push_back(
            pool.submit([&counter] { counter.fetch_add(1); }));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) f.get();
  }
  EXPECT_EQ(counter.load(), kSubmitters * kTasksEach);
}

TEST_F(ThreadPoolStress, ZeroThreadPoolClampsToOneAndRuns) {
  core::ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

// ---------------------------------------------------------------------------
// SimulatorRunner
// ---------------------------------------------------------------------------

using SimulatorStress = StressTest;

nn::StateDict tiny_model() {
  nn::StateDict d;
  d.insert("w", {{4}, {0.0f, 0.0f, 0.0f, 0.0f}});
  return d;
}

/// Minimal learner: nudges every weight toward a per-site target, like the
/// simulator_test fixture but with a deliberately tiny payload so rounds
/// turn over fast and the scheduler interleaves sites aggressively.
class NudgeLearner : public flare::Learner {
 public:
  NudgeLearner(std::string site, float target)
      : site_(std::move(site)), target_(target) {}

  flare::Dxo train(const flare::Dxo& global, const flare::FLContext&) override {
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.5f * (target_ - v);
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    update.set_meta_double(flare::Dxo::kMetaTrainLoss, 1.0);
    update.set_meta_double(flare::Dxo::kMetaValidAcc, 0.5);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float target_;
};

flare::SimulatorRunner make_runner(flare::SimulatorConfig config) {
  return flare::SimulatorRunner(
      config, tiny_model(), std::make_unique<flare::FedAvgAggregator>(true),
      [](std::int64_t i, const std::string& name) {
        return std::make_shared<NudgeLearner>(name, static_cast<float>(i));
      });
}

TEST_F(SimulatorStress, EightSitesMultiRoundInProc) {
  flare::SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 5;
  flare::SimulatorRunner runner = make_runner(config);
  const flare::SimulationResult result = runner.run();
  ASSERT_EQ(result.history.size(), 5u);
  for (const flare::RoundMetrics& m : result.history) {
    EXPECT_EQ(m.num_contributions, 8);
  }
}

TEST_F(SimulatorStress, EightSitesMultiRoundOverTcp) {
  flare::SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 3;
  config.use_tcp = true;
  flare::SimulatorRunner runner = make_runner(config);
  const flare::SimulationResult result = runner.run();
  ASSERT_EQ(result.history.size(), 3u);
  for (const flare::RoundMetrics& m : result.history) {
    EXPECT_EQ(m.num_contributions, 8);
  }
}

TEST_F(SimulatorStress, SixtyFourSitesOverTcpReactor) {
  // The reactor transport under real fan-in: 64 client threads long-polling
  // one epoll loop, tasks pushed into parked polls at every round turnover.
  // TSan watches the reactor's completion sink, the server's park table, and
  // the worker pool handing frames between them.
  flare::SimulatorConfig config;
  config.num_clients = 64;
  config.num_rounds = 2;
  config.use_tcp = true;
  flare::SimulatorRunner runner = make_runner(config);
  const flare::SimulationResult result = runner.run();
  ASSERT_EQ(result.history.size(), 2u);
  for (const flare::RoundMetrics& m : result.history) {
    EXPECT_EQ(m.num_contributions, 64);
  }
  EXPECT_TRUE(result.failed_sites.empty());
}

TEST_F(SimulatorStress, SingleSiteFederationCompletes) {
  flare::SimulatorConfig config;
  config.num_clients = 1;
  config.num_rounds = 4;
  flare::SimulatorRunner runner = make_runner(config);
  const flare::SimulationResult result = runner.run();
  ASSERT_EQ(result.history.size(), 4u);
  EXPECT_EQ(result.history.back().num_contributions, 1);
}

TEST_F(SimulatorStress, TracedEightSiteFederation) {
  // The tracing hot path under real contention: 8 site threads recording
  // client/server spans into the shared ring while per-site gauges land in
  // the server's MetricRegistry. TSan watches the ring mutex and the
  // relaxed-atomic metric stores; the assertions keep the trace honest.
  core::Tracer::instance().stop();
  core::Tracer::instance().clear();
  flare::SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 3;
  config.trace = true;
  flare::SimulatorRunner runner = make_runner(config);
  const flare::SimulationResult result = runner.run();
  ASSERT_EQ(result.history.size(), 3u);
  EXPECT_FALSE(core::Tracer::instance().enabled());  // run() stopped it
  if (core::kTracingCompiledIn) {
    EXPECT_GT(core::Tracer::instance().size(), 0u);
    EXPECT_EQ(result.site_metrics().size(), 8u * 5u);  // 5 gauges per site
  }
  core::Tracer::instance().clear();
}

TEST_F(SimulatorStress, BackToBackRunsReuseCleanState) {
  // Two consecutive federations (fresh runner each) must not interfere —
  // catches leaked global state and threads outliving run().
  for (int rep = 0; rep < 2; ++rep) {
    flare::SimulatorConfig config;
    config.num_clients = 4;
    config.num_rounds = 2;
    config.use_tcp = rep == 1;
    flare::SimulatorRunner runner = make_runner(config);
    EXPECT_EQ(runner.run().history.size(), 2u);
  }
}

TEST_F(SimulatorStress, EightSitesFaultyTcpFederation) {
  // Fault injection on every link: drops force the client retry/reconnect
  // machinery, delays skew round arrival order, and one hard disconnect
  // mid-run exercises the factory reconnect path — all while TSan watches
  // the server lock, the liveness map, and the abort condition variable.
  flare::SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 3;
  config.use_tcp = true;
  flare::SimulatorRunner runner = make_runner(config);
  runner.set_fault_planner(
      [](std::int64_t index, const std::string&,
         std::int64_t incarnation) -> std::optional<flare::FaultPlan> {
        flare::FaultPlan plan;
        plan.seed = 0x57e55 + static_cast<std::uint64_t>(index) * 31 +
                    static_cast<std::uint64_t>(incarnation);
        plan.drop_prob = 0.1;
        plan.delay_prob = 0.1;
        plan.delay_ms = 2;
        if (index == 5 && incarnation == 0) plan.disconnect_on_call = 6;
        return plan;
      });
  const flare::SimulationResult result = runner.run();
  EXPECT_FALSE(result.aborted);
  EXPECT_TRUE(result.failed_sites.empty());
  ASSERT_EQ(result.history.size(), 3u);
  for (const flare::RoundMetrics& m : result.history) {
    EXPECT_EQ(m.num_contributions, 8);
  }
}

/// Learner that runs a real tensor forward+backward per round, so the
/// federation's site workers all dispatch kernel chunks onto the shared
/// compute pool at once — the exact cross-thread interaction TSan needs to
/// observe (site worker -> pool helper handoff, region completion, budget
/// reads).
class MatmulLearner : public flare::Learner {
 public:
  explicit MatmulLearner(std::string site) : site_(std::move(site)) {}

  flare::Dxo train(const flare::Dxo& global, const flare::FLContext&) override {
    core::Rng rng(std::hash<std::string>{}(site_));
    tensor::Tensor a =
        tensor::Tensor::randn({64, 64}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
    tensor::Tensor b =
        tensor::Tensor::randn({64, 64}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
    tensor::Tensor loss = tensor::mean_all(tensor::matmul(a, b));
    loss.backward();

    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v += 0.01f * loss.item();
    }
    flare::Dxo update(flare::DxoKind::kWeights, updated);
    update.set_meta_int(flare::Dxo::kMetaNumSamples, 10);
    update.set_meta_double(flare::Dxo::kMetaTrainLoss, 1.0);
    update.set_meta_double(flare::Dxo::kMetaValidAcc, 0.5);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
};

TEST_F(SimulatorStress, FederationWithComputeParallelismEnabled) {
  core::set_compute_threads(3);
  flare::SimulatorConfig config;
  config.num_clients = 8;
  config.num_rounds = 3;
  flare::SimulatorRunner runner(
      config, tiny_model(), std::make_unique<flare::FedAvgAggregator>(true),
      [](std::int64_t, const std::string& name) {
        return std::make_shared<MatmulLearner>(name);
      });
  const flare::SimulationResult result = runner.run();
  ASSERT_EQ(result.history.size(), 3u);
  for (const flare::RoundMetrics& m : result.history) {
    EXPECT_EQ(m.num_contributions, 8);
  }
}

TEST_F(SimulatorStress, ConcurrentParallelForCallers) {
  // Many external threads each drive their own parallel regions against one
  // shared helper pool; every region must see exactly its own chunks.
  core::set_compute_threads(3);
  std::atomic<int> failures{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 6; ++t) {
    callers.emplace_back([&, t] {
      for (int rep = 0; rep < 20; ++rep) {
        const std::int64_t n = 512 + 64 * t;
        std::vector<int> hits(n, 0);
        core::parallel_for(0, n, 32, [&](std::int64_t b, std::int64_t e) {
          for (std::int64_t i = b; i < e; ++i) hits[i] += 1;
        });
        for (std::int64_t i = 0; i < n; ++i) {
          if (hits[i] != 1) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ---------------------------------------------------------------------------
// TcpServer / TcpConnection
// ---------------------------------------------------------------------------

using TcpStress = StressTest;

flare::Dispatcher echo_dispatcher() {
  return [](const std::vector<std::uint8_t>& req) { return req; };
}

TEST_F(TcpStress, AcceptServeCloseLoop) {
  flare::TcpServer server(0, echo_dispatcher());
  for (int i = 0; i < 50; ++i) {
    flare::TcpConnection conn("127.0.0.1", server.port());
    const std::vector<std::uint8_t> msg = {static_cast<std::uint8_t>(i)};
    EXPECT_EQ(conn.call(msg), msg);
  }
}

TEST_F(TcpStress, ConcurrentConnectCallCloseChurn) {
  flare::TcpServer server(0, echo_dispatcher());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 15; ++i) {
        try {
          flare::TcpConnection conn("127.0.0.1", server.port());
          const std::vector<std::uint8_t> msg = {
              static_cast<std::uint8_t>(t), static_cast<std::uint8_t>(i)};
          if (conn.call(msg) != msg) failures.fetch_add(1);
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(TcpStress, AbruptDisconnectsDoNotKillServer) {
  flare::TcpServer server(0, echo_dispatcher());
  for (int i = 0; i < 20; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    switch (i % 3) {
      case 0:
        // Drop the connection without sending anything.
        break;
      case 1: {
        // Send half a length header, then vanish mid-frame.
        const std::uint8_t half[2] = {0x10, 0x00};
        (void)::send(fd, half, sizeof(half), MSG_NOSIGNAL);
        break;
      }
      case 2: {
        // Announce a payload but never deliver it.
        const std::uint8_t header[4] = {0x40, 0x00, 0x00, 0x00};
        (void)::send(fd, header, sizeof(header), MSG_NOSIGNAL);
        break;
      }
    }
    ::close(fd);
  }
  // The server must still serve well-behaved clients afterwards.
  flare::TcpConnection conn("127.0.0.1", server.port());
  EXPECT_EQ(conn.call({7}), (std::vector<std::uint8_t>{7}));
}

TEST_F(TcpStress, SilentClientsUnderLoadDoNotStarveHonestOnes) {
  // Several clients connect and go mute mid-frame while honest traffic
  // hammers the same server. With SO_RCVTIMEO armed, every silent
  // connection's handler thread is reclaimed on the deadline instead of
  // accumulating until the accept backlog starves.
  flare::TcpServerOptions options;
  options.io_timeout_ms = 100;
  flare::TcpServer server(0, echo_dispatcher(), options);
  std::vector<int> silent_fds;
  for (int i = 0; i < 6; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    // Half a length header, then silence — pins the handler in read_all
    // until the receive deadline fires.
    const std::uint8_t half[2] = {0x08, 0x00};
    (void)::send(fd, half, sizeof(half), MSG_NOSIGNAL);
    silent_fds.push_back(fd);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> honest;
  for (int t = 0; t < 4; ++t) {
    honest.emplace_back([&, t] {
      try {
        flare::TcpConnection conn("127.0.0.1", server.port());
        for (int i = 0; i < 25; ++i) {
          const std::vector<std::uint8_t> msg = {static_cast<std::uint8_t>(t),
                                                 static_cast<std::uint8_t>(i)};
          if (conn.call(msg) != msg) failures.fetch_add(1);
        }
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : honest) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Give the deadlines time to fire, then confirm the silent handlers were
  // torn down (server closed its end of every mute connection).
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  for (const int fd : silent_fds) {
    std::uint8_t byte = 0;
    EXPECT_EQ(::recv(fd, &byte, 1, MSG_DONTWAIT), 0);
    ::close(fd);
  }
}

TEST_F(TcpStress, PortIsReusableImmediatelyAfterStop) {
  std::uint16_t port;
  {
    flare::TcpServer first(0, echo_dispatcher());
    port = first.port();
    flare::TcpConnection conn("127.0.0.1", port);
    EXPECT_EQ(conn.call({1}), (std::vector<std::uint8_t>{1}));
    first.stop();
  }
  // SO_REUSEADDR lets a new server bind the very same port even while the
  // old connections sit in TIME_WAIT.
  flare::TcpServer second(port, echo_dispatcher());
  EXPECT_EQ(second.port(), port);
  flare::TcpConnection conn("127.0.0.1", port);
  EXPECT_EQ(conn.call({2}), (std::vector<std::uint8_t>{2}));
}

TEST_F(TcpStress, ConcurrentStopCallsAreSafe) {
  for (int rep = 0; rep < 10; ++rep) {
    flare::TcpServer server(0, echo_dispatcher());
    flare::TcpConnection conn("127.0.0.1", server.port());
    EXPECT_EQ(conn.call({1}), (std::vector<std::uint8_t>{1}));
    std::vector<std::thread> stoppers;
    for (int t = 0; t < 4; ++t) {
      stoppers.emplace_back([&server] { server.stop(); });
    }
    for (std::thread& t : stoppers) t.join();
    // Destructor stops again: must be idempotent.
  }
  SUCCEED();
}

TEST_F(TcpStress, StopWhileClientsMidCallUnblocksThem) {
  // Dispatcher stalls long enough that stop() lands while handler threads
  // are inside recv/dispatch; clients must fail with TransportError, not
  // hang or crash.
  auto server = std::make_unique<flare::TcpServer>(
      0, [](const std::vector<std::uint8_t>& req) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        return req;
      });
  std::atomic<int> completed{0};
  std::atomic<int> aborted{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      try {
        flare::TcpConnection conn("127.0.0.1", server->port());
        for (int i = 0; i < 100; ++i) {
          conn.call({static_cast<std::uint8_t>(i)});
          completed.fetch_add(1);
        }
      } catch (const TransportError&) {
        aborted.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  server->stop();
  for (std::thread& t : clients) t.join();
  // Every client either finished all calls before the stop or was cleanly
  // unblocked by it.
  EXPECT_EQ(completed.load() / 100 + aborted.load(), 4);
}

TEST_F(TcpStress, ServerConstructDestroyChurn) {
  for (int i = 0; i < 30; ++i) {
    flare::TcpServer server(0, echo_dispatcher());
    if (i % 2 == 0) {
      flare::TcpConnection conn("127.0.0.1", server.port());
      EXPECT_EQ(conn.call({9}), (std::vector<std::uint8_t>{9}));
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace cppflare
