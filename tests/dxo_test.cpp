#include "flare/dxo.h"

#include <gtest/gtest.h>

namespace cppflare::flare {
namespace {

nn::StateDict small_dict() {
  nn::StateDict d;
  d.insert("w", {{2}, {1.5f, -2.5f}});
  return d;
}

TEST(Dxo, KindNames) {
  EXPECT_STREQ(dxo_kind_name(DxoKind::kWeights), "WEIGHTS");
  EXPECT_STREQ(dxo_kind_name(DxoKind::kWeightDiff), "WEIGHT_DIFF");
  EXPECT_STREQ(dxo_kind_name(DxoKind::kMetrics), "METRICS");
}

TEST(Dxo, MetaTypedAccessors) {
  Dxo dxo;
  dxo.set_meta("s", "text");
  dxo.set_meta_int(Dxo::kMetaNumSamples, 123);
  dxo.set_meta_double(Dxo::kMetaTrainLoss, 0.75);
  EXPECT_EQ(dxo.meta("s"), "text");
  EXPECT_EQ(dxo.meta_int(Dxo::kMetaNumSamples), 123);
  EXPECT_DOUBLE_EQ(dxo.meta_double(Dxo::kMetaTrainLoss), 0.75);
  EXPECT_TRUE(dxo.has_meta("s"));
  EXPECT_FALSE(dxo.has_meta("missing"));
  EXPECT_EQ(dxo.meta_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(dxo.meta_double("missing", 9.5), 9.5);
}

TEST(Dxo, SerializeRoundTripWeights) {
  Dxo dxo(DxoKind::kWeights, small_dict());
  dxo.set_meta_int(Dxo::kMetaNumSamples, 42);
  dxo.set_meta_double(Dxo::kMetaValidAcc, 0.875);

  core::ByteWriter w;
  dxo.serialize(w);
  core::ByteReader r(w.bytes());
  Dxo back = Dxo::deserialize(r);
  EXPECT_EQ(back.kind(), DxoKind::kWeights);
  EXPECT_EQ(back.data(), dxo.data());
  EXPECT_EQ(back.meta_int(Dxo::kMetaNumSamples), 42);
  EXPECT_DOUBLE_EQ(back.meta_double(Dxo::kMetaValidAcc), 0.875);
  EXPECT_TRUE(r.exhausted());
}

TEST(Dxo, SerializeRoundTripMetricsOnly) {
  Dxo dxo;
  dxo.set_kind(DxoKind::kMetrics);
  dxo.set_meta_double(Dxo::kMetaValidLoss, 1.25);
  core::ByteWriter w;
  dxo.serialize(w);
  core::ByteReader r(w.bytes());
  Dxo back = Dxo::deserialize(r);
  EXPECT_EQ(back.kind(), DxoKind::kMetrics);
  EXPECT_TRUE(back.data().empty());
  EXPECT_DOUBLE_EQ(back.meta_double(Dxo::kMetaValidLoss), 1.25);
}

TEST(Dxo, DeserializeRejectsBadKind) {
  core::ByteWriter w;
  w.write_u8(99);
  core::ByteReader r(w.bytes());
  EXPECT_THROW(Dxo::deserialize(r), SerializationError);
}

TEST(Dxo, MetaDoublePrecisionSurvives) {
  Dxo dxo;
  dxo.set_meta_double("x", 0.123456789012);
  core::ByteWriter w;
  dxo.serialize(w);
  core::ByteReader r(w.bytes());
  EXPECT_NEAR(Dxo::deserialize(r).meta_double("x"), 0.123456789012, 1e-11);
}

}  // namespace
}  // namespace cppflare::flare
