#include "nn/gru.h"

#include <gtest/gtest.h>

#include "models/lstm_classifier.h"
#include "tensor/ops.h"
#include "test_util.h"

namespace cppflare::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(GruLayer, StepShapes) {
  core::Rng rng(1);
  GruLayer layer(3, 4, rng);
  Tensor x = Tensor::zeros({2, 3});
  Tensor h = Tensor::zeros({2, 4});
  EXPECT_EQ(layer.step(x, h).shape(), (Shape{2, 4}));
}

TEST(GruLayer, ParameterCountMatchesPytorchLayout) {
  core::Rng rng(2);
  GruLayer layer(3, 4, rng);
  // w_ih [12,3] + w_hh [12,4] + b_ih [12] + b_hh [12]
  EXPECT_EQ(layer.num_parameters(), 12 * 3 + 12 * 4 + 12 + 12);
}

TEST(GruLayer, UpdateGateInterpolates) {
  // With all weights zero except a saturated update-gate bias, h' == h.
  core::Rng rng(3);
  GruLayer layer(1, 1, rng);
  auto params = layer.named_parameters();  // w_ih, w_hh, b_ih, b_hh
  for (auto& [name, p] : params) std::fill(p.vec().begin(), p.vec().end(), 0.0f);
  params[2].second.vec()[1] = 100.0f;  // z ~= 1 -> keep old state
  Tensor x = Tensor::full({1, 1}, 3.0f);
  Tensor h = Tensor::full({1, 1}, 0.7f);
  Tensor h2 = layer.step(x, h);
  EXPECT_NEAR(h2.data()[0], 0.7f, 1e-4f);

  params[2].second.vec()[1] = -100.0f;  // z ~= 0 -> take candidate n
  params[0].second.vec()[2] = 1.0f;     // n = tanh(x) (r-gated h term is 0)
  Tensor h3 = layer.step(x, h);
  EXPECT_NEAR(h3.data()[0], std::tanh(3.0f), 1e-4f);
}

TEST(Gru, ForwardShape) {
  core::Rng rng(4);
  Gru gru(3, 5, 2, 0.0f, rng);
  EXPECT_EQ(gru.num_layers(), 2);
  Tensor x = Tensor::zeros({2, 4, 3});
  core::Rng fw(5);
  EXPECT_EQ(gru.forward(x, fw).shape(), (Shape{2, 4, 5}));
}

TEST(Gru, RejectsZeroLayers) {
  core::Rng rng(6);
  EXPECT_THROW(Gru(3, 4, 0, 0.0f, rng), Error);
}

TEST(Gru, OutputDependsOnOrder) {
  core::Rng rng(7);
  Gru gru(2, 3, 1, 0.0f, rng);
  core::Rng fw(8);
  Tensor ab = Tensor::from_data({1, 2, 2}, {1, 0, 0, 1});
  Tensor ba = Tensor::from_data({1, 2, 2}, {0, 1, 1, 0});
  Tensor ya = gru.forward(ab, fw);
  Tensor yb = gru.forward(ba, fw);
  float diff = 0.0f;
  for (std::int64_t j = 0; j < 3; ++j) {
    diff += std::fabs(ya.data()[3 + j] - yb.data()[3 + j]);
  }
  EXPECT_GT(diff, 1e-4f);
}

TEST(Gru, BpttGradientsMatchNumerical) {
  core::Rng rng(9);
  Gru gru(2, 2, 1, 0.0f, rng);
  Tensor x = Tensor::randn({1, 3, 2}, rng, 0.0f, 1.0f, true);
  core::Rng fw(10);
  std::vector<Tensor> inputs = {x};
  for (auto& p : gru.parameters()) inputs.push_back(p);
  cppflare::testing::expect_gradients_close(
      [&] {
        Tensor y = gru.forward(x, fw);
        return tensor::sum_all(tensor::mul(y, y));
      },
      inputs, 1e-2f, 8e-2f, 1e-2f);
}

TEST(GruClassifierTest, FactoryAndShapes) {
  core::Rng rng(11);
  models::ModelConfig c = models::ModelConfig::gru(30, 8);
  EXPECT_EQ(c.kind, models::ModelKind::kGru);
  EXPECT_EQ(c.hidden, 128);  // mirrors the LSTM spec
  c.hidden = 10;
  auto model = models::make_classifier(c, rng);
  EXPECT_NE(dynamic_cast<models::GruClassifier*>(model.get()), nullptr);

  data::Batch b;
  b.batch_size = 2;
  b.seq_len = 8;
  b.ids.assign(16, 6);
  b.lengths = {8, 5};
  b.labels = {0, 1};
  core::Rng fw(12);
  EXPECT_EQ(model->class_logits(b, fw).shape(), (Shape{2, 2}));
}

TEST(GruClassifierTest, ByNameLookup) {
  EXPECT_EQ(models::ModelConfig::by_name("gru", 10, 8).kind,
            models::ModelKind::kGru);
}

}  // namespace
}  // namespace cppflare::nn
