// End-to-end federated training on a tiny learnable task: the full stack
// (provisioning, secure channel, server, clients, ClinicalLearner, FedAvg)
// must reproduce the paper's qualitative result — FL tracking centralized
// and beating standalone when client data is skewed.
#include <gtest/gtest.h>

#include "core/logging.h"
#include "data/partitioner.h"
#include "flare/simulator.h"
#include "models/lstm_classifier.h"
#include "train/clinical_learner.h"
#include "train/metrics.h"
#include "train/trainer.h"

namespace cppflare::train {
namespace {

/// Order task as in trainer_test: label = 1 iff token A precedes token B.
data::Dataset order_task(std::int64_t n, std::int64_t seq, std::uint64_t seed) {
  core::Rng rng(seed);
  const std::int64_t a = 5, b = 6;
  data::Dataset d;
  for (std::int64_t i = 0; i < n; ++i) {
    data::Sample s;
    s.ids.assign(static_cast<std::size_t>(seq), data::Vocabulary::kPad);
    s.ids[0] = data::Vocabulary::kCls;
    for (std::int64_t t = 1; t < seq; ++t) s.ids[t] = 7 + rng.uniform_int(0, 3);
    const std::int64_t p1 = rng.uniform_int(1, seq / 2);
    const std::int64_t p2 = rng.uniform_int(seq / 2 + 1, seq - 1);
    const bool a_first = rng.bernoulli(0.5);
    s.ids[p1] = a_first ? a : b;
    s.ids[p2] = a_first ? b : a;
    s.label = a_first ? 1 : 0;
    s.length = seq;
    d.add(s);
  }
  return d;
}

models::ModelConfig tiny_lstm() {
  models::ModelConfig c = models::ModelConfig::lstm(16, 10);
  c.hidden = 24;
  c.layers = 1;
  c.dropout = 0.0f;
  return c;
}

class IntegrationFlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

TEST_F(IntegrationFlTest, FederatedLearnsOrderTask) {
  const data::Dataset train = order_task(384, 10, 21);
  const data::Dataset valid = order_task(128, 10, 22);

  data::PartitionOptions popts;
  popts.num_clients = 4;
  popts.label_skew_alpha = 0.4;  // non-IID clinics
  popts.seed = 23;
  const auto shards = data::partition(train, popts);

  const models::ModelConfig mconfig = tiny_lstm();
  core::Rng init_rng(24);
  auto initial = models::make_classifier(mconfig, init_rng);

  flare::SimulatorConfig sim;
  sim.num_clients = 4;
  sim.num_rounds = 20;

  LearnerOptions lopts;
  lopts.local_epochs = 1;
  lopts.batch_size = 16;
  lopts.lr = 1e-2;
  lopts.verbose = false;

  flare::SimulatorRunner runner(
      sim, initial->state_dict(), std::make_unique<flare::FedAvgAggregator>(true),
      [&](std::int64_t i, const std::string& name) {
        core::Rng site_rng(30 + i);
        auto model = models::make_classifier(mconfig, site_rng);
        return std::make_shared<ClinicalLearner>(
            name, std::move(model), shards[static_cast<std::size_t>(i)], valid,
            lopts);
      });
  const flare::SimulationResult result = runner.run();

  core::Rng eval_rng(40);
  auto final_model = models::make_classifier(mconfig, eval_rng);
  final_model->load_state_dict(result.final_model);
  const EvalResult eval = evaluate(*final_model, valid, 16);
  EXPECT_GT(eval.accuracy, 0.85);
}

TEST_F(IntegrationFlTest, FlBeatsStandaloneUnderSkew) {
  const data::Dataset train = order_task(384, 10, 51);
  const data::Dataset valid = order_task(160, 10, 52);

  data::PartitionOptions popts;
  popts.num_clients = 4;
  popts.size_ratios = {0.55, 0.25, 0.12, 0.08};
  popts.label_skew_alpha = 0.15;  // strong skew
  popts.seed = 53;
  const auto shards = data::partition(train, popts);
  const models::ModelConfig mconfig = tiny_lstm();

  // Standalone: each site alone, same per-site budget as 12 FL rounds.
  double standalone_acc = 0.0;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    core::Rng rng(60 + i);
    auto model = models::make_classifier(mconfig, rng);
    TrainOptions topts;
    topts.epochs = 12;
    topts.batch_size = 16;
    topts.lr = 1e-2;
    topts.seed = 70 + i;
    ClassifierTrainer trainer(model, topts);
    for (int e = 0; e < topts.epochs; ++e) trainer.train_epoch(shards[i]);
    standalone_acc += evaluate(*model, valid, 16).accuracy;
  }
  standalone_acc /= static_cast<double>(shards.size());

  // Federated with identical budget.
  core::Rng init_rng(80);
  auto initial = models::make_classifier(mconfig, init_rng);
  flare::SimulatorConfig sim;
  sim.num_clients = 4;
  sim.num_rounds = 12;
  LearnerOptions lopts;
  lopts.local_epochs = 1;
  lopts.batch_size = 16;
  lopts.lr = 1e-2;
  lopts.verbose = false;
  flare::SimulatorRunner runner(
      sim, initial->state_dict(), std::make_unique<flare::FedAvgAggregator>(true),
      [&](std::int64_t i, const std::string& name) {
        core::Rng site_rng(90 + i);
        auto model = models::make_classifier(mconfig, site_rng);
        return std::make_shared<ClinicalLearner>(
            name, std::move(model), shards[static_cast<std::size_t>(i)], valid,
            lopts);
      });
  const flare::SimulationResult result = runner.run();
  core::Rng eval_rng(100);
  auto fl_model = models::make_classifier(mconfig, eval_rng);
  fl_model->load_state_dict(result.final_model);
  const double fl_acc = evaluate(*fl_model, valid, 16).accuracy;

  EXPECT_GT(fl_acc, standalone_acc);
}

TEST_F(IntegrationFlTest, WeightDiffModeMatchesFullWeights) {
  const data::Dataset train = order_task(128, 10, 61);
  const data::Dataset valid = order_task(64, 10, 62);
  data::PartitionOptions popts;
  popts.num_clients = 2;
  popts.seed = 63;
  const auto shards = data::partition(train, popts);
  const models::ModelConfig mconfig = tiny_lstm();

  auto run_mode = [&](bool send_diff) {
    core::Rng init_rng(64);
    auto initial = models::make_classifier(mconfig, init_rng);
    flare::SimulatorConfig sim;
    sim.num_clients = 2;
    sim.num_rounds = 3;
    LearnerOptions lopts;
    lopts.local_epochs = 1;
    lopts.batch_size = 16;
    lopts.lr = 5e-3;
    lopts.send_diff = send_diff;
    lopts.verbose = false;
    flare::SimulatorRunner runner(
        sim, initial->state_dict(), std::make_unique<flare::FedAvgAggregator>(true),
        [&](std::int64_t i, const std::string& name) {
          core::Rng site_rng(65 + i);
          auto model = models::make_classifier(mconfig, site_rng);
          return std::make_shared<ClinicalLearner>(
              name, std::move(model), shards[static_cast<std::size_t>(i)], valid,
              lopts);
        });
    return runner.run().final_model;
  };

  const nn::StateDict full = run_mode(false);
  const nn::StateDict diff = run_mode(true);
  // Weighted mean of (w_i) equals global + weighted mean of (w_i - global):
  // identical math, so results agree to float tolerance.
  ASSERT_TRUE(full.congruent_with(diff));
  auto it_f = full.entries().begin();
  auto it_d = diff.entries().begin();
  for (; it_f != full.entries().end(); ++it_f, ++it_d) {
    for (std::size_t i = 0; i < it_f->second.values.size(); ++i) {
      EXPECT_NEAR(it_f->second.values[i], it_d->second.values[i], 1e-4f);
    }
  }
}

TEST_F(IntegrationFlTest, DpNoiseDegradesGracefully) {
  const data::Dataset train = order_task(256, 10, 71);
  const data::Dataset valid = order_task(96, 10, 72);
  data::PartitionOptions popts;
  popts.num_clients = 2;
  popts.seed = 73;
  const auto shards = data::partition(train, popts);
  const models::ModelConfig mconfig = tiny_lstm();

  auto run_sigma = [&](double sigma) {
    core::Rng init_rng(74);
    auto initial = models::make_classifier(mconfig, init_rng);
    flare::SimulatorConfig sim;
    sim.num_clients = 2;
    sim.num_rounds = 10;
    LearnerOptions lopts;
    lopts.local_epochs = 1;
    lopts.batch_size = 16;
    lopts.lr = 1e-2;
    lopts.verbose = false;
    flare::SimulatorRunner runner(
        sim, initial->state_dict(), std::make_unique<flare::FedAvgAggregator>(true),
        [&](std::int64_t i, const std::string& name) {
          core::Rng site_rng(75 + i);
          auto model = models::make_classifier(mconfig, site_rng);
          return std::make_shared<ClinicalLearner>(
              name, std::move(model), shards[static_cast<std::size_t>(i)], valid,
              lopts);
        });
    if (sigma > 0) {
      runner.set_client_customizer([&](flare::FederatedClient& client) {
        client.outbound_filters().add(
            std::make_shared<flare::GaussianPrivacyFilter>(sigma, 76));
      });
    }
    const auto result = runner.run();
    core::Rng eval_rng(77);
    auto model = models::make_classifier(mconfig, eval_rng);
    model->load_state_dict(result.final_model);
    return evaluate(*model, valid, 16).accuracy;
  };

  const double clean = run_sigma(0.0);
  const double heavy_noise = run_sigma(1.0);  // absurd sigma destroys the model
  EXPECT_GT(clean, 0.8);
  EXPECT_LT(heavy_noise, clean);
}

}  // namespace
}  // namespace cppflare::train
