#include "flare/tcp.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/error.h"

namespace cppflare::flare {
namespace {

TEST(Tcp, EchoRoundTrip) {
  TcpServer server(0, [](const std::vector<std::uint8_t>& req) { return req; });
  ASSERT_GT(server.port(), 0);
  TcpConnection conn("127.0.0.1", server.port());
  const std::vector<std::uint8_t> msg = {1, 2, 3, 4, 5};
  EXPECT_EQ(conn.call(msg), msg);
}

TEST(Tcp, MultipleSequentialCallsOnOneConnection) {
  TcpServer server(0, [](const std::vector<std::uint8_t>& req) {
    std::vector<std::uint8_t> out = req;
    for (auto& b : out) b += 1;
    return out;
  });
  TcpConnection conn("127.0.0.1", server.port());
  for (int i = 0; i < 20; ++i) {
    const std::vector<std::uint8_t> msg = {static_cast<std::uint8_t>(i)};
    const auto resp = conn.call(msg);
    ASSERT_EQ(resp.size(), 1u);
    EXPECT_EQ(resp[0], static_cast<std::uint8_t>(i + 1));
  }
}

TEST(Tcp, EmptyFrameRoundTrip) {
  TcpServer server(0, [](const std::vector<std::uint8_t>&) {
    return std::vector<std::uint8_t>{};
  });
  TcpConnection conn("127.0.0.1", server.port());
  EXPECT_TRUE(conn.call({}).empty());
}

TEST(Tcp, LargeFrameRoundTrip) {
  TcpServer server(0, [](const std::vector<std::uint8_t>& req) { return req; });
  TcpConnection conn("127.0.0.1", server.port());
  std::vector<std::uint8_t> big(4 << 20);  // 4 MiB (a model-sized payload)
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(conn.call(big), big);
}

TEST(Tcp, ConcurrentClients) {
  std::atomic<int> calls{0};
  TcpServer server(0, [&calls](const std::vector<std::uint8_t>& req) {
    calls.fetch_add(1);
    return req;
  });
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      try {
        TcpConnection conn("127.0.0.1", server.port());
        for (int i = 0; i < 10; ++i) {
          const std::vector<std::uint8_t> msg = {static_cast<std::uint8_t>(t),
                                                 static_cast<std::uint8_t>(i)};
          if (conn.call(msg) != msg) failures.fetch_add(1);
        }
      } catch (...) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(calls.load(), 80);
}

TEST(Tcp, ConnectToClosedPortThrows) {
  std::uint16_t dead_port;
  {
    TcpServer server(0, [](const std::vector<std::uint8_t>& r) { return r; });
    dead_port = server.port();
    server.stop();
  }
  EXPECT_THROW(TcpConnection("127.0.0.1", dead_port), TransportError);
}

TEST(Tcp, BadHostThrows) {
  EXPECT_THROW(TcpConnection("not-an-ip", 1234), TransportError);
}

TEST(Tcp, ServerStopTerminatesConnections) {
  auto server = std::make_unique<TcpServer>(
      0, [](const std::vector<std::uint8_t>& r) { return r; });
  TcpConnection conn("127.0.0.1", server->port());
  EXPECT_EQ(conn.call({1}), (std::vector<std::uint8_t>{1}));
  server->stop();
  EXPECT_THROW(conn.call({2}), TransportError);
}

TEST(Tcp, StopIsIdempotent) {
  TcpServer server(0, [](const std::vector<std::uint8_t>& r) { return r; });
  server.stop();
  server.stop();
  SUCCEED();
}

TEST(Tcp, DispatcherExceptionClosesConnectionOnly) {
  TcpServer server(0, [](const std::vector<std::uint8_t>&)
                       -> std::vector<std::uint8_t> {
    throw Error("handler failure");
  });
  TcpConnection bad("127.0.0.1", server.port());
  EXPECT_THROW(bad.call({1}), TransportError);
  // Server must still accept new connections afterwards.
  TcpServer echo(0, [](const std::vector<std::uint8_t>& r) { return r; });
  TcpConnection good("127.0.0.1", echo.port());
  EXPECT_EQ(good.call({7}), (std::vector<std::uint8_t>{7}));
}

TEST(Tcp, OversizedEnvelopeRefusedBeforePayloadRead) {
  TcpServerOptions options;
  options.max_frame_bytes = 1024;
  TcpServer server(
      0, [](const std::vector<std::uint8_t>& r) { return r; }, options);
  // Under the cap: served normally.
  TcpConnection small("127.0.0.1", server.port());
  EXPECT_EQ(small.call(std::vector<std::uint8_t>(1024, 7)).size(), 1024u);
  // Over the cap: the server drops the connection on reading the length
  // prefix, before a single payload byte crosses the wire.
  TcpConnection big("127.0.0.1", server.port());
  EXPECT_THROW(big.call(std::vector<std::uint8_t>(1025, 7)), TransportError);
  // The listener survives a hostile frame announcement.
  TcpConnection again("127.0.0.1", server.port());
  EXPECT_EQ(again.call({1, 2}), (std::vector<std::uint8_t>{1, 2}));
}

TEST(Tcp, HostileLengthPrefixNeverReachesTheAllocator) {
  // Even a caller-supplied cap above the global bound is clamped to
  // kMaxFrameBytes: a hand-crafted ~4 GiB announcement gets the connection
  // dropped on the header, not a 4 GiB allocation.
  TcpServerOptions options;
  options.max_frame_bytes = 0xffffffff;
  TcpServer server(
      0, [](const std::vector<std::uint8_t>& r) { return r; }, options);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  const std::uint8_t hostile_header[4] = {0xf0, 0xff, 0xff, 0xff};  // ~4 GiB
  ASSERT_EQ(::send(fd, hostile_header, 4, MSG_NOSIGNAL), 4);
  // The server must close without ever sending a response frame.
  std::uint8_t byte = 0;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
  ::close(fd);
  // And keep serving honest clients.
  TcpConnection conn("127.0.0.1", server.port());
  EXPECT_EQ(conn.call({3}), (std::vector<std::uint8_t>{3}));
}

TEST(Tcp, SilentPeerReleasesHandlerThread) {
  TcpServerOptions options;
  options.io_timeout_ms = 200;
  std::atomic<int> calls{0};
  TcpServer server(
      0,
      [&calls](const std::vector<std::uint8_t>& r) {
        calls.fetch_add(1);
        return r;
      },
      options);
  // A client that connects, sends half a frame header, then goes silent.
  TcpConnection silent("127.0.0.1", server.port());
  // (Sending nothing at all also works: the server blocks in read_frame.)
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // The handler timed out and tore the connection down; the next call on
  // the half-dead connection fails...
  EXPECT_THROW(silent.call({1}), TransportError);
  // ...while fresh clients are served as usual (no thread was pinned).
  TcpConnection live("127.0.0.1", server.port());
  EXPECT_EQ(live.call({9}), (std::vector<std::uint8_t>{9}));
  EXPECT_EQ(calls.load(), 1);
}

}  // namespace
}  // namespace cppflare::flare
