// Dropout-recoverable secure aggregation (DESIGN.md §14).
//
// The acceptance bar: a masked 8-site federation with one site dropped
// mid-round completes — no abort, no corrupted aggregate — and publishes a
// model bitwise-equal to an unmasked run over the same surviving sites, on
// the in-process, TCP (including fault-injected recovery traffic), and
// multiplexed transports. The wire-level half drives the server one sealed
// frame at a time to pin down the recovery state machine itself: the
// UnmaskRequest/UnmaskResponse exchange, the round freeze, the demotion
// cascade, and the typed aborts when recovery falls below quorum.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unistd.h>
#include <vector>

#include "core/backoff.h"
#include "core/error.h"
#include "core/logging.h"
#include "flare/messages.h"
#include "flare/observability.h"
#include "flare/provision.h"
#include "flare/secure_agg.h"
#include "flare/secure_channel.h"
#include "flare/server.h"
#include "flare/simulator.h"

namespace cppflare::flare {
namespace {

class SecureRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kOff);
  }
  void TearDown() override {
    core::LogConfig::instance().set_threshold(core::LogLevel::kInfo);
  }
};

nn::StateDict dict_of(std::vector<float> w) {
  nn::StateDict d;
  d.insert("w", {{static_cast<std::int64_t>(w.size())}, std::move(w)});
  return d;
}

nn::StateDict tiny_model() { return dict_of({0.0f, 0.0f, 0.0f, 0.0f}); }

bool bit_equal(const nn::StateDict& a, const nn::StateDict& b) {
  if (!a.congruent_with(b)) return false;
  auto ia = a.entries().begin();
  auto ib = b.entries().begin();
  for (; ia != a.entries().end(); ++ia, ++ib) {
    if (std::memcmp(ia->second.values.data(), ib->second.values.data(),
                    ia->second.values.size() * sizeof(float)) != 0) {
      return false;
    }
  }
  return true;
}

/// Counters are created on first increment, so a clean counter (e.g. zero
/// demotions) is legitimately absent from the snapshot.
std::int64_t counter_or_zero(const core::MetricSnapshot& snapshot,
                             const std::string& name) {
  const auto it = snapshot.counters.find(name);
  return it == snapshot.counters.end() ? 0 : it->second;
}

/// Constant-output learner whose values sit on the fixed-point grid, so a
/// masked aggregate decodes to exactly the float sum. A crash_round >= 0
/// makes the site die mid-round: the learner throws when asked to train
/// that round, the client thread (or site state machine) fails, and the
/// server must close the round without the site's contribution.
class CrashyConstLearner : public Learner {
 public:
  CrashyConstLearner(std::string site, float value, std::int64_t crash_round)
      : site_(std::move(site)), value_(value), crash_round_(crash_round) {}

  Dxo train(const Dxo& global, const FLContext& ctx) override {
    if (crash_round_ >= 0 && ctx.current_round >= crash_round_) {
      throw Error("site crashed mid-round " + std::to_string(ctx.current_round));
    }
    nn::StateDict updated = global.data();
    for (auto& [name, blob] : updated.entries()) {
      for (float& v : blob.values) v = value_;
    }
    Dxo update(DxoKind::kWeights, updated);
    update.set_meta_int(Dxo::kMetaNumSamples, 10);
    update.set_meta_double(Dxo::kMetaTrainLoss, 1.0);
    update.set_meta_double(Dxo::kMetaValidAcc, 0.5);
    return update;
  }
  std::string site_name() const override { return site_; }

 private:
  std::string site_;
  float value_;
  std::int64_t crash_round_;
};

/// Site values 0.5*i are grid-exact; the survivor mean over sites 1..7
/// (values 0 .. 3.0) is 10.5/7 = 1.5 — also exact, so masked and unmasked
/// runs cannot diverge through rounding.
SimulatorRunner make_crash_runner(SimulatorConfig config,
                                  std::int64_t crash_index,
                                  std::int64_t crash_round) {
  return SimulatorRunner(
      config, tiny_model(), std::make_unique<FedAvgAggregator>(false),
      [crash_index, crash_round](std::int64_t i, const std::string& name) {
        return std::make_shared<CrashyConstLearner>(
            name, 0.5f * static_cast<float>(i),
            i == crash_index ? crash_round : -1);
      });
}

SimulatorConfig drop_config(bool masked) {
  SimulatorConfig config;
  config.job_id = "recovery-sim";
  config.num_clients = 8;
  config.num_rounds = 4;
  config.min_clients = 4;
  config.round_deadline_ms = 500;
  config.secure_agg.enabled = masked;
  config.secure_agg.dealer_seed = 99;
  return config;
}

// ---------------------------------------------------------------------------
// End-to-end: one site dropped mid-round, every transport
// ---------------------------------------------------------------------------

TEST_F(SecureRecoveryTest, ThreadedDropMidRoundMatchesUnmaskedSurvivors) {
  // site-8 dies at round 2 of 4: rounds 2 and 3 close on the deadline with
  // 7 survivors, and the masked run detours through mask recovery each time.
  SimulatorRunner plain = make_crash_runner(drop_config(false), 7, 2);
  const SimulationResult reference = plain.run();
  ASSERT_FALSE(reference.aborted);
  EXPECT_EQ(reference.failed_sites, (std::vector<std::string>{"site-8"}));

  SimulatorRunner masked = make_crash_runner(drop_config(true), 7, 2);
  const SimulationResult secured = masked.run();
  ASSERT_FALSE(secured.aborted) << secured.abort_reason;
  EXPECT_EQ(secured.abort_code, AbortCode::kNone);
  EXPECT_EQ(secured.failed_sites, (std::vector<std::string>{"site-8"}));
  ASSERT_EQ(secured.history.size(), 4u);
  EXPECT_EQ(secured.history[2].num_contributions, 7);
  EXPECT_TRUE(secured.history[2].deadline_fired);
  EXPECT_EQ(secured.history[3].num_contributions, 7);

  // Rounds 2 and 3 each recovered against {site-8} in a single wave: one
  // summed mask share per survivor, no demotions.
  EXPECT_EQ(counter_or_zero(secured.metrics, metric_names::kServerRecoveryRounds), 2);
  EXPECT_EQ(counter_or_zero(secured.metrics, metric_names::kServerUnmaskShares), 14);
  EXPECT_EQ(counter_or_zero(secured.metrics, metric_names::kServerRecoveryDemotions), 0);

  EXPECT_TRUE(bit_equal(reference.final_model, secured.final_model));
}

TEST_F(SecureRecoveryTest, TcpDropMidRoundMatchesUnmaskedSurvivors) {
  SimulatorConfig plain_config = drop_config(false);
  plain_config.use_tcp = true;
  SimulatorRunner plain = make_crash_runner(plain_config, 7, 2);
  const SimulationResult reference = plain.run();
  ASSERT_FALSE(reference.aborted);

  SimulatorConfig masked_config = drop_config(true);
  masked_config.use_tcp = true;
  SimulatorRunner masked = make_crash_runner(masked_config, 7, 2);
  const SimulationResult secured = masked.run();
  ASSERT_FALSE(secured.aborted) << secured.abort_reason;
  EXPECT_EQ(secured.failed_sites, (std::vector<std::string>{"site-8"}));
  EXPECT_GE(counter_or_zero(secured.metrics, metric_names::kServerRecoveryRounds), 1);
  EXPECT_TRUE(bit_equal(reference.final_model, secured.final_model));
}

TEST_F(SecureRecoveryTest, TcpRecoveryTrafficSurvivesFaultInjection) {
  // The unmask exchange rides the same retry/backoff machinery as every
  // other call: drops, delays, duplicates and corruptions on the surviving
  // sites' links (which carry the recovery traffic) must not change the
  // published bits.
  SimulatorConfig plain_config = drop_config(false);
  plain_config.use_tcp = true;
  SimulatorRunner plain = make_crash_runner(plain_config, 7, 2);
  const SimulationResult reference = plain.run();
  ASSERT_FALSE(reference.aborted);

  SimulatorConfig masked_config = drop_config(true);
  masked_config.use_tcp = true;
  SimulatorRunner masked = make_crash_runner(masked_config, 7, 2);
  masked.set_fault_planner(
      [](std::int64_t index, const std::string&,
         std::int64_t incarnation) -> std::optional<FaultPlan> {
        if (index == 7) return std::nullopt;  // the crash site dies honestly
        FaultPlan plan;
        plan.seed = 0x5ec0 + static_cast<std::uint64_t>(index) * 7919 +
                    static_cast<std::uint64_t>(incarnation);
        plan.drop_prob = 0.08;
        plan.delay_prob = 0.1;
        plan.delay_ms = 2;
        plan.duplicate_prob = 0.08;
        plan.corrupt_prob = 0.05;
        return plan;
      });
  const SimulationResult secured = masked.run();
  ASSERT_FALSE(secured.aborted) << secured.abort_reason;
  EXPECT_EQ(secured.failed_sites, (std::vector<std::string>{"site-8"}));
  EXPECT_GE(counter_or_zero(secured.metrics, metric_names::kServerRecoveryRounds), 1);
  EXPECT_TRUE(bit_equal(reference.final_model, secured.final_model));
}

TEST_F(SecureRecoveryTest, MultiplexedDropMidRoundMatchesUnmaskedSurvivors) {
  // Same drop scenario on the event-driven multiplexed path: the site state
  // machines answer UnmaskRequests from inside their poll loop.
  SimulatorConfig plain_config = drop_config(false);
  plain_config.num_clients = 6;
  plain_config.num_rounds = 3;
  plain_config.min_clients = 3;
  plain_config.site_workers = 2;
  SimulatorRunner plain = make_crash_runner(plain_config, 5, 1);
  const SimulationResult reference = plain.run();
  ASSERT_FALSE(reference.aborted);
  EXPECT_EQ(reference.failed_sites, (std::vector<std::string>{"site-6"}));

  SimulatorConfig masked_config = plain_config;
  masked_config.secure_agg.enabled = true;
  masked_config.secure_agg.dealer_seed = 99;
  SimulatorRunner masked = make_crash_runner(masked_config, 5, 1);
  const SimulationResult secured = masked.run();
  ASSERT_FALSE(secured.aborted) << secured.abort_reason;
  EXPECT_EQ(secured.failed_sites, (std::vector<std::string>{"site-6"}));
  EXPECT_GE(counter_or_zero(secured.metrics, metric_names::kServerRecoveryRounds), 1);
  EXPECT_TRUE(bit_equal(reference.final_model, secured.final_model));
}

TEST_F(SecureRecoveryTest, MaskedResumeOfCompletedRunIsANoOp) {
  const std::string checkpoint =
      (std::filesystem::temp_directory_path() /
       ("cppflare_secure_resume_" + std::to_string(::getpid()) + ".bin"))
          .string();
  SimulatorConfig config = drop_config(true);
  config.num_clients = 3;
  config.num_rounds = 3;
  config.min_clients = 0;
  config.round_deadline_ms = 0;
  config.persist_path = checkpoint;
  SimulatorRunner first = make_crash_runner(config, -1, -1);
  const SimulationResult done = first.run();
  ASSERT_FALSE(done.aborted);
  ASSERT_EQ(done.history.size(), 3u);

  config.resume = true;
  SimulatorRunner again = make_crash_runner(config, -1, -1);
  const SimulationResult replay = again.run();
  EXPECT_FALSE(replay.aborted);
  EXPECT_EQ(replay.resumed_from_round, 2);
  EXPECT_EQ(replay.history.size(), 3u);
  EXPECT_TRUE(bit_equal(done.final_model, replay.final_model));
  std::filesystem::remove(checkpoint);
}

// ---------------------------------------------------------------------------
// Differential-privacy runtime
// ---------------------------------------------------------------------------

TEST_F(SecureRecoveryTest, DpRuntimeAccountsSpendAndStaysDeterministic) {
  SimulatorConfig config;
  config.job_id = "dp-sim";
  config.num_clients = 3;
  config.num_rounds = 3;
  config.dp.enabled = true;
  config.dp.clip_norm = 1.0;
  config.dp.noise_multiplier = 1.1;
  config.dp.delta = 1e-5;
  const auto run_once = [&config] {
    SimulatorRunner runner = make_crash_runner(config, -1, -1);
    return runner.run();
  };
  const SimulationResult a = run_once();
  ASSERT_FALSE(a.aborted);
  const double per_round = std::sqrt(2.0 * std::log(1.25 / 1e-5)) / 1.1;
  EXPECT_NEAR(a.dp_epsilon_spent, 3.0 * per_round, 1e-9);
  EXPECT_EQ(a.dp_delta, 1e-5);
  EXPECT_NEAR(a.metrics.gauges.at(metric_names::kDpEpsilonSpent),
              3.0 * per_round, 1e-9);
  // Seeded noise: the DP run is replayable bit for bit.
  const SimulationResult b = run_once();
  EXPECT_TRUE(bit_equal(a.final_model, b.final_model));
}

TEST_F(SecureRecoveryTest, DpComposesWithMaskingAndSurvivesADrop) {
  // Clip + noise run before the mask filter; the quantized modular pipeline
  // carries the perturbed update and recovery still converges. No bitwise
  // claim here — noise is not grid-exact — just a clean completion.
  SimulatorConfig config = drop_config(true);
  config.dp.enabled = true;
  config.dp.clip_norm = 2.0;
  config.dp.noise_multiplier = 0.5;
  SimulatorRunner runner = make_crash_runner(config, 7, 2);
  const SimulationResult result = runner.run();
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.failed_sites, (std::vector<std::string>{"site-8"}));
  ASSERT_EQ(result.history.size(), 4u);
  EXPECT_GT(result.dp_epsilon_spent, 0.0);
  EXPECT_GE(counter_or_zero(result.metrics, metric_names::kServerRecoveryRounds), 1);
}

// ---------------------------------------------------------------------------
// Wire-level recovery state machine
// ---------------------------------------------------------------------------

/// Drives the masked server one sealed frame at a time — the test controls
/// exactly who is heard from and when, so recovery transitions are pinned
/// down deterministically.
class ManualMaskedFederation {
 public:
  ManualMaskedFederation(ServerConfig config, std::int64_t num_sites,
                         std::uint64_t dealer_seed = 7)
      : registry_(Provisioner(config.job_id, 17).provision_sites(num_sites)),
        server_(std::make_unique<FederatedServer>(
            config, registry_, dict_of({0.0f, 0.0f}),
            std::make_unique<MaskedFedAvgAggregator>(16))),
        dispatcher_(server_->dispatcher()) {
    // Mask participants are the client sites only — the registry's "server"
    // entry is the channel identity, not a masking peer.
    std::vector<std::string> names;
    for (std::int64_t i = 1; i <= num_sites; ++i) {
      names.push_back("site-" + std::to_string(i));
    }
    for (const std::string& name : names) {
      maskers_[name] = make_secure_agg_mask_filter(config.job_id, dealer_seed,
                                                   name, names);
    }
  }

  FederatedServer& server() { return *server_; }

  std::vector<std::uint8_t> call(const std::string& site,
                                 const std::vector<std::uint8_t>& frame) {
    const Credential& cred = registry_.at(site);
    const auto response =
        dispatcher_(seal(cred.name, cred.secret, seq_[site].next(), frame));
    return open(response, cred.secret).payload;
  }

  void register_site(const std::string& site) {
    const RegisterAck ack = decode_register_ack(
        call(site, pack(RegisterRequest{site, registry_.at(site).token})));
    ASSERT_TRUE(ack.accepted);
    sessions_[site] = ack.session_id;
  }

  std::vector<std::uint8_t> poll(const std::string& site) {
    return call(site, pack(GetTaskRequest{sessions_.at(site)}));
  }

  /// Masks `weights` exactly as the site's outbound chain would, then
  /// submits. The plain (pre-mask) update is what the aggregate must equal.
  SubmitAck submit_masked(const std::string& site, std::int64_t round,
                          std::vector<float> weights) {
    SubmitUpdateRequest req;
    req.session_id = sessions_.at(site);
    req.round = round;
    req.payload = Dxo(DxoKind::kWeights, dict_of(std::move(weights)));
    req.payload.set_meta_int(Dxo::kMetaNumSamples, 10);
    FLContext ctx;
    ctx.current_round = round;
    maskers_.at(site)->process(req.payload, ctx);
    return decode_submit_ack(call(site, pack(req)));
  }

  /// Polls until the server hands `site` an UnmaskRequest for `want_wave`
  /// (the deadline transitions run on the server's ticker thread, so the
  /// test spins with a generous budget instead of assuming exact timing).
  UnmaskRequest await_unmask(const std::string& site, std::int64_t want_wave) {
    for (int i = 0; i < 500; ++i) {
      const auto frame = poll(site);
      if (peek_type(frame) == MsgType::kUnmaskRequest) {
        const UnmaskRequest req = decode_unmask_request(frame);
        if (req.wave >= want_wave) return req;
      }
      core::Backoff::sleep_ms(10);
    }
    ADD_FAILURE() << site << " never received an UnmaskRequest for wave "
                  << want_wave;
    return {};
  }

  SubmitAck answer_unmask(const std::string& site, const UnmaskRequest& req) {
    const Dxo share = maskers_.at(site)->unmask_share(req.dropped, req.round);
    return decode_submit_ack(call(
        site, pack(UnmaskResponse{sessions_.at(site), req.round, req.wave, share})));
  }

 private:
  std::map<std::string, Credential> registry_;
  std::unique_ptr<FederatedServer> server_;
  Dispatcher dispatcher_;
  std::map<std::string, std::shared_ptr<SecureAggMaskFilter>> maskers_;
  std::map<std::string, SequenceSource> seq_;
  std::map<std::string, std::string> sessions_;
};

ServerConfig manual_config(const std::string& job, std::int64_t sites,
                           std::int64_t min_clients) {
  ServerConfig config;
  config.job_id = job;
  config.num_rounds = 1;
  config.expected_clients = sites;
  config.min_clients = min_clients;
  config.round_deadline_ms = 150;
  config.secure_agg.enabled = true;
  config.secure_agg.recovery_deadline_ms = 5000;
  return config;
}

TEST_F(SecureRecoveryTest, WireLevelRecoveryRevealsSurvivorSumsOnly) {
  ManualMaskedFederation fed(manual_config("recover-job", 3, 2), 3);
  for (const std::string site : {"site-1", "site-2", "site-3"}) {
    fed.register_site(site);
  }
  EXPECT_TRUE(fed.submit_masked("site-1", 0, {1.0f, 2.0f}).accepted);
  EXPECT_TRUE(fed.submit_masked("site-2", 0, {3.0f, -1.0f}).accepted);
  // site-3 never reports; the deadline closes the round and freezes it in
  // recovery instead of publishing the mask-corrupted sum.
  const UnmaskRequest req1 = fed.await_unmask("site-1", 0);
  EXPECT_EQ(req1.round, 0);
  EXPECT_EQ(req1.wave, 0);
  EXPECT_EQ(req1.dropped, (std::vector<std::string>{"site-3"}));
  EXPECT_FALSE(fed.server().finished());

  EXPECT_TRUE(fed.answer_unmask("site-1", req1).accepted);

  // The round is frozen while shares are outstanding: a late submit (here
  // the dropped site coming back) bounces with the typed recovery reason.
  const SubmitAck bounced = fed.submit_masked("site-3", 0, {9.0f, 9.0f});
  EXPECT_FALSE(bounced.accepted);
  EXPECT_EQ(bounced.reason, RejectReason::kRecoveryInProgress);

  const UnmaskRequest req2 = fed.await_unmask("site-2", 0);
  EXPECT_TRUE(fed.answer_unmask("site-2", req2).accepted);

  ASSERT_TRUE(fed.server().wait_until_finished(10000));
  EXPECT_EQ(fed.server().abort_code(), AbortCode::kNone);
  // Survivor sum minus revealed shares decodes to the exact plain sum:
  // mean of {1,2} and {3,-1} is {2.0, 0.5}, bit for bit.
  const nn::StateDict global = fed.server().global_model();
  EXPECT_TRUE(bit_equal(global, dict_of({2.0f, 0.5f})));

  const auto metrics = fed.server().metrics_snapshot();
  EXPECT_EQ(counter_or_zero(metrics, metric_names::kServerRecoveryRounds), 1);
  EXPECT_EQ(counter_or_zero(metrics, metric_names::kServerUnmaskShares), 2);
  EXPECT_EQ(counter_or_zero(metrics, metric_names::kServerRecoveryDemotions), 0);
  const auto history = fed.server().history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].num_contributions, 2);
  EXPECT_TRUE(history[0].deadline_fired);
}

TEST_F(SecureRecoveryTest, WaveDeadlineDemotesLaggardAndReasksSurvivors) {
  // 4 sites: site-4 drops before submitting, site-3 submits but never
  // answers its UnmaskRequest. The wave deadline demotes site-3 (its
  // contribution revoked, its name joining the dropped set) and the
  // remaining survivors are re-asked against the enlarged set.
  ServerConfig config = manual_config("demote-job", 4, 2);
  config.secure_agg.recovery_deadline_ms = 400;
  ManualMaskedFederation fed(config, 4);
  for (const std::string site : {"site-1", "site-2", "site-3", "site-4"}) {
    fed.register_site(site);
  }
  EXPECT_TRUE(fed.submit_masked("site-1", 0, {1.0f, 2.0f}).accepted);
  EXPECT_TRUE(fed.submit_masked("site-2", 0, {3.0f, -1.0f}).accepted);
  EXPECT_TRUE(fed.submit_masked("site-3", 0, {5.0f, 5.0f}).accepted);

  const UnmaskRequest w0 = fed.await_unmask("site-1", 0);
  EXPECT_EQ(w0.wave, 0);
  EXPECT_EQ(w0.dropped, (std::vector<std::string>{"site-4"}));
  EXPECT_TRUE(fed.answer_unmask("site-1", w0).accepted);
  EXPECT_TRUE(fed.answer_unmask("site-2", fed.await_unmask("site-2", 0)).accepted);

  // site-3 stays silent past the wave deadline: demotion, wave 1.
  const UnmaskRequest w1 = fed.await_unmask("site-1", 1);
  EXPECT_EQ(w1.wave, 1);
  EXPECT_EQ(std::set<std::string>(w1.dropped.begin(), w1.dropped.end()),
            (std::set<std::string>{"site-3", "site-4"}));
  EXPECT_TRUE(fed.answer_unmask("site-1", w1).accepted);
  EXPECT_TRUE(fed.answer_unmask("site-2", fed.await_unmask("site-2", 1)).accepted);

  ASSERT_TRUE(fed.server().wait_until_finished(10000));
  // site-3's revoked contribution is masked-in nowhere: the published mean
  // is over sites 1 and 2 only.
  EXPECT_TRUE(bit_equal(fed.server().global_model(), dict_of({2.0f, 0.5f})));
  const auto metrics = fed.server().metrics_snapshot();
  EXPECT_EQ(counter_or_zero(metrics, metric_names::kServerRecoveryDemotions), 1);
  EXPECT_EQ(counter_or_zero(metrics, metric_names::kServerRecoveryRounds), 1);
  const auto history = fed.server().history();
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].num_contributions, 2);
}

TEST_F(SecureRecoveryTest, RecoveryBelowQuorumAbortsWithTypedCode) {
  // Both survivors ignore their UnmaskRequests: the demotion cascade
  // empties the surviving set below min_clients and the run dies with the
  // machine-checkable recovery abort code, never publishing.
  ServerConfig config = manual_config("abort-job", 3, 2);
  config.secure_agg.recovery_deadline_ms = 200;
  ManualMaskedFederation fed(config, 3);
  for (const std::string site : {"site-1", "site-2", "site-3"}) {
    fed.register_site(site);
  }
  EXPECT_TRUE(fed.submit_masked("site-1", 0, {1.0f, 2.0f}).accepted);
  EXPECT_TRUE(fed.submit_masked("site-2", 0, {3.0f, -1.0f}).accepted);

  EXPECT_FALSE(fed.server().wait_until_finished(10000));
  EXPECT_TRUE(fed.server().aborted());
  EXPECT_EQ(fed.server().abort_code(), AbortCode::kRecoveryBelowQuorum);
  EXPECT_NE(fed.server().abort_reason().find("recovery"), std::string::npos);
  // The frozen round never published: the global model is untouched.
  EXPECT_TRUE(bit_equal(fed.server().global_model(), dict_of({0.0f, 0.0f})));
  // Post-abort polls tell everyone to stop.
  const auto frame = fed.poll("site-1");
  ASSERT_EQ(peek_type(frame), MsgType::kTask);
  EXPECT_EQ(decode_task(frame).task, TaskKind::kStop);
}

TEST_F(SecureRecoveryTest, AbortCodeNamesAreStable) {
  EXPECT_STREQ(abort_code_name(AbortCode::kNone), "none");
  EXPECT_STREQ(abort_code_name(AbortCode::kRecoveryBelowQuorum),
               "recovery_below_quorum");
  EXPECT_STREQ(abort_code_name(AbortCode::kRecoveryExhausted),
               "recovery_exhausted");
}

}  // namespace
}  // namespace cppflare::flare
