#include "flare/secure_channel.h"

#include <gtest/gtest.h>

#include "core/error.h"

namespace cppflare::flare {
namespace {

std::vector<std::uint8_t> key_a() { return std::vector<std::uint8_t>(32, 0x11); }
std::vector<std::uint8_t> key_b() { return std::vector<std::uint8_t>(32, 0x22); }

TEST(SecureChannel, SealOpenRoundTrip) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  const auto sealed = seal("site-1", key_a(), 7, payload);
  const Envelope env = open(sealed, key_a());
  EXPECT_EQ(env.sender, "site-1");
  EXPECT_EQ(env.sequence, 7u);
  EXPECT_EQ(env.payload, payload);
}

TEST(SecureChannel, EmptyPayloadAllowed) {
  const auto sealed = seal("s", key_a(), 1, {});
  EXPECT_TRUE(open(sealed, key_a()).payload.empty());
}

TEST(SecureChannel, WrongKeyFailsVerification) {
  const auto sealed = seal("site-1", key_a(), 1, {9, 9});
  EXPECT_THROW(open(sealed, key_b()), ProtocolError);
}

TEST(SecureChannel, TamperedPayloadDetected) {
  auto sealed = seal("site-1", key_a(), 1, {1, 2, 3, 4});
  // Flip one payload byte (skip the header area deterministically: the
  // payload sits before the trailing 32-byte MAC).
  sealed[sealed.size() - 33] ^= 0x01;
  EXPECT_THROW(open(sealed, key_a()), ProtocolError);
}

TEST(SecureChannel, TamperedSequenceDetected) {
  // Sequence participates in the MAC; changing it must break verification.
  auto s1 = seal("x", key_a(), 1, {5});
  auto s2 = seal("x", key_a(), 2, {5});
  // Splice s2's sequence bytes into s1: find differing region by length —
  // simplest robust check is that the two seals differ and each opens only
  // as itself.
  EXPECT_NE(s1, s2);
  EXPECT_EQ(open(s1, key_a()).sequence, 1u);
  EXPECT_EQ(open(s2, key_a()).sequence, 2u);
}

TEST(SecureChannel, TamperedSenderDetected) {
  auto sealed = seal("ab", key_a(), 1, {1});
  // Sender string bytes start at offset 8 (magic + length prefix).
  sealed[8] ^= 0xff;
  EXPECT_THROW(open(sealed, key_a()), ProtocolError);
}

TEST(SecureChannel, MalformedEnvelopeRejected) {
  EXPECT_THROW(open({1, 2, 3}, key_a()), Error);
  std::vector<std::uint8_t> bad(64, 0);
  EXPECT_THROW(open(bad, key_a()), ProtocolError);
}

TEST(SecureChannel, TrailingBytesRejected) {
  auto sealed = seal("s", key_a(), 1, {7});
  sealed.push_back(0);
  EXPECT_THROW(open(sealed, key_a()), ProtocolError);
}

TEST(SecureChannel, PeekSenderWithoutKey) {
  const auto sealed = seal("site-42", key_a(), 3, {1});
  EXPECT_EQ(peek_sender(sealed), "site-42");
  EXPECT_THROW(peek_sender({0, 0, 0, 0}), ProtocolError);
}

TEST(SequenceTrackerTest, EnforcesMonotonicity) {
  SequenceTracker tracker;
  tracker.check_and_advance("a", 1);
  tracker.check_and_advance("a", 2);
  tracker.check_and_advance("a", 10);
  EXPECT_THROW(tracker.check_and_advance("a", 10), ProtocolError);  // replay
  EXPECT_THROW(tracker.check_and_advance("a", 5), ProtocolError);   // stale
  // Independent per sender.
  tracker.check_and_advance("b", 1);
}

TEST(SequenceTrackerTest, ZeroIsNeverValid) {
  SequenceTracker tracker;
  EXPECT_THROW(tracker.check_and_advance("a", 0), ProtocolError);
}

TEST(SequenceSourceTest, StartsAtOneAndIncrements) {
  SequenceSource s;
  EXPECT_EQ(s.next(), 1u);
  EXPECT_EQ(s.next(), 2u);
}

TEST(SecureChannel, ReplayDefenseEndToEnd) {
  SequenceTracker tracker;
  const auto sealed = seal("site-1", key_a(), 1, {1, 2});
  const Envelope env = open(sealed, key_a());
  tracker.check_and_advance(env.sender, env.sequence);
  // Replaying the identical envelope must now fail.
  const Envelope replayed = open(sealed, key_a());
  EXPECT_THROW(tracker.check_and_advance(replayed.sender, replayed.sequence),
               ProtocolError);
}

}  // namespace
}  // namespace cppflare::flare
