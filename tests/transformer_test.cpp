#include "nn/transformer.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "test_util.h"

namespace cppflare::nn {
namespace {

using tensor::Shape;
using tensor::Tensor;

TEST(PaddingMask, ZeroForValidNegInfForPadded) {
  Tensor mask = make_padding_mask({2, 3}, /*seq_len=*/3, /*heads=*/2);
  EXPECT_EQ(mask.shape(), (Shape{4, 3, 3}));
  // Batch 0 (length 2): key position 2 masked for every query and head.
  for (std::int64_t h = 0; h < 2; ++h) {
    const float* plane = mask.data() + h * 9;
    for (std::int64_t q = 0; q < 3; ++q) {
      EXPECT_EQ(plane[q * 3 + 0], 0.0f);
      EXPECT_EQ(plane[q * 3 + 1], 0.0f);
      EXPECT_LT(plane[q * 3 + 2], -1e8f);
    }
  }
  // Batch 1 (length 3): nothing masked.
  for (std::int64_t i = 2 * 9; i < 4 * 9; ++i) EXPECT_EQ(mask.data()[i], 0.0f);
}

TEST(PaddingMask, NoGradientRecorded) {
  Tensor mask = make_padding_mask({1}, 2, 1);
  EXPECT_FALSE(mask.requires_grad());
  EXPECT_TRUE(mask.impl()->parents.empty());
}

TEST(Attention, OutputShape) {
  core::Rng rng(1);
  MultiHeadSelfAttention attn(8, 2, 4, 0.0f, rng);
  Tensor x = Tensor::zeros({2, 5, 8});
  core::Rng fw(2);
  EXPECT_EQ(attn.forward(x, Tensor{}, fw).shape(), (Shape{2, 5, 8}));
}

TEST(Attention, NonDivisibleHeadDimSupported) {
  // Table II's BERT: hidden 128, 6 heads -> head_dim 22 (x-transformers
  // style decoupling). Check with small analogous numbers: hidden 10,
  // heads 3, head_dim 4.
  core::Rng rng(3);
  MultiHeadSelfAttention attn(10, 3, 4, 0.0f, rng);
  Tensor x = Tensor::zeros({1, 4, 10});
  core::Rng fw(4);
  EXPECT_EQ(attn.forward(x, Tensor{}, fw).shape(), (Shape{1, 4, 10}));
}

TEST(Attention, PaddedPositionsDoNotInfluenceValidOutputs) {
  core::Rng rng(5);
  MultiHeadSelfAttention attn(6, 2, 3, 0.0f, rng);
  attn.set_training(false);
  core::Rng fw(6);

  // Two inputs identical in the first 2 timesteps, wildly different in the
  // padded tail; with a length-2 mask the outputs at valid positions must
  // match.
  std::vector<float> base(1 * 4 * 6);
  core::Rng data_rng(7);
  for (auto& v : base) v = static_cast<float>(data_rng.normal());
  std::vector<float> variant = base;
  for (std::size_t i = 2 * 6; i < base.size(); ++i) variant[i] = 99.0f;

  Tensor x1 = Tensor::from_data({1, 4, 6}, base);
  Tensor x2 = Tensor::from_data({1, 4, 6}, variant);
  Tensor mask = make_padding_mask({2}, 4, 2);
  Tensor y1 = attn.forward(x1, mask, fw);
  Tensor y2 = attn.forward(x2, mask, fw);
  for (std::int64_t t = 0; t < 2; ++t) {
    for (std::int64_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(y1.data()[t * 6 + j], y2.data()[t * 6 + j], 1e-5f)
          << "t=" << t << " j=" << j;
    }
  }
}

TEST(Attention, GradientsFlowThroughAllProjections) {
  core::Rng rng(8);
  MultiHeadSelfAttention attn(4, 2, 2, 0.0f, rng);
  Tensor x = Tensor::randn({1, 3, 4}, rng, 0.0f, 1.0f, true);
  core::Rng fw(9);
  Tensor y = attn.forward(x, Tensor{}, fw);
  tensor::sum_all(tensor::mul(y, y)).backward();
  for (auto& [name, p] : attn.named_parameters()) {
    float norm = 0;
    for (float g : p.impl()->grad) norm += g * g;
    EXPECT_GT(norm, 0.0f) << name;
  }
}

TEST(Attention, NumericalGradCheckTiny) {
  core::Rng rng(10);
  MultiHeadSelfAttention attn(4, 1, 3, 0.0f, rng);
  Tensor x = Tensor::randn({1, 2, 4}, rng, 0.0f, 0.5f, true);
  core::Rng fw(11);
  std::vector<Tensor> inputs = {x};
  for (auto& p : attn.parameters()) inputs.push_back(p);
  cppflare::testing::expect_gradients_close(
      [&] {
        Tensor y = attn.forward(x, Tensor{}, fw);
        return tensor::sum_all(tensor::mul(y, y));
      },
      inputs, 1e-2f, 1e-1f, 1.5e-2f);
}

TEST(EncoderLayer, ShapePreservedAndParamsTrainable) {
  core::Rng rng(12);
  TransformerEncoderLayer layer(8, 2, 4, 16, 0.1f, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng);
  core::Rng fw(13);
  Tensor y = layer.forward(x, Tensor{}, fw);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 8}));
  // attn(4) * 2 params each (w+b) = 8, ln1/ln2 = 4, ffn_in/out = 4.
  EXPECT_EQ(layer.named_parameters().size(), 16u);
}

TEST(EncoderLayer, EvalModeIsDeterministic) {
  core::Rng rng(14);
  TransformerEncoderLayer layer(8, 2, 4, 16, 0.5f, rng);
  layer.set_training(false);
  Tensor x = Tensor::randn({1, 3, 8}, rng);
  core::Rng fw1(15), fw2(16);
  Tensor y1 = layer.forward(x, Tensor{}, fw1);
  Tensor y2 = layer.forward(x, Tensor{}, fw2);
  for (std::int64_t i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1.data()[i], y2.data()[i]);
}

TEST(EncoderLayer, TrainingDropoutPerturbsOutputs) {
  core::Rng rng(17);
  TransformerEncoderLayer layer(8, 2, 4, 16, 0.5f, rng);
  layer.set_training(true);
  Tensor x = Tensor::randn({1, 3, 8}, rng);
  core::Rng fw1(18), fw2(19);
  Tensor y1 = layer.forward(x, Tensor{}, fw1);
  Tensor y2 = layer.forward(x, Tensor{}, fw2);
  float diff = 0;
  for (std::int64_t i = 0; i < y1.numel(); ++i) {
    diff += std::fabs(y1.data()[i] - y2.data()[i]);
  }
  EXPECT_GT(diff, 1e-3f);
}

}  // namespace
}  // namespace cppflare::nn
