// Compute-backend tests: parallel_for mechanics plus the determinism
// contract (bitwise-identical results for 1 vs N compute threads) on the
// kernels and models built on top of it.
#include "core/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/error.h"
#include "core/rng.h"
#include "nn/lstm.h"
#include "nn/transformer.h"
#include "optim/optimizer.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace cppflare {
namespace {

using tensor::Tensor;

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  core::set_compute_threads(4);
  const std::int64_t n = 10'000;
  std::vector<int> hits(n, 0);
  core::parallel_for(0, n, 97, [&](std::int64_t b, std::int64_t e) {
    for (std::int64_t i = b; i < e; ++i) hits[i] += 1;
  });
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, ChunkDecompositionIsGrainSized) {
  core::set_compute_threads(4);
  std::mutex mu;
  std::set<std::pair<std::int64_t, std::int64_t>> chunks;
  core::parallel_for(0, 1000, 64, [&](std::int64_t b, std::int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.insert({b, e});
  });
  // ceil(1000/64) = 16 chunks; all grain-sized except the tail.
  ASSERT_EQ(chunks.size(), 16u);
  std::int64_t expect = 0;
  for (const auto& [b, e] : chunks) {
    EXPECT_EQ(b, expect);
    EXPECT_EQ(e - b, b + 64 <= 1000 ? 64 : 1000 - b);
    expect = e;
  }
  EXPECT_EQ(expect, 1000);
}

TEST(ParallelFor, EmptyRangeNeverCallsFn) {
  bool called = false;
  core::parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { called = true; });
  core::parallel_for(5, 3, 1, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, ExceptionPropagatesToCaller) {
  core::set_compute_threads(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      core::parallel_for(0, 1000, 10,
                         [&](std::int64_t b, std::int64_t) {
                           ran.fetch_add(1);
                           if (b == 500) throw std::runtime_error("chunk boom");
                         }),
      std::runtime_error);
  EXPECT_GE(ran.load(), 1);
  // The backend must stay usable after a failed region.
  std::atomic<std::int64_t> sum{0};
  core::parallel_for(0, 100, 10, [&](std::int64_t b, std::int64_t e) {
    sum.fetch_add(e - b);
  });
  EXPECT_EQ(sum.load(), 100);
}

TEST(ParallelFor, NestedCallRunsSerialInline) {
  core::set_compute_threads(4);
  EXPECT_FALSE(core::in_parallel_region());
  std::atomic<bool> saw_region{false};
  std::atomic<bool> nested_ok{true};
  core::parallel_for(0, 8, 1, [&](std::int64_t, std::int64_t) {
    if (!core::in_parallel_region()) nested_ok = false;
    saw_region = true;
    const std::thread::id outer = std::this_thread::get_id();
    std::int64_t expect = 0;
    core::parallel_for(0, 100, 10, [&](std::int64_t b, std::int64_t e) {
      // Nested chunks must run on the same thread, in ascending order.
      if (std::this_thread::get_id() != outer) nested_ok = false;
      if (b != expect) nested_ok = false;
      expect = e;
    });
    if (expect != 100) nested_ok = false;
  });
  EXPECT_TRUE(saw_region.load());
  EXPECT_TRUE(nested_ok.load());
  EXPECT_FALSE(core::in_parallel_region());
}

TEST(ParallelFor, BudgetOneRunsInOrderOnCallingThread) {
  core::set_compute_threads(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::int64_t expect = 0;
  core::parallel_for(0, 1000, 64, [&](std::int64_t b, std::int64_t e) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(b, expect);
    expect = e;
  });
  EXPECT_EQ(expect, 1000);
}

TEST(ComputeThreads, SetGetAndValidation) {
  core::set_compute_threads(3);
  EXPECT_EQ(core::compute_threads(), 3u);
  EXPECT_THROW(core::set_compute_threads(0), ConfigError);
  // An explicit setting wins over the simulator's auto division.
  EXPECT_EQ(core::set_compute_threads_if_default(7), 3u);
  EXPECT_EQ(core::compute_threads(), 3u);
}

// ---- bitwise determinism: 1 thread vs N threads ----------------------------

std::vector<float> snapshot(const Tensor& t) { return t.vec(); }

void expect_bitwise_equal(const std::vector<float>& a,
                          const std::vector<float>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
      << what << " differs between thread budgets";
}

struct FwdBwd {
  std::vector<float> out;
  std::vector<std::vector<float>> grads;
};

template <typename Fn>
FwdBwd run_at_budget(std::size_t budget, Fn&& fn) {
  core::set_compute_threads(budget);
  return fn();
}

TEST(Determinism, MatmulForwardBackwardBitwise1vs4) {
  auto run = [] {
    core::Rng rng(11);
    Tensor a = Tensor::randn({96, 80}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
    Tensor b = Tensor::randn({80, 64}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
    Tensor loss = tensor::mean_all(tensor::matmul(a, b));
    loss.backward();
    return FwdBwd{snapshot(loss), {a.grad(), b.grad()}};
  };
  const FwdBwd serial = run_at_budget(1, run);
  const FwdBwd parallel = run_at_budget(4, run);
  expect_bitwise_equal(serial.out, parallel.out, "matmul loss");
  expect_bitwise_equal(serial.grads[0], parallel.grads[0], "dA");
  expect_bitwise_equal(serial.grads[1], parallel.grads[1], "dB");
}

TEST(Determinism, LinearForwardBackwardBitwise1vs4) {
  auto run = [] {
    core::Rng rng(12);
    Tensor x = Tensor::randn({64, 96}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
    Tensor w = Tensor::randn({72, 96}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
    Tensor b = Tensor::randn({72}, rng, 0.0f, 1.0f, /*requires_grad=*/true);
    Tensor y = tensor::linear(x, w, b);
    FwdBwd r;
    r.out = snapshot(y);
    tensor::mean_all(y).backward();
    r.grads = {x.grad(), w.grad(), b.grad()};
    return r;
  };
  const FwdBwd serial = run_at_budget(1, run);
  const FwdBwd parallel = run_at_budget(4, run);
  expect_bitwise_equal(serial.out, parallel.out, "linear y");
  expect_bitwise_equal(serial.grads[0], parallel.grads[0], "dx");
  expect_bitwise_equal(serial.grads[1], parallel.grads[1], "dw");
  expect_bitwise_equal(serial.grads[2], parallel.grads[2], "db");
}

TEST(Determinism, TransformerForwardBackwardBitwise1vs4) {
  auto run = [] {
    core::Rng rng(13);
    nn::TransformerEncoderLayer layer(32, 2, 16, 64, /*dropout_p=*/0.0f, rng);
    Tensor x = Tensor::randn({4, 8, 32}, rng);
    core::Rng fw(14);
    Tensor y = layer.forward(x, Tensor(), fw);
    FwdBwd r;
    r.out = snapshot(y);
    tensor::mean_all(y).backward();
    for (const Tensor& p : layer.parameters()) r.grads.push_back(p.grad());
    return r;
  };
  const FwdBwd serial = run_at_budget(1, run);
  const FwdBwd parallel = run_at_budget(4, run);
  expect_bitwise_equal(serial.out, parallel.out, "transformer out");
  ASSERT_EQ(serial.grads.size(), parallel.grads.size());
  for (std::size_t i = 0; i < serial.grads.size(); ++i) {
    expect_bitwise_equal(serial.grads[i], parallel.grads[i], "transformer grad");
  }
}

TEST(Determinism, LstmForwardBackwardBitwise1vs4) {
  auto run = [] {
    core::Rng rng(15);
    nn::Lstm lstm(24, 32, 2, /*dropout_p=*/0.0f, rng);
    Tensor x = Tensor::randn({4, 12, 24}, rng);
    core::Rng fw(16);
    Tensor y = lstm.forward(x, fw);
    FwdBwd r;
    r.out = snapshot(y);
    tensor::mean_all(y).backward();
    for (const Tensor& p : lstm.parameters()) r.grads.push_back(p.grad());
    return r;
  };
  const FwdBwd serial = run_at_budget(1, run);
  const FwdBwd parallel = run_at_budget(4, run);
  expect_bitwise_equal(serial.out, parallel.out, "lstm out");
  ASSERT_EQ(serial.grads.size(), parallel.grads.size());
  for (std::size_t i = 0; i < serial.grads.size(); ++i) {
    expect_bitwise_equal(serial.grads[i], parallel.grads[i], "lstm grad");
  }
}

TEST(Determinism, TrainingStateDictBitwise1vs4) {
  auto train = [](std::size_t budget) {
    core::set_compute_threads(budget);
    core::Rng rng(17);
    nn::TransformerEncoderLayer model(32, 2, 16, 64, /*dropout_p=*/0.0f, rng);
    optim::Adam opt(model.parameters(), 1e-2f);
    core::Rng data_rng(18);
    for (int step = 0; step < 3; ++step) {
      Tensor x = Tensor::randn({4, 8, 32}, data_rng);
      core::Rng fw(19);
      Tensor loss = tensor::mean_all(model.forward(x, Tensor(), fw));
      loss.backward();
      opt.step();
      opt.zero_grad();
    }
    return model.state_dict();
  };
  const nn::StateDict serial = train(1);
  const nn::StateDict parallel = train(4);
  ASSERT_TRUE(serial.congruent_with(parallel));
  for (const auto& [name, blob] : serial.entries()) {
    const auto& other = parallel.at(name).values;
    ASSERT_EQ(blob.values.size(), other.size());
    EXPECT_EQ(std::memcmp(blob.values.data(), other.data(),
                          other.size() * sizeof(float)),
              0)
        << "parameter " << name << " differs between thread budgets";
  }
}

}  // namespace
}  // namespace cppflare
